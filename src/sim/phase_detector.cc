#include "sim/phase_detector.hh"

#include <cmath>

#include "common/journal.hh"
#include "common/log.hh"

namespace mnoc::sim {

PhaseDetector::PhaseDetector(int num_nodes, std::size_t window,
                             double threshold)
    : numNodes_(num_nodes), window_(window), threshold_(threshold)
{
    fatalIf(num_nodes < 2,
            "phase detector needs at least two nodes");
    fatalIf(window < 1,
            "phase detector window must be at least one epoch");
    fatalIf(threshold <= 0.0 || threshold > 2.0,
            "phase change threshold must lie in (0, 2]");
    // Ring distances span [1, n/2]; one bucket per log2 magnitude.
    int buckets = 1;
    while ((1 << buckets) <= num_nodes / 2)
        ++buckets;
    numBuckets_ = buckets;
}

bool
PhaseDetector::observe(const std::vector<noc::EpochCell> &cells)
{
    auto buckets = static_cast<std::size_t>(numBuckets_);
    std::vector<std::uint64_t> counts(buckets, 0);
    std::uint64_t total = 0;
    for (const noc::EpochCell &cell : cells) {
        if (cell.flits == 0 || cell.dst == cell.src)
            continue;
        int apart = cell.dst > cell.src ? cell.dst - cell.src
                                        : cell.src - cell.dst;
        int d = std::min(apart, numNodes_ - apart);
        panicIf(d < 1 || d > numNodes_ / 2,
                "epoch cell endpoints out of range");
        std::size_t b = 0;
        while ((2u << b) <= static_cast<unsigned>(d))
            ++b;
        counts[b] += cell.flits;
        total += cell.flits;
    }

    lastSignature_.assign(buckets, 0.0);
    if (total > 0)
        for (std::size_t b = 0; b < buckets; ++b)
            lastSignature_[b] = static_cast<double>(counts[b]) /
                                static_cast<double>(total);

    bool change = false;
    lastDistance_ = 0.0;
    if (history_.size() >= window_) {
        double distance = 0.0;
        for (std::size_t b = 0; b < buckets; ++b) {
            double mean = 0.0;
            for (const std::vector<double> &sig : history_)
                mean += sig[b];
            mean /= static_cast<double>(history_.size());
            distance += std::abs(lastSignature_[b] - mean);
        }
        lastDistance_ = distance;
        if (distance > threshold_) {
            change = true;
            // Restart the reference so the transition fires once;
            // the new phase becomes the baseline from here on.
            history_.clear();
        }
    }

    history_.push_back(lastSignature_);
    if (history_.size() > window_)
        history_.pop_front();

    if (journalEnabled()) {
        // One observe() call per epoch, in epoch order, so the
        // pre-increment count is the epoch index.
        JournalRecord rec(JournalKind::PhaseSignature, epochsObserved_);
        rec.addInt(static_cast<std::int64_t>(buckets));
        rec.addReal(lastDistance_);
        std::size_t keep =
            std::min(buckets, JournalRecord::kMaxReals - 1);
        for (std::size_t b = 0; b < keep; ++b)
            rec.addReal(lastSignature_[b]);
        Journal::global().record(rec);
    }

    ++epochsObserved_;
    return change;
}

} // namespace mnoc::sim
