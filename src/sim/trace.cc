#include "sim/trace.hh"

#include <algorithm>
#include <tuple>

#include "common/io.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "sim/trace_stream.hh"

namespace mnoc::sim {

Trace
toTrace(const SimulationResult &result)
{
    Trace t;
    t.workloadName = result.workloadName;
    t.networkName = result.networkName;
    t.totalTicks = result.totalTicks;
    t.packets = result.packets;
    t.flits = result.flits;
    t.manifest = currentManifest(
        result.seed,
        hexDigest(fnv1a64(result.workloadName + "|" +
                          result.networkName + "|" +
                          std::to_string(result.packets.rows()))));
    t.epochs = result.epochs;
    return t;
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    TraceSpan span("saveTrace", "io");
    FileWriter writer(path);
    auto &out = writer.stream();
    int n = static_cast<int>(trace.packets.rows());
    // Epoch-free traces stay on version 2, byte-identical to what
    // earlier builds wrote (the golden fixture pins this).
    int version = trace.epochs.empty() ? 2 : 3;
    out << "mnoc-trace " << version << "\n";
    out << trace.workloadName << "\n" << trace.networkName << "\n";
    out << n << " " << trace.totalTicks << "\n";
    auto lines = manifestLines(trace.manifest);
    out << "manifest " << lines.size() << "\n";
    for (const auto &line : lines)
        out << line << "\n";
    if (version >= 3) {
        out << "epochs " << trace.epochs.epochs.size() << " "
            << trace.epochs.messagesPerEpoch << "\n";
        for (const auto &cells : trace.epochs.epochs) {
            out << "epoch " << cells.size() << "\n";
            for (const noc::EpochCell &cell : cells)
                out << cell.src << " " << cell.dst << " "
                    << cell.packets << " " << cell.flits << "\n";
        }
    }
    // Sparse triplets: src dst packets flits.
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (trace.packets(s, d) == 0 && trace.flits(s, d) == 0)
                continue;
            out << s << " " << d << " " << trace.packets(s, d) << " "
                << trace.flits(s, d) << "\n";
        }
    }
    // A full disk or revoked permissions surface here, not as a
    // silently truncated trace on the next load.
    writer.close();
    MetricsRegistry::global().counter("trace.saves").add();
}

void
saveShardedTrace(const std::string &dir, const Trace &trace,
                 std::size_t epochs_per_shard)
{
    TraceSpan span("saveShardedTrace", "io");
    int n = static_cast<int>(trace.packets.rows());
    TraceShardWriter writer(dir, trace.workloadName,
                            trace.networkName, n,
                            trace.epochs.messagesPerEpoch,
                            epochs_per_shard);
    for (const auto &cells : trace.epochs.epochs)
        writer.appendEpoch(cells);
    writer.finish(trace.totalTicks, trace.packets, trace.flits,
                  trace.manifest);
}

void
checkCoreMapping(const std::vector<int> &thread_to_core, int n)
{
    fatalIf(static_cast<int>(thread_to_core.size()) != n,
            "thread mapping must cover every thread");
    // The mapping must be a permutation: a duplicated target core
    // would merge two threads' traffic rows, silently corrupting
    // every downstream power number.
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int c : thread_to_core) {
        fatalIf(c < 0 || c >= n, "mapped core out of range");
        fatalIf(used[static_cast<std::size_t>(c)],
                "thread mapping is not a permutation: core " +
                    std::to_string(c) + " is used twice");
        used[static_cast<std::size_t>(c)] = true;
    }
}

std::vector<noc::EpochCell>
mapEpochCells(const std::vector<noc::EpochCell> &cells,
              const std::vector<int> &thread_to_core)
{
    std::vector<noc::EpochCell> mapped;
    mapped.reserve(cells.size());
    for (noc::EpochCell cell : cells) {
        cell.src = thread_to_core[static_cast<std::size_t>(cell.src)];
        cell.dst = thread_to_core[static_cast<std::size_t>(cell.dst)];
        mapped.push_back(cell);
    }
    // Re-canonicalize: the permutation scrambles (src, dst) order,
    // and downstream byte-identity depends on it.
    std::sort(mapped.begin(), mapped.end(),
              [](const noc::EpochCell &a, const noc::EpochCell &b) {
                  return std::tie(a.src, a.dst) <
                         std::tie(b.src, b.dst);
              });
    return mapped;
}

Trace
mapTrace(const Trace &trace, const std::vector<int> &thread_to_core)
{
    int n = static_cast<int>(trace.packets.rows());
    checkCoreMapping(thread_to_core, n);

    Trace out;
    out.workloadName = trace.workloadName;
    out.networkName = trace.networkName;
    out.totalTicks = trace.totalTicks;
    out.manifest = trace.manifest;
    out.packets = CountMatrix(n, n, 0);
    out.flits = CountMatrix(n, n, 0);
    for (int s = 0; s < n; ++s) {
        int sc = thread_to_core[static_cast<std::size_t>(s)];
        for (int d = 0; d < n; ++d) {
            int dc = thread_to_core[static_cast<std::size_t>(d)];
            out.packets(sc, dc) += trace.packets(s, d);
            out.flits(sc, dc) += trace.flits(s, d);
        }
    }
    out.epochs.messagesPerEpoch = trace.epochs.messagesPerEpoch;
    for (const auto &cells : trace.epochs.epochs)
        out.epochs.epochs.push_back(
            mapEpochCells(cells, thread_to_core));
    return out;
}

Trace
loadTrace(const std::string &path)
{
    TraceSpan span("loadTrace", "io");
    TraceReader reader(path);
    const TraceHeader &header = reader.header();

    Trace t;
    t.workloadName = header.workloadName;
    t.networkName = header.networkName;
    t.totalTicks = header.totalTicks;
    t.manifest = header.manifest;
    int n = header.numNodes;
    t.packets = CountMatrix(n, n, 0);
    t.flits = CountMatrix(n, n, 0);
    t.epochs.messagesPerEpoch = header.messagesPerEpoch;
    t.epochs.epochs.reserve(header.numEpochs);
    std::vector<noc::EpochCell> cells;
    while (reader.nextEpoch(cells))
        t.epochs.epochs.push_back(cells);
    reader.readMessageMatrix(t.packets, t.flits);
    MetricsRegistry::global().counter("trace.loads").add();
    return t;
}

} // namespace mnoc::sim
