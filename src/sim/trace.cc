#include "sim/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/io.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"

namespace mnoc::sim {

namespace {

/**
 * "path:line: why [kind record at byte N]" fatal for the strict
 * trace parser.  Every failure names the record kind being parsed
 * and the byte offset where it starts (for truncation, the offset
 * where the file ends), so a cut or corrupted trace can be opened
 * at the exact damage point instead of re-parsed by hand.
 */
[[noreturn]] void
parseFail(const std::string &path, int line, std::size_t offset,
          const std::string &kind, const std::string &why)
{
    fatal(path + ":" + std::to_string(line) + ": " + why + " [" +
          kind + " record at byte " + std::to_string(offset) + "]");
}

} // namespace

Trace
toTrace(const SimulationResult &result)
{
    Trace t;
    t.workloadName = result.workloadName;
    t.networkName = result.networkName;
    t.totalTicks = result.totalTicks;
    t.packets = result.packets;
    t.flits = result.flits;
    t.manifest = currentManifest(
        result.seed,
        hexDigest(fnv1a64(result.workloadName + "|" +
                          result.networkName + "|" +
                          std::to_string(result.packets.rows()))));
    t.epochs = result.epochs;
    return t;
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    TraceSpan span("saveTrace", "io");
    FileWriter writer(path);
    auto &out = writer.stream();
    int n = static_cast<int>(trace.packets.rows());
    // Epoch-free traces stay on version 2, byte-identical to what
    // earlier builds wrote (the golden fixture pins this).
    int version = trace.epochs.empty() ? 2 : 3;
    out << "mnoc-trace " << version << "\n";
    out << trace.workloadName << "\n" << trace.networkName << "\n";
    out << n << " " << trace.totalTicks << "\n";
    auto lines = manifestLines(trace.manifest);
    out << "manifest " << lines.size() << "\n";
    for (const auto &line : lines)
        out << line << "\n";
    if (version >= 3) {
        out << "epochs " << trace.epochs.epochs.size() << " "
            << trace.epochs.messagesPerEpoch << "\n";
        for (const auto &cells : trace.epochs.epochs) {
            out << "epoch " << cells.size() << "\n";
            for (const noc::EpochCell &cell : cells)
                out << cell.src << " " << cell.dst << " "
                    << cell.packets << " " << cell.flits << "\n";
        }
    }
    // Sparse triplets: src dst packets flits.
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (trace.packets(s, d) == 0 && trace.flits(s, d) == 0)
                continue;
            out << s << " " << d << " " << trace.packets(s, d) << " "
                << trace.flits(s, d) << "\n";
        }
    }
    // A full disk or revoked permissions surface here, not as a
    // silently truncated trace on the next load.
    writer.close();
    MetricsRegistry::global().counter("trace.saves").add();
}

Trace
mapTrace(const Trace &trace, const std::vector<int> &thread_to_core)
{
    int n = static_cast<int>(trace.packets.rows());
    fatalIf(static_cast<int>(thread_to_core.size()) != n,
            "thread mapping must cover every thread");

    // The mapping must be a permutation: a duplicated target core
    // would merge two threads' traffic rows, silently corrupting
    // every downstream power number.
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int c : thread_to_core) {
        fatalIf(c < 0 || c >= n, "mapped core out of range");
        fatalIf(used[static_cast<std::size_t>(c)],
                "thread mapping is not a permutation: core " +
                    std::to_string(c) + " is used twice");
        used[static_cast<std::size_t>(c)] = true;
    }

    Trace out;
    out.workloadName = trace.workloadName;
    out.networkName = trace.networkName;
    out.totalTicks = trace.totalTicks;
    out.manifest = trace.manifest;
    out.packets = CountMatrix(n, n, 0);
    out.flits = CountMatrix(n, n, 0);
    for (int s = 0; s < n; ++s) {
        int sc = thread_to_core[static_cast<std::size_t>(s)];
        for (int d = 0; d < n; ++d) {
            int dc = thread_to_core[static_cast<std::size_t>(d)];
            out.packets(sc, dc) += trace.packets(s, d);
            out.flits(sc, dc) += trace.flits(s, d);
        }
    }
    out.epochs.messagesPerEpoch = trace.epochs.messagesPerEpoch;
    for (const auto &cells : trace.epochs.epochs) {
        std::vector<noc::EpochCell> mapped;
        mapped.reserve(cells.size());
        for (noc::EpochCell cell : cells) {
            cell.src =
                thread_to_core[static_cast<std::size_t>(cell.src)];
            cell.dst =
                thread_to_core[static_cast<std::size_t>(cell.dst)];
            mapped.push_back(cell);
        }
        // Re-canonicalize: the permutation scrambles (src, dst)
        // order, and downstream byte-identity depends on it.
        std::sort(mapped.begin(), mapped.end(),
                  [](const noc::EpochCell &a, const noc::EpochCell &b) {
                      return std::tie(a.src, a.dst) <
                             std::tie(b.src, b.dst);
                  });
        out.epochs.epochs.push_back(std::move(mapped));
    }
    return out;
}

Trace
loadTrace(const std::string &path)
{
    TraceSpan span("loadTrace", "io");
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open trace file: " + path);

    int lineno = 0;
    std::string line;
    // Byte bookkeeping for parseFail: line_offset is where the
    // current line starts; offset is one past its newline, i.e. the
    // end-of-file position when nextLine() returns false.
    std::size_t line_offset = 0;
    std::size_t offset = 0;
    auto nextLine = [&]() -> bool {
        line_offset = offset;
        if (!std::getline(in, line))
            return false;
        ++lineno;
        offset += line.size() + 1;
        return true;
    };

    if (!nextLine())
        parseFail(path, 1, 0, "header", "empty trace file");
    std::string magic;
    int version = 0;
    {
        std::istringstream header(line);
        header >> magic >> version;
        if (header.fail() || magic != "mnoc-trace" || version < 1 ||
            version > 3)
            parseFail(path, lineno, line_offset, "header",
                      "unrecognized trace file header: " + line);
    }

    Trace t;
    if (!nextLine())
        parseFail(path, lineno + 1, line_offset, "workload",
                  "missing workload name");
    t.workloadName = line;
    if (!nextLine())
        parseFail(path, lineno + 1, line_offset, "network",
                  "missing network name");
    t.networkName = line;

    if (!nextLine())
        parseFail(path, lineno + 1, line_offset, "dimensions",
                  "missing trace dimensions");
    int n = 0;
    {
        std::istringstream dims(line);
        dims >> n >> t.totalTicks;
        if (dims.fail() || n <= 0)
            parseFail(path, lineno, line_offset, "dimensions",
                      "malformed trace dimensions: " + line);
    }
    t.packets = CountMatrix(n, n, 0);
    t.flits = CountMatrix(n, n, 0);

    bool pending = nextLine();
    if (version >= 2) {
        if (!pending)
            parseFail(path, lineno + 1, line_offset,
                      "manifest-header", "missing manifest block");
        std::istringstream head(line);
        std::string keyword;
        std::size_t count = 0;
        head >> keyword >> count;
        if (head.fail() || keyword != "manifest")
            parseFail(path, lineno, line_offset, "manifest-header",
                      "expected 'manifest <n>', got: " + line);
        for (std::size_t i = 0; i < count; ++i) {
            if (!nextLine())
                parseFail(path, lineno + 1, line_offset,
                          "manifest-entry",
                          "truncated manifest block");
            if (!parseManifestEntry(line, t.manifest))
                parseFail(path, lineno, line_offset,
                          "manifest-entry",
                          "malformed manifest entry: " + line);
        }
        pending = nextLine();
    }

    if (version >= 3) {
        if (!pending)
            parseFail(path, lineno + 1, line_offset,
                      "epochs-header", "missing epochs block");
        std::istringstream head(line);
        std::string keyword;
        std::size_t num_epochs = 0;
        head >> keyword >> num_epochs >> t.epochs.messagesPerEpoch;
        if (head.fail() || keyword != "epochs")
            parseFail(path, lineno, line_offset, "epochs-header",
                      "expected 'epochs <n> <msgs>', got: " + line);
        for (std::size_t e = 0; e < num_epochs; ++e) {
            if (!nextLine())
                parseFail(path, lineno + 1, line_offset,
                          "epoch-header", "truncated epochs block");
            std::istringstream epoch_head(line);
            std::string epoch_keyword;
            std::size_t cell_count = 0;
            epoch_head >> epoch_keyword >> cell_count;
            if (epoch_head.fail() || epoch_keyword != "epoch")
                parseFail(path, lineno, line_offset, "epoch-header",
                          "expected 'epoch <cells>', got: " + line);
            std::vector<noc::EpochCell> cells;
            cells.reserve(cell_count);
            for (std::size_t c = 0; c < cell_count; ++c) {
                if (!nextLine())
                    parseFail(path, lineno + 1, line_offset,
                              "epoch-cell",
                              "truncated epoch cell list");
                std::istringstream cell_line(line);
                noc::EpochCell cell;
                cell_line >> cell.src >> cell.dst >> cell.packets >>
                    cell.flits;
                if (cell_line.fail())
                    parseFail(path, lineno, line_offset,
                              "epoch-cell",
                              "malformed epoch cell (expected 'src "
                              "dst packets flits'): " + line);
                if (cell.src < 0 || cell.src >= n || cell.dst < 0 ||
                    cell.dst >= n)
                    parseFail(path, lineno, line_offset,
                              "epoch-cell",
                              "epoch cell endpoint out of range: " +
                                  line);
                cells.push_back(cell);
            }
            t.epochs.epochs.push_back(std::move(cells));
        }
        pending = nextLine();
    }

    // Triplet lines.  The loop distinguishes clean end-of-file from
    // a malformed or truncated line: only the former returns.
    while (pending) {
        std::istringstream triplet(line);
        int s = 0, d = 0;
        std::uint64_t p = 0, f = 0;
        triplet >> s >> d >> p >> f;
        if (triplet.fail())
            parseFail(path, lineno, line_offset, "triplet",
                      "malformed trace triplet (expected 'src dst "
                      "packets flits'): " + line);
        std::string extra;
        if (triplet >> extra)
            parseFail(path, lineno, line_offset, "triplet",
                      "trailing garbage after triplet: " + line);
        if (s < 0 || s >= n || d < 0 || d >= n)
            parseFail(path, lineno, line_offset, "triplet",
                      "trace endpoint out of range: " + line);
        t.packets(s, d) = p;
        t.flits(s, d) = f;
        pending = nextLine();
    }
    fatalIf(in.bad(), "I/O error reading trace file: " + path);
    MetricsRegistry::global().counter("trace.loads").add();
    return t;
}

} // namespace mnoc::sim
