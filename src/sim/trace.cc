#include "sim/trace.hh"

#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace mnoc::sim {

Trace
toTrace(const SimulationResult &result)
{
    Trace t;
    t.workloadName = result.workloadName;
    t.networkName = result.networkName;
    t.totalTicks = result.totalTicks;
    t.packets = result.packets;
    t.flits = result.flits;
    return t;
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream out(path);
    fatalIf(!out.is_open(), "cannot open trace file for write: " + path);
    int n = static_cast<int>(trace.packets.rows());
    out << "mnoc-trace 1\n";
    out << trace.workloadName << "\n" << trace.networkName << "\n";
    out << n << " " << trace.totalTicks << "\n";
    // Sparse triplets: src dst packets flits.
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (trace.packets(s, d) == 0 && trace.flits(s, d) == 0)
                continue;
            out << s << " " << d << " " << trace.packets(s, d) << " "
                << trace.flits(s, d) << "\n";
        }
    }
}

Trace
mapTrace(const Trace &trace, const std::vector<int> &thread_to_core)
{
    int n = static_cast<int>(trace.packets.rows());
    fatalIf(static_cast<int>(thread_to_core.size()) != n,
            "thread mapping must cover every thread");

    for (int c : thread_to_core)
        fatalIf(c < 0 || c >= n, "mapped core out of range");

    Trace out;
    out.workloadName = trace.workloadName;
    out.networkName = trace.networkName;
    out.totalTicks = trace.totalTicks;
    out.packets = CountMatrix(n, n, 0);
    out.flits = CountMatrix(n, n, 0);
    for (int s = 0; s < n; ++s) {
        int sc = thread_to_core[s];
        for (int d = 0; d < n; ++d) {
            int dc = thread_to_core[d];
            out.packets(sc, dc) += trace.packets(s, d);
            out.flits(sc, dc) += trace.flits(s, d);
        }
    }
    return out;
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open trace file: " + path);

    std::string magic;
    int version = 0;
    in >> magic >> version;
    fatalIf(magic != "mnoc-trace" || version != 1,
            "unrecognized trace file header: " + path);
    in.ignore();

    Trace t;
    std::getline(in, t.workloadName);
    std::getline(in, t.networkName);
    int n = 0;
    in >> n >> t.totalTicks;
    fatalIf(n <= 0 || in.fail(), "malformed trace dimensions: " + path);
    t.packets = CountMatrix(n, n, 0);
    t.flits = CountMatrix(n, n, 0);

    int s, d;
    std::uint64_t p, f;
    while (in >> s >> d >> p >> f) {
        fatalIf(s < 0 || s >= n || d < 0 || d >= n,
                "trace endpoint out of range: " + path);
        t.packets(s, d) = p;
        t.flits(s, d) = f;
    }
    return t;
}

} // namespace mnoc::sim
