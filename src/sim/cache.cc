#include "sim/cache.hh"

#include "common/log.hh"

namespace mnoc::sim {

Cache::Cache(const CacheGeometry &geometry)
    : geometry_(geometry)
{
    fatalIf(geometry_.associativity == 0, "associativity must be >= 1");
    fatalIf(geometry_.sizeBytes %
                ((1u << lineShift) * geometry_.associativity) != 0,
            "cache size must be a whole number of sets");
    numSets_ = geometry_.numSets();
    fatalIf(numSets_ == 0, "cache must have at least one set");
    entries_.resize(static_cast<std::size_t>(numSets_) *
                    geometry_.associativity);
}

std::uint32_t
Cache::setIndex(std::uint64_t line) const
{
    return static_cast<std::uint32_t>(line % numSets_);
}

std::optional<LineState>
Cache::lookup(std::uint64_t line)
{
    std::size_t base = static_cast<std::size_t>(setIndex(line)) *
                       geometry_.associativity;
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.line == line) {
            e.lastUse = ++useCounter_;
            return e.state;
        }
    }
    return std::nullopt;
}

std::optional<LineState>
Cache::peek(std::uint64_t line) const
{
    std::size_t base = static_cast<std::size_t>(setIndex(line)) *
                       geometry_.associativity;
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.line == line)
            return e.state;
    }
    return std::nullopt;
}

std::optional<Eviction>
Cache::insert(std::uint64_t line, LineState state)
{
    std::size_t base = static_cast<std::size_t>(setIndex(line)) *
                       geometry_.associativity;
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.line == line) {
            // Refresh in place.
            e.state = state;
            e.lastUse = ++useCounter_;
            return std::nullopt;
        }
        bool better = victim == nullptr ||
                      (victim->valid &&
                       (!e.valid || e.lastUse < victim->lastUse));
        if (better)
            victim = &e;
    }
    panicIf(victim == nullptr, "no victim candidate in cache set");

    std::optional<Eviction> evicted;
    if (victim->valid)
        evicted = Eviction{victim->line, victim->state};

    victim->valid = true;
    victim->line = line;
    victim->state = state;
    victim->lastUse = ++useCounter_;
    return evicted;
}

bool
Cache::setState(std::uint64_t line, LineState state)
{
    std::size_t base = static_cast<std::size_t>(setIndex(line)) *
                       geometry_.associativity;
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.line == line) {
            e.state = state;
            return true;
        }
    }
    return false;
}

std::optional<LineState>
Cache::invalidate(std::uint64_t line)
{
    std::size_t base = static_cast<std::size_t>(setIndex(line)) *
                       geometry_.associativity;
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.line == line) {
            e.valid = false;
            return e.state;
        }
    }
    return std::nullopt;
}

std::size_t
Cache::occupancy() const
{
    std::size_t count = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            ++count;
    return count;
}

} // namespace mnoc::sim
