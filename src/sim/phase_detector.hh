/**
 * @file
 * Topology-free traffic phase detection over streamed epoch cells.
 *
 * The adaptive runtime needs to know *when* a workload's
 * communication pattern shifts (barnes-style neighbor exchange
 * giving way to radix-style all-to-all, say) without knowing
 * anything about power topologies -- the sim layer sits below core.
 * The detector therefore summarizes each epoch as a normalized flit
 * histogram over log2 ring-distance buckets on the serpentine
 * (distance min(|dst - src|, n - |dst - src|), bucket floor(log2 d)):
 * a signature that is invariant to traffic volume and cheap to
 * compare, yet separates neighbor-heavy from long-haul phases.
 *
 * A phase change is declared when the L1 distance between the
 * current epoch's signature and the mean signature of the trailing
 * window exceeds a threshold; the window then restarts so one
 * transition fires one detection, not `window` of them.  Pure
 * sequential arithmetic over integer flit counts -- bit-identical
 * at any MNOC_THREADS.
 */

#ifndef MNOC_SIM_PHASE_DETECTOR_HH
#define MNOC_SIM_PHASE_DETECTOR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/network.hh"

namespace mnoc::sim {

/** Streaming epoch-signature phase detector (see file docs). */
class PhaseDetector
{
  public:
    /**
     * @param num_nodes Crossbar radix (at least 2).
     * @param window Trailing epochs forming the reference signature;
     *        the first @p window epochs only build it (no
     *        detections).  Must be at least 1.
     * @param threshold L1 signature distance declaring a phase
     *        change, in (0, 2] (2 is the maximum L1 distance of two
     *        normalized histograms).
     */
    PhaseDetector(int num_nodes, std::size_t window,
                  double threshold);

    /**
     * Fold one epoch's traffic in and report whether it opened a new
     * phase.  Self-traffic and zero-flit cells are ignored; cell
     * order does not matter (integer folds are exact).
     */
    bool observe(const std::vector<noc::EpochCell> &cells);

    /** Signature of the most recent epoch (empty before the first
     *  observe()). */
    const std::vector<double> &lastSignature() const
    {
        return lastSignature_;
    }

    /** L1 distance of the most recent epoch to its reference window
     *  (0 while the window is still filling). */
    double lastDistance() const { return lastDistance_; }

    /** Distance buckets in a signature. */
    int numBuckets() const { return numBuckets_; }

    /** Epochs observed so far. */
    std::size_t epochsObserved() const { return epochsObserved_; }

  private:
    int numNodes_;
    int numBuckets_;
    std::size_t window_;
    double threshold_;
    std::size_t epochsObserved_ = 0;
    double lastDistance_ = 0.0;
    std::vector<double> lastSignature_;
    /** Trailing signatures, oldest first; at most window_ entries. */
    std::deque<std::vector<double>> history_;
};

} // namespace mnoc::sim

#endif // MNOC_SIM_PHASE_DETECTOR_HH
