#include "sim/trace_stream.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/log.hh"
#include "common/metrics.hh"

namespace mnoc::sim {

namespace {

/** Index file of a sharded trace directory. */
const char *const kIndexFile = "index.mtrace";

/**
 * "path:line: why [kind record at byte N]" fatal for the strict
 * trace parser.  Every failure names the record kind being parsed
 * and the byte offset where it starts (for truncation, the offset
 * where the file ends), so a cut or corrupted trace can be opened
 * at the exact damage point instead of re-parsed by hand.
 */
[[noreturn]] void
parseFail(const std::string &path, int line, std::size_t offset,
          const std::string &kind, const std::string &why)
{
    fatal(path + ":" + std::to_string(line) + ": " + why + " [" +
          kind + " record at byte " + std::to_string(offset) + "]");
}

/** Shard file name for the shard starting at epoch @p first. */
std::string
shardFileName(std::size_t index)
{
    std::ostringstream name;
    name << "epochs-";
    std::string digits = std::to_string(index);
    for (std::size_t i = digits.size(); i < 6; ++i)
        name << '0';
    name << digits << ".mshard";
    return name.str();
}

} // namespace

LineScanner::LineScanner(const std::string &path) : path_(path)
{
    in_.open(path);
    fatalIf(!in_.is_open(), "cannot open trace file: " + path);
}

LineScanner::LineScanner(const std::string &path, std::size_t offset,
                         int lineno)
    : path_(path), lineno_(lineno), lineOffset_(offset),
      offset_(offset)
{
    in_.open(path);
    fatalIf(!in_.is_open(), "cannot open trace file: " + path);
    in_.seekg(static_cast<std::streamoff>(offset));
    fatalIf(in_.fail(), "cannot seek in trace file: " + path);
}

bool
LineScanner::next()
{
    lineOffset_ = offset_;
    if (!std::getline(in_, line_))
        return false;
    ++lineno_;
    offset_ += line_.size() + 1;
    return true;
}

void
LineScanner::fail(const std::string &kind,
                  const std::string &why) const
{
    parseFail(path_, lineno_, lineOffset_, kind, why);
}

void
LineScanner::failTruncated(const std::string &kind,
                           const std::string &why) const
{
    parseFail(path_, lineno_ + 1, lineOffset_, kind, why);
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    if (std::filesystem::is_directory(path))
        openSharded();
    else
        openSingleFile();
    MetricsRegistry::global().counter("trace.stream_opens").add();
}

TraceReader::~TraceReader() = default;

void
TraceReader::openSingleFile()
{
    scanner_ = std::make_unique<LineScanner>(path_);
    auto &sc = *scanner_;
    if (!sc.next())
        sc.failTruncated("header", "empty trace file");
    std::string magic;
    int version = 0;
    {
        std::istringstream header(sc.line());
        header >> magic >> version;
        if (header.fail() || magic != "mnoc-trace" || version < 1 ||
            version > 3)
            sc.fail("header",
                    "unrecognized trace file header: " + sc.line());
    }
    header_.version = version;

    if (!sc.next())
        sc.failTruncated("workload", "missing workload name");
    header_.workloadName = sc.line();
    if (!sc.next())
        sc.failTruncated("network", "missing network name");
    header_.networkName = sc.line();

    if (!sc.next())
        sc.failTruncated("dimensions", "missing trace dimensions");
    {
        std::istringstream dims(sc.line());
        dims >> header_.numNodes >> header_.totalTicks;
        if (dims.fail() || header_.numNodes <= 0)
            sc.fail("dimensions",
                    "malformed trace dimensions: " + sc.line());
    }

    if (version >= 2) {
        if (!sc.next())
            sc.failTruncated("manifest-header",
                             "missing manifest block");
        std::istringstream head(sc.line());
        std::string keyword;
        std::size_t count = 0;
        head >> keyword >> count;
        if (head.fail() || keyword != "manifest")
            sc.fail("manifest-header",
                    "expected 'manifest <n>', got: " + sc.line());
        for (std::size_t i = 0; i < count; ++i) {
            if (!sc.next())
                sc.failTruncated("manifest-entry",
                                 "truncated manifest block");
            if (!parseManifestEntry(sc.line(), header_.manifest))
                sc.fail("manifest-entry",
                        "malformed manifest entry: " + sc.line());
        }
    }

    if (version >= 3) {
        if (!sc.next())
            sc.failTruncated("epochs-header",
                             "missing epochs block");
        std::istringstream head(sc.line());
        std::string keyword;
        head >> keyword >> header_.numEpochs >>
            header_.messagesPerEpoch;
        if (head.fail() || keyword != "epochs")
            sc.fail("epochs-header",
                    "expected 'epochs <n> <msgs>', got: " +
                        sc.line());
        // Shard 0 of a single-file trace starts right here.
        epochsOffset_ = sc.lineOffset() + sc.line().size() + 1;
        epochsLineno_ = sc.lineno();
        pending_ = false;
    } else {
        // No epoch block: the next line (if any) is the first
        // triplet; keep it as lookahead for nextMessages().
        pending_ = sc.next();
    }
}

void
TraceReader::openSharded()
{
    std::string index_path = path_ + "/" + kIndexFile;
    fatalIf(!std::filesystem::exists(index_path),
            "not a sharded trace directory (missing " +
                std::string(kIndexFile) + "): " + path_);
    LineScanner sc(index_path);
    if (!sc.next())
        sc.failTruncated("header", "empty trace file");
    std::string magic;
    int version = 0;
    {
        std::istringstream header(sc.line());
        header >> magic >> version;
        if (header.fail() || magic != "mnoc-trace-shards" ||
            version != 1)
            sc.fail("header",
                    "unrecognized trace file header: " + sc.line());
    }
    header_.version = kShardedVersion;

    if (!sc.next())
        sc.failTruncated("workload", "missing workload name");
    header_.workloadName = sc.line();
    if (!sc.next())
        sc.failTruncated("network", "missing network name");
    header_.networkName = sc.line();

    if (!sc.next())
        sc.failTruncated("dimensions", "missing trace dimensions");
    {
        std::istringstream dims(sc.line());
        dims >> header_.numNodes >> header_.totalTicks;
        if (dims.fail() || header_.numNodes <= 0)
            sc.fail("dimensions",
                    "malformed trace dimensions: " + sc.line());
    }

    if (!sc.next())
        sc.failTruncated("manifest-header", "missing manifest block");
    {
        std::istringstream head(sc.line());
        std::string keyword;
        std::size_t count = 0;
        head >> keyword >> count;
        if (head.fail() || keyword != "manifest")
            sc.fail("manifest-header",
                    "expected 'manifest <n>', got: " + sc.line());
        for (std::size_t i = 0; i < count; ++i) {
            if (!sc.next())
                sc.failTruncated("manifest-entry",
                                 "truncated manifest block");
            if (!parseManifestEntry(sc.line(), header_.manifest))
                sc.fail("manifest-entry",
                        "malformed manifest entry: " + sc.line());
        }
    }

    if (!sc.next())
        sc.failTruncated("epochs-header", "missing epochs block");
    {
        std::istringstream head(sc.line());
        std::string keyword;
        head >> keyword >> header_.numEpochs >>
            header_.messagesPerEpoch;
        if (head.fail() || keyword != "epochs")
            sc.fail("epochs-header",
                    "expected 'epochs <n> <msgs>', got: " +
                        sc.line());
    }

    if (!sc.next())
        sc.failTruncated("shards-header", "missing shards block");
    std::size_t num_shards = 0;
    {
        std::istringstream head(sc.line());
        std::string keyword;
        head >> keyword >> num_shards;
        if (head.fail() || keyword != "shards")
            sc.fail("shards-header",
                    "expected 'shards <n>', got: " + sc.line());
    }
    std::size_t covered = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
        if (!sc.next())
            sc.failTruncated("shard-entry",
                             "truncated shard list");
        std::istringstream entry(sc.line());
        std::string keyword, file;
        ShardRange range;
        entry >> keyword >> file >> range.firstEpoch >> range.count;
        if (entry.fail() || keyword != "shard" || range.count == 0)
            sc.fail("shard-entry",
                    "expected 'shard <file> <first> <count>', "
                    "got: " + sc.line());
        if (range.firstEpoch != covered)
            sc.fail("shard-entry",
                    "shard ranges must tile the epochs in order: " +
                        sc.line());
        covered += range.count;
        shardFiles_.push_back(path_ + "/" + file);
        shardRanges_.push_back(range);
    }
    if (covered != header_.numEpochs)
        sc.fail("shards-header",
                "shard ranges cover " + std::to_string(covered) +
                    " epochs, index declares " +
                    std::to_string(header_.numEpochs));

    if (!sc.next())
        sc.failTruncated("triplets-entry", "missing triplets entry");
    {
        std::istringstream entry(sc.line());
        std::string keyword, file;
        entry >> keyword >> file;
        if (entry.fail() || keyword != "triplets")
            sc.fail("triplets-entry",
                    "expected 'triplets <file>', got: " + sc.line());
        tripletFile_ = path_ + "/" + file;
    }
    fatalIf(sc.bad(), "I/O error reading trace file: " + index_path);
}

void
TraceReader::parseEpochBlock(LineScanner &scanner, int num_nodes,
                             std::vector<noc::EpochCell> &cells)
{
    if (!scanner.next())
        scanner.failTruncated("epoch-header",
                              "truncated epochs block");
    std::istringstream epoch_head(scanner.line());
    std::string epoch_keyword;
    std::size_t cell_count = 0;
    epoch_head >> epoch_keyword >> cell_count;
    if (epoch_head.fail() || epoch_keyword != "epoch")
        scanner.fail("epoch-header",
                     "expected 'epoch <cells>', got: " +
                         scanner.line());
    cells.clear();
    cells.reserve(cell_count);
    for (std::size_t c = 0; c < cell_count; ++c) {
        if (!scanner.next())
            scanner.failTruncated("epoch-cell",
                                  "truncated epoch cell list");
        std::istringstream cell_line(scanner.line());
        noc::EpochCell cell;
        cell_line >> cell.src >> cell.dst >> cell.packets >>
            cell.flits;
        if (cell_line.fail())
            scanner.fail("epoch-cell",
                         "malformed epoch cell (expected 'src "
                         "dst packets flits'): " + scanner.line());
        if (cell.src < 0 || cell.src >= num_nodes || cell.dst < 0 ||
            cell.dst >= num_nodes)
            scanner.fail("epoch-cell",
                         "epoch cell endpoint out of range: " +
                             scanner.line());
        cells.push_back(cell);
    }
}

bool
TraceReader::advanceEpochShard()
{
    while (cursorShard_ < shardFiles_.size()) {
        if (!shardScanner_) {
            shardScanner_ = std::make_unique<LineScanner>(
                shardFiles_[cursorShard_]);
            auto &sc = *shardScanner_;
            if (!sc.next())
                sc.failTruncated("shard-header",
                                 "empty shard file");
            std::istringstream head(sc.line());
            std::string magic;
            int version = 0;
            std::size_t first = 0;
            head >> magic >> version >> first;
            if (head.fail() || magic != "mnoc-shard" || version != 1)
                sc.fail("shard-header",
                        "unrecognized shard header: " + sc.line());
            if (first != shardRanges_[cursorShard_].firstEpoch)
                sc.fail("shard-header",
                        "shard declares first epoch " +
                            std::to_string(first) +
                            ", index expects " +
                            std::to_string(
                                shardRanges_[cursorShard_]
                                    .firstEpoch));
            cursorEpoch_ = 0;
        }
        if (cursorEpoch_ < shardRanges_[cursorShard_].count)
            return true;
        fatalIf(shardScanner_->bad(),
                "I/O error reading trace file: " +
                    shardFiles_[cursorShard_]);
        shardScanner_.reset();
        ++cursorShard_;
    }
    return false;
}

bool
TraceReader::nextEpoch(std::vector<noc::EpochCell> &cells)
{
    if (epochsYielded_ >= header_.numEpochs)
        return false;
    if (sharded()) {
        panicIf(!advanceEpochShard(),
                "shard cursor exhausted before declared epochs");
        parseEpochBlock(*shardScanner_, header_.numNodes, cells);
        ++cursorEpoch_;
    } else {
        parseEpochBlock(*scanner_, header_.numNodes, cells);
    }
    ++epochsYielded_;
    return true;
}

std::size_t
TraceReader::nextMessages(std::vector<TraceMessage> &batch,
                          std::size_t max)
{
    panicIf(epochsYielded_ < header_.numEpochs,
            "trace epochs must be drained before messages");
    batch.clear();
    if (sharded() && !scanner_) {
        scanner_ = std::make_unique<LineScanner>(tripletFile_);
        auto &sc = *scanner_;
        if (!sc.next())
            sc.failTruncated("header", "empty trace file");
        std::istringstream head(sc.line());
        std::string magic;
        int version = 0;
        head >> magic >> version;
        if (head.fail() || magic != "mnoc-triplets" || version != 1)
            sc.fail("header",
                    "unrecognized trace file header: " + sc.line());
        pending_ = sc.next();
    } else if (!sharded() && header_.version >= 3 &&
               epochsYielded_ == header_.numEpochs && !pending_ &&
               !tripletsStarted_) {
        // A v3+ single-file trace always carries an epoch block,
        // even a zero-epoch one ("epochs 0 ..."), and openSingleFile
        // leaves no lookahead for it; pull the first triplet line
        // here.  Gating on numEpochs > 0 instead of the version
        // silently dropped the whole triplet section of zero-epoch
        // v3 captures.
        pending_ = scanner_->next();
    }
    tripletsStarted_ = true;
    auto &sc = *scanner_;
    while (batch.size() < max && pending_) {
        std::istringstream triplet(sc.line());
        TraceMessage msg;
        triplet >> msg.src >> msg.dst >> msg.packets >> msg.flits;
        if (triplet.fail())
            sc.fail("triplet",
                    "malformed trace triplet (expected 'src dst "
                    "packets flits'): " + sc.line());
        std::string extra;
        if (triplet >> extra)
            sc.fail("triplet",
                    "trailing garbage after triplet: " + sc.line());
        if (msg.src < 0 || msg.src >= header_.numNodes ||
            msg.dst < 0 || msg.dst >= header_.numNodes)
            sc.fail("triplet",
                    "trace endpoint out of range: " + sc.line());
        batch.push_back(msg);
        pending_ = sc.next();
    }
    if (!pending_)
        fatalIf(sc.bad(),
                "I/O error reading trace file: " + sc.path());
    return batch.size();
}

std::size_t
TraceReader::numShards() const
{
    if (sharded())
        return shardFiles_.size();
    return header_.numEpochs > 0 ? 1 : 0;
}

TraceReader::ShardRange
TraceReader::shardRange(std::size_t shard) const
{
    panicIf(shard >= numShards(), "shard index out of range");
    if (sharded())
        return shardRanges_[shard];
    return ShardRange{0, header_.numEpochs};
}

void
TraceReader::readShard(
    std::size_t shard,
    const std::function<void(std::size_t epoch,
                             std::vector<noc::EpochCell> &&cells)>
        &sink) const
{
    panicIf(shard >= numShards(), "shard index out of range");
    ShardRange range = shardRange(shard);
    std::unique_ptr<LineScanner> scanner;
    if (sharded()) {
        scanner =
            std::make_unique<LineScanner>(shardFiles_[shard]);
        auto &sc = *scanner;
        if (!sc.next())
            sc.failTruncated("shard-header", "empty shard file");
        std::istringstream head(sc.line());
        std::string magic;
        int version = 0;
        std::size_t first = 0;
        head >> magic >> version >> first;
        if (head.fail() || magic != "mnoc-shard" || version != 1)
            sc.fail("shard-header",
                    "unrecognized shard header: " + sc.line());
        if (first != range.firstEpoch)
            sc.fail("shard-header",
                    "shard declares first epoch " +
                        std::to_string(first) +
                        ", index expects " +
                        std::to_string(range.firstEpoch));
    } else {
        scanner = std::make_unique<LineScanner>(
            path_, epochsOffset_, epochsLineno_);
    }
    std::vector<noc::EpochCell> cells;
    for (std::size_t e = 0; e < range.count; ++e) {
        parseEpochBlock(*scanner, header_.numNodes, cells);
        sink(range.firstEpoch + e, std::move(cells));
        cells = {};
    }
}

void
TraceReader::readMessageMatrix(CountMatrix &packets,
                               CountMatrix &flits)
{
    auto n = static_cast<std::size_t>(header_.numNodes);
    panicIf(packets.rows() != n || packets.cols() != n ||
                flits.rows() != n || flits.cols() != n,
            "message matrix size mismatch");
    // Epoch blocks sit ahead of the triplets; skip any the caller
    // has not consumed.
    std::vector<noc::EpochCell> discard;
    while (nextEpoch(discard)) {
    }
    std::vector<TraceMessage> batch;
    while (nextMessages(batch, kMessageBatch) > 0) {
        for (const TraceMessage &msg : batch) {
            packets(static_cast<std::size_t>(msg.src),
                    static_cast<std::size_t>(msg.dst)) = msg.packets;
            flits(static_cast<std::size_t>(msg.src),
                  static_cast<std::size_t>(msg.dst)) = msg.flits;
        }
    }
}

TraceShardWriter::TraceShardWriter(const std::string &dir,
                                   std::string workload,
                                   std::string network,
                                   int num_nodes,
                                   std::uint64_t messages_per_epoch,
                                   std::size_t epochs_per_shard)
    : dir_(dir), workload_(std::move(workload)),
      network_(std::move(network)), numNodes_(num_nodes),
      messagesPerEpoch_(messages_per_epoch),
      epochsPerShard_(epochs_per_shard)
{
    fatalIf(num_nodes <= 0, "shard writer needs a positive node "
                            "count");
    fatalIf(epochs_per_shard == 0,
            "shard writer needs a positive epochs-per-shard");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    fatalIf(static_cast<bool>(ec),
            "cannot create trace shard directory: " + dir_);
}

TraceShardWriter::~TraceShardWriter() = default;

void
TraceShardWriter::rollShard()
{
    if (shard_)
        shard_->close();
    std::string file = shardFileName(shardFiles_.size());
    shardFiles_.push_back(file);
    shardFirstEpoch_.push_back(numEpochs_);
    shardCounts_.push_back(0);
    shard_ = std::make_unique<FileWriter>(dir_ + "/" + file);
    shard_->stream() << "mnoc-shard 1 " << numEpochs_ << "\n";
}

void
TraceShardWriter::appendEpoch(
    const std::vector<noc::EpochCell> &cells)
{
    panicIf(finished_, "appendEpoch after finish");
    if (!shard_ || shardCounts_.back() == epochsPerShard_)
        rollShard();
    auto &out = shard_->stream();
    out << "epoch " << cells.size() << "\n";
    for (const noc::EpochCell &cell : cells) {
        fatalIf(cell.src < 0 || cell.src >= numNodes_ ||
                    cell.dst < 0 || cell.dst >= numNodes_,
                "epoch cell endpoint out of range");
        out << cell.src << " " << cell.dst << " " << cell.packets
            << " " << cell.flits << "\n";
    }
    ++shardCounts_.back();
    ++numEpochs_;
}

void
TraceShardWriter::finish(noc::Tick total_ticks,
                         const CountMatrix &packets,
                         const CountMatrix &flits,
                         const RunManifest &manifest)
{
    panicIf(finished_, "finish called twice");
    finished_ = true;
    if (shard_) {
        shard_->close();
        shard_.reset();
    }
    auto n = static_cast<std::size_t>(numNodes_);
    fatalIf(packets.rows() != n || packets.cols() != n ||
                flits.rows() != n || flits.cols() != n,
            "message matrix size mismatch");

    const std::string triplet_file = "triplets.mshard";
    {
        FileWriter writer(dir_ + "/" + triplet_file);
        auto &out = writer.stream();
        out << "mnoc-triplets 1\n";
        for (std::size_t s = 0; s < n; ++s) {
            for (std::size_t d = 0; d < n; ++d) {
                if (packets(s, d) == 0 && flits(s, d) == 0)
                    continue;
                out << s << " " << d << " " << packets(s, d) << " "
                    << flits(s, d) << "\n";
            }
        }
        writer.close();
    }

    FileWriter writer(dir_ + "/" + kIndexFile);
    auto &out = writer.stream();
    out << "mnoc-trace-shards 1\n";
    out << workload_ << "\n" << network_ << "\n";
    out << numNodes_ << " " << total_ticks << "\n";
    auto lines = manifestLines(manifest);
    out << "manifest " << lines.size() << "\n";
    for (const auto &line : lines)
        out << line << "\n";
    out << "epochs " << numEpochs_ << " " << messagesPerEpoch_
        << "\n";
    out << "shards " << shardFiles_.size() << "\n";
    for (std::size_t s = 0; s < shardFiles_.size(); ++s)
        out << "shard " << shardFiles_[s] << " "
            << shardFirstEpoch_[s] << " " << shardCounts_[s] << "\n";
    out << "triplets " << triplet_file << "\n";
    writer.close();
    MetricsRegistry::global().counter("trace.shard_saves").add();
}

} // namespace mnoc::sim
