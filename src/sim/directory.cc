#include "sim/directory.hh"

namespace mnoc::sim {

void
Directory::checkInvariants(std::uint64_t line) const
{
    const DirEntry *e = find(line);
    if (e == nullptr)
        return;
    switch (e->state) {
      case DirState::Invalid:
        panicIf(!e->sharers.empty(), "Invalid line has sharers");
        break;
      case DirState::Shared:
        panicIf(e->sharers.empty(), "Shared line has no sharers");
        panicIf(e->owner != -1, "Shared line has an owner");
        break;
      case DirState::Owned:
        panicIf(e->owner < 0, "Owned line lacks an owner");
        panicIf(!e->sharers.contains(e->owner),
                "owner missing from sharer set");
        panicIf(e->sharers.count() < 2,
                "Owned line should have other sharers");
        break;
      case DirState::Modified:
        panicIf(e->owner < 0, "Modified line lacks an owner");
        panicIf(e->sharers.count() != 1 ||
                !e->sharers.contains(e->owner),
                "Modified line must have exactly the owner cached");
        break;
    }
}

} // namespace mnoc::sim
