/**
 * @file
 * Saving and loading captured communication traces, so expensive
 * simulations can be reused across tools.
 */

#ifndef MNOC_SIM_TRACE_HH
#define MNOC_SIM_TRACE_HH

#include <string>

#include "sim/simulator.hh"

namespace mnoc::sim {

/** The trace fields the power models consume. */
struct Trace
{
    std::string workloadName;
    std::string networkName;
    noc::Tick totalTicks = 0;
    CountMatrix packets;
    CountMatrix flits;
};

/** Extract the trace from a simulation result. */
Trace toTrace(const SimulationResult &result);

/**
 * Write @p trace to @p path in a line-oriented text format.
 * @throws FatalError when the file cannot be written.
 */
void saveTrace(const std::string &path, const Trace &trace);

/**
 * Read a trace previously written by saveTrace().
 * @throws FatalError on malformed input.
 */
Trace loadTrace(const std::string &path);

/**
 * Re-express a thread-granularity trace (captured with the identity
 * mapping) in core coordinates under @p thread_to_core: traffic
 * between threads s and d becomes traffic between their cores.
 */
Trace mapTrace(const Trace &trace,
               const std::vector<int> &thread_to_core);

} // namespace mnoc::sim

#endif // MNOC_SIM_TRACE_HH
