/**
 * @file
 * Saving and loading captured communication traces, so expensive
 * simulations can be reused across tools.
 *
 * The on-disk formats -- single-file "mnoc-trace 1|2|3" and the
 * sharded streaming layout "mnoc-trace-shards 1" -- are specified
 * normatively, byte by byte, in docs/TRACE_FORMAT.md; this header
 * only summarizes them.  Version 2 files carry a manifest block;
 * version 3 (written only when the trace carries epoch buckets for
 * the energy-attribution ledger, so ledger-free traces stay
 * byte-identical to version 2) inserts an epochs block between the
 * manifest and the sparse triplets.
 *
 * These whole-file helpers are a thin layer over the streaming
 * reader/writer in sim/trace_stream.hh; consumers that must stay
 * bounded in memory pull epoch and message batches from a
 * TraceReader directly instead of materializing a Trace.
 *
 * loadTrace() is strict: a truncated or garbled record is a fatal
 * error naming the file, line, record kind, and byte offset, never a
 * silently shortened matrix, and saveTrace() verifies the stream
 * after flushing so a full disk cannot truncate a trace quietly.
 */

#ifndef MNOC_SIM_TRACE_HH
#define MNOC_SIM_TRACE_HH

#include <string>

#include "common/manifest.hh"
#include "sim/simulator.hh"

namespace mnoc::sim {

/** The trace fields the power models consume. */
struct Trace
{
    std::string workloadName;
    std::string networkName;
    noc::Tick totalTicks = 0;
    CountMatrix packets;
    CountMatrix flits;
    /** Provenance of the run that captured the trace; embedded in
     *  the file so the experiment can be re-run from it alone. */
    RunManifest manifest;
    /** Per-epoch traffic buckets for the energy-attribution ledger;
     *  empty unless the run was captured with MNOC_LEDGER on. */
    noc::EpochTraffic epochs;
};

/** Extract the trace from a simulation result, stamping the current
 *  run manifest (seed, git SHA, MNOC_* knobs, config digest). */
Trace toTrace(const SimulationResult &result);

/**
 * Write @p trace to @p path in a line-oriented text format.
 * @throws FatalError when the file cannot be written or the stream
 *         reports an error after flushing (disk full, permissions).
 */
void saveTrace(const std::string &path, const Trace &trace);

/**
 * Write @p trace to @p dir in the sharded streaming layout
 * (docs/TRACE_FORMAT.md): an index file, epoch shard files of
 * @p epochs_per_shard epochs each, and a triplet file.  Sharded
 * traces load through loadTrace()/TraceReader like single files, and
 * their epoch shards can be consumed in parallel.
 */
void saveShardedTrace(const std::string &dir, const Trace &trace,
                      std::size_t epochs_per_shard = 256);

/**
 * Read a trace previously written by saveTrace() -- or a sharded
 * trace directory written by saveShardedTrace()/TraceShardWriter.
 * @throws FatalError on malformed input, with the offending file and
 *         line in the message; clean end-of-file is the only
 *         accepted termination.
 */
Trace loadTrace(const std::string &path);

/**
 * Validate that @p thread_to_core is a permutation of [0, @p n);
 * fatal otherwise.  Two threads on one core would silently merge
 * traffic rows, which is never a valid QAP assignment.
 */
void checkCoreMapping(const std::vector<int> &thread_to_core, int n);

/**
 * Re-express one epoch's cells in core coordinates under
 * @p thread_to_core (already validated) and re-sort them into the
 * canonical (src, dst) order.  The per-epoch kernel of mapTrace(),
 * exposed so streamed consumers can map epochs one batch at a time.
 */
std::vector<noc::EpochCell>
mapEpochCells(const std::vector<noc::EpochCell> &cells,
              const std::vector<int> &thread_to_core);

/**
 * Re-express a thread-granularity trace (captured with the identity
 * mapping) in core coordinates under @p thread_to_core: traffic
 * between threads s and d becomes traffic between their cores.
 * @throws FatalError unless @p thread_to_core is a permutation of
 *         [0, n) -- two threads on one core would silently merge
 *         traffic rows, which is never a valid QAP assignment.
 */
Trace mapTrace(const Trace &trace,
               const std::vector<int> &thread_to_core);

} // namespace mnoc::sim

#endif // MNOC_SIM_TRACE_HH
