/**
 * @file
 * Saving and loading captured communication traces, so expensive
 * simulations can be reused across tools.
 *
 * Format "mnoc-trace 2" (version 1 files, which lack the manifest
 * block, still load):
 *
 *   mnoc-trace 2
 *   <workload name>
 *   <network name>
 *   <n> <total ticks>
 *   manifest <k>
 *   ...k provenance lines (common/manifest.hh)...
 *   <src> <dst> <packets> <flits>     (sparse triplets)
 *
 * Version 3 (written only when the trace carries epoch buckets for
 * the energy-attribution ledger, so ledger-free traces stay
 * byte-identical to version 2) inserts an epochs block between the
 * manifest and the triplets:
 *
 *   epochs <e> <messages per epoch>
 *   epoch <c>                         (e times)
 *   <src> <dst> <packets> <flits>     (c cells, sorted by src, dst)
 *
 * loadTrace() is strict: a truncated or garbled triplet line is a
 * fatal error naming the file and line, never a silently shortened
 * matrix, and saveTrace() verifies the stream after flushing so a
 * full disk cannot truncate a trace quietly.
 */

#ifndef MNOC_SIM_TRACE_HH
#define MNOC_SIM_TRACE_HH

#include <string>

#include "common/manifest.hh"
#include "sim/simulator.hh"

namespace mnoc::sim {

/** The trace fields the power models consume. */
struct Trace
{
    std::string workloadName;
    std::string networkName;
    noc::Tick totalTicks = 0;
    CountMatrix packets;
    CountMatrix flits;
    /** Provenance of the run that captured the trace; embedded in
     *  the file so the experiment can be re-run from it alone. */
    RunManifest manifest;
    /** Per-epoch traffic buckets for the energy-attribution ledger;
     *  empty unless the run was captured with MNOC_LEDGER on. */
    noc::EpochTraffic epochs;
};

/** Extract the trace from a simulation result, stamping the current
 *  run manifest (seed, git SHA, MNOC_* knobs, config digest). */
Trace toTrace(const SimulationResult &result);

/**
 * Write @p trace to @p path in a line-oriented text format.
 * @throws FatalError when the file cannot be written or the stream
 *         reports an error after flushing (disk full, permissions).
 */
void saveTrace(const std::string &path, const Trace &trace);

/**
 * Read a trace previously written by saveTrace().
 * @throws FatalError on malformed input, with the offending file and
 *         line in the message; clean end-of-file is the only
 *         accepted termination.
 */
Trace loadTrace(const std::string &path);

/**
 * Re-express a thread-granularity trace (captured with the identity
 * mapping) in core coordinates under @p thread_to_core: traffic
 * between threads s and d becomes traffic between their cores.
 * @throws FatalError unless @p thread_to_core is a permutation of
 *         [0, n) -- two threads on one core would silently merge
 *         traffic rows, which is never a valid QAP assignment.
 */
Trace mapTrace(const Trace &trace,
               const std::vector<int> &thread_to_core);

} // namespace mnoc::sim

#endif // MNOC_SIM_TRACE_HH
