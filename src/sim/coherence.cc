#include "sim/coherence.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/log.hh"

namespace mnoc::sim {

using noc::PacketClass;
using noc::Tick;

CoherenceController::CoherenceController(int num_cores,
                                         const MemoryParams &params,
                                         noc::Network &network,
                                         noc::TrafficRecorder &recorder)
    : numCores_(num_cores), params_(params), network_(network),
      recorder_(recorder), directory_(num_cores)
{
    fatalIf(num_cores < 1, "need at least one core");
    homeMap_.resize(num_cores);
    for (int i = 0; i < num_cores; ++i)
        homeMap_[i] = i;
    fatalIf(network.numNodes() != num_cores,
            "network size must match core count");
    l1_.reserve(num_cores);
    l2_.reserve(num_cores);
    for (int i = 0; i < num_cores; ++i) {
        l1_.emplace_back(params_.l1);
        l2_.emplace_back(params_.l2);
    }
}

std::optional<LineState>
CoherenceController::cacheState(int core, std::uint64_t line) const
{
    return l2_[core].peek(line);
}

void
CoherenceController::setHomeMap(std::vector<int> thread_to_core)
{
    fatalIf(static_cast<int>(thread_to_core.size()) != numCores_,
            "home map must cover every thread");
    homeMap_ = std::move(thread_to_core);
}

int
CoherenceController::homeCoreOf(std::uint64_t addr) const
{
    return homeMap_[homeOf(addr, numCores_)];
}

Tick
CoherenceController::send(int src, int dst, PacketClass cls, Tick when)
{
    if (src == dst)
        return when; // local, no network traversal
    noc::Packet pkt = noc::makePacket(src, dst, cls);
    Tick arrival = network_.deliver(pkt, when);
    recorder_.record(pkt);
    ++stats_.packetsSent;
    stats_.packetLatencySum += arrival - when;
    return arrival;
}

noc::Tick
CoherenceController::access(int core, const MemOp &op, Tick now)
{
    panicIf(core < 0 || core >= numCores_, "core index out of range");
    ++stats_.accesses;
    std::uint64_t line = lineOf(op.addr);

    Tick t = now + params_.l1Cycles;
    auto l1_state = l1_[core].lookup(line);
    if (l1_state) {
        if (!op.write || *l1_state == LineState::Modified) {
            ++stats_.l1Hits;
            return t;
        }
        // Write hit on a clean/owned copy: needs exclusivity.
        return handleUpgrade(core, line, t);
    }

    t += params_.l2Cycles;
    auto l2_state = l2_[core].lookup(line);
    if (l2_state) {
        // L1 refill from L2 (inclusive hierarchy; silent L1 victim).
        l1_[core].insert(line, *l2_state);
        if (!op.write || *l2_state == LineState::Modified) {
            ++stats_.l2Hits;
            return t + params_.fillCycles;
        }
        return handleUpgrade(core, line, t);
    }

    return handleMiss(core, line, op.write, t);
}

Tick
CoherenceController::handleMiss(int core, std::uint64_t line, bool write,
                                Tick now)
{
    int home = homeCoreOf(line << lineShift);
    DirEntry &e = directory_.entry(line);
    panicIf(e.sharers.contains(core),
            "missing core is still registered as a sharer");

    // Request travels to the home directory.
    Tick t_dir = send(core, home, PacketClass::Control, now) +
                 params_.dirCycles;

    Tick data_at = 0;
    Tick acks_at = t_dir;

    if (write) {
        ++stats_.getx;
        switch (e.state) {
          case DirState::Invalid:
            ++stats_.memoryFetches;
            data_at = send(home, core, PacketClass::Data,
                           t_dir + params_.memCycles);
            break;
          case DirState::Shared: {
            // Invalidate every sharer; data comes from memory.
            acks_at = std::max(
                acks_at, invalidateSharers(e.sharers.members(), -1,
                                           home, core, line, t_dir));
            ++stats_.memoryFetches;
            data_at = send(home, core, PacketClass::Data,
                           t_dir + params_.memCycles);
            break;
          }
          case DirState::Owned:
          case DirState::Modified: {
            int owner = e.owner;
            // Forward-invalidate the owner, who supplies the data.
            Tick fwd_at = send(home, owner, PacketClass::Control, t_dir);
            invalidateAt(owner, line);
            ++stats_.invalidations;
            ++stats_.cacheToCache;
            data_at = send(owner, core, PacketClass::Data,
                           fwd_at + params_.l2Cycles);
            // Plain sharers (Owned state) are invalidated too.
            acks_at = std::max(
                acks_at, invalidateSharers(e.sharers.members(), owner,
                                           home, core, line, t_dir));
            break;
          }
        }
        e.state = DirState::Modified;
        e.owner = core;
        e.sharers.clear();
        e.sharers.add(core);
        fill(core, line, LineState::Modified, std::max(data_at, acks_at));
    } else {
        ++stats_.gets;
        switch (e.state) {
          case DirState::Invalid:
            ++stats_.memoryFetches;
            data_at = send(home, core, PacketClass::Data,
                           t_dir + params_.memCycles);
            e.state = DirState::Shared;
            break;
          case DirState::Shared:
            ++stats_.memoryFetches;
            data_at = send(home, core, PacketClass::Data,
                           t_dir + params_.memCycles);
            break;
          case DirState::Owned:
          case DirState::Modified: {
            int owner = e.owner;
            Tick fwd_at = send(home, owner, PacketClass::Control, t_dir);
            ++stats_.cacheToCache;
            data_at = send(owner, core, PacketClass::Data,
                           fwd_at + params_.l2Cycles);
            if (e.state == DirState::Modified) {
                e.state = DirState::Owned;
                bool ok = l2_[owner].setState(line, LineState::Owned);
                panicIf(!ok, "owner lost its line");
                l1_[owner].setState(line, LineState::Owned);
            }
            break;
          }
        }
        e.sharers.add(core);
        fill(core, line, LineState::Shared, data_at);
    }

    directory_.checkInvariants(line);
    return std::max(data_at, acks_at) + params_.fillCycles;
}

Tick
CoherenceController::handleUpgrade(int core, std::uint64_t line,
                                   Tick now)
{
    ++stats_.upgrades;
    int home = homeCoreOf(line << lineShift);
    DirEntry &e = directory_.entry(line);
    panicIf(!e.sharers.contains(core),
            "upgrading core is not a registered sharer");
    // Directory-Modified with this core as owner happens when sharer
    // evictions collapsed an Owned line: the cache still holds Owned and
    // must still request exclusivity, but nobody needs invalidating.
    panicIf(e.state == DirState::Invalid,
            "upgrade on a directory-Invalid line");
    panicIf(e.state == DirState::Modified && e.owner != core,
            "upgrade on a line Modified elsewhere");

    Tick t_dir = send(core, home, PacketClass::Control, now) +
                 params_.dirCycles;
    Tick done = t_dir;

    // Invalidate every other cached copy (including a foreign owner;
    // the upgrader's copy is current because owners forward on reads).
    done = std::max(done, invalidateSharers(e.sharers.members(), core,
                                            home, core, line, t_dir));
    // Home acknowledges the new ownership.
    done = std::max(done, send(home, core, PacketClass::Control, t_dir));

    e.state = DirState::Modified;
    e.owner = core;
    e.sharers.clear();
    e.sharers.add(core);

    bool ok = l2_[core].setState(line, LineState::Modified);
    panicIf(!ok, "upgrading core lost its L2 line");
    l1_[core].setState(line, LineState::Modified);

    directory_.checkInvariants(line);
    return done;
}

void
CoherenceController::fill(int core, std::uint64_t line, LineState state,
                          Tick now)
{
    auto victim = l2_[core].insert(line, state);
    if (victim) {
        l1_[core].invalidate(victim->line); // inclusion
        evictFromDirectory(core, victim->line, victim->state, now);
    }
    l1_[core].insert(line, state); // L1 victims are silent (still in L2)
}

void
CoherenceController::evictFromDirectory(int core, std::uint64_t line,
                                        LineState state, Tick now)
{
    DirEntry &e = directory_.entry(line);
    panicIf(!e.sharers.contains(core),
            "evicting core is not a registered sharer");
    e.sharers.remove(core);

    if (isDirty(state)) {
        panicIf(e.owner != core, "dirty line evicted by a non-owner");
        // Writeback to the home's memory; does not block the core.
        int home = homeCoreOf(line << lineShift);
        send(core, home, PacketClass::Data, now);
        ++stats_.writebacks;
        e.owner = -1;
        e.state = e.sharers.empty() ? DirState::Invalid
                                    : DirState::Shared;
    } else {
        if (e.sharers.empty()) {
            e.state = DirState::Invalid;
            e.owner = -1;
        } else if (e.state == DirState::Owned &&
                   e.sharers.count() == 1) {
            // Only the owner remains.
            e.state = DirState::Modified;
        }
    }
    directory_.checkInvariants(line);
}

void
CoherenceController::invalidateAt(int core, std::uint64_t line)
{
    l1_[core].invalidate(line);
    l2_[core].invalidate(line);
}

Tick
CoherenceController::invalidateSharers(const std::vector<int> &sharers,
                                       int except, int home,
                                       int requester,
                                       std::uint64_t line, Tick when)
{
    std::vector<int> targets;
    for (int s : sharers)
        if (s != except)
            targets.push_back(s);
    if (targets.empty())
        return when;

    Tick acks_at = when;
    if (params_.multicastInvalidations && targets.size() >= 2) {
        // One broadcast-capable packet reaches every sharer; charge
        // the farthest target on the serpentine for timing and power.
        int far = targets.front();
        for (int s : targets)
            if (std::abs(s - home) > std::abs(far - home))
                far = s;
        Tick inv_at = send(home, far, PacketClass::Control, when);
        ++stats_.multicastInvs;
        for (int s : targets) {
            invalidateAt(s, line);
            ++stats_.invalidations;
            acks_at = std::max(
                acks_at,
                send(s, requester, PacketClass::Control, inv_at + 1));
        }
    } else {
        for (int s : targets) {
            Tick inv_at = send(home, s, PacketClass::Control, when);
            invalidateAt(s, line);
            ++stats_.invalidations;
            acks_at = std::max(
                acks_at,
                send(s, requester, PacketClass::Control, inv_at + 1));
        }
    }
    return acks_at;
}

} // namespace mnoc::sim
