/**
 * @file
 * Event-driven multicore simulator: in-order cores pull operations from
 * a workload and block on the memory system (our Graphite substitute,
 * paper Section 5.1).
 */

#ifndef MNOC_SIM_SIMULATOR_HH
#define MNOC_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>

#include "common/matrix.hh"
#include "noc/network.hh"
#include "sim/coherence.hh"
#include "sim/workload.hh"

namespace mnoc::sim {

/** Simulator configuration. */
struct SimConfig
{
    int numCores = 256;
    MemoryParams memory;
    /**
     * Outstanding-access buffer depth: stores and non-blocking
     * (prefetched) reads retire into the buffer and overlap with
     * execution; a full buffer stalls until the oldest entry
     * completes.  Plain loads always block (in-order cores).  Depth 0
     * makes every access blocking.
     */
    int storeBufferDepth = 16;
    /**
     * thread_to_core mapping; empty means identity.  Thread t's
     * operations execute on core threadToCore[t], which is how QAP
     * thread mappings are applied to a run.
     */
    std::vector<int> threadToCore;
    /**
     * When set (and the ledger is enabled), sealed attribution
     * epochs are streamed into this sink as the run produces them --
     * e.g. straight into a TraceShardWriter -- instead of
     * accumulating in SimulationResult::epochs, so capture memory
     * stays bounded on arbitrarily long runs.  Cells arrive sorted
     * by (src, dst); the result's epoch list is then empty.
     */
    std::function<void(std::vector<noc::EpochCell> &&)> epochSink;
};

/** Results of one simulated run. */
struct SimulationResult
{
    /** End-to-end execution time in cycles. */
    noc::Tick totalTicks = 0;
    /** Per-(src core, dst core) packet counts. */
    CountMatrix packets;
    /** Per-(src core, dst core) flit counts. */
    CountMatrix flits;
    /** Coherence statistics. */
    CoherenceStats coherence;
    /** Mean network latency per packet, in cycles. */
    double avgPacketLatency = 0.0;
    /** Network name the run used. */
    std::string networkName;
    /** Workload name. */
    std::string workloadName;
    /** Workload seed the run used (recorded for provenance). */
    std::uint64_t seed = 0;
    /** Traffic bucketed into message-count windows; populated only
     *  when the energy-attribution ledger is enabled (MNOC_LEDGER),
     *  otherwise empty. */
    noc::EpochTraffic epochs;
};

/**
 * Run @p workload to completion over @p network.
 *
 * @param config Core count, cache parameters, thread mapping.
 * @param network Timing model (shared channel state is reset first).
 * @param workload Kernel to execute; reset with @p seed.
 * @param seed Workload seed.
 */
SimulationResult runSimulation(const SimConfig &config,
                               noc::Network &network,
                               Workload &workload,
                               std::uint64_t seed = 1);

} // namespace mnoc::sim

#endif // MNOC_SIM_SIMULATOR_HH
