/**
 * @file
 * Set-associative cache with LRU replacement and MOSI line states,
 * used for the private L1 and L2 of each simulated core
 * (paper Table 2: 32 KB L1I/L1D, 512 KB L2).
 */

#ifndef MNOC_SIM_CACHE_HH
#define MNOC_SIM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/memop.hh"

namespace mnoc::sim {

/** MOSI state of a cached line (Invalid lines are simply absent). */
enum class LineState : std::uint8_t
{
    Shared,   ///< clean, possibly multiple copies
    Owned,    ///< dirty, responsible for writeback, sharers may exist
    Modified, ///< dirty, exclusive
};

/** True for states that must write back on eviction. */
inline bool
isDirty(LineState state)
{
    return state != LineState::Shared;
}

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t associativity = 4;

    std::uint32_t
    numSets() const
    {
        return sizeBytes / ((1u << lineShift) * associativity);
    }
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    std::uint64_t line;
    LineState state;
};

/**
 * One level of private cache.  All operations are keyed by cache-line
 * index (addr >> lineShift).
 */
class Cache
{
  public:
    explicit Cache(const CacheGeometry &geometry);

    /**
     * Look up @p line and refresh its LRU position.
     * @return The line's state, or nullopt on miss.
     */
    std::optional<LineState> lookup(std::uint64_t line);

    /** Peek at a line's state without touching LRU. */
    std::optional<LineState> peek(std::uint64_t line) const;

    /**
     * Insert @p line with @p state, evicting the set's LRU entry when
     * the set is full.
     *
     * @return The evicted line, if any.
     */
    std::optional<Eviction> insert(std::uint64_t line, LineState state);

    /**
     * Change an existing line's state.
     * @return false when the line is not present.
     */
    bool setState(std::uint64_t line, LineState state);

    /** Drop @p line if present; @return its state if it was present. */
    std::optional<LineState> invalidate(std::uint64_t line);

    /** Number of resident lines (for tests). */
    std::size_t occupancy() const;

    const CacheGeometry &geometry() const { return geometry_; }

  private:
    struct Entry
    {
        std::uint64_t line = 0;
        LineState state = LineState::Shared;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setIndex(std::uint64_t line) const;

    CacheGeometry geometry_;
    std::uint32_t numSets_;
    std::vector<Entry> entries_; // numSets_ * associativity
    std::uint64_t useCounter_ = 0;
};

} // namespace mnoc::sim

#endif // MNOC_SIM_CACHE_HH
