#include "sim/simulator.hh"

#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "common/journal.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"

namespace mnoc::sim {

namespace {

/** Journal one sealed traffic epoch (cell count plus packet/flit
 *  totals).  Epochs seal in delivery order on the capture path, so
 *  the record sequence is deterministic. */
void
journalEpochBoundary(std::size_t epoch,
                     const std::vector<noc::EpochCell> &cells)
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    for (const noc::EpochCell &cell : cells) {
        packets += cell.packets;
        flits += cell.flits;
    }
    JournalRecord rec(JournalKind::EpochBoundary, epoch);
    rec.addInt(static_cast<std::int64_t>(cells.size()))
        .addInt(static_cast<std::int64_t>(packets))
        .addInt(static_cast<std::int64_t>(flits));
    Journal::global().record(rec);
}

} // namespace

SimulationResult
runSimulation(const SimConfig &config, noc::Network &network,
              Workload &workload, std::uint64_t seed)
{
    TraceSpan span("simulate:" + workload.name(), "sim");
    int n = config.numCores;
    fatalIf(n < 1, "need at least one core");
    fatalIf(network.numNodes() != n,
            "network size must match the core count");

    std::vector<int> thread_to_core = config.threadToCore;
    if (thread_to_core.empty()) {
        thread_to_core.resize(n);
        for (int i = 0; i < n; ++i)
            thread_to_core[i] = i;
    }
    fatalIf(static_cast<int>(thread_to_core.size()) != n,
            "thread mapping must cover every thread");
    {
        std::vector<bool> used(n, false);
        for (int c : thread_to_core) {
            fatalIf(c < 0 || c >= n, "mapped core out of range");
            fatalIf(used[c], "thread mapping is not a permutation");
            used[c] = true;
        }
    }

    network.reset();
    noc::TrafficRecorder recorder(n);
    // Epoch bucketing feeds the energy-attribution ledger; one
    // branch per packet when MNOC_LEDGER is off.
    if (ledgerEnabled()) {
        recorder.enableEpochs(ledgerEpochMessages());
        if (config.epochSink) {
            if (journalEnabled()) {
                auto inner = config.epochSink;
                recorder.setEpochSink(
                    [inner, epoch = std::size_t(0)](
                        std::vector<noc::EpochCell> &&cells) mutable {
                        journalEpochBoundary(epoch++, cells);
                        inner(std::move(cells));
                    });
            } else {
                recorder.setEpochSink(config.epochSink);
            }
        }
    }
    CoherenceController coherence(n, config.memory, network, recorder);
    coherence.setHomeMap(thread_to_core);
    workload.reset(n, seed);

    // Min-heap of (next ready tick, thread).
    using Event = std::pair<noc::Tick, int>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    for (int t = 0; t < n; ++t)
        queue.emplace(0, t);

    // Per-thread outstanding store completions (store buffer).
    std::vector<std::deque<noc::Tick>> stores(n);

    noc::Tick last_tick = 0;
    while (!queue.empty()) {
        auto [tick, thread] = queue.top();
        queue.pop();

        MemOp op;
        if (!workload.next(thread, op))
            continue; // thread finished
        int core = thread_to_core[thread];
        noc::Tick issue = tick + op.computeCycles;

        noc::Tick ready;
        if ((op.write || op.nonBlocking) &&
            config.storeBufferDepth > 0) {
            // Retire drained stores, then stall on a full buffer.
            auto &buf = stores[thread];
            while (!buf.empty() && buf.front() <= issue)
                buf.pop_front();
            if (static_cast<int>(buf.size()) >=
                config.storeBufferDepth) {
                issue = std::max(issue, buf.front());
                buf.pop_front();
            }
            noc::Tick done = coherence.access(core, op, issue);
            buf.push_back(done);
            last_tick = std::max(last_tick, done);
            ready = issue + 1; // the core moves on immediately
        } else {
            ready = coherence.access(core, op, issue);
            last_tick = std::max(last_tick, ready);
        }
        queue.emplace(ready, thread);
    }

    SimulationResult result;
    result.totalTicks = last_tick;
    result.packets = recorder.packets();
    result.flits = recorder.flits();
    result.coherence = coherence.stats();
    result.avgPacketLatency =
        result.coherence.packetsSent
            ? static_cast<double>(result.coherence.packetLatencySum) /
                  static_cast<double>(result.coherence.packetsSent)
            : 0.0;
    result.networkName = network.name();
    result.workloadName = workload.name();
    result.seed = seed;
    result.epochs = recorder.takeEpochs();
    if (journalEnabled() && !config.epochSink)
        for (std::size_t e = 0; e < result.epochs.epochs.size(); ++e)
            journalEpochBoundary(e, result.epochs.epochs[e]);

    // Deterministic observability: pure tallies of the (already
    // deterministic) run, safe under any thread interleaving.
    auto &metrics = MetricsRegistry::global();
    metrics.counter("sim.runs").add();
    metrics.counter("sim.ops").add(result.coherence.accesses);
    metrics.counter("sim.packets").add(result.coherence.packetsSent);
    metrics
        .histogram("sim.avg_packet_latency_cycles",
                   {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0})
        .observe(result.avgPacketLatency);
    return result;
}

} // namespace mnoc::sim
