/**
 * @file
 * MOSI directory state, distributed across cores by the owner bits of
 * each address (paper Section 5.1 uses Graphite's directory-based MOSI
 * protocol).
 */

#ifndef MNOC_SIM_DIRECTORY_HH
#define MNOC_SIM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hh"

namespace mnoc::sim {

/** Compact bitset over core indices. */
class SharerSet
{
  public:
    explicit SharerSet(int num_cores = 0)
        : numCores_(num_cores),
          words_((static_cast<std::size_t>(num_cores) + 63) / 64, 0)
    {}

    void
    add(int core)
    {
        check(core);
        words_[core >> 6] |= 1ULL << (core & 63);
    }

    void
    remove(int core)
    {
        check(core);
        words_[core >> 6] &= ~(1ULL << (core & 63));
    }

    bool
    contains(int core) const
    {
        check(core);
        return (words_[core >> 6] >> (core & 63)) & 1ULL;
    }

    int
    count() const
    {
        int total = 0;
        for (std::uint64_t w : words_)
            total += __builtin_popcountll(w);
        return total;
    }

    bool empty() const { return count() == 0; }

    void
    clear()
    {
        for (std::uint64_t &w : words_)
            w = 0;
    }

    /** All set core indices, ascending. */
    std::vector<int>
    members() const
    {
        std::vector<int> out;
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                int bit = __builtin_ctzll(w);
                out.push_back(static_cast<int>(wi * 64) + bit);
                w &= w - 1;
            }
        }
        return out;
    }

  private:
    void
    check(int core) const
    {
        panicIf(core < 0 || core >= numCores_,
                "sharer core index out of range");
    }

    int numCores_;
    std::vector<std::uint64_t> words_;
};

/** Directory-visible state of a line. */
enum class DirState : std::uint8_t
{
    Invalid,  ///< no cached copies
    Shared,   ///< one or more clean copies, memory up to date
    Owned,    ///< dirty owner plus zero or more sharers
    Modified, ///< single dirty owner
};

/** Directory entry for one cache line. */
struct DirEntry
{
    DirState state = DirState::Invalid;
    int owner = -1;
    SharerSet sharers;

    explicit DirEntry(int num_cores = 0) : sharers(num_cores) {}
};

/**
 * The full distributed directory.  Entries live in one map; the home
 * core of a line (for network purposes) is derived from the address by
 * the coherence controller.
 *
 * The map is deliberately lookup-only: no API iterates it, so its
 * unspecified iteration order can never reach stats or serialization
 * (the mnoc-analyze unordered-iteration rule keeps it that way; any
 * future traversal must go through a sorted view).
 */
class Directory
{
  public:
    explicit Directory(int num_cores) : numCores_(num_cores) {}

    /** Fetch or create the entry for @p line. */
    DirEntry &
    entry(std::uint64_t line)
    {
        auto it = map_.find(line);
        if (it == map_.end())
            it = map_.emplace(line, DirEntry(numCores_)).first;
        return it->second;
    }

    /** Entry lookup without creation (for tests/invariant checks). */
    const DirEntry *
    find(std::uint64_t line) const
    {
        auto it = map_.find(line);
        return it == map_.end() ? nullptr : &it->second;
    }

    std::size_t numEntries() const { return map_.size(); }
    int numCores() const { return numCores_; }

    /**
     * Validate the entry invariants for @p line: owner consistency and
     * sharer-count agreement with the state.  Panics on violation.
     */
    void checkInvariants(std::uint64_t line) const;

  private:
    int numCores_;
    std::unordered_map<std::uint64_t, DirEntry> map_;
};

} // namespace mnoc::sim

#endif // MNOC_SIM_DIRECTORY_HH
