/**
 * @file
 * MOSI directory coherence controller.
 *
 * Models the full protocol traffic of a private-L1/L2, directory-home
 * organization: GETS/GETX requests, cache-to-cache forwards,
 * invalidations and acks, upgrades, and dirty writebacks.  Directory
 * transactions are atomic (no transient states), a simplification that
 * preserves packet counts and approximate timing -- the quantities the
 * power topologies consume -- while keeping the protocol race-free by
 * construction.  Directory and cache states are kept exactly
 * synchronized and checked with invariant panics.
 */

#ifndef MNOC_SIM_COHERENCE_HH
#define MNOC_SIM_COHERENCE_HH

#include <memory>
#include <vector>

#include "noc/network.hh"
#include "sim/cache.hh"
#include "sim/directory.hh"
#include "sim/memop.hh"

namespace mnoc::sim {

/** Latency and geometry parameters of the memory hierarchy. */
struct MemoryParams
{
    CacheGeometry l1{32 * 1024, 4};
    CacheGeometry l2{512 * 1024, 8};
    int l1Cycles = 1;
    int l2Cycles = 8;
    int dirCycles = 5;
    int memCycles = 100;
    int fillCycles = 1;
    /**
     * Use the SWMR crossbar's broadcast capability for invalidations
     * (paper Section 7, future work): the home sends one invalidation
     * that reaches every sharer -- modeled as a single packet to the
     * farthest sharer on the serpentine -- instead of one unicast per
     * sharer.  Acks remain unicast.
     */
    bool multicastInvalidations = false;
};

/** Aggregate coherence statistics. */
struct CoherenceStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t gets = 0;
    std::uint64_t getx = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t multicastInvs = 0;
    std::uint64_t cacheToCache = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t memoryFetches = 0;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetLatencySum = 0;
};

/**
 * The coherence engine: owns the private caches of every core and the
 * distributed directory, and turns memory operations into network
 * packets and completion times.
 */
class CoherenceController
{
  public:
    /**
     * @param num_cores Number of cores (threads map 1:1 by default).
     * @param params Cache/latency parameters.
     * @param network Timing model packets are injected into.
     * @param recorder Traffic matrix capture.
     */
    CoherenceController(int num_cores, const MemoryParams &params,
                        noc::Network &network,
                        noc::TrafficRecorder &recorder);

    /**
     * Set the thread-to-core mapping used to locate directory homes.
     * Addresses encode the *thread* that owns (first-touched) the data;
     * the home core is where that thread runs, so remapping threads
     * moves their data with them.
     */
    void setHomeMap(std::vector<int> thread_to_core);

    /**
     * Execute one memory operation for @p core issued at @p now.
     * @return The tick at which the core may proceed.
     */
    noc::Tick access(int core, const MemOp &op, noc::Tick now);

    const CoherenceStats &stats() const { return stats_; }
    int numCores() const { return numCores_; }

    /** Directory access for tests. */
    const Directory &directory() const { return directory_; }

    /** Cache state of @p line at @p core's L2 (tests). */
    std::optional<LineState> cacheState(int core,
                                        std::uint64_t line) const;

  private:
    /** Send one packet; returns its arrival tick. */
    noc::Tick send(int src, int dst, noc::PacketClass cls,
                   noc::Tick when);

    /** Full miss transaction (GETS/GETX) for @p core. */
    noc::Tick handleMiss(int core, std::uint64_t line, bool write,
                         noc::Tick now);

    /** Upgrade transaction: @p core holds a clean copy and writes. */
    noc::Tick handleUpgrade(int core, std::uint64_t line,
                            noc::Tick now);

    /** Insert @p line into @p core's L2+L1, handling the L2 victim. */
    void fill(int core, std::uint64_t line, LineState state,
              noc::Tick now);

    /** Directory-side handling of an L2 eviction. */
    void evictFromDirectory(int core, std::uint64_t line,
                            LineState state, noc::Tick now);

    /** Invalidate a line in a remote core's caches. */
    void invalidateAt(int core, std::uint64_t line);

    /**
     * Invalidate @p sharers (excluding @p except) and collect their
     * acks at @p requester; returns the tick of the last ack.  Uses a
     * single multicast packet when enabled, unicasts otherwise.
     */
    noc::Tick invalidateSharers(const std::vector<int> &sharers,
                                int except, int home, int requester,
                                std::uint64_t line, noc::Tick when);

    /** Home core for a line owned by thread encoded in @p addr. */
    int homeCoreOf(std::uint64_t addr) const;

    int numCores_;
    std::vector<int> homeMap_;
    MemoryParams params_;
    noc::Network &network_;
    noc::TrafficRecorder &recorder_;
    Directory directory_;
    std::vector<Cache> l1_;
    std::vector<Cache> l2_;
    CoherenceStats stats_;
};

} // namespace mnoc::sim

#endif // MNOC_SIM_COHERENCE_HH
