/**
 * @file
 * Streaming trace I/O: pull-based readers and incremental writers
 * over the on-disk trace formats specified in docs/TRACE_FORMAT.md.
 *
 * Whole-file loadTrace()/saveTrace() (sim/trace.hh) are re-layered on
 * top of this layer; consumers that must stay bounded in memory --
 * the streamed ledger build, `mnocpt stats/report/faults`, and the
 * bench harness -- pull epoch and message batches directly instead of
 * materializing a Trace.  Two layouts are supported:
 *
 *  - single-file traces ("mnoc-trace 1|2|3"), parsed line by line
 *    with a one-line lookahead, and
 *  - the sharded streaming layout ("mnoc-trace-shards 1"): a
 *    directory holding an index file, epoch shard files (contiguous
 *    epoch ranges), and a triplet file, so epoch shards can be parsed
 *    and consumed in parallel by independent pool tasks.
 *
 * The strict-diagnostics contract of the whole-file parser is
 * preserved verbatim: every malformed or truncated record is a fatal
 * error naming the file, line, record kind, and byte offset where the
 * damaged record starts.  All writing goes through the FileWriter
 * choke point (common/io.hh), so a full disk is a hard error, never a
 * silently truncated shard.
 */

#ifndef MNOC_SIM_TRACE_STREAM_HH
#define MNOC_SIM_TRACE_STREAM_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/io.hh"
#include "common/manifest.hh"
#include "common/matrix.hh"
#include "noc/network.hh"

namespace mnoc::sim {

/** One sparse traffic record: the triplet-section row of the trace
 *  formats, and the unit of a streamed message batch. */
struct TraceMessage
{
    int src = 0;
    int dst = 0;
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
};

/**
 * Everything a trace file declares ahead of its bulk data: identity,
 * dimensions, provenance, and the epoch-block geometry.  Available
 * immediately after constructing a TraceReader, before any epoch or
 * message has been pulled.
 */
struct TraceHeader
{
    /** Format version: 1-3 for single files, kShardedVersion for the
     *  sharded directory layout. */
    int version = 0;
    std::string workloadName;
    std::string networkName;
    int numNodes = 0;
    noc::Tick totalTicks = 0;
    RunManifest manifest;
    /** Epoch windows the trace carries (0 for version < 3). */
    std::size_t numEpochs = 0;
    /** Messages per attribution epoch (0 when there are none). */
    std::uint64_t messagesPerEpoch = 0;
};

/** TraceHeader::version of the sharded directory layout. */
constexpr int kShardedVersion = 4;

/** Default record count of a streamed message batch: large enough to
 *  amortize call overhead, small enough to stay cache-resident. */
constexpr std::size_t kMessageBatch = 4096;

/**
 * Line scanner with the byte-offset bookkeeping the strict trace
 * diagnostics are built on.  next() advances one line; lineOffset()
 * is where the current line starts (the end-of-file offset once
 * next() has returned false), which is exactly what a "<kind> record
 * at byte N" message must report for malformed and truncated records
 * respectively.
 */
class LineScanner
{
  public:
    /** Open @p path; fatal (naming the path) when that fails. */
    explicit LineScanner(const std::string &path);

    /** Re-open @p path and skip to byte @p offset / line @p lineno
     *  (shard fan-out: resume a parse mid-file). */
    LineScanner(const std::string &path, std::size_t offset,
                int lineno);

    /** Advance to the next line; false at end of file. */
    bool next();

    const std::string &line() const { return line_; }
    const std::string &path() const { return path_; }
    int lineno() const { return lineno_; }
    std::size_t lineOffset() const { return lineOffset_; }

    /** Fatal "path:line: why [kind record at byte N]" for the
     *  current line. */
    [[noreturn]] void fail(const std::string &kind,
                           const std::string &why) const;

    /** Same, for a truncation discovered when next() hit end of
     *  file: reports the line after the last one parsed and the
     *  end-of-file byte offset. */
    [[noreturn]] void failTruncated(const std::string &kind,
                                    const std::string &why) const;

    /** True when the underlying stream reported an I/O error. */
    bool bad() const { return in_.bad(); }

  private:
    std::string path_;
    std::ifstream in_;
    std::string line_;
    int lineno_ = 0;
    std::size_t lineOffset_ = 0;
    std::size_t offset_ = 0;
};

/**
 * Pull-based reader over a single-file or sharded trace.
 *
 * Construction parses the header (through the manifest and the
 * epochs-block header); nextEpoch() then yields epoch cell lists in
 * epoch order, and once those are drained nextMessages() yields
 * bounded batches of triplet records.  Peak memory is one epoch (or
 * one batch) regardless of trace size.
 *
 * For parallel fan-out over a sharded trace, numShards()/shardRange()
 * describe the epoch partition and readShard() parses one shard on
 * the calling thread with an independently opened stream, so pool
 * tasks can consume disjoint shards concurrently.  Single-file
 * traces expose their whole epoch block as shard 0.
 */
class TraceReader
{
  public:
    /** Open @p path: a trace file, or a sharded trace directory. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceHeader &header() const { return header_; }
    const std::string &path() const { return path_; }
    bool sharded() const { return header_.version == kShardedVersion; }

    /**
     * Parse the next epoch's cell list into @p cells (replacing its
     * contents); false once every epoch has been yielded.  Cells are
     * validated against the node count, and a short epoch block is a
     * fatal truncation diagnostic.
     */
    bool nextEpoch(std::vector<noc::EpochCell> &cells);

    /**
     * Fill @p batch with up to @p max triplet records (replacing its
     * contents) and return the count; 0 at clean end of trace.  Must
     * only be called once nextEpoch() has returned false (or the
     * trace has no epochs).
     */
    std::size_t nextMessages(std::vector<TraceMessage> &batch,
                             std::size_t max);

    /** Epoch-shard count: the parallel grain.  1 for a single-file
     *  trace with epochs, 0 for an epoch-free trace. */
    std::size_t numShards() const;

    /** Epochs [first, first + count) held by @p shard. */
    struct ShardRange
    {
        std::size_t firstEpoch = 0;
        std::size_t count = 0;
    };
    ShardRange shardRange(std::size_t shard) const;

    /**
     * Parse shard @p shard front to back, invoking @p sink once per
     * epoch with its global epoch index and cell list.  Opens its own
     * stream, so concurrent calls on distinct shards from pool tasks
     * are safe; diagnostics carry the shard file's own path and
     * offsets.
     */
    void readShard(std::size_t shard,
                   const std::function<void(
                       std::size_t epoch,
                       std::vector<noc::EpochCell> &&cells)> &sink)
        const;

    /**
     * Accumulate the whole triplet section into @p packets /
     * @p flits (sized numNodes x numNodes by the caller).  Bounded
     * streaming fill of the dense matrices the power models consume.
     */
    void readMessageMatrix(CountMatrix &packets,
                           CountMatrix &flits);

  private:
    void openSingleFile();
    void openSharded();
    /** Parse one "epoch <c>" block from @p scanner. */
    static void parseEpochBlock(LineScanner &scanner, int num_nodes,
                                std::vector<noc::EpochCell> &cells);
    /** Advance the sequential cursor to the next epoch source. */
    bool advanceEpochShard();

    std::string path_;
    TraceHeader header_;
    std::unique_ptr<LineScanner> scanner_; ///< single-file cursor
    bool pending_ = false; ///< scanner_ holds an unconsumed line
    bool tripletsStarted_ = false;
    /** Where the epoch block (or triplet section) begins in a single
     *  file, for shard-0 re-reads. */
    std::size_t epochsOffset_ = 0;
    int epochsLineno_ = 0;

    /** Sharded layout: per-shard file names and epoch ranges. */
    std::vector<std::string> shardFiles_;
    std::vector<ShardRange> shardRanges_;
    std::string tripletFile_;
    /** Sequential-epoch cursor over the shard list. */
    std::size_t cursorShard_ = 0;
    std::size_t cursorEpoch_ = 0;
    std::unique_ptr<LineScanner> shardScanner_;
    std::size_t epochsYielded_ = 0;
};

/**
 * Incremental writer for the sharded streaming layout: epochs are
 * appended as the run seals them (the bounded-memory capture path),
 * rolled into a new shard file every @p epochs_per_shard, and
 * finish() writes the triplet section plus the index once the final
 * tick count is known.  Every byte goes through FileWriter, so disk
 * full aborts the run instead of truncating a shard.
 */
class TraceShardWriter
{
  public:
    TraceShardWriter(const std::string &dir, std::string workload,
                     std::string network, int num_nodes,
                     std::uint64_t messages_per_epoch,
                     std::size_t epochs_per_shard = 256);
    ~TraceShardWriter();

    TraceShardWriter(const TraceShardWriter &) = delete;
    TraceShardWriter &operator=(const TraceShardWriter &) = delete;

    /** Append one sealed epoch (cells sorted by (src, dst)). */
    void appendEpoch(const std::vector<noc::EpochCell> &cells);

    /** Epochs appended so far. */
    std::size_t numEpochs() const { return numEpochs_; }

    /**
     * Write the triplet section and the index file, then close every
     * stream (checked).  Must be called exactly once; appendEpoch()
     * is invalid afterwards.
     */
    void finish(noc::Tick total_ticks, const CountMatrix &packets,
                const CountMatrix &flits,
                const RunManifest &manifest);

  private:
    void rollShard();

    std::string dir_;
    std::string workload_;
    std::string network_;
    int numNodes_;
    std::uint64_t messagesPerEpoch_;
    std::size_t epochsPerShard_;
    std::size_t numEpochs_ = 0;
    bool finished_ = false;
    std::vector<std::string> shardFiles_;
    std::vector<std::size_t> shardFirstEpoch_;
    std::vector<std::size_t> shardCounts_;
    std::unique_ptr<FileWriter> shard_;
};

} // namespace mnoc::sim

#endif // MNOC_SIM_TRACE_STREAM_HH
