/**
 * @file
 * Memory operation type and address helpers shared by the simulator
 * and the workload kernels.
 *
 * Workloads place data explicitly: the owning core index is encoded in
 * the upper address bits, which models first-touch page placement with
 * per-core directory homes (the placement Graphite supports and SPLASH
 * kernels rely on).
 */

#ifndef MNOC_SIM_MEMOP_HH
#define MNOC_SIM_MEMOP_HH

#include <cstdint>

namespace mnoc::sim {

/** One memory reference from a workload thread. */
struct MemOp
{
    std::uint64_t addr = 0;
    bool write = false;
    /**
     * Non-blocking access: the core continues past this op while it
     * completes in the background (bounded by the outstanding-access
     * buffer).  Stores always behave this way via the store buffer;
     * kernels additionally mark software-prefetched streaming reads.
     */
    bool nonBlocking = false;
    /** Compute cycles between the previous op's completion and this
     *  op's issue. */
    std::uint32_t computeCycles = 0;
};

/** Log2 of the cache-line size (64 bytes). */
inline constexpr int lineShift = 6;
/** Bit position of the owner field inside an address. */
inline constexpr int ownerShift = 40;

/** Cache line index of @p addr. */
inline std::uint64_t
lineOf(std::uint64_t addr)
{
    return addr >> lineShift;
}

/**
 * Build an address inside the region owned by core @p owner.
 *
 * @param owner Core whose directory homes the data.
 * @param offset Byte offset within the owner's region (< 2^40).
 */
inline std::uint64_t
placedAddr(int owner, std::uint64_t offset)
{
    return (static_cast<std::uint64_t>(owner) << ownerShift) |
           (offset & ((1ULL << ownerShift) - 1));
}

/** Directory home core of @p addr in an @p num_cores system. */
inline int
homeOf(std::uint64_t addr, int num_cores)
{
    return static_cast<int>((addr >> ownerShift) %
                            static_cast<std::uint64_t>(num_cores));
}

} // namespace mnoc::sim

#endif // MNOC_SIM_MEMOP_HH
