/**
 * @file
 * Workload interface: a multithreaded kernel that feeds per-thread
 * memory-operation streams to the simulator.
 */

#ifndef MNOC_SIM_WORKLOAD_HH
#define MNOC_SIM_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "sim/memop.hh"

namespace mnoc::sim {

/**
 * A synthetic benchmark kernel.  The simulator calls reset() once and
 * then pulls operations per thread until next() returns false for every
 * thread.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name (matches the SPLASH-2 names in the paper). */
    virtual std::string name() const = 0;

    /**
     * Prepare streams for @p num_threads threads.
     *
     * @param num_threads One thread per simulated core.
     * @param seed Seed for any randomized access components.
     */
    virtual void reset(int num_threads, std::uint64_t seed) = 0;

    /**
     * Produce @p thread's next memory operation.
     *
     * @return false when the thread has finished its stream.
     */
    virtual bool next(int thread, MemOp &op) = 0;
};

} // namespace mnoc::sim

#endif // MNOC_SIM_WORKLOAD_HH
