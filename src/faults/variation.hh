/**
 * @file
 * Device-variation model for the fault-injection subsystem.
 *
 * Fabrication and aging perturb every device the power topologies rely
 * on: evanescent splitter ratios land off their designed fraction,
 * coupler and waveguide losses skew die-to-die, QD LED output droops
 * with temperature and age, and detector sensitivity (mIOP) shifts.
 * A VariationSpec gives the sigma of each effect; drawVariation() turns
 * a spec into one concrete seeded Monte Carlo draw that the yield
 * analyzer replays through the splitter-chain and link-budget models.
 *
 * All draws are deterministic functions of the Prng stream: the same
 * seed always produces the same sequence of draws, and the number of
 * variates consumed is independent of the sigma values, so two specs
 * that differ only in magnitude see the *same* underlying unit draws
 * scaled differently (which is what makes tolerance sweeps and the
 * yield-monotonicity property well behaved).
 */

#ifndef MNOC_FAULTS_VARIATION_HH
#define MNOC_FAULTS_VARIATION_HH

#include <vector>

#include "common/prng.hh"
#include "optics/device_params.hh"

namespace mnoc::faults {

/**
 * Standard deviations of the modeled device variations.  Defaults are
 * deliberately conservative molecular-photonics numbers: a couple of
 * percent on splitter ratios, tenths of a dB on losses, a few percent
 * of LED droop.
 */
struct VariationSpec
{
    /** Relative sigma of each splitter's diverted fraction. */
    double splitterSigma = 0.02;
    /** Sigma of the per-die coupler loss skew. */
    DecibelLoss couplerSigma{0.1};
    /** Sigma of the per-die waveguide loss skew, per cm. */
    DecibelLoss waveguideSigmaPerCm{0.05};
    /** Sigma of the per-die splitter insertion-loss skew. */
    DecibelLoss splitterInsertionSigma{0.02};
    /** Relative sigma of QD LED output droop (one-sided: a drooping
     *  LED only ever emits less than its drive point). */
    double ledDroopSigma = 0.03;
    /** Sigma of the detector sensitivity shift, in dB of mIOP. */
    DecibelLoss miopSigma{0.2};

    /** A copy with every sigma multiplied by @p factor (tolerance
     *  sweeps: factor < 1 is a tighter process). */
    VariationSpec scaled(double factor) const;

    /** Fatal on negative sigmas. */
    void validate() const;
};

/**
 * One concrete Monte Carlo draw over a whole crossbar: the globally
 * skewed device parameters plus per-waveguide, per-node splitter-ratio
 * scales and per-source LED output scales.
 */
struct DeviceVariation
{
    /** Nominal parameters with the per-die loss/mIOP skews applied. */
    optics::DeviceParams params;
    /** splitterScale[s][j]: multiplicative error of node j's split
     *  ratio S/(1-S) on source s's waveguide (the entry at j == s
     *  perturbs the source's own directional splitter); applied by
     *  SplitterChain::evaluate. */
    std::vector<std::vector<double>> splitterScale;
    /** ledOutputScale[s]: source s's LED output relative to its drive
     *  point, in (0, 1] (droop only reduces output). */
    std::vector<double> ledOutputScale;
};

/**
 * Standard-normal variate via Box-Muller on the Prng's uniforms.
 * Implemented here (rather than std::normal_distribution) so that
 * draws are bit-identical across standard libraries; consumes exactly
 * two uniforms per call.
 */
double gaussian(Prng &prng);

/**
 * Draw one crossbar-wide variation for @p num_nodes nodes.  Consumes a
 * spec-independent number of variates from @p prng.
 */
DeviceVariation drawVariation(const VariationSpec &spec,
                              const optics::DeviceParams &nominal,
                              int num_nodes, Prng &prng);

} // namespace mnoc::faults

#endif // MNOC_FAULTS_VARIATION_HH
