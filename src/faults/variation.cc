#include "faults/variation.hh"

#include <cmath>

#include "common/log.hh"
#include "common/units.hh"

namespace mnoc::faults {

VariationSpec
VariationSpec::scaled(double factor) const
{
    fatalIf(factor < 0.0, "tolerance scale must be non-negative");
    VariationSpec out = *this;
    out.splitterSigma *= factor;
    out.couplerSigma *= factor;
    out.waveguideSigmaPerCm *= factor;
    out.splitterInsertionSigma *= factor;
    out.ledDroopSigma *= factor;
    out.miopSigma *= factor;
    return out;
}

void
VariationSpec::validate() const
{
    fatalIf(splitterSigma < 0.0 || couplerSigma < DecibelLoss(0.0) ||
                waveguideSigmaPerCm < DecibelLoss(0.0) ||
                splitterInsertionSigma < DecibelLoss(0.0) ||
                ledDroopSigma < 0.0 || miopSigma < DecibelLoss(0.0),
            "variation sigmas must be non-negative");
}

double
gaussian(Prng &prng)
{
    // Box-Muller; clamp the radius argument away from zero so the log
    // stays finite.  Always consumes two uniforms.
    double u1 = prng.uniform();
    double u2 = prng.uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    constexpr double two_pi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

DeviceVariation
drawVariation(const VariationSpec &spec,
              const optics::DeviceParams &nominal, int num_nodes,
              Prng &prng)
{
    spec.validate();
    fatalIf(num_nodes < 2, "variation draw needs at least two nodes");

    DeviceVariation out;
    // Per-die skews: loss terms move additively in dB, the detector
    // sensitivity multiplicatively (a dB shift of the required mIOP).
    DecibelLoss wg_skew = gaussian(prng) * spec.waveguideSigmaPerCm;
    DecibelLoss coupler_skew = gaussian(prng) * spec.couplerSigma;
    DecibelLoss insertion_skew =
        gaussian(prng) * spec.splitterInsertionSigma;
    double miop_scale =
        (gaussian(prng) * spec.miopSigma).toAttenuation().value();
    out.params = nominal.perturbed(wg_skew, coupler_skew,
                                   insertion_skew, miop_scale);

    out.splitterScale.resize(num_nodes);
    out.ledOutputScale.resize(num_nodes);
    for (int s = 0; s < num_nodes; ++s) {
        // One-sided droop: the half-normal |z| * sigma only ever
        // reduces the LED's delivered output, floored well above zero
        // so a draw never models a dead source as free power savings.
        out.ledOutputScale[s] = std::max(
            0.1, 1.0 - std::fabs(gaussian(prng)) * spec.ledDroopSigma);
        auto &scale = out.splitterScale[s];
        scale.resize(num_nodes);
        for (int j = 0; j < num_nodes; ++j)
            scale[j] = std::max(
                0.0, 1.0 + gaussian(prng) * spec.splitterSigma);
    }
    return out;
}

} // namespace mnoc::faults
