/**
 * @file
 * Monte Carlo yield analysis of multi-mode splitter designs.
 *
 * A design "yields" under a variation draw when every reachable
 * (mode, destination) link of every source still clears the (shifted)
 * detector threshold with the required margin, and every unreachable
 * link stays below the tolerated leak level (paper Section 3.2.2's two
 * sides of the budget).  analyzeYield() replays a design through the
 * splitter-chain solver under K seeded draws and reports the yield
 * fraction together with margin and BER distributions -- the numbers a
 * hardening loop needs to decide between adding margin and collapsing
 * a power mode.
 */

#ifndef MNOC_FAULTS_YIELD_HH
#define MNOC_FAULTS_YIELD_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/thread_pool.hh"
#include "faults/variation.hh"
#include "optics/link_budget.hh"
#include "optics/serpentine_layout.hh"

namespace mnoc::faults {

/** Outcome of one Monte Carlo draw over the whole crossbar. */
struct DrawOutcome
{
    /** All sources' budgets held under this draw. */
    bool pass = false;
    /** Worst reachable-link margin over all sources. */
    DecibelLoss worstMargin;
    /** Worst (largest) unreachable-link level, relative to pmin. */
    DecibelLoss worstLeak{-1e9};
    /** Worst reachable-link bit error rate. */
    double worstBitErrorRate = 0.0;
    /** Number of reachable links below the required margin. */
    int marginFailures = 0;
    /** Number of unreachable links above the leak limit. */
    int leakFailures = 0;
};

/** Aggregate yield report over all draws. */
struct YieldReport
{
    int trials = 0;
    std::uint64_t seed = 0;
    VariationSpec spec;
    /** Fraction of draws where the whole crossbar held its budgets. */
    double yield = 0.0;
    /** Per-draw outcomes, in draw order (seed-reproducible). */
    std::vector<DrawOutcome> draws;
    /** Distribution of the per-draw worst reachable margin. */
    DecibelLoss marginMean;
    DecibelLoss marginMin;
    DecibelLoss marginP5;
    /** Distribution of the per-draw worst reachable BER. */
    double berWorstMean = 0.0;
    double berWorstMax = 0.0;
    /** Reachable-link margin failures attributed to each drive mode,
     *  summed over draws; the hardening loop's "worst mode" signal. */
    std::vector<long long> marginFailuresByMode;
    /** Unreachable-link leak failures per drive mode, summed over
     *  draws. */
    std::vector<long long> leakFailuresByMode;
};

/** Validation thresholds shared by all draws. */
struct YieldCriteria
{
    /** Margin reachable links must clear at the shifted pmin. */
    DecibelLoss requiredMargin;
    /** Maximum tolerated unreachable-link level, relative to pmin
     *  (defaults to unconstrained; pass a negative value to demand a
     *  decision gap for the threshold circuit). */
    DecibelLoss maxLeak = optics::unconstrainedLeak;
};

/**
 * Replay @p sources (one MultiModeDesign per node, index == source)
 * under @p trials seeded variation draws.
 *
 * The draws run concurrently on the ThreadPool.  Draw t consumes its
 * own Prng stream seeded with deriveSeed(seed, t) and the outcomes
 * are reduced in draw order, so the report -- yield fraction, margin
 * and BER distributions, per-mode failure counts, and every per-draw
 * outcome -- is bit-identical at any thread count (DESIGN.md §9).
 *
 * @param layout Shared serpentine geometry.
 * @param nominal Nominal device parameters the designs were built for.
 * @param sources Per-source designs; sources.size() is the radix.
 * @param spec Variation sigmas.
 * @param trials Number of Monte Carlo draws (>= 1).
 * @param seed PRNG seed; equal seeds give bit-identical reports.
 * @param criteria Validation thresholds shared by all draws.
 * @param pool Pool to run the draws on; null uses the global pool
 *        (sized by MNOC_THREADS).
 */
YieldReport analyzeYield(const optics::SerpentineLayout &layout,
                         const optics::DeviceParams &nominal,
                         const std::vector<optics::MultiModeDesign> &sources,
                         const VariationSpec &spec, int trials,
                         std::uint64_t seed,
                         const YieldCriteria &criteria = {},
                         ThreadPool *pool = nullptr);

} // namespace mnoc::faults

#endif // MNOC_FAULTS_YIELD_HH
