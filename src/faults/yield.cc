#include "faults/yield.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/stats.hh"
#include "optics/splitter_chain.hh"

namespace mnoc::faults {

namespace {

/** Replay every source under one draw and fold the link budgets. */
DrawOutcome
runDraw(const optics::SerpentineLayout &layout,
        const std::vector<optics::MultiModeDesign> &sources,
        const DeviceVariation &variation, const YieldCriteria &criteria,
        std::vector<long long> &margin_failures_by_mode,
        std::vector<long long> &leak_failures_by_mode)
{
    int n = static_cast<int>(sources.size());
    WattPower pmin = variation.params.pminAtTap();

    DrawOutcome outcome;
    outcome.pass = true;
    outcome.worstMargin = DecibelLoss(1e9);
    outcome.worstLeak = DecibelLoss(-1e9);
    outcome.worstBitErrorRate = 0.0;

    for (int s = 0; s < n; ++s) {
        const auto &design = sources[s];
        int num_modes = static_cast<int>(design.modePower.size());
        optics::SplitterChain chain(layout, variation.params, s);

        std::vector<std::vector<double>> received;
        received.reserve(num_modes);
        for (int m = 0; m < num_modes; ++m)
            received.push_back(chain.evaluate(
                design.chain,
                design.modePower[m] * variation.ledOutputScale[s],
                variation.splitterScale[s]));

        auto report = optics::validateReceivedPowers(
            received, design.modeOfDest, s, pmin,
            criteria.requiredMargin, criteria.maxLeak);

        outcome.worstMargin =
            std::min(outcome.worstMargin, report.worstReachableMargin);
        outcome.worstLeak =
            std::max(outcome.worstLeak, report.worstUnreachableLeak);
        for (const auto &link : report.links) {
            if (link.reachable) {
                outcome.worstBitErrorRate = std::max(
                    outcome.worstBitErrorRate, link.bitErrorRate);
                if (link.margin <
                    criteria.requiredMargin - DecibelLoss(1e-9)) {
                    ++outcome.marginFailures;
                    ++margin_failures_by_mode[link.mode];
                }
            } else if (link.margin > criteria.maxLeak) {
                ++outcome.leakFailures;
                ++leak_failures_by_mode[link.mode];
            }
        }
        outcome.pass = outcome.pass && report.ok;
    }
    return outcome;
}

} // namespace

YieldReport
analyzeYield(const optics::SerpentineLayout &layout,
             const optics::DeviceParams &nominal,
             const std::vector<optics::MultiModeDesign> &sources,
             const VariationSpec &spec, int trials, std::uint64_t seed,
             const YieldCriteria &criteria)
{
    spec.validate();
    int n = static_cast<int>(sources.size());
    fatalIf(n != layout.numNodes(),
            "yield analysis needs one design per layout node");
    fatalIf(trials < 1, "yield analysis needs at least one trial");

    int num_modes = 0;
    for (int s = 0; s < n; ++s) {
        fatalIf(sources[s].chain.source != s,
                "per-source designs must be indexed by source");
        num_modes = std::max(
            num_modes, static_cast<int>(sources[s].modePower.size()));
    }

    YieldReport report;
    report.trials = trials;
    report.seed = seed;
    report.spec = spec;
    report.marginFailuresByMode.assign(num_modes, 0);
    report.leakFailuresByMode.assign(num_modes, 0);
    report.draws.reserve(trials);

    Prng prng(seed);
    int passes = 0;
    std::vector<double> margins;
    std::vector<double> bers;
    margins.reserve(trials);
    bers.reserve(trials);
    for (int t = 0; t < trials; ++t) {
        auto variation = drawVariation(spec, nominal, n, prng);
        auto outcome =
            runDraw(layout, sources, variation, criteria,
                    report.marginFailuresByMode,
                    report.leakFailuresByMode);
        passes += outcome.pass ? 1 : 0;
        margins.push_back(outcome.worstMargin.dB());
        bers.push_back(outcome.worstBitErrorRate);
        report.draws.push_back(outcome);
    }

    report.yield = static_cast<double>(passes) / trials;
    report.marginMean = DecibelLoss(mean(margins));
    report.marginMin = DecibelLoss(minOf(margins));
    std::sort(margins.begin(), margins.end());
    report.marginP5 = DecibelLoss(
        margins[static_cast<std::size_t>(0.05 * (trials - 1))]);
    report.berWorstMean = mean(bers);
    report.berWorstMax = maxOf(bers);
    return report;
}

} // namespace mnoc::faults
