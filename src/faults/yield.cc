#include "faults/yield.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace_span.hh"
#include "optics/splitter_chain.hh"

namespace mnoc::faults {

namespace {

/** One draw's outcome plus its private per-mode failure tallies;
 *  draws run concurrently, so nothing here is shared. */
struct DrawRecord
{
    DrawOutcome outcome;
    std::vector<long long> marginFailuresByMode;
    std::vector<long long> leakFailuresByMode;
};

/** Replay every source under one draw and fold the link budgets. */
DrawRecord
runDraw(const optics::SerpentineLayout &layout,
        const std::vector<optics::MultiModeDesign> &sources,
        const DeviceVariation &variation,
        const YieldCriteria &criteria, int num_modes)
{
    int n = static_cast<int>(sources.size());
    WattPower pmin = variation.params.pminAtTap();

    DrawRecord record;
    record.marginFailuresByMode.assign(
        static_cast<std::size_t>(num_modes), 0);
    record.leakFailuresByMode.assign(
        static_cast<std::size_t>(num_modes), 0);
    DrawOutcome &outcome = record.outcome;
    outcome.pass = true;
    outcome.worstMargin = DecibelLoss(1e9);
    outcome.worstLeak = DecibelLoss(-1e9);
    outcome.worstBitErrorRate = 0.0;

    for (int s = 0; s < n; ++s) {
        const auto &design = sources[s];
        int source_modes = static_cast<int>(design.modePower.size());
        optics::SplitterChain chain(layout, variation.params, s);

        std::vector<std::vector<double>> received;
        received.reserve(static_cast<std::size_t>(source_modes));
        for (int m = 0; m < source_modes; ++m)
            received.push_back(chain.evaluate(
                design.chain,
                design.modePower[m] * variation.ledOutputScale[s],
                variation.splitterScale[s]));

        auto report = optics::validateReceivedPowers(
            received, design.modeOfDest, s, pmin,
            criteria.requiredMargin, criteria.maxLeak);

        outcome.worstMargin =
            std::min(outcome.worstMargin, report.worstReachableMargin);
        outcome.worstLeak =
            std::max(outcome.worstLeak, report.worstUnreachableLeak);
        for (const auto &link : report.links) {
            if (link.reachable) {
                outcome.worstBitErrorRate = std::max(
                    outcome.worstBitErrorRate, link.bitErrorRate);
                if (link.margin <
                    criteria.requiredMargin - DecibelLoss(1e-9)) {
                    ++outcome.marginFailures;
                    ++record.marginFailuresByMode[link.mode];
                }
            } else if (link.margin > criteria.maxLeak) {
                ++outcome.leakFailures;
                ++record.leakFailuresByMode[link.mode];
            }
        }
        outcome.pass = outcome.pass && report.ok;
    }
    return record;
}

} // namespace

YieldReport
analyzeYield(const optics::SerpentineLayout &layout,
             const optics::DeviceParams &nominal,
             const std::vector<optics::MultiModeDesign> &sources,
             const VariationSpec &spec, int trials, std::uint64_t seed,
             const YieldCriteria &criteria, ThreadPool *pool)
{
    spec.validate();
    int n = static_cast<int>(sources.size());
    fatalIf(n != layout.numNodes(),
            "yield analysis needs one design per layout node");
    fatalIf(trials < 1, "yield analysis needs at least one trial");

    int num_modes = 0;
    for (int s = 0; s < n; ++s) {
        fatalIf(sources[s].chain.source != s,
                "per-source designs must be indexed by source");
        num_modes = std::max(
            num_modes, static_cast<int>(sources[s].modePower.size()));
    }

    YieldReport report;
    report.trials = trials;
    report.seed = seed;
    report.spec = spec;
    report.marginFailuresByMode.assign(
        static_cast<std::size_t>(num_modes), 0);
    report.leakFailuresByMode.assign(
        static_cast<std::size_t>(num_modes), 0);

    // Draw t is a pure function of deriveSeed(seed, t): each draw
    // owns its slot of `records`, so any thread interleaving writes
    // the same contents.
    TraceSpan span("analyzeYield", "faults");
    auto &metrics = MetricsRegistry::global();
    Counter &draw_tally = metrics.counter("yield.draws");
    Counter &pass_tally = metrics.counter("yield.passes");
    Histogram &margin_hist = metrics.histogram(
        "yield.worst_margin_db",
        {-3.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0});
    ThreadPool &workers = pool != nullptr ? *pool
                                          : ThreadPool::global();
    std::vector<DrawRecord> records(
        static_cast<std::size_t>(trials));
    workers.parallelFor(trials, [&](long long t) {
        Prng draw_prng(
            deriveSeed(seed, static_cast<std::uint64_t>(t)));
        auto variation = drawVariation(spec, nominal, n, draw_prng);
        records[static_cast<std::size_t>(t)] =
            runDraw(layout, sources, variation, criteria, num_modes);
        // Integer tallies and a commutative histogram fold: the
        // registry stays bit-identical at any thread count
        // (DESIGN.md §10).
        const DrawOutcome &outcome =
            records[static_cast<std::size_t>(t)].outcome;
        draw_tally.add();
        if (outcome.pass)
            pass_tally.add();
        margin_hist.observe(outcome.worstMargin.dB());
    });

    // Ordered reduction in draw order: the aggregates below are
    // identical at any thread count because the fold order is the
    // slot order, never the completion order.
    report.draws.reserve(static_cast<std::size_t>(trials));
    int passes = 0;
    std::vector<double> margins;
    std::vector<double> bers;
    margins.reserve(static_cast<std::size_t>(trials));
    bers.reserve(static_cast<std::size_t>(trials));
    for (const auto &record : records) {
        passes += record.outcome.pass ? 1 : 0;
        margins.push_back(record.outcome.worstMargin.dB());
        bers.push_back(record.outcome.worstBitErrorRate);
        for (int m = 0; m < num_modes; ++m) {
            report.marginFailuresByMode[m] +=
                record.marginFailuresByMode[m];
            report.leakFailuresByMode[m] +=
                record.leakFailuresByMode[m];
        }
        report.draws.push_back(record.outcome);
    }

    report.yield = static_cast<double>(passes) / trials;
    report.marginMean = DecibelLoss(mean(margins));
    report.marginMin = DecibelLoss(minOf(margins));
    std::sort(margins.begin(), margins.end());
    report.marginP5 = DecibelLoss(
        margins[static_cast<std::size_t>(0.05 * (trials - 1))]);
    report.berWorstMean = mean(bers);
    report.berWorstMax = maxOf(bers);
    return report;
}

} // namespace mnoc::faults
