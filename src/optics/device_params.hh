/**
 * @file
 * Optical device parameters for the mNoC power model (paper Table 3).
 *
 * Losses are carried as DecibelLoss, powers as WattPower (see
 * common/units.hh).  The receiver-side losses (coupler into the
 * photodetector and the chromophore power loss) are folded into a
 * single per-receiver minimum tap power, pminAtTap(), which is the
 * power a destination's splitter must divert from the waveguide for
 * the photodetector to see its minimum input optical power (mIOP).
 */

#ifndef MNOC_OPTICS_DEVICE_PARAMS_HH
#define MNOC_OPTICS_DEVICE_PARAMS_HH

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"

namespace mnoc::optics {

/**
 * mNoC optical technology parameters.  Defaults reproduce Table 3 of the
 * paper: 10% QD LED wall-plug efficiency, unit 1-to-0 ratio, 1 dB/cm
 * waveguide, 1 dB coupler, 0.2 dB splitters, 10 uW photodetector mIOP,
 * and 5 uW chromophore power loss at that mIOP.
 */
struct DeviceParams
{
    /** QD LED electrical-to-optical conversion efficiency. */
    double qdLedEfficiency = 0.10;
    /** Average fraction of bit slots that carry optical power. */
    double oneToZeroRatio = 1.0;
    /** Waveguide propagation loss per centimeter of waveguide. */
    DecibelLoss waveguideLossPerCm{1.0};
    /** Coupler loss (source injection and receiver tap). */
    DecibelLoss couplerLoss{1.0};
    /** Photodetector minimum input optical power. */
    WattPower photodetectorMiop{10.0 * microWatt};
    /** Chromophore filtering power loss at the receiver. */
    WattPower chromophoreLoss{5.0 * microWatt};
    /** Splitter insertion (excess) loss, charged to the diverted
     *  branch at each destination tap and once at the source's own
     *  directional splitter (see splitter_chain.hh for the loss
     *  convention). */
    DecibelLoss splitterInsertion{0.2};

    /**
     * Minimum power a destination's splitter must divert from the
     * waveguide: the photodetector mIOP plus the chromophore loss,
     * inflated by the receiver-side coupler loss.
     */
    WattPower
    pminAtTap() const
    {
        return (photodetectorMiop + chromophoreLoss) *
               couplerLoss.toAttenuation();
    }

    /** Propagation loss over @p length of waveguide. */
    DecibelLoss
    propagationLoss(Meters length) const
    {
        return waveguideLossPerCm * length.centimeters();
    }

    /**
     * A fabrication-skewed copy of these parameters: additive dB skews
     * on the loss terms and a multiplicative shift of the detector
     * sensitivity (miop_scale > 1 models a less sensitive detector).
     * Skews that would drive a loss negative clamp to zero -- a device
     * cannot amplify.  Used by the fault-injection subsystem
     * (src/faults) to replay designs under device variation.
     */
    DeviceParams
    perturbed(DecibelLoss waveguide_skew_per_cm, DecibelLoss coupler_skew,
              DecibelLoss splitter_skew, double miop_scale) const
    {
        fatalIf(miop_scale <= 0.0, "mIOP scale must be positive");
        DeviceParams out = *this;
        out.waveguideLossPerCm = std::max(
            DecibelLoss(0.0), waveguideLossPerCm + waveguide_skew_per_cm);
        out.couplerLoss =
            std::max(DecibelLoss(0.0), couplerLoss + coupler_skew);
        out.splitterInsertion =
            std::max(DecibelLoss(0.0), splitterInsertion + splitter_skew);
        out.photodetectorMiop = photodetectorMiop * miop_scale;
        return out;
    }

    /** Validate parameter ranges; fatal on nonsense values. */
    void
    validate() const
    {
        fatalIf(qdLedEfficiency <= 0.0 || qdLedEfficiency > 1.0,
                "QD LED efficiency must be in (0, 1]");
        fatalIf(oneToZeroRatio <= 0.0 || oneToZeroRatio > 1.0,
                "1-to-0 ratio must be in (0, 1]");
        fatalIf(waveguideLossPerCm < DecibelLoss(0.0),
                "negative waveguide loss");
        fatalIf(couplerLoss < DecibelLoss(0.0), "negative coupler loss");
        fatalIf(photodetectorMiop <= WattPower(0.0),
                "mIOP must be positive");
        fatalIf(chromophoreLoss < WattPower(0.0),
                "negative chromophore loss");
        fatalIf(splitterInsertion < DecibelLoss(0.0),
                "negative splitter loss");
    }
};

} // namespace mnoc::optics

#endif // MNOC_OPTICS_DEVICE_PARAMS_HH
