/**
 * @file
 * Aggregate of the per-source splitter chains making up a full SWMR
 * optical crossbar, with cached single-mode (broadcast) designs.
 */

#ifndef MNOC_OPTICS_CROSSBAR_HH
#define MNOC_OPTICS_CROSSBAR_HH

#include <memory>
#include <vector>

#include "optics/alpha_optimizer.hh"
#include "optics/device_params.hh"
#include "optics/serpentine_layout.hh"
#include "optics/splitter_chain.hh"

namespace mnoc::optics {

/**
 * One serpentine SWMR crossbar: N sources, each owning a waveguide that
 * passes every node.  Precomputes the splitter chain per source and the
 * single-mode broadcast design used as the power baseline and as the
 * Figure 6 power profile.
 */
class OpticalCrossbar
{
  public:
    OpticalCrossbar(const SerpentineLayout &layout,
                    const DeviceParams &params);

    const SerpentineLayout &layout() const { return layout_; }
    const DeviceParams &params() const { return params_; }
    int numNodes() const { return layout_.numNodes(); }

    /** Splitter-chain power model for @p source's waveguide. */
    const SplitterChain &chain(int source) const;

    /**
     * Minimal injected optical power for @p source to broadcast (every
     * destination tap receives pminAtTap).
     */
    WattPower broadcastPower(int source) const;

    /** The full single-mode design for @p source. */
    const ChainDesign &broadcastDesign(int source) const;

  private:
    SerpentineLayout layout_;
    DeviceParams params_;
    std::vector<std::unique_ptr<SplitterChain>> chains_;
    std::vector<ChainDesign> broadcastDesigns_;
};

} // namespace mnoc::optics

#endif // MNOC_OPTICS_CROSSBAR_HH
