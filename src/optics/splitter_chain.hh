/**
 * @file
 * Waveguide splitter-chain power model and exact splitter design
 * (paper Equation 2 and Appendix A).
 *
 * A source injects optical power into its dedicated serpentine waveguide;
 * the power splits left/right at the source and each destination's
 * splitter diverts a fraction S_j to that node's receiver.  Given
 * per-destination received-power targets, the minimal injected power and
 * the exact splitter fractions follow from a backward recurrence along
 * each arm.  With that exact design, the minimal injected power equals
 * sum_j target_j * A(i, j) where A is the purely geometric attenuation
 * from the LED output to j's receiver (coupler, source splitter
 * insertion, propagation, and the destination tap's insertion loss) --
 * the power-conservation form of the paper's Equation 2.
 *
 * Loss convention: pass-through light at a destination's splitter
 * suffers only the designed (1 - S) division plus propagation loss; the
 * 0.2 dB splitter insertion loss (Table 3) is charged to the diverted
 * branch, and once at the source's own directional splitter.  Weakly
 * coupled evanescent taps behave this way, and the alternative --
 * charging every pass-through -- would accumulate more than 50 dB over
 * a radix-256 serpentine, contradicting the paper's scalability claim
 * and the shape of its Figures 3 and 6.
 */

#ifndef MNOC_OPTICS_SPLITTER_CHAIN_HH
#define MNOC_OPTICS_SPLITTER_CHAIN_HH

#include <vector>

#include "optics/device_params.hh"
#include "optics/serpentine_layout.hh"

namespace mnoc::optics {

/**
 * Result of a splitter-chain design for one source waveguide.
 *
 * splitterFraction[j] is the fraction of the power arriving at node j
 * that its splitter diverts to the local receiver (S_j in the paper);
 * the entry at the source index holds the left-arm share of the source's
 * own directional splitter instead.
 */
struct ChainDesign
{
    /** Source node that owns this waveguide. */
    int source = -1;
    /** S_j per node; entry [source] is the left-arm power share. */
    std::vector<double> splitterFraction;
    /** Minimal optical power at the QD LED output. */
    WattPower injectedPower;
    /** The per-destination tap targets the design was solved for, in
     *  watts per node. */
    std::vector<double> targets;
};

/**
 * Where the injected optical power of one waveguide goes, in watts.
 * Every photon leaving the QD LED lands in exactly one bucket, so
 * the buckets sum to the injected power; lossBreakdown() enforces
 * that conservation with a panic-level self-check.
 */
struct ChainLossBreakdown
{
    /** Power at the QD LED output. */
    double injected = 0.0;
    /** Lost in the LED-side coupler. */
    double sourceCoupling = 0.0;
    /** Insertion loss of the source's directional splitter. */
    double sourceSplit = 0.0;
    /** Propagation loss along both serpentine arms. */
    double waveguide = 0.0;
    /** Insertion loss of the destination taps (diverted branch). */
    double tapInsertion = 0.0;
    /** Lost in the receiver-side couplers. */
    double receiverCoupling = 0.0;
    /** Reaches the photodetectors (signal plus receiver margin). */
    double delivered = 0.0;
    /** Exits the arm ends unused. */
    double residual = 0.0;

    /** Sum of every sink bucket; equals injected by conservation. */
    double
    accountedFor() const
    {
        return sourceCoupling + sourceSplit + waveguide +
               tapInsertion + receiverCoupling + delivered + residual;
    }
};

/**
 * Power-propagation model for a single source's serpentine waveguide.
 *
 * Construction precomputes the geometric tap attenuations; design() and
 * evaluate() then run in O(N).
 */
class SplitterChain
{
  public:
    /**
     * @param layout Serpentine geometry shared by all waveguides.
     * @param params Optical device parameters.
     * @param source Index of the node owning this waveguide.
     */
    SplitterChain(const SerpentineLayout &layout,
                  const DeviceParams &params, int source);

    int source() const { return source_; }
    int numNodes() const { return static_cast<int>(tapAtten_.size()); }

    /**
     * Geometric attenuation from the QD LED output to node @p dest's
     * receiver: injected watts required per watt delivered through the
     * destination's tap (coupler, source split insertion, propagation,
     * tap insertion).  Excludes the (1 - S_k) diversion factors, which
     * the exact design accounts for by construction.
     */
    LinearFactor tapAttenuation(int dest) const;

    /**
     * Solve for the splitter fractions and minimal injected power that
     * deliver exactly @p tap_targets watts to every destination tap.
     *
     * @param tap_targets Per-node received-power target, in watts per
     *        node; the entry at the source index must be zero (a source
     *        does not listen on its own waveguide).
     * @return The exact design; splitter fractions lie in [0, 1].
     */
    ChainDesign design(const std::vector<double> &tap_targets) const;

    /**
     * Forward-propagate @p injected_power through @p design and return
     * the power delivered to every node's tap, in watts per node.  Used
     * to verify designs and to compute received power in scaled
     * (higher) modes.
     */
    std::vector<double> evaluate(const ChainDesign &design,
                                 WattPower injected_power) const;

    /**
     * evaluate() under per-node splitter-ratio variation: node j's
     * designed split ratio S_j/(1-S_j) (and the source's left-arm
     * share) is scaled by @p splitter_scale[j] before propagation.
     * Perturbing the ratio rather than the diverted fraction keeps
     * both arms of an interior splitter non-zero -- the exact design
     * legitimately places near-unity fractions mid-arm (a mode-0
     * neighbour ahead of a tail of tiny alpha targets), and a
     * fraction clamped to exactly 1 would starve every downstream
     * node.  This is the fault-injection hook: construct the chain
     * with DeviceParams::perturbed() for the global loss skews and
     * pass the per-splitter draw here.
     */
    std::vector<double>
    evaluate(const ChainDesign &design, WattPower injected_power,
             const std::vector<double> &splitter_scale) const;

    /**
     * Propagate @p injected_power through @p design while attributing
     * every lost or delivered watt to a loss bucket.  The buckets sum
     * to the injected power (photon conservation).
     *
     * @throws PanicError when the accounted power deviates from the
     *         injected power by more than a 1e-9 relative tolerance
     *         -- that would mean the model leaks or invents energy.
     */
    ChainLossBreakdown lossBreakdown(const ChainDesign &design,
                                     WattPower injected_power) const;

  private:
    /** Propagation transmission of the waveguide segment between
     *  adjacent nodes @p a and @p a+1 (no splitter insertion),
     *  served from the cache precomputed at construction. */
    LinearFactor segmentTransmission(int a) const;

    const SerpentineLayout &layout_;
    DeviceParams params_;
    int source_;
    /** Precomputed geometric attenuation per destination. */
    std::vector<LinearFactor> tapAtten_;
    /** Precomputed segment transmissions; entry a covers the
     *  waveguide between adjacent nodes a and a+1. */
    std::vector<LinearFactor> segTrans_;
    /** Transmission from LED output to the waveguide arms. */
    LinearFactor sourceFeedTransmission_;
};

} // namespace mnoc::optics

#endif // MNOC_OPTICS_SPLITTER_CHAIN_HH
