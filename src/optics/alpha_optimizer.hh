/**
 * @file
 * Multi-mode splitter design via Appendix A's alpha parameterisation.
 *
 * Destinations unique to power mode m receive alpha_m * Pmin when the
 * source drives at the lowest mode power; driving mode m then costs
 * Pmode_m = Pmode_0 / alpha_m.  Because the exact splitter design makes
 * Pmode_0 linear in the targets, the expected source power
 *
 *     E[P] = (sum_m C_m alpha_m) * (sum_m w_m / alpha_m) * Pmin
 *
 * where C_m is the summed geometric tap attenuation of mode-m-unique
 * destinations and w_m the traffic fraction per mode.  This class
 * minimizes E[P] over 1 = alpha_0 >= alpha_1 >= ... > 0, both with the
 * paper's coarse grid search and with closed-form coordinate descent.
 */

#ifndef MNOC_OPTICS_ALPHA_OPTIMIZER_HH
#define MNOC_OPTICS_ALPHA_OPTIMIZER_HH

#include <vector>

#include "optics/splitter_chain.hh"

namespace mnoc::optics {

/** Result of an abstract alpha optimization. */
struct AlphaSolution
{
    /** Optimal alpha vector (alpha[0] == 1, non-increasing). */
    std::vector<double> alpha;
    /** (sum_m C_m alpha_m) * (sum_m w_m / alpha_m) at the optimum;
     *  multiply by pmin to obtain the expected injected power. */
    double objective = 0.0;
};

/**
 * Minimize (sum_m C_m alpha_m)(sum_m w_m / alpha_m) over non-increasing
 * alpha vectors with alpha[0] = 1, by closed-form coordinate descent
 * seeded from a coarse grid (or an analytic sqrt(w/c) seed for large
 * M).  @p mode_cost are the per-mode summed tap attenuations C_m;
 * @p weights the per-mode traffic fractions (normalized internally).
 *
 * @param min_alpha Floor on every alpha: 1/min_alpha bounds the drive
 *        dynamic range of a source's QD LED.  The default 0.1 matches
 *        the paper's Appendix A grid (alphas iterated from 0.1 to 1 in
 *        0.1 steps), i.e. a 10x current range; pass a smaller value to
 *        study idealized wide-range drivers.
 */
AlphaSolution optimizeAlphaVector(const std::vector<double> &mode_cost,
                                  const std::vector<double> &weights,
                                  double min_alpha = 0.1);

/** A complete multi-mode design for one source waveguide. */
struct MultiModeDesign
{
    /** Splitter design solved at the mode-0 targets. */
    ChainDesign chain;
    /** Power mode of each destination (entry at the source is -1). */
    std::vector<int> modeOfDest;
    /** alpha_m values; alpha[0] == 1. */
    std::vector<double> alpha;
    /** Injected optical power per mode (non-decreasing). */
    std::vector<WattPower> modePower;
    /** Traffic-weighted expected injected power. */
    WattPower expectedPower;
};

/**
 * Optimizes the alpha vector for a fixed mode assignment and traffic
 * weighting on one source's waveguide.
 */
class AlphaOptimizer
{
  public:
    /**
     * @param chain Power model of the source's waveguide.
     * @param mode_of_dest Power mode per destination in [0, M); the
     *        entry at the source index is ignored.  Every mode in
     *        [0, M) must be the minimum mode of at least zero nodes
     *        (empty modes are tolerated).
     * @param mode_weights Fraction of this source's traffic sent in
     *        each mode; normalized internally.  Size defines M.
     * @param pmin Required tap power per destination.
     */
    AlphaOptimizer(const SplitterChain &chain,
                   std::vector<int> mode_of_dest,
                   std::vector<double> mode_weights, WattPower pmin,
                   double min_alpha = 0.1);

    /** Number of power modes M. */
    int numModes() const { return static_cast<int>(weights_.size()); }

    /**
     * Expected injected power for a candidate alpha vector, using the
     * precomputed per-mode attenuation sums (no chain solve).
     */
    WattPower expectedPowerFor(const std::vector<double> &alpha) const;

    /** Build the full design (splitters, mode powers) for @p alpha. */
    MultiModeDesign build(const std::vector<double> &alpha) const;

    /**
     * The paper's method: iterate alphas over a grid of the given step
     * (Appendix A uses 0.1) subject to monotonicity, keep the best.
     */
    MultiModeDesign optimizeGrid(double step = 0.1) const;

    /**
     * Closed-form coordinate descent on the alpha vector (exact for two
     * modes); never worse than the grid answer it starts from.
     */
    MultiModeDesign optimize() const;

    /** Summed tap attenuation of the destinations unique to @p mode. */
    double modeCost(int mode) const;

  private:
    const SplitterChain &chain_;
    std::vector<int> modeOfDest_;
    std::vector<double> weights_;
    WattPower pmin_;
    /** Floor on every alpha (bounds the drive dynamic range). */
    double minAlpha_;
    /** C_m: summed tap attenuation per mode. */
    std::vector<double> modeCost_;
};

} // namespace mnoc::optics

#endif // MNOC_OPTICS_ALPHA_OPTIMIZER_HH
