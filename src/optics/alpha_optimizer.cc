#include "optics/alpha_optimizer.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace mnoc::optics {

namespace {

/** Objective (sum C a)(sum w / a); assumes positive alphas. */
double
alphaObjective(const std::vector<double> &cost,
               const std::vector<double> &weights,
               const std::vector<double> &alpha)
{
    double c = 0.0;
    double inv = 0.0;
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        c += cost[i] * alpha[i];
        inv += weights[i] / alpha[i];
    }
    return c * inv;
}

} // namespace

AlphaSolution
optimizeAlphaVector(const std::vector<double> &mode_cost,
                    const std::vector<double> &raw_weights,
                    double min_alpha)
{
    std::size_t m = mode_cost.size();
    fatalIf(m == 0, "need at least one mode");
    fatalIf(raw_weights.size() != m,
            "mode cost and weight vectors must agree in size");
    fatalIf(min_alpha <= 0.0 || min_alpha > 1.0,
            "min_alpha must lie in (0, 1]");
    const double minAlphaValue = min_alpha;

    std::vector<double> weights = raw_weights;
    double wsum = 0.0;
    for (double w : weights) {
        fatalIf(w < 0.0, "mode weights must be non-negative");
        wsum += w;
    }
    fatalIf(wsum <= 0.0, "mode weights must not all be zero");
    for (double &w : weights)
        w /= wsum;

    AlphaSolution out;
    out.alpha.assign(m, 1.0);
    if (m == 1) {
        out.objective = alphaObjective(mode_cost, weights, out.alpha);
        return out;
    }

    std::vector<double> alpha(m, 1.0);
    if (m <= 8) {
        // Coarse monotone grid seed (the paper's Appendix A method).
        std::vector<double> best = alpha;
        double best_obj = alphaObjective(mode_cost, weights, alpha);
        const double step = 0.25;
        auto recurse = [&](auto &&self, std::size_t index) -> void {
            if (index == m) {
                double obj = alphaObjective(mode_cost, weights, alpha);
                if (obj < best_obj) {
                    best_obj = obj;
                    best = alpha;
                }
                return;
            }
            for (double a = step; a <= alpha[index - 1] + 1e-12;
                 a += step) {
                alpha[index] =
                    std::clamp(a, minAlphaValue, alpha[index - 1]);
                self(self, index + 1);
            }
        };
        recurse(recurse, 1);
        alpha = best;
    } else {
        // Analytic seed for large M (per-destination-mode designs):
        // the unconstrained stationary point is alpha_i proportional
        // to sqrt(w_i / c_i); zero-weight modes want the floor (they
        // cost provisioning but carry no traffic).  Normalize to
        // alpha_0 = 1 and project onto the monotone cone: a backward
        // running max keeps later must-be-high modes feasible, a
        // forward running min enforces non-increase.
        double base = (mode_cost[0] > 0.0 && weights[0] > 0.0)
                          ? std::sqrt(weights[0] / mode_cost[0])
                          : 1.0;
        std::vector<double> desired(m, minAlphaValue);
        desired[0] = 1.0;
        for (std::size_t i = 1; i < m; ++i) {
            if (mode_cost[i] > 0.0 && weights[i] > 0.0)
                desired[i] = std::clamp(
                    std::sqrt(weights[i] / mode_cost[i]) / base,
                    minAlphaValue, 1.0);
        }
        for (std::size_t i = m - 1; i-- > 0;)
            desired[i] = std::max(desired[i], desired[i + 1]);
        alpha[0] = 1.0;
        for (std::size_t i = 1; i < m; ++i)
            alpha[i] = std::min(desired[i], alpha[i - 1]);
    }

    // Closed-form coordinate descent.
    int max_iterations = m > 32 ? 60 : 200;
    for (int iter = 0; iter < max_iterations; ++iter) {
        double moved = 0.0;
        for (std::size_t i = 1; i < m; ++i) {
            double other_cost = 0.0;
            double other_inv = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
                if (j == i)
                    continue;
                other_cost += mode_cost[j] * alpha[j];
                other_inv += weights[j] / alpha[j];
            }
            double hi = alpha[i - 1];
            double lo = i + 1 < m ? alpha[i + 1] : minAlphaValue;
            double candidate;
            if (mode_cost[i] > 0.0 && other_inv > 0.0) {
                candidate = std::sqrt(other_cost * weights[i] /
                                      (mode_cost[i] * other_inv));
            } else if (weights[i] == 0.0) {
                candidate = lo;
            } else {
                candidate = hi;
            }
            candidate = std::clamp(candidate, lo, hi);
            moved += std::fabs(candidate - alpha[i]);
            alpha[i] = candidate;
        }
        if (moved < 1e-12)
            break;
    }

    out.alpha = alpha;
    out.objective = alphaObjective(mode_cost, weights, alpha);
    return out;
}

AlphaOptimizer::AlphaOptimizer(const SplitterChain &chain,
                               std::vector<int> mode_of_dest,
                               std::vector<double> mode_weights,
                               WattPower pmin, double min_alpha)
    : chain_(chain), modeOfDest_(std::move(mode_of_dest)),
      weights_(std::move(mode_weights)), pmin_(pmin),
      minAlpha_(min_alpha)
{
    fatalIf(min_alpha <= 0.0 || min_alpha > 1.0,
            "min_alpha must lie in (0, 1]");
    int n = chain_.numNodes();
    int m = numModes();
    fatalIf(m < 1, "need at least one power mode");
    fatalIf(static_cast<int>(modeOfDest_.size()) != n,
            "mode assignment size must equal node count");
    fatalIf(pmin_ <= WattPower(0.0), "pmin must be positive");

    double weight_sum = 0.0;
    for (double w : weights_) {
        fatalIf(w < 0.0, "mode weights must be non-negative");
        weight_sum += w;
    }
    fatalIf(weight_sum <= 0.0, "mode weights must not all be zero");
    for (double &w : weights_)
        w /= weight_sum;

    modeCost_.assign(m, 0.0);
    for (int dest = 0; dest < n; ++dest) {
        if (dest == chain_.source())
            continue;
        int mode = modeOfDest_[dest];
        fatalIf(mode < 0 || mode >= m,
                "destination mode out of range");
        modeCost_[mode] += chain_.tapAttenuation(dest).value();
    }
}

double
AlphaOptimizer::modeCost(int mode) const
{
    fatalIf(mode < 0 || mode >= numModes(), "mode out of range");
    return modeCost_[mode];
}

WattPower
AlphaOptimizer::expectedPowerFor(const std::vector<double> &alpha) const
{
    int m = numModes();
    panicIf(static_cast<int>(alpha.size()) != m, "alpha size mismatch");
    double cost = 0.0;
    double inv = 0.0;
    for (int i = 0; i < m; ++i) {
        panicIf(alpha[i] <= 0.0 || alpha[i] > 1.0,
                "alpha must lie in (0, 1]");
        cost += modeCost_[i] * alpha[i];
        inv += weights_[i] / alpha[i];
    }
    return pmin_ * (cost * inv);
}

MultiModeDesign
AlphaOptimizer::build(const std::vector<double> &alpha) const
{
    int n = chain_.numNodes();
    int m = numModes();
    fatalIf(static_cast<int>(alpha.size()) != m, "alpha size mismatch");
    fatalIf(alpha[0] != 1.0, "alpha_0 must be 1");
    for (int i = 1; i < m; ++i)
        fatalIf(alpha[i] > alpha[i - 1] || alpha[i] <= 0.0,
                "alphas must be non-increasing and positive");

    std::vector<double> targets(n, 0.0);
    for (int dest = 0; dest < n; ++dest) {
        if (dest == chain_.source())
            continue;
        targets[dest] = alpha[modeOfDest_[dest]] * pmin_.watts();
    }

    MultiModeDesign out;
    out.chain = chain_.design(targets);
    out.modeOfDest = modeOfDest_;
    out.modeOfDest[chain_.source()] = -1;
    out.alpha = alpha;
    out.modePower.resize(m);
    out.expectedPower = WattPower(0.0);
    for (int i = 0; i < m; ++i) {
        out.modePower[i] = out.chain.injectedPower / alpha[i];
        out.expectedPower += weights_[i] * out.modePower[i];
    }
    return out;
}

MultiModeDesign
AlphaOptimizer::optimizeGrid(double step) const
{
    int m = numModes();
    fatalIf(step <= 0.0 || step > 1.0, "grid step must be in (0, 1]");

    std::vector<double> alpha(m, 1.0);
    std::vector<double> best(m, 1.0);
    WattPower best_power = expectedPowerFor(best);

    // Enumerate non-increasing alpha vectors over the grid.
    auto recurse = [&](auto &&self, int index) -> void {
        if (index == m) {
            WattPower p = expectedPowerFor(alpha);
            if (p < best_power) {
                best_power = p;
                best = alpha;
            }
            return;
        }
        for (double a = step; a <= alpha[index - 1] + 1e-12; a += step) {
            alpha[index] = std::min(a, alpha[index - 1]);
            self(self, index + 1);
        }
    };
    if (m > 1)
        recurse(recurse, 1);

    return build(best);
}

MultiModeDesign
AlphaOptimizer::optimize() const
{
    if (numModes() == 1)
        return build({1.0});
    return build(
        optimizeAlphaVector(modeCost_, weights_, minAlpha_).alpha);
}

} // namespace mnoc::optics
