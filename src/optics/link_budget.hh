/**
 * @file
 * Link-budget and bit-error-rate validation for multi-mode designs.
 *
 * A power topology only works if, in every mode, every reachable
 * destination's photodetector sees at least its mIOP with margin, and
 * every *unreachable* destination sits far enough below the threshold
 * circuit's decision level that it reads noise (paper Section 3.2.2).
 * This module checks both sides of the budget and estimates the BER of
 * an on/off-keyed link from the ratio of received power to mIOP using
 * the standard Gaussian-noise Q-factor model.
 *
 * All thresholds are strong-typed: received powers and pmin are
 * WattPower, margins and leak levels are DecibelLoss.  Passing a dB
 * quantity where a linear one is expected (or vice versa) does not
 * compile -- e.g. validateDesign(chain, design,
 * params.couplerLoss, ...) is rejected because a DecibelLoss is not a
 * WattPower, where the old all-double API would have silently used
 * 1.0 (the coupler's dB figure) as a one-watt threshold.
 */

#ifndef MNOC_OPTICS_LINK_BUDGET_HH
#define MNOC_OPTICS_LINK_BUDGET_HH

#include <limits>
#include <vector>

#include "optics/alpha_optimizer.hh"

namespace mnoc::optics {

/** Budget of one (mode, destination) link. */
struct LinkBudget
{
    int mode = 0;
    int dest = 0;
    /** Received tap power when driving this mode. */
    WattPower receivedPower;
    /** Margin relative to pmin (negative = below threshold). */
    DecibelLoss margin;
    /** Whether the destination is reachable in this mode. */
    bool reachable = false;
    /** Estimated bit error rate of the on/off-keyed link. */
    double bitErrorRate = 1.0;
};

/** Result of validating one source's design. */
struct BudgetReport
{
    std::vector<LinkBudget> links;
    /** Smallest margin over all reachable links. */
    DecibelLoss worstReachableMargin;
    /** Largest received power of any unreachable link, relative to
     *  pmin (should be comfortably negative). */
    DecibelLoss worstUnreachableLeak{-1e9};
    bool ok = false;
};

/** The unconstrained leak limit (any sub-threshold level tolerated). */
inline constexpr DecibelLoss unconstrainedLeak{
    std::numeric_limits<double>::infinity()};

/**
 * Estimate the BER of an on/off-keyed photonic link whose received
 * "one" power is @p received against a receiver designed for @p pmin.
 * Uses Q = q_at_pmin * received / pmin with BER = 0.5 erfc(Q / sqrt 2),
 * where q_at_pmin (default 7, ~1e-12 BER) is the design point of the
 * receiver chain.
 */
double linkBitErrorRate(WattPower received, WattPower pmin,
                        double q_at_pmin = 7.0);

/**
 * Validate precomputed per-mode received powers against @p pmin.
 *
 * @param received_per_mode received_per_mode[m][d] is the power that
 *        destination d's tap sees when the source drives mode m, in
 *        watts (as returned by SplitterChain::evaluate, possibly under
 *        a device-variation draw).
 * @param mode_of_dest Minimum mode per destination; the entry at
 *        @p source is ignored.
 *
 * This is the core of validateDesign(), split out so that the
 * fault-injection subsystem can replay perturbed received powers
 * through exactly the same margin/leak/BER accounting.
 */
BudgetReport validateReceivedPowers(
    const std::vector<std::vector<double>> &received_per_mode,
    const std::vector<int> &mode_of_dest, int source, WattPower pmin,
    DecibelLoss required_margin = DecibelLoss(0.0),
    DecibelLoss max_leak = unconstrainedLeak);

/**
 * Validate a complete multi-mode design for one source.
 *
 * @param chain Waveguide power model of the source.
 * @param design The mode design (splitters, alphas, mode powers).
 * @param pmin Required tap power.
 * @param required_margin Minimum acceptable margin for reachable
 *        links (default 0 dB: exactly pmin passes).
 * @param max_leak Maximum tolerated sub-threshold level for
 *        unreachable links, relative to pmin.  Unconstrained by
 *        default: a not-yet-reachable node receiving pmin early is
 *        harmless (receivers filter by address) -- it only means two
 *        adjacent modes collapsed to the same drive power.  Pass a
 *        negative value to demand a real decision gap for the
 *        threshold circuit of Section 3.2.2.
 */
BudgetReport validateDesign(
    const SplitterChain &chain, const MultiModeDesign &design,
    WattPower pmin, DecibelLoss required_margin = DecibelLoss(0.0),
    DecibelLoss max_leak = unconstrainedLeak);

} // namespace mnoc::optics

#endif // MNOC_OPTICS_LINK_BUDGET_HH
