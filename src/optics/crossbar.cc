#include "optics/crossbar.hh"

#include "common/log.hh"

namespace mnoc::optics {

OpticalCrossbar::OpticalCrossbar(const SerpentineLayout &layout,
                                 const DeviceParams &params)
    : layout_(layout), params_(params)
{
    params_.validate();
    int n = layout_.numNodes();
    chains_.reserve(n);
    broadcastDesigns_.reserve(n);

    double pmin = params_.pminAtTap().watts();
    for (int source = 0; source < n; ++source) {
        chains_.push_back(
            std::make_unique<SplitterChain>(layout_, params_, source));
        std::vector<double> targets(n, pmin);
        targets[source] = 0.0;
        broadcastDesigns_.push_back(chains_.back()->design(targets));
    }
}

const SplitterChain &
OpticalCrossbar::chain(int source) const
{
    panicIf(source < 0 || source >= numNodes(), "source out of range");
    return *chains_[source];
}

WattPower
OpticalCrossbar::broadcastPower(int source) const
{
    return broadcastDesign(source).injectedPower;
}

const ChainDesign &
OpticalCrossbar::broadcastDesign(int source) const
{
    panicIf(source < 0 || source >= numNodes(), "source out of range");
    return broadcastDesigns_[source];
}

} // namespace mnoc::optics
