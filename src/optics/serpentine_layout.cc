#include "optics/serpentine_layout.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace mnoc::optics {

SerpentineLayout::SerpentineLayout(int num_nodes, Meters waveguide_length)
    : numNodes_(num_nodes), waveguideLength_(waveguide_length)
{
    fatalIf(num_nodes < 2, "serpentine layout needs at least 2 nodes");
    fatalIf(waveguide_length <= Meters(0.0),
            "waveguide length must be positive");
    nodeSpacing_ = waveguideLength_ / static_cast<double>(numNodes_ - 1);

    gridCols_ = static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(numNodes_))));
    gridRows_ = (numNodes_ + gridCols_ - 1) / gridCols_;
}

Meters
SerpentineLayout::arcPosition(int node) const
{
    panicIf(node < 0 || node >= numNodes_, "node index out of range");
    return nodeSpacing_ * static_cast<double>(node);
}

Meters
SerpentineLayout::distanceBetween(int a, int b) const
{
    return abs(arcPosition(a) - arcPosition(b));
}

int
SerpentineLayout::intermediateNodes(int a, int b) const
{
    panicIf(a < 0 || a >= numNodes_ || b < 0 || b >= numNodes_,
            "node index out of range");
    int gap = std::abs(a - b);
    return gap > 1 ? gap - 1 : 0;
}

Meters
SerpentineLayout::maxReachDistance(int source) const
{
    Meters to_front = arcPosition(source);
    Meters to_back = waveguideLength_ - to_front;
    return std::max(to_front, to_back);
}

std::pair<int, int>
SerpentineLayout::gridCoordinate(int node) const
{
    panicIf(node < 0 || node >= numNodes_, "node index out of range");
    int row = node / gridCols_;
    int col = node % gridCols_;
    if (row % 2 == 1)
        col = gridCols_ - 1 - col; // serpentine rows alternate direction
    return {col, row};
}

std::pair<int, int>
SerpentineLayout::gridShape() const
{
    return {gridCols_, gridRows_};
}

} // namespace mnoc::optics
