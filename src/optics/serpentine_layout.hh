/**
 * @file
 * Serpentine waveguide layout for the SWMR mNoC crossbar.
 *
 * Every source owns dedicated waveguide(s) that snake past all N nodes in
 * the same order (paper Section 4.4).  Node k therefore sits at arc
 * position k * length / (N - 1) on every waveguide; a source's own index
 * determines how far its light must travel to either end, which creates
 * the chip-wide power profile of Figure 6.
 */

#ifndef MNOC_OPTICS_SERPENTINE_LAYOUT_HH
#define MNOC_OPTICS_SERPENTINE_LAYOUT_HH

#include <cstddef>
#include <utility>

#include "common/units.hh"

namespace mnoc::optics {

/**
 * Geometry of a serpentine SWMR layout: node arc positions along each
 * waveguide and the corresponding 2D grid placement on the die.
 */
class SerpentineLayout
{
  public:
    /**
     * @param num_nodes Number of crossbar ports (sources = destinations).
     * @param waveguide_length Total serpentine length
     *        (the paper assumes ~18 cm for a 400 mm^2 die).
     */
    SerpentineLayout(int num_nodes, Meters waveguide_length);

    /** Number of nodes on each waveguide. */
    int numNodes() const { return numNodes_; }

    /** Total waveguide length. */
    Meters waveguideLength() const { return waveguideLength_; }

    /** Arc-length position of @p node along the waveguide. */
    Meters arcPosition(int node) const;

    /** Waveguide distance between two nodes. */
    Meters distanceBetween(int a, int b) const;

    /** Number of intermediate nodes strictly between @p a and @p b. */
    int intermediateNodes(int a, int b) const;

    /**
     * Longest waveguide distance from @p source to any node.  Sources
     * near the middle of the serpentine have the smallest value (half
     * the waveguide); end sources must span the whole length.
     */
    Meters maxReachDistance(int source) const;

    /**
     * 2D grid coordinate of @p node on the die, following the serpentine
     * (boustrophedon) order over a near-square grid.  Used for die-level
     * visualization and for electrical-mesh distance estimates.
     */
    std::pair<int, int> gridCoordinate(int node) const;

    /** Grid dimensions (columns, rows). */
    std::pair<int, int> gridShape() const;

  private:
    int numNodes_;
    Meters waveguideLength_;
    Meters nodeSpacing_;
    int gridCols_;
    int gridRows_;
};

/** Default serpentine length for a 400 mm^2 die (paper Section 5.1). */
inline constexpr Meters defaultWaveguideLength{0.18};

} // namespace mnoc::optics

#endif // MNOC_OPTICS_SERPENTINE_LAYOUT_HH
