#include "optics/link_budget.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/units.hh"

namespace mnoc::optics {

double
linkBitErrorRate(WattPower received, WattPower pmin, double q_at_pmin)
{
    fatalIf(pmin <= WattPower(0.0), "pmin must be positive");
    fatalIf(q_at_pmin <= 0.0, "Q factor must be positive");
    if (received <= WattPower(0.0))
        return 0.5; // no light: coin flip
    double q = q_at_pmin * (received / pmin);
    return 0.5 * std::erfc(q / std::sqrt(2.0));
}

BudgetReport
validateReceivedPowers(
    const std::vector<std::vector<double>> &received_per_mode,
    const std::vector<int> &mode_of_dest, int source, WattPower pmin,
    DecibelLoss required_margin, DecibelLoss max_leak)
{
    int n = static_cast<int>(mode_of_dest.size());
    int num_modes = static_cast<int>(received_per_mode.size());
    fatalIf(num_modes < 1, "design has no modes");
    fatalIf(source < 0 || source >= n, "source index out of range");
    fatalIf(pmin <= WattPower(0.0), "pmin must be positive");

    BudgetReport report;
    report.worstReachableMargin = DecibelLoss(1e9);
    report.worstUnreachableLeak = DecibelLoss(-1e9);

    for (int mode = 0; mode < num_modes; ++mode) {
        const auto &received = received_per_mode[mode];
        fatalIf(static_cast<int>(received.size()) != n,
                "received power vector size mismatch");
        for (int dest = 0; dest < n; ++dest) {
            if (dest == source)
                continue;
            LinkBudget link;
            link.mode = mode;
            link.dest = dest;
            link.receivedPower = WattPower(received[dest]);
            link.reachable = mode_of_dest[dest] <= mode;
            link.margin =
                received[dest] > 0.0
                    ? DecibelLoss(ratioToDb(received[dest] /
                                            pmin.watts()))
                    : DecibelLoss(-1e9);
            link.bitErrorRate =
                linkBitErrorRate(link.receivedPower, pmin);
            if (link.reachable) {
                report.worstReachableMargin =
                    std::min(report.worstReachableMargin, link.margin);
            } else {
                report.worstUnreachableLeak =
                    std::max(report.worstUnreachableLeak, link.margin);
            }
            report.links.push_back(link);
        }
    }

    report.ok =
        report.worstReachableMargin >=
            required_margin - DecibelLoss(1e-9) &&
        report.worstUnreachableLeak <= max_leak;
    return report;
}

BudgetReport
validateDesign(const SplitterChain &chain,
               const MultiModeDesign &design, WattPower pmin,
               DecibelLoss required_margin, DecibelLoss max_leak)
{
    int n = chain.numNodes();
    int num_modes = static_cast<int>(design.modePower.size());
    fatalIf(num_modes < 1, "design has no modes");
    fatalIf(static_cast<int>(design.modeOfDest.size()) != n,
            "design size mismatch");

    std::vector<std::vector<double>> received_per_mode;
    received_per_mode.reserve(num_modes);
    for (int mode = 0; mode < num_modes; ++mode)
        received_per_mode.push_back(
            chain.evaluate(design.chain, design.modePower[mode]));
    return validateReceivedPowers(received_per_mode, design.modeOfDest,
                                  chain.source(), pmin, required_margin,
                                  max_leak);
}

} // namespace mnoc::optics
