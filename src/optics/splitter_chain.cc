#include "optics/splitter_chain.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/units.hh"

namespace mnoc::optics {

SplitterChain::SplitterChain(const SerpentineLayout &layout,
                             const DeviceParams &params, int source)
    : layout_(layout), params_(params), source_(source)
{
    params_.validate();
    int n = layout_.numNodes();
    fatalIf(source < 0 || source >= n, "source index out of range");

    // LED output -> coupler -> source directional splitter.
    sourceFeedTransmission_ =
        params_.couplerLoss.toTransmission() *
        params_.splitterInsertion.toTransmission();

    // Loss convention (see header): pass-through light suffers only
    // propagation loss; the splitter insertion loss applies to the
    // diverted branch (weakly coupled taps), and once at the source's
    // own directional splitter.  Charging the insertion loss to every
    // pass-through would accumulate >50 dB across a radix-256
    // serpentine and contradict the paper's scalability analysis.
    LinearFactor tap_t = params_.splitterInsertion.toTransmission();
    tapAtten_.assign(n, LinearFactor(0.0));
    for (int dest = 0; dest < n; ++dest) {
        if (dest == source_)
            continue;
        LinearFactor trans = sourceFeedTransmission_ * tap_t;
        trans *= params_
                     .propagationLoss(
                         layout_.distanceBetween(source_, dest))
                     .toTransmission();
        tapAtten_[dest] = trans.inverse();
    }

    // Per-segment propagation transmissions, hoisted out of the
    // design/evaluate/lossBreakdown walks: each dB->linear conversion
    // is a pow(), and the walks touch every segment once per call, so
    // caching turns the inner loops into pure multiply-adds over a
    // contiguous array.  The cached values are the same doubles the
    // on-the-fly conversion produced.
    segTrans_.reserve(n > 0 ? n - 1 : 0);
    for (int a = 0; a + 1 < n; ++a)
        segTrans_.push_back(
            params_.propagationLoss(layout_.distanceBetween(a, a + 1))
                .toTransmission());
}

LinearFactor
SplitterChain::tapAttenuation(int dest) const
{
    panicIf(dest < 0 || dest >= numNodes(), "destination out of range");
    panicIf(dest == source_, "a source has no tap on its own waveguide");
    return tapAtten_[dest];
}

LinearFactor
SplitterChain::segmentTransmission(int a) const
{
    return segTrans_[static_cast<std::size_t>(a)];
}

ChainDesign
SplitterChain::design(const std::vector<double> &tap_targets) const
{
    int n = numNodes();
    fatalIf(static_cast<int>(tap_targets.size()) != n,
            "targets size must equal node count");
    fatalIf(tap_targets[source_] != 0.0,
            "the source's own target must be zero");
    for (double t : tap_targets)
        fatalIf(t < 0.0, "received-power targets must be non-negative");

    ChainDesign out;
    out.source = source_;
    out.targets = tap_targets;
    out.splitterFraction.assign(n, 0.0);

    const double tap_t =
        params_.splitterInsertion.toTransmission().value();

    // Per-arm backward recurrence.  W_j (power arriving at node j's
    // splitter input) must cover the tap's diversion -- the target
    // inflated by the tap's insertion loss -- plus everything the rest
    // of the arm needs after the next segment's propagation loss:
    //     W_j = t_j / tap_t + W_next / seg(j, next).
    auto solve_arm = [&](int step) -> double {
        int last = step > 0 ? n - 1 : 0;
        int tail = -1; // farthest node on this arm that needs power
        for (int j = last; j != source_; j -= step) {
            if (tap_targets[j] > 0.0) {
                tail = j;
                break;
            }
        }
        if (tail == -1)
            return 0.0;

        double next_need = 0.0; // W of the node one hop farther out
        for (int j = tail; j != source_; j -= step) {
            double diverted = tap_targets[j] / tap_t;
            double arriving = diverted;
            if (next_need > 0.0) {
                int seg_lo = std::min(j, j + step);
                arriving +=
                    next_need / segmentTransmission(seg_lo).value();
            }
            if (arriving > 0.0)
                out.splitterFraction[j] = diverted / arriving;
            next_need = arriving;
        }
        // Undo the segment between the source and the first arm node.
        int seg_lo = std::min(source_, source_ + step);
        return next_need / segmentTransmission(seg_lo).value();
    };

    double left_need = source_ > 0 ? solve_arm(-1) : 0.0;
    double right_need = source_ < n - 1 ? solve_arm(+1) : 0.0;

    double total_arm_power = left_need + right_need;
    out.injectedPower =
        WattPower(total_arm_power) / sourceFeedTransmission_;
    out.splitterFraction[source_] =
        total_arm_power > 0.0 ? left_need / total_arm_power : 0.0;
    return out;
}

std::vector<double>
SplitterChain::evaluate(const ChainDesign &design,
                        WattPower injected_power) const
{
    return evaluate(design, injected_power, {});
}

std::vector<double>
SplitterChain::evaluate(const ChainDesign &design,
                        WattPower injected_power,
                        const std::vector<double> &splitter_scale) const
{
    int n = numNodes();
    panicIf(design.source != source_, "design is for a different source");
    panicIf(static_cast<int>(design.splitterFraction.size()) != n,
            "design size mismatch");
    panicIf(!splitter_scale.empty() &&
                static_cast<int>(splitter_scale.size()) != n,
            "splitter scale size mismatch");

    auto fraction = [&](int j) {
        double s = design.splitterFraction[j];
        if (!splitter_scale.empty()) {
            // Scale the split *ratio* s/(1-s): s' = s*k/(s*k + 1-s).
            // Endpoints are fixed (s=0 stays 0, s=1 stays 1), interior
            // fractions stay interior, and for small s this reduces to
            // plain s*k.
            double k = std::max(0.0, splitter_scale[j]);
            double num = s * k;
            double den = num + (1.0 - s);
            s = den > 0.0 ? num / den : 0.0;
        }
        return s;
    };

    const double tap_t =
        params_.splitterInsertion.toTransmission().value();
    std::vector<double> received(n, 0.0);
    double fed = (injected_power * sourceFeedTransmission_).watts();
    double left_frac = fraction(source_);

    auto walk = [&](double power, int step) {
        for (int j = source_ + step; j >= 0 && j < n; j += step) {
            int seg_lo = std::min(j, j - step);
            power *= segmentTransmission(seg_lo).value();
            double s = fraction(j);
            received[j] = power * s * tap_t;
            power *= (1.0 - s);
            if (power <= 0.0)
                break;
        }
    };

    walk(fed * left_frac, -1);
    walk(fed * (1.0 - left_frac), +1);
    return received;
}

ChainLossBreakdown
SplitterChain::lossBreakdown(const ChainDesign &design,
                             WattPower injected_power) const
{
    int n = numNodes();
    panicIf(design.source != source_,
            "design is for a different source");
    panicIf(static_cast<int>(design.splitterFraction.size()) != n,
            "design size mismatch");

    const double coupler_t = params_.couplerLoss.toTransmission().value();
    const double split_t =
        params_.splitterInsertion.toTransmission().value();
    const double tap_t = split_t;

    ChainLossBreakdown out;
    out.injected = injected_power.watts();
    // LED output -> coupler -> source directional splitter; what the
    // two arms are fed is what survives both.
    out.sourceCoupling = out.injected * (1.0 - coupler_t);
    double after_coupler = out.injected * coupler_t;
    out.sourceSplit = after_coupler * (1.0 - split_t);
    double fed = after_coupler * split_t;
    double left_frac = design.splitterFraction[source_];

    // Mirror of evaluate()'s walk, with each subtraction booked to
    // the bucket that physically absorbs it.
    auto walk = [&](double power, int step) {
        for (int j = source_ + step; j >= 0 && j < n; j += step) {
            int seg_lo = std::min(j, j - step);
            double seg_t = segmentTransmission(seg_lo).value();
            out.waveguide += power * (1.0 - seg_t);
            power *= seg_t;
            double s = design.splitterFraction[j];
            double diverted = power * s;
            out.tapInsertion += diverted * (1.0 - tap_t);
            double at_tap = diverted * tap_t;
            out.receiverCoupling += at_tap * (1.0 - coupler_t);
            out.delivered += at_tap * coupler_t;
            power *= (1.0 - s);
            if (power <= 0.0)
                break;
        }
        out.residual += power;
    };

    walk(fed * left_frac, -1);
    walk(fed * (1.0 - left_frac), +1);

    // Conservation self-check: every injected watt must land in
    // exactly one bucket.  A violation is a modeling bug, not a bad
    // user request.
    double accounted = out.accountedFor();
    double scale = std::max(out.injected, 1e-30);
    panicIf(std::abs(accounted - out.injected) > 1e-9 * scale,
            "splitter-chain loss breakdown violates power "
            "conservation for source " + std::to_string(source_));
    return out;
}

} // namespace mnoc::optics
