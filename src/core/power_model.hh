/**
 * @file
 * mNoC power model: turns a captured trace plus a power topology and
 * its splitter designs into the paper's power breakdown (QD LED source
 * power, O/E conversion power, electrical buffer power).
 *
 * The O/E model follows Section 2.2 / Figure 2: per-receiver O/E power
 * decreases linearly with the photodetector mIOP (a low mIOP needs a
 * high-gain photoreceiver).  The default coefficients are calibrated so
 * that at 10 uW mIOP the QD LED source is ~80% of total broadcast
 * power, and O/E dominates at 1 uW, reproducing Figure 2's crossover;
 * the calibration is recorded in EXPERIMENTS.md.
 */

#ifndef MNOC_CORE_POWER_MODEL_HH
#define MNOC_CORE_POWER_MODEL_HH

#include <vector>

#include "core/power_topology.hh"
#include "noc/config.hh"
#include "optics/crossbar.hh"
#include "sim/trace.hh"

namespace mnoc {
class ThreadPool;
namespace sim {
class TraceReader;
} // namespace sim
} // namespace mnoc

namespace mnoc::core {

class EnergyLedger;

/** Electrical-side power parameters. */
struct PowerParams
{
    noc::NetworkConfig net;
    /** Per-receiver O/E power at zero mIOP. */
    WattPower oeBase{1.0e-3};
    /** O/E power reduction per watt of mIOP (dimensionless W/W). */
    double oeSlopePerWatt = 61.0;
    /** O/E power floor per receiver. */
    WattPower oeMin{0.05e-3};
    /** Buffer energy per flit per endpoint, in joules. */
    double bufferEnergyPerFlit = 5.0e-12;

    /** Per-receiver O/E power for a photodetector with @p miop. */
    WattPower
    oePowerPerReceiver(WattPower miop) const
    {
        WattPower p = oeBase - oeSlopePerWatt * miop;
        return p > oeMin ? p : oeMin;
    }
};

/** Power decomposition in watts (the Figure 10 categories). */
struct PowerBreakdown
{
    double source = 0.0;      ///< QD LED (or laser-modulator) drive
    double oe = 0.0;          ///< O/E + E/O conversion
    double electrical = 0.0;  ///< buffers, links, routers
    double ringHeating = 0.0; ///< rNoC ring thermal trimming
    double laser = 0.0;       ///< rNoC external laser
    double reconfig = 0.0;    ///< runtime reconfiguration actions

    double
    total() const
    {
        return source + oe + electrical + ringHeating + laser +
               reconfig;
    }
};

/** A fully designed mNoC: topology plus per-source splitter designs. */
struct MnocDesign
{
    GlobalPowerTopology topology;
    /** One multi-mode design per source. */
    std::vector<optics::MultiModeDesign> sources;

    /** Injected optical power used by @p source to reach @p dest. */
    WattPower powerFor(int source, int dest) const;
};

/**
 * Computes mNoC power from traces.  The splitter designs are produced
 * once per (topology, design-time weighting) pair and then evaluated
 * against any number of traces.
 */
class MnocPowerModel
{
  public:
    MnocPowerModel(const optics::OpticalCrossbar &crossbar,
                   const PowerParams &params = {});

    /**
     * Design splitters for @p topology with per-source mode weights
     * derived from @p design_flow (flits between cores at design time).
     * Sources with no design traffic fall back to uniform
     * per-destination weights.
     *
     * @param design_margin Extra margin designed into every tap
     *        target: splitters are solved for pmin inflated by this
     *        many dB, so every reachable link clears the nominal
     *        threshold with at least this margin.  The hardening loop
     *        raises it to buy yield under device variation.
     */
    MnocDesign designFor(const GlobalPowerTopology &topology,
                         const FlowMatrix &design_flow,
                         DecibelLoss design_margin = DecibelLoss(0.0))
        const;

    /** Design with uniform per-destination weights (the U designs). */
    MnocDesign designUniform(const GlobalPowerTopology &topology,
                             DecibelLoss design_margin =
                                 DecibelLoss(0.0)) const;

    /**
     * Design with fixed per-mode traffic fractions shared by every
     * source (e.g. {0.66, 0.33}; Section 5.6's weighting sweep).
     */
    MnocDesign designWithFractions(
        const GlobalPowerTopology &topology,
        const std::vector<double> &mode_fractions,
        DecibelLoss design_margin = DecibelLoss(0.0)) const;

    /**
     * Average power over the traced interval.  Implemented as the
     * total over the energy-attribution ledger, so the summary and
     * the per-cell attribution can never disagree.
     */
    PowerBreakdown evaluate(const MnocDesign &design,
                            const sim::Trace &trace) const;

    /**
     * Attribute every message of @p trace to a (source, mode, epoch)
     * energy cell and compute per-(source, mode) optical loss
     * breakdowns (core/energy_ledger.hh).  Traces without epoch
     * buckets get a single epoch spanning the run.
     */
    EnergyLedger buildLedger(const MnocDesign &design,
                             const sim::Trace &trace) const;

    /**
     * Streamed ledger build: attribute a trace pulled batch by batch
     * from @p reader without ever materializing it, optionally
     * re-expressed in core coordinates under @p thread_to_core (an
     * already-validated permutation).  Epoch shards fan out across
     * @p pool (the global pool when null) into disjoint ledger cells,
     * so the result is bit-identical to the whole-file build at any
     * thread count, while peak memory stays one epoch per worker.
     */
    EnergyLedger buildLedger(
        const MnocDesign &design, sim::TraceReader &reader,
        const std::vector<int> *thread_to_core = nullptr,
        ThreadPool *pool = nullptr) const;

    /**
     * Fill @p ledger's per-(source, mode) loss breakdowns from
     * @p design's splitter chains, fanning the chain walks across
     * @p pool (disjoint slots; the global pool when null).  The
     * ledger builds call this themselves; the adaptive controller
     * calls it to re-attribute losses under the design it finished
     * the run with.
     */
    void attachLosses(const MnocDesign &design, EnergyLedger &ledger,
                      ThreadPool *pool = nullptr) const;

    const optics::OpticalCrossbar &crossbar() const { return crossbar_; }
    const PowerParams &params() const { return params_; }

  private:
    MnocDesign designWithWeights(
        const GlobalPowerTopology &topology,
        const std::vector<std::vector<double>> &weights,
        DecibelLoss design_margin) const;

    /** Bump the ledger build counter and the per-epoch flit series. */
    void recordLedgerMetrics(const EnergyLedger &ledger) const;

    const optics::OpticalCrossbar &crossbar_;
    PowerParams params_;
};

} // namespace mnoc::core

#endif // MNOC_CORE_POWER_MODEL_HH
