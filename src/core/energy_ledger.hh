/**
 * @file
 * Energy-attribution ledger: every message of a traced run accrues
 * its optical, O/E, and electrical energy to a (source, mode, epoch)
 * cell, where epochs are fixed message-count windows captured by the
 * simulator (MNOC_EPOCH_MSGS).  The ledger also carries a per-
 * (source, mode) optical loss breakdown from the splitter-chain walk
 * -- laser-side coupling, splitter insertion, waveguide propagation,
 * receiver coupling, delivered signal, residual -- whose buckets sum
 * to the injected power by photon conservation (self-checked with a
 * panic).  `mnocpt report` and the Figure 10 bench read their
 * numbers from here, so the printed tables and the power model can
 * never drift apart.
 *
 * Determinism: the ledger is a pure function of (design, trace) and
 * contains no order-dependent folds.  The streamed build fans epoch
 * shards across the thread pool, but every epoch accrues only into
 * its own (source, mode, epoch) cells -- disjoint slots -- so its
 * CSV/JSON renderings are byte-identical at any MNOC_THREADS, and
 * identical to the whole-file build.
 */

#ifndef MNOC_CORE_ENERGY_LEDGER_HH
#define MNOC_CORE_ENERGY_LEDGER_HH

#include <cstdint>
#include <vector>

#include "core/power_model.hh"
#include "optics/splitter_chain.hh"

namespace mnoc::core {

/** Energy accrued by one (source, mode, epoch) attribution cell. */
struct LedgerCell
{
    /** Flits the source sent in this mode during the epoch. */
    std::uint64_t flits = 0;
    /** Time the source's QD LED spent lit for those flits. */
    double txSeconds = 0.0;
    /** QD LED electrical drive energy, in joules. */
    double sourceEnergy = 0.0;
    /** O/E receiver energy across the mode's listeners, in joules. */
    double oeEnergy = 0.0;
    /** Injection/ejection buffer energy, in joules. */
    double electricalEnergy = 0.0;

    double
    totalEnergy() const
    {
        return sourceEnergy + oeEnergy + electricalEnergy;
    }
};

/**
 * Dense (source, mode, epoch) energy attribution for one evaluated
 * trace, plus the per-(source, mode) optical loss breakdown at that
 * mode's injected power.  Traces captured without MNOC_LEDGER have
 * no epoch buckets; the ledger then holds a single epoch covering
 * the whole run, so every consumer works on both kinds of trace.
 */
class EnergyLedger
{
  public:
    EnergyLedger(int num_sources, int num_modes,
                 std::size_t num_epochs, double duration_seconds);

    int numSources() const { return numSources_; }
    int numModes() const { return numModes_; }
    std::size_t numEpochs() const { return numEpochs_; }
    /** Wall-clock span of the traced run, in seconds. */
    double durationSeconds() const { return duration_; }
    /** Messages per epoch window (0 for the single synthetic epoch
     *  of an epoch-free trace). */
    std::uint64_t messagesPerEpoch() const { return epochMsgs_; }

    LedgerCell &cell(int source, int mode, std::size_t epoch);
    const LedgerCell &cell(int source, int mode,
                           std::size_t epoch) const;

    /** Optical loss breakdown for @p source transmitting in
     *  @p mode, computed at that mode's injected power. */
    const optics::ChainLossBreakdown &loss(int source,
                                           int mode) const;

    /**
     * Charge @p joules of reconfiguration energy (drive re-trims,
     * mode failovers and collapses booked by the degradation
     * controller) to @p epoch.  Reconfiguration cells sit beside
     * the per-(source, mode) cells so degraded runs still account
     * for every joule: totalEnergy() and averagePower() include
     * them.
     */
    void addReconfigEnergy(std::size_t epoch, double joules);

    /** Reconfiguration energy charged to @p epoch, in joules. */
    double reconfigEnergy(std::size_t epoch) const;

    /** Total reconfiguration energy across every epoch. */
    double totalReconfigEnergy() const;

    /** Average power over the traced interval; the ledger-sourced
     *  equivalent of MnocPowerModel::evaluate(). */
    PowerBreakdown averagePower() const;

    /** Total attributed energy across every cell, in joules. */
    double totalEnergy() const;

    /** Attributed (non-reconfig) cell energy of one epoch, summed in
     *  (source, mode) order -- the per-epoch term of the
     *  static-vs-adaptive reconciliation and of the journal's
     *  reconcile records. */
    double epochAttributedEnergy(std::size_t epoch) const;

    /** (epoch, source) matrix of average source power per epoch, in
     *  watts -- the `mnocpt report` heatmap. */
    FlowMatrix sourceEpochPower() const;

  private:
    friend class MnocPowerModel;

    std::size_t index(int source, int mode, std::size_t epoch) const;

    int numSources_;
    int numModes_;
    std::size_t numEpochs_;
    double duration_;
    std::uint64_t epochMsgs_ = 0;
    std::vector<LedgerCell> cells_;
    /** Indexed [source * numModes + mode]. */
    std::vector<optics::ChainLossBreakdown> losses_;
    /** Per-epoch reconfiguration-cost cells, in joules. */
    std::vector<double> reconfig_;
};

} // namespace mnoc::core

#endif // MNOC_CORE_ENERGY_LEDGER_HH
