/**
 * @file
 * Power topology types (paper Section 3.1).
 *
 * A local power topology gives, for one source, the minimum power mode
 * in which each destination is reachable.  Mode sets are nested by
 * construction: mode m reaches every destination whose assigned mode is
 * <= m, and the highest mode (numModes - 1) is broadcast.  The global
 * power topology is the union of the locals, one per source.
 */

#ifndef MNOC_CORE_POWER_TOPOLOGY_HH
#define MNOC_CORE_POWER_TOPOLOGY_HH

#include <string>
#include <vector>

#include "common/matrix.hh"

namespace mnoc::core {

/** One source's mode assignment. */
struct LocalPowerTopology
{
    int source = -1;
    int numModes = 1;
    /** Minimum mode per destination; entry at the source is -1. */
    std::vector<int> modeOfDest;

    /** Destinations whose minimum mode is exactly @p mode. */
    std::vector<int> destsUniqueToMode(int mode) const;

    /** Number of destinations reachable in @p mode (cumulative). */
    int reachableCount(int mode) const;

    /** Check structural invariants; fatal on violation. */
    void validate(int num_nodes) const;
};

/** The full crossbar's power topology. */
struct GlobalPowerTopology
{
    int numNodes = 0;
    int numModes = 1;
    std::vector<LocalPowerTopology> locals;

    /** The local topology of @p source. */
    const LocalPowerTopology &local(int source) const;

    /** Single-mode (broadcast-only) topology over @p n nodes. */
    static GlobalPowerTopology singleMode(int n);

    /**
     * Build a global topology from a full mode matrix: entry (s, d) is
     * the minimum mode for s -> d (diagonal ignored).
     */
    static GlobalPowerTopology fromModeMatrix(const Matrix<int> &modes,
                                              int num_modes);

    /** Mode matrix view (source row, destination column; -1 on the
     *  diagonal), the paper's Figure 5 representation. */
    Matrix<int> modeMatrix() const;

    /** Check structural invariants; fatal on violation. */
    void validate() const;
};

/**
 * Graceful degradation step: merge power mode @p mode into the
 * next-higher-power mode @p mode + 1 in every local topology and
 * renumber the modes above it down by one.  Destinations formerly
 * unique to @p mode become reachable only at the higher power, so the
 * result is strictly more conservative; repeated collapses end at the
 * single-mode broadcast topology.  @p mode must be below the highest
 * mode (the broadcast mode cannot be merged upward).
 */
GlobalPowerTopology collapseMode(const GlobalPowerTopology &topology,
                                 int mode);

} // namespace mnoc::core

#endif // MNOC_CORE_POWER_TOPOLOGY_HH
