/**
 * @file
 * End-to-end design facade tying the pieces together with the paper's
 * design notation (Table 5): number of modes (1M/2M/4M), thread
 * mapping (T), mode assignment (N = distance-based, G = general
 * communication-aware, C = clustered), and splitter-design weighting
 * (U = uniform, W = fixed fractions, S = sampled traffic).
 */

#ifndef MNOC_CORE_DESIGNER_HH
#define MNOC_CORE_DESIGNER_HH

#include <string>
#include <vector>

#include "core/baseline_models.hh"
#include "core/builders.hh"
#include "core/comm_aware.hh"
#include "core/power_model.hh"
#include "core/thread_mapper.hh"
#include "faults/yield.hh"
#include "sim/trace.hh"

namespace mnoc::core {

/** Mode-assignment strategies (Table 5's N/G/C). */
enum class Assignment
{
    DistanceBased,  ///< N: nearest groups on the waveguide
    CommAware,      ///< G: frequency-sorted, power-optimized partition
    Clustered,      ///< C(onventional): Figure 5a clusters
};

/** Splitter-design weighting sources (Table 5's U/W/S). */
enum class WeightSource
{
    Uniform,    ///< U: every destination equally likely
    Fractions,  ///< W: fixed per-mode fractions (e.g. 66%/33%)
    DesignFlow, ///< S: sampled traffic (S4 / S12 / app-specific)
};

/** One named design point, e.g. 4M_T_G_S12. */
struct DesignSpec
{
    int numModes = 1;
    MappingMethod mapping = MappingMethod::Identity;
    Assignment assignment = Assignment::DistanceBased;
    WeightSource weights = WeightSource::Uniform;
    /** Per-mode fractions when weights == Fractions. */
    std::vector<double> fractions;
    /** Suffix for the S weighting label ("4", "12", "app"). */
    std::string sampleTag;

    /** The paper's notation for this spec (e.g. "2M_T_N_U"). */
    std::string label() const;
};

/** Knobs of the yield-hardening loop. */
struct ResilienceParams
{
    /** Device-variation sigmas to harden against. */
    faults::VariationSpec variation;
    /** Fraction of Monte Carlo draws that must hold their budgets. */
    double yieldTarget = 0.95;
    /** Draws per yield evaluation. */
    int trials = 200;
    /** Seed of the yield analysis (reports are seed-reproducible). */
    std::uint64_t seed = 1;
    /** Margin added per hardening iteration. */
    DecibelLoss marginStep{0.5};
    /** Largest design margin the QD LED drivers can supply; beyond it
     *  the loop degrades the mode set instead. */
    DecibelLoss maxMargin{6.0};
    /** Thresholds every draw is validated against. */
    faults::YieldCriteria criteria;
};

/** One record of the hardening loop's trajectory. */
struct DegradationStep
{
    enum class Kind
    {
        Margin,  ///< designed and yield-tested at a margin point
        Collapse ///< merged a mode into the next-higher-power mode
    };
    Kind kind = Kind::Margin;
    /** Mode count in effect after this step. */
    int numModes = 0;
    /** Mode merged upward (Collapse steps only). */
    int collapsedMode = -1;
    /** Design margin in effect. */
    DecibelLoss margin;
    /** Measured yield (Margin steps; -1 on Collapse records). */
    double yield = -1.0;
};

/** Serializable outcome of the hardening loop. */
struct ResilienceSummary
{
    double yieldTarget = 0.0;
    int trials = 0;
    std::uint64_t seed = 0;
    faults::VariationSpec spec;
    double finalYield = 0.0;
    DecibelLoss finalMargin;
    int finalNumModes = 0;
    bool metTarget = false;
    /** The degradation path: every margin raise and mode collapse the
     *  loop took, in order. */
    std::vector<DegradationStep> path;
};

/** A hardened design plus the evidence it was hardened on. */
struct ResilientDesign
{
    MnocDesign design;
    /** Yield report of the emitted design. */
    faults::YieldReport yield;
    ResilienceSummary summary;
};

/**
 * Orchestrates mapping, topology construction, splitter design and
 * power evaluation against a shared crossbar and power model.
 */
class Designer
{
  public:
    Designer(const optics::OpticalCrossbar &crossbar,
             const PowerParams &params = {});

    /** Thread-mapping step (per application). */
    MappingResult map(const FlowMatrix &thread_flow,
                      MappingMethod method,
                      const MappingParams &params = {}) const;

    /**
     * Build the mode assignment named by @p spec.
     * @param core_design_flow Design-time traffic in core coordinates
     *        (already permuted by the design-time mapping); only used
     *        by the communication-aware assignment.
     */
    GlobalPowerTopology buildTopology(
        const DesignSpec &spec,
        const FlowMatrix &core_design_flow) const;

    /**
     * Solve the splitter design for @p topology per @p spec.
     * @param design_margin Extra margin designed into every tap
     *        target (see MnocPowerModel::designFor).
     */
    MnocDesign buildDesign(const DesignSpec &spec,
                           const GlobalPowerTopology &topology,
                           const FlowMatrix &core_design_flow,
                           DecibelLoss design_margin =
                               DecibelLoss(0.0)) const;

    /**
     * Harden @p spec's design until its Monte Carlo yield under
     * @p resilience.variation reaches the target, never emitting an
     * invalid design.
     *
     * The loop first buys yield with margin (raising the design's
     * pmin operating point in marginStepDb increments up to
     * maxMarginDb); when margin is exhausted it degrades gracefully by
     * collapsing the worst-failing mode into the next-higher-power
     * mode and restarting the margin sweep, ultimately reaching the
     * single-mode broadcast topology.  Every step is recorded in the
     * returned summary's degradation path.  If even broadcast at
     * maximum margin misses the target, the best design seen is
     * emitted with metTarget == false -- but the emitted design always
     * holds its nominal (unperturbed) link budgets.
     */
    ResilientDesign buildResilientDesign(
        const DesignSpec &spec, const GlobalPowerTopology &topology,
        const FlowMatrix &core_design_flow,
        const ResilienceParams &resilience) const;

    /**
     * Average power of @p design over @p thread_trace run under
     * @p thread_to_core.
     */
    PowerBreakdown evaluate(const MnocDesign &design,
                            const sim::Trace &thread_trace,
                            const std::vector<int> &thread_to_core) const;

    /**
     * Energy-attribution ledger of @p design over @p thread_trace
     * run under @p thread_to_core (core/energy_ledger.hh); the
     * per-cell view behind evaluate()'s averages.
     */
    EnergyLedger buildLedger(
        const MnocDesign &design, const sim::Trace &thread_trace,
        const std::vector<int> &thread_to_core) const;

    /**
     * Streamed equivalent of buildLedger(): attribute the trace at
     * @p trace_path (single file or sharded directory) batch by
     * batch under @p thread_to_core, fanning epoch shards across
     * @p pool (the global pool when null).  Bit-identical to loading
     * the trace and calling buildLedger(), with peak memory bounded
     * by one epoch per worker instead of the whole trace.
     */
    EnergyLedger buildLedgerStreamed(
        const MnocDesign &design, const std::string &trace_path,
        const std::vector<int> &thread_to_core,
        ThreadPool *pool = nullptr) const;

    /** Streamed equivalent of evaluate(): the streamed ledger's
     *  average power, without materializing the trace. */
    PowerBreakdown evaluateStreamed(
        const MnocDesign &design, const std::string &trace_path,
        const std::vector<int> &thread_to_core,
        ThreadPool *pool = nullptr) const;

    const MnocPowerModel &model() const { return model_; }
    const optics::OpticalCrossbar &crossbar() const { return crossbar_; }

  private:
    const optics::OpticalCrossbar &crossbar_;
    MnocPowerModel model_;
};

} // namespace mnoc::core

#endif // MNOC_CORE_DESIGNER_HH
