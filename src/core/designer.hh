/**
 * @file
 * End-to-end design facade tying the pieces together with the paper's
 * design notation (Table 5): number of modes (1M/2M/4M), thread
 * mapping (T), mode assignment (N = distance-based, G = general
 * communication-aware, C = clustered), and splitter-design weighting
 * (U = uniform, W = fixed fractions, S = sampled traffic).
 */

#ifndef MNOC_CORE_DESIGNER_HH
#define MNOC_CORE_DESIGNER_HH

#include <string>
#include <vector>

#include "core/baseline_models.hh"
#include "core/builders.hh"
#include "core/comm_aware.hh"
#include "core/power_model.hh"
#include "core/thread_mapper.hh"
#include "sim/trace.hh"

namespace mnoc::core {

/** Mode-assignment strategies (Table 5's N/G/C). */
enum class Assignment
{
    DistanceBased,  ///< N: nearest groups on the waveguide
    CommAware,      ///< G: frequency-sorted, power-optimized partition
    Clustered,      ///< C(onventional): Figure 5a clusters
};

/** Splitter-design weighting sources (Table 5's U/W/S). */
enum class WeightSource
{
    Uniform,    ///< U: every destination equally likely
    Fractions,  ///< W: fixed per-mode fractions (e.g. 66%/33%)
    DesignFlow, ///< S: sampled traffic (S4 / S12 / app-specific)
};

/** One named design point, e.g. 4M_T_G_S12. */
struct DesignSpec
{
    int numModes = 1;
    MappingMethod mapping = MappingMethod::Identity;
    Assignment assignment = Assignment::DistanceBased;
    WeightSource weights = WeightSource::Uniform;
    /** Per-mode fractions when weights == Fractions. */
    std::vector<double> fractions;
    /** Suffix for the S weighting label ("4", "12", "app"). */
    std::string sampleTag;

    /** The paper's notation for this spec (e.g. "2M_T_N_U"). */
    std::string label() const;
};

/**
 * Orchestrates mapping, topology construction, splitter design and
 * power evaluation against a shared crossbar and power model.
 */
class Designer
{
  public:
    Designer(const optics::OpticalCrossbar &crossbar,
             const PowerParams &params = {});

    /** Thread-mapping step (per application). */
    MappingResult map(const FlowMatrix &thread_flow,
                      MappingMethod method,
                      const MappingParams &params = {}) const;

    /**
     * Build the mode assignment named by @p spec.
     * @param core_design_flow Design-time traffic in core coordinates
     *        (already permuted by the design-time mapping); only used
     *        by the communication-aware assignment.
     */
    GlobalPowerTopology buildTopology(
        const DesignSpec &spec,
        const FlowMatrix &core_design_flow) const;

    /** Solve the splitter design for @p topology per @p spec. */
    MnocDesign buildDesign(const DesignSpec &spec,
                           const GlobalPowerTopology &topology,
                           const FlowMatrix &core_design_flow) const;

    /**
     * Average power of @p design over @p thread_trace run under
     * @p thread_to_core.
     */
    PowerBreakdown evaluate(const MnocDesign &design,
                            const sim::Trace &thread_trace,
                            const std::vector<int> &thread_to_core) const;

    const MnocPowerModel &model() const { return model_; }
    const optics::OpticalCrossbar &crossbar() const { return crossbar_; }

  private:
    const optics::OpticalCrossbar &crossbar_;
    MnocPowerModel model_;
};

} // namespace mnoc::core

#endif // MNOC_CORE_DESIGNER_HH
