#include "core/design_io.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace mnoc::core {

void
saveDesign(const std::string &path, const MnocDesign &design)
{
    design.topology.validate();
    int n = design.topology.numNodes;
    fatalIf(static_cast<int>(design.sources.size()) != n,
            "design is missing per-source solutions");

    std::ofstream out(path);
    fatalIf(!out.is_open(), "cannot open design file: " + path);
    out << std::setprecision(17);
    out << "mnoc-design 1\n";
    out << n << " " << design.topology.numModes << "\n";
    for (int s = 0; s < n; ++s) {
        const auto &local = design.topology.local(s);
        const auto &source = design.sources[s];
        out << "source " << s << "\n";
        out << "modes";
        for (int d = 0; d < n; ++d)
            out << " " << local.modeOfDest[d];
        out << "\n";
        out << "alpha";
        for (double a : source.alpha)
            out << " " << a;
        out << "\n";
        out << "modepower";
        for (double p : source.modePower)
            out << " " << p;
        out << "\n";
        out << "splitters";
        for (double frac : source.chain.splitterFraction)
            out << " " << frac;
        out << "\n";
        out << "injected " << source.chain.injectedPower << " expected "
            << source.expectedPower << "\n";
        out << "targets";
        for (double t : source.chain.targets)
            out << " " << t;
        out << "\n";
    }
}

namespace {

/** Read a labelled vector line: "<label> v0 v1 ...". */
template <typename T>
std::vector<T>
readVectorLine(std::istream &in, const std::string &expect, int count,
               const std::string &path)
{
    std::string label;
    in >> label;
    fatalIf(label != expect,
            "malformed design file (expected '" + expect + "'): " +
                path);
    std::vector<T> values(count);
    for (T &v : values) {
        in >> v;
        fatalIf(in.fail(), "truncated design file: " + path);
    }
    return values;
}

} // namespace

MnocDesign
loadDesign(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open design file: " + path);

    std::string magic;
    int version = 0;
    in >> magic >> version;
    fatalIf(magic != "mnoc-design" || version != 1,
            "unrecognized design file header: " + path);

    int n = 0;
    int num_modes = 0;
    in >> n >> num_modes;
    fatalIf(n < 2 || num_modes < 1 || in.fail(),
            "malformed design dimensions: " + path);

    MnocDesign design;
    design.topology.numNodes = n;
    design.topology.numModes = num_modes;
    design.topology.locals.resize(n);
    design.sources.resize(n);

    for (int s = 0; s < n; ++s) {
        std::string label;
        int index = -1;
        in >> label >> index;
        fatalIf(label != "source" || index != s,
                "malformed design file (source block): " + path);

        auto &local = design.topology.locals[s];
        local.source = s;
        local.numModes = num_modes;
        local.modeOfDest = readVectorLine<int>(in, "modes", n, path);

        auto &source = design.sources[s];
        source.alpha =
            readVectorLine<double>(in, "alpha", num_modes, path);
        source.modePower =
            readVectorLine<double>(in, "modepower", num_modes, path);
        source.chain.source = s;
        source.chain.splitterFraction =
            readVectorLine<double>(in, "splitters", n, path);

        std::string injected_label;
        std::string expected_label;
        in >> injected_label >> source.chain.injectedPower >>
            expected_label >> source.expectedPower;
        fatalIf(injected_label != "injected" ||
                    expected_label != "expected" || in.fail(),
                "malformed design file (powers): " + path);
        source.chain.targets =
            readVectorLine<double>(in, "targets", n, path);
        source.modeOfDest = local.modeOfDest;
    }
    design.topology.validate();
    return design;
}

std::vector<DriveTableEntry>
driveTable(const MnocDesign &design, int source)
{
    const auto &local = design.topology.local(source);
    std::vector<DriveTableEntry> table;
    table.reserve(design.topology.numNodes - 1);
    for (int d = 0; d < design.topology.numNodes; ++d) {
        if (d == source)
            continue;
        DriveTableEntry entry;
        entry.dest = d;
        entry.mode = local.modeOfDest[d];
        entry.drivePower = design.sources[source].modePower[entry.mode];
        table.push_back(entry);
    }
    return table;
}

} // namespace mnoc::core
