#include "core/design_io.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/io.hh"
#include "common/log.hh"

namespace mnoc::core {

void
saveDesign(const std::string &path, const MnocDesign &design,
           const ResilienceSummary *resilience,
           const RunManifest *manifest)
{
    design.topology.validate();
    int n = design.topology.numNodes;
    fatalIf(static_cast<int>(design.sources.size()) != n,
            "design is missing per-source solutions");

    FileWriter writer(path);
    auto &out = writer.stream();
    out << std::setprecision(17);
    out << "mnoc-design 1\n";
    out << n << " " << design.topology.numModes << "\n";
    for (int s = 0; s < n; ++s) {
        const auto &local = design.topology.local(s);
        const auto &source = design.sources[s];
        out << "source " << s << "\n";
        out << "modes";
        for (int d = 0; d < n; ++d)
            out << " " << local.modeOfDest[d];
        out << "\n";
        out << "alpha";
        for (double a : source.alpha)
            out << " " << a;
        out << "\n";
        out << "modepower";
        for (WattPower p : source.modePower)
            out << " " << p.watts();
        out << "\n";
        out << "splitters";
        for (double frac : source.chain.splitterFraction)
            out << " " << frac;
        out << "\n";
        out << "injected " << source.chain.injectedPower.watts()
            << " expected " << source.expectedPower.watts() << "\n";
        out << "targets";
        for (double t : source.chain.targets)
            out << " " << t;
        out << "\n";
    }
    if (resilience) {
        const auto &r = *resilience;
        out << "resilience\n";
        out << "target " << r.yieldTarget << " trials " << r.trials
            << " seed " << r.seed << "\n";
        out << "spec " << r.spec.splitterSigma << " "
            << r.spec.couplerSigma.dB() << " "
            << r.spec.waveguideSigmaPerCm.dB() << " "
            << r.spec.splitterInsertionSigma.dB() << " "
            << r.spec.ledDroopSigma << " " << r.spec.miopSigma.dB()
            << "\n";
        out << "final yield " << r.finalYield << " margin "
            << r.finalMargin.dB() << " modes " << r.finalNumModes
            << " met " << (r.metTarget ? 1 : 0) << "\n";
        out << "steps " << r.path.size() << "\n";
        for (const auto &step : r.path) {
            out << "step "
                << (step.kind == DegradationStep::Kind::Margin
                        ? "margin"
                        : "collapse")
                << " " << step.numModes << " " << step.collapsedMode
                << " " << step.margin.dB() << " " << step.yield << "\n";
        }
    }
    if (manifest) {
        auto lines = manifestLines(*manifest);
        out << "manifest " << lines.size() << "\n";
        for (const auto &line : lines)
            out << line << "\n";
    }
    // Surface a full disk or revoked permissions here, not as a
    // truncated design on the next load.
    writer.close();
}

namespace {

/**
 * Whitespace-separated tokenizer that tracks the current line so every
 * parse error names the file, the 1-based line, and the field being
 * read -- "design.txt:14: field 'alpha': expected a number" instead of
 * a bare "malformed design file".
 */
class Parser
{
  public:
    Parser(std::istream &in, std::string path)
        : in_(in), path_(std::move(path))
    {}

    /** "path:line: field 'name': why" as a fatal error. */
    [[noreturn]] void
    fail(const std::string &field, const std::string &why) const
    {
        fatal(path_ + ":" + std::to_string(line_) + ": field '" +
              field + "': " + why);
    }

    /** Next whitespace-separated token; fatal at end of file. */
    std::string
    token(const std::string &field)
    {
        std::string out;
        int c = in_.get();
        while (c != std::istream::traits_type::eof() &&
               std::isspace(c)) {
            if (c == '\n')
                ++line_;
            c = in_.get();
        }
        while (c != std::istream::traits_type::eof() &&
               !std::isspace(static_cast<unsigned char>(c))) {
            out.push_back(static_cast<char>(c));
            c = in_.get();
        }
        // Leave the delimiter (and its line count) to the next call,
        // so errors about this token report this token's line.
        if (c != std::istream::traits_type::eof())
            in_.unget();
        if (out.empty())
            fail(field, "unexpected end of file");
        return out;
    }

    /** True when only whitespace remains. */
    bool
    atEnd()
    {
        int c = in_.get();
        while (c != std::istream::traits_type::eof() &&
               std::isspace(c)) {
            if (c == '\n')
                ++line_;
            c = in_.get();
        }
        if (c == std::istream::traits_type::eof())
            return true;
        in_.unget();
        return false;
    }

    /** Expect the literal @p keyword next. */
    void
    expect(const std::string &keyword)
    {
        std::string got = token(keyword);
        if (got != keyword)
            fail(keyword, "expected keyword, got '" + got + "'");
    }

    double
    number(const std::string &field)
    {
        std::string tok = token(field);
        std::size_t used = 0;
        double value = 0.0;
        try {
            value = std::stod(tok, &used);
        } catch (const std::exception &) {
            fail(field, "expected a number, got '" + tok + "'");
        }
        if (used != tok.size())
            fail(field, "expected a number, got '" + tok + "'");
        return value;
    }

    long long
    integer(const std::string &field)
    {
        std::string tok = token(field);
        std::size_t used = 0;
        long long value = 0;
        try {
            value = std::stoll(tok, &used);
        } catch (const std::exception &) {
            fail(field, "expected an integer, got '" + tok + "'");
        }
        if (used != tok.size())
            fail(field, "expected an integer, got '" + tok + "'");
        return value;
    }

    std::uint64_t
    unsignedInteger(const std::string &field)
    {
        std::string tok = token(field);
        std::size_t used = 0;
        std::uint64_t value = 0;
        try {
            value = std::stoull(tok, &used);
        } catch (const std::exception &) {
            fail(field, "expected an unsigned integer, got '" + tok +
                            "'");
        }
        if (used != tok.size())
            fail(field,
                 "expected an unsigned integer, got '" + tok + "'");
        return value;
    }

    /** Read "<label> v0 v1 ..." as @p count numbers. */
    std::vector<double>
    numberLine(const std::string &label, int count)
    {
        expect(label);
        std::vector<double> values(static_cast<std::size_t>(count));
        for (double &v : values)
            v = number(label);
        return values;
    }

    /** Read "<label> v0 v1 ..." as @p count integers. */
    std::vector<int>
    integerLine(const std::string &label, int count)
    {
        expect(label);
        std::vector<int> values(static_cast<std::size_t>(count));
        for (int &v : values)
            v = static_cast<int>(integer(label));
        return values;
    }

    /** Fatal unless every value is finite and within [lo, hi]. */
    void
    checkRange(const std::vector<double> &values, double lo, double hi,
               const std::string &field) const
    {
        for (double v : values)
            if (!std::isfinite(v) || v < lo || v > hi)
                fail(field, "value out of range");
    }

  private:
    std::istream &in_;
    std::string path_;
    int line_ = 1;
};

ResilienceSummary
readResilience(Parser &parser)
{
    ResilienceSummary r;
    parser.expect("target");
    r.yieldTarget = parser.number("target");
    parser.expect("trials");
    r.trials = static_cast<int>(parser.integer("trials"));
    parser.expect("seed");
    r.seed = parser.unsignedInteger("seed");
    parser.expect("spec");
    r.spec.splitterSigma = parser.number("spec.splitterSigma");
    r.spec.couplerSigma = DecibelLoss(parser.number("spec.couplerSigma"));
    r.spec.waveguideSigmaPerCm =
        DecibelLoss(parser.number("spec.waveguideSigmaPerCm"));
    r.spec.splitterInsertionSigma =
        DecibelLoss(parser.number("spec.splitterInsertionSigma"));
    r.spec.ledDroopSigma = parser.number("spec.ledDroopSigma");
    r.spec.miopSigma = DecibelLoss(parser.number("spec.miopSigma"));
    parser.expect("final");
    parser.expect("yield");
    r.finalYield = parser.number("final yield");
    parser.expect("margin");
    r.finalMargin = DecibelLoss(parser.number("final margin"));
    parser.expect("modes");
    r.finalNumModes = static_cast<int>(parser.integer("final modes"));
    parser.expect("met");
    r.metTarget = parser.integer("met") != 0;
    parser.expect("steps");
    long long count = parser.integer("steps");
    if (count < 0 || count > 1000000)
        parser.fail("steps", "step count out of range");
    r.spec.validate();
    if (r.trials < 1)
        parser.fail("trials", "must be at least 1");
    if (r.finalNumModes < 1)
        parser.fail("final modes", "must be at least 1");
    if (!std::isfinite(r.finalYield) || r.finalYield < 0.0 ||
        r.finalYield > 1.0)
        parser.fail("final yield", "must lie in [0, 1]");
    if (!std::isfinite(r.finalMargin.dB()) ||
        r.finalMargin < DecibelLoss(0.0))
        parser.fail("final margin", "must be non-negative");
    r.path.resize(static_cast<std::size_t>(count));
    for (auto &step : r.path) {
        parser.expect("step");
        std::string kind = parser.token("step kind");
        if (kind != "margin" && kind != "collapse")
            parser.fail("step kind",
                        "expected 'margin' or 'collapse', got '" +
                            kind + "'");
        step.kind = kind == "margin" ? DegradationStep::Kind::Margin
                                     : DegradationStep::Kind::Collapse;
        step.numModes = static_cast<int>(parser.integer("step modes"));
        step.collapsedMode =
            static_cast<int>(parser.integer("step collapsed mode"));
        step.margin = DecibelLoss(parser.number("step margin"));
        step.yield = parser.number("step yield");
        if (step.numModes < 1)
            parser.fail("step modes", "must be at least 1");
    }
    return r;
}

} // namespace

DesignReport
loadDesignReport(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open design file: " + path);
    Parser parser(in, path);

    std::string magic = parser.token("header");
    long long version = parser.integer("header version");
    if (magic != "mnoc-design" || version != 1)
        parser.fail("header", "unrecognized design file header");

    int n = static_cast<int>(parser.integer("node count"));
    int num_modes = static_cast<int>(parser.integer("mode count"));
    if (n < 2 || n > 1000000)
        parser.fail("node count", "must lie in [2, 1000000]");
    if (num_modes < 1 || num_modes > n)
        parser.fail("mode count", "must lie in [1, node count]");

    DesignReport report;
    auto &design = report.design;
    design.topology.numNodes = n;
    design.topology.numModes = num_modes;
    design.topology.locals.resize(static_cast<std::size_t>(n));
    design.sources.resize(static_cast<std::size_t>(n));

    for (int s = 0; s < n; ++s) {
        parser.expect("source");
        long long index = parser.integer("source index");
        if (index != s)
            parser.fail("source index",
                        "expected " + std::to_string(s) + ", got " +
                            std::to_string(index));

        auto &local = design.topology.locals[s];
        local.source = s;
        local.numModes = num_modes;
        local.modeOfDest = parser.integerLine("modes", n);

        auto &source = design.sources[s];
        source.alpha = parser.numberLine("alpha", num_modes);
        parser.checkRange(source.alpha, 0.0, 1.0, "alpha");
        std::vector<double> mode_power =
            parser.numberLine("modepower", num_modes);
        parser.checkRange(mode_power, 0.0, 1e6, "modepower");
        source.modePower.clear();
        source.modePower.reserve(mode_power.size());
        for (double p : mode_power)
            source.modePower.push_back(WattPower(p));
        source.chain.source = s;
        source.chain.splitterFraction =
            parser.numberLine("splitters", n);
        parser.checkRange(source.chain.splitterFraction, 0.0, 1.0,
                          "splitters");

        parser.expect("injected");
        double injected = parser.number("injected");
        parser.expect("expected");
        double expected = parser.number("expected");
        parser.checkRange({injected, expected}, 0.0, 1e6,
                          "injected/expected");
        source.chain.injectedPower = WattPower(injected);
        source.expectedPower = WattPower(expected);
        source.chain.targets = parser.numberLine("targets", n);
        parser.checkRange(source.chain.targets, 0.0, 1e6, "targets");
        source.modeOfDest = local.modeOfDest;
    }
    design.topology.validate();

    while (!parser.atEnd()) {
        std::string trailer = parser.token("trailer");
        if (trailer == "resilience") {
            if (report.resilience)
                parser.fail("trailer", "duplicate resilience block");
            report.resilience = readResilience(parser);
        } else if (trailer == "manifest") {
            if (report.manifest)
                parser.fail("trailer", "duplicate manifest block");
            long long count = parser.integer("manifest entry count");
            if (count < 0 || count > 1000)
                parser.fail("manifest entry count", "out of range");
            RunManifest manifest;
            for (long long i = 0; i < count; ++i) {
                std::string key = parser.token("manifest key");
                std::string a = parser.token("manifest value");
                std::string b;
                if (key == "env")
                    b = parser.token("manifest env value");
                setManifestField(manifest, key, a, b);
            }
            report.manifest = manifest;
        } else {
            parser.fail("trailer",
                        "trailing garbage '" + trailer + "'");
        }
    }
    return report;
}

MnocDesign
loadDesign(const std::string &path)
{
    return loadDesignReport(path).design;
}

std::vector<DriveTableEntry>
driveTable(const MnocDesign &design, int source)
{
    const auto &local = design.topology.local(source);
    std::vector<DriveTableEntry> table;
    table.reserve(static_cast<std::size_t>(
        design.topology.numNodes - 1));
    for (int d = 0; d < design.topology.numNodes; ++d) {
        if (d == source)
            continue;
        DriveTableEntry entry;
        entry.dest = d;
        entry.mode = local.modeOfDest[d];
        entry.drivePower = design.sources[source].modePower[entry.mode];
        table.push_back(entry);
    }
    return table;
}

} // namespace mnoc::core
