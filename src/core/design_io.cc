#include "core/design_io.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace mnoc::core {

void
saveDesign(const std::string &path, const MnocDesign &design,
           const ResilienceSummary *resilience)
{
    design.topology.validate();
    int n = design.topology.numNodes;
    fatalIf(static_cast<int>(design.sources.size()) != n,
            "design is missing per-source solutions");

    std::ofstream out(path);
    fatalIf(!out.is_open(), "cannot open design file: " + path);
    out << std::setprecision(17);
    out << "mnoc-design 1\n";
    out << n << " " << design.topology.numModes << "\n";
    for (int s = 0; s < n; ++s) {
        const auto &local = design.topology.local(s);
        const auto &source = design.sources[s];
        out << "source " << s << "\n";
        out << "modes";
        for (int d = 0; d < n; ++d)
            out << " " << local.modeOfDest[d];
        out << "\n";
        out << "alpha";
        for (double a : source.alpha)
            out << " " << a;
        out << "\n";
        out << "modepower";
        for (double p : source.modePower)
            out << " " << p;
        out << "\n";
        out << "splitters";
        for (double frac : source.chain.splitterFraction)
            out << " " << frac;
        out << "\n";
        out << "injected " << source.chain.injectedPower << " expected "
            << source.expectedPower << "\n";
        out << "targets";
        for (double t : source.chain.targets)
            out << " " << t;
        out << "\n";
    }
    if (resilience) {
        const auto &r = *resilience;
        out << "resilience\n";
        out << "target " << r.yieldTarget << " trials " << r.trials
            << " seed " << r.seed << "\n";
        out << "spec " << r.spec.splitterSigma << " "
            << r.spec.couplerSigmaDb << " "
            << r.spec.waveguideSigmaDbPerCm << " "
            << r.spec.splitterInsertionSigmaDb << " "
            << r.spec.ledDroopSigma << " " << r.spec.miopSigmaDb
            << "\n";
        out << "final yield " << r.finalYield << " margin "
            << r.finalMarginDb << " modes " << r.finalNumModes
            << " met " << (r.metTarget ? 1 : 0) << "\n";
        out << "steps " << r.path.size() << "\n";
        for (const auto &step : r.path) {
            out << "step "
                << (step.kind == DegradationStep::Kind::Margin
                        ? "margin"
                        : "collapse")
                << " " << step.numModes << " " << step.collapsedMode
                << " " << step.marginDb << " " << step.yield << "\n";
        }
    }
}

namespace {

/** Read a labelled vector line: "<label> v0 v1 ...". */
template <typename T>
std::vector<T>
readVectorLine(std::istream &in, const std::string &expect, int count,
               const std::string &path)
{
    std::string label;
    in >> label;
    fatalIf(label != expect,
            "malformed design file (expected '" + expect + "'): " +
                path);
    std::vector<T> values(count);
    for (T &v : values) {
        in >> v;
        fatalIf(in.fail(), "truncated design file: " + path);
    }
    return values;
}

/** Expect the literal token @p expect next in the stream. */
void
expectToken(std::istream &in, const std::string &expect,
            const std::string &path)
{
    std::string token;
    in >> token;
    fatalIf(in.fail() || token != expect,
            "malformed design file (expected '" + expect + "'): " +
                path);
}

/** Fatal unless every value is finite and within [lo, hi]. */
void
checkRange(const std::vector<double> &values, double lo, double hi,
           const std::string &what, const std::string &path)
{
    for (double v : values)
        fatalIf(!std::isfinite(v) || v < lo || v > hi,
                "design file has " + what + " out of range: " + path);
}

ResilienceSummary
readResilience(std::istream &in, const std::string &path)
{
    ResilienceSummary r;
    expectToken(in, "target", path);
    in >> r.yieldTarget;
    expectToken(in, "trials", path);
    in >> r.trials;
    expectToken(in, "seed", path);
    in >> r.seed;
    expectToken(in, "spec", path);
    in >> r.spec.splitterSigma >> r.spec.couplerSigmaDb >>
        r.spec.waveguideSigmaDbPerCm >>
        r.spec.splitterInsertionSigmaDb >> r.spec.ledDroopSigma >>
        r.spec.miopSigmaDb;
    expectToken(in, "final", path);
    expectToken(in, "yield", path);
    in >> r.finalYield;
    expectToken(in, "margin", path);
    in >> r.finalMarginDb;
    expectToken(in, "modes", path);
    in >> r.finalNumModes;
    expectToken(in, "met", path);
    int met = 0;
    in >> met;
    r.metTarget = met != 0;
    expectToken(in, "steps", path);
    std::size_t count = 0;
    in >> count;
    fatalIf(in.fail() || count > 1000000,
            "malformed resilience block: " + path);
    r.spec.validate();
    fatalIf(r.trials < 1 || r.finalNumModes < 1 ||
                !std::isfinite(r.finalYield) || r.finalYield < 0.0 ||
                r.finalYield > 1.0 || !std::isfinite(r.finalMarginDb) ||
                r.finalMarginDb < 0.0,
            "resilience summary out of range: " + path);
    r.path.resize(count);
    for (auto &step : r.path) {
        expectToken(in, "step", path);
        std::string kind;
        in >> kind >> step.numModes >> step.collapsedMode >>
            step.marginDb >> step.yield;
        fatalIf(in.fail() || (kind != "margin" && kind != "collapse"),
                "malformed degradation step: " + path);
        step.kind = kind == "margin" ? DegradationStep::Kind::Margin
                                     : DegradationStep::Kind::Collapse;
        fatalIf(step.numModes < 1,
                "malformed degradation step: " + path);
    }
    return r;
}

} // namespace

DesignReport
loadDesignReport(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open design file: " + path);

    std::string magic;
    int version = 0;
    in >> magic >> version;
    fatalIf(magic != "mnoc-design" || version != 1,
            "unrecognized design file header: " + path);

    int n = 0;
    int num_modes = 0;
    in >> n >> num_modes;
    fatalIf(in.fail() || n < 2 || n > 1000000 || num_modes < 1 ||
                num_modes > n,
            "malformed design dimensions: " + path);

    DesignReport report;
    auto &design = report.design;
    design.topology.numNodes = n;
    design.topology.numModes = num_modes;
    design.topology.locals.resize(n);
    design.sources.resize(n);

    for (int s = 0; s < n; ++s) {
        std::string label;
        int index = -1;
        in >> label >> index;
        fatalIf(label != "source" || index != s,
                "malformed design file (source block): " + path);

        auto &local = design.topology.locals[s];
        local.source = s;
        local.numModes = num_modes;
        local.modeOfDest = readVectorLine<int>(in, "modes", n, path);

        auto &source = design.sources[s];
        source.alpha =
            readVectorLine<double>(in, "alpha", num_modes, path);
        checkRange(source.alpha, 0.0, 1.0, "alpha values", path);
        source.modePower =
            readVectorLine<double>(in, "modepower", num_modes, path);
        checkRange(source.modePower, 0.0, 1e6, "mode powers", path);
        source.chain.source = s;
        source.chain.splitterFraction =
            readVectorLine<double>(in, "splitters", n, path);
        checkRange(source.chain.splitterFraction, 0.0, 1.0,
                   "splitter fractions", path);

        std::string injected_label;
        std::string expected_label;
        in >> injected_label >> source.chain.injectedPower >>
            expected_label >> source.expectedPower;
        fatalIf(injected_label != "injected" ||
                    expected_label != "expected" || in.fail(),
                "malformed design file (powers): " + path);
        checkRange({source.chain.injectedPower, source.expectedPower},
                   0.0, 1e6, "injected/expected powers", path);
        source.chain.targets =
            readVectorLine<double>(in, "targets", n, path);
        checkRange(source.chain.targets, 0.0, 1e6, "tap targets", path);
        source.modeOfDest = local.modeOfDest;
    }
    design.topology.validate();

    std::string trailer;
    if (in >> trailer) {
        fatalIf(trailer != "resilience",
                "trailing garbage in design file: " + path);
        report.resilience = readResilience(in, path);
        fatalIf(static_cast<bool>(in >> trailer),
                "trailing garbage in design file: " + path);
    }
    return report;
}

MnocDesign
loadDesign(const std::string &path)
{
    return loadDesignReport(path).design;
}

std::vector<DriveTableEntry>
driveTable(const MnocDesign &design, int source)
{
    const auto &local = design.topology.local(source);
    std::vector<DriveTableEntry> table;
    table.reserve(design.topology.numNodes - 1);
    for (int d = 0; d < design.topology.numNodes; ++d) {
        if (d == source)
            continue;
        DriveTableEntry entry;
        entry.dest = d;
        entry.mode = local.modeOfDest[d];
        entry.drivePower = design.sources[source].modePower[entry.mode];
        table.push_back(entry);
    }
    return table;
}

} // namespace mnoc::core
