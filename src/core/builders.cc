#include "core/builders.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace mnoc::core {

GlobalPowerTopology
clusteredTopology(int num_nodes, int cluster_size)
{
    fatalIf(cluster_size < 2, "cluster size must be at least 2");
    fatalIf(num_nodes % cluster_size != 0,
            "node count must be a multiple of the cluster size");
    fatalIf(num_nodes <= cluster_size,
            "need more than one cluster for two modes");

    Matrix<int> modes(num_nodes, num_nodes, 1);
    for (int s = 0; s < num_nodes; ++s) {
        int cluster = s / cluster_size;
        for (int d = cluster * cluster_size;
             d < (cluster + 1) * cluster_size; ++d) {
            modes(s, d) = 0;
        }
    }
    return GlobalPowerTopology::fromModeMatrix(modes, 2);
}

GlobalPowerTopology
hypercubeTopology(int num_nodes)
{
    fatalIf(num_nodes < 4 || (num_nodes & (num_nodes - 1)) != 0,
            "hypercube mapping requires a power-of-two node count >= 4");
    int dims = 0;
    while ((1 << dims) < num_nodes)
        ++dims;

    Matrix<int> modes(num_nodes, num_nodes, 0);
    for (int s = 0; s < num_nodes; ++s)
        for (int d = 0; d < num_nodes; ++d)
            if (d != s)
                modes(s, d) = __builtin_popcount(
                    static_cast<unsigned>(s ^ d)) - 1;
    return GlobalPowerTopology::fromModeMatrix(modes, dims);
}

GlobalPowerTopology
binaryTreeTopology(int num_nodes, int max_modes)
{
    fatalIf(num_nodes < 4, "tree mapping needs at least 4 nodes");
    fatalIf(max_modes < 2, "tree mapping needs at least two modes");

    // Tree hop distance between level-order indices a and b (1-based
    // heap indexing): walk both up to their common ancestor.
    auto tree_hops = [](int a, int b) {
        int ha = a + 1;
        int hb = b + 1;
        int hops = 0;
        while (ha != hb) {
            if (ha > hb)
                ha >>= 1;
            else
                hb >>= 1;
            ++hops;
        }
        return hops;
    };

    Matrix<int> modes(num_nodes, num_nodes, 0);
    for (int s = 0; s < num_nodes; ++s)
        for (int d = 0; d < num_nodes; ++d)
            if (d != s)
                modes(s, d) = std::min(tree_hops(s, d) - 1,
                                       max_modes - 1);
    return GlobalPowerTopology::fromModeMatrix(modes, max_modes);
}

GlobalPowerTopology
distanceBasedTopology(int num_nodes,
                      const std::vector<int> &mode_sizes)
{
    fatalIf(mode_sizes.empty(), "need at least one mode group");
    int sum = std::accumulate(mode_sizes.begin(), mode_sizes.end(), 0);
    fatalIf(sum != num_nodes - 1,
            "mode group sizes must sum to num_nodes - 1");
    for (int size : mode_sizes)
        fatalIf(size < 1, "every mode group must be non-empty");

    int num_modes = static_cast<int>(mode_sizes.size());
    Matrix<int> modes(num_nodes, num_nodes, 0);
    std::vector<int> order(num_nodes);
    for (int s = 0; s < num_nodes; ++s) {
        // Destinations sorted by serpentine (index) distance; ties
        // resolved toward the lower index for determinism.
        order.clear();
        for (int d = 0; d < num_nodes; ++d)
            if (d != s)
                order.push_back(d);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            int da = std::abs(a - s);
            int db = std::abs(b - s);
            return da != db ? da < db : a < b;
        });

        int index = 0;
        for (int m = 0; m < num_modes; ++m)
            for (int k = 0; k < mode_sizes[m]; ++k)
                modes(s, order[index++]) = m;
    }
    return GlobalPowerTopology::fromModeMatrix(modes, num_modes);
}

GlobalPowerTopology
distanceBasedTopology(int num_nodes, int num_modes)
{
    fatalIf(num_modes < 1, "need at least one mode");
    fatalIf(num_nodes - 1 < num_modes,
            "more modes than destinations");
    std::vector<int> sizes(num_modes, (num_nodes - 1) / num_modes);
    int remainder = (num_nodes - 1) % num_modes;
    // Distribute the remainder to the nearest (lowest) modes.
    for (int m = 0; m < remainder; ++m)
        ++sizes[m];
    return distanceBasedTopology(num_nodes, sizes);
}

} // namespace mnoc::core
