/**
 * @file
 * Serialization of complete mNoC designs.
 *
 * A finished design has two consumers (paper Section 3.2.2): the
 * fabrication side needs the per-node splitter fractions of every
 * waveguide, and the runtime side needs each source's table of drive
 * constants (mode of each destination, drive power per mode), which
 * software programs into the QD LED current drivers.  saveDesign()
 * writes both in one line-oriented text file; loadDesign() restores a
 * design that evaluates identically.
 */

#ifndef MNOC_CORE_DESIGN_IO_HH
#define MNOC_CORE_DESIGN_IO_HH

#include <optional>
#include <string>

#include "common/manifest.hh"
#include "core/designer.hh"
#include "core/power_model.hh"

namespace mnoc::core {

/**
 * Write @p design to @p path.  When @p resilience is non-null, the
 * hardening outcome (yield numbers and the degradation path) is
 * appended so downstream consumers can see how the design was hardened
 * and whether it met its yield target.  When @p manifest is non-null,
 * a run-manifest trailer (seed, git SHA, thread count, env knobs) is
 * appended for provenance.
 * @throws FatalError when the file cannot be written.
 */
void saveDesign(const std::string &path, const MnocDesign &design,
                const ResilienceSummary *resilience = nullptr,
                const RunManifest *manifest = nullptr);

/**
 * Read a design written by saveDesign().
 * @throws FatalError on malformed input.
 */
MnocDesign loadDesign(const std::string &path);

/** A loaded design plus its optional hardening record and the
 *  provenance manifest the producing run embedded, when present. */
struct DesignReport
{
    MnocDesign design;
    std::optional<ResilienceSummary> resilience;
    std::optional<RunManifest> manifest;
};

/**
 * Read a design together with its resilience summary, when present.
 * @throws FatalError on malformed input.
 */
DesignReport loadDesignReport(const std::string &path);

/**
 * The software-visible drive table of one source: for each
 * destination, the minimum mode and the QD LED drive power in watts
 * (the "table of constants" of Section 3.2.2).
 */
struct DriveTableEntry
{
    int dest = 0;
    int mode = 0;
    WattPower drivePower;
};

/** Build source @p source's drive table from @p design. */
std::vector<DriveTableEntry> driveTable(const MnocDesign &design,
                                        int source);

} // namespace mnoc::core

#endif // MNOC_CORE_DESIGN_IO_HH
