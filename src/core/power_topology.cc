#include "core/power_topology.hh"

#include "common/log.hh"

namespace mnoc::core {

std::vector<int>
LocalPowerTopology::destsUniqueToMode(int mode) const
{
    std::vector<int> out;
    for (int d = 0; d < static_cast<int>(modeOfDest.size()); ++d)
        if (d != source && modeOfDest[d] == mode)
            out.push_back(d);
    return out;
}

int
LocalPowerTopology::reachableCount(int mode) const
{
    int count = 0;
    for (int d = 0; d < static_cast<int>(modeOfDest.size()); ++d)
        if (d != source && modeOfDest[d] <= mode)
            ++count;
    return count;
}

void
LocalPowerTopology::validate(int num_nodes) const
{
    fatalIf(source < 0 || source >= num_nodes,
            "local topology source out of range");
    fatalIf(numModes < 1, "need at least one power mode");
    fatalIf(static_cast<int>(modeOfDest.size()) != num_nodes,
            "mode assignment must cover every node");
    fatalIf(modeOfDest[source] != -1,
            "the source's own entry must be -1");
    std::vector<bool> mode_used(numModes, false);
    for (int d = 0; d < num_nodes; ++d) {
        if (d == source)
            continue;
        int m = modeOfDest[d];
        fatalIf(m < 0 || m >= numModes,
                "destination mode out of range");
        mode_used[m] = true;
    }
    // The highest mode must be non-empty so that it is the true
    // broadcast power; lower modes may be empty in degenerate designs.
    fatalIf(num_nodes > 1 && !mode_used[numModes - 1],
            "highest power mode reaches no unique destination");
}

const LocalPowerTopology &
GlobalPowerTopology::local(int source) const
{
    fatalIf(source < 0 || source >= numNodes, "source out of range");
    return locals[source];
}

GlobalPowerTopology
GlobalPowerTopology::singleMode(int n)
{
    fatalIf(n < 2, "topology needs at least two nodes");
    GlobalPowerTopology g;
    g.numNodes = n;
    g.numModes = 1;
    g.locals.resize(n);
    for (int s = 0; s < n; ++s) {
        auto &l = g.locals[s];
        l.source = s;
        l.numModes = 1;
        l.modeOfDest.assign(n, 0);
        l.modeOfDest[s] = -1;
    }
    return g;
}

GlobalPowerTopology
GlobalPowerTopology::fromModeMatrix(const Matrix<int> &modes,
                                    int num_modes)
{
    fatalIf(modes.rows() != modes.cols(), "mode matrix must be square");
    int n = static_cast<int>(modes.rows());
    GlobalPowerTopology g;
    g.numNodes = n;
    g.numModes = num_modes;
    g.locals.resize(n);
    for (int s = 0; s < n; ++s) {
        auto &l = g.locals[s];
        l.source = s;
        l.numModes = num_modes;
        l.modeOfDest.resize(n);
        for (int d = 0; d < n; ++d)
            l.modeOfDest[d] = d == s ? -1 : modes(s, d);
    }
    g.validate();
    return g;
}

Matrix<int>
GlobalPowerTopology::modeMatrix() const
{
    Matrix<int> out(numNodes, numNodes, -1);
    for (int s = 0; s < numNodes; ++s)
        for (int d = 0; d < numNodes; ++d)
            out(s, d) = locals[s].modeOfDest[d];
    return out;
}

void
GlobalPowerTopology::validate() const
{
    fatalIf(numNodes < 2, "topology needs at least two nodes");
    fatalIf(static_cast<int>(locals.size()) != numNodes,
            "need one local topology per source");
    for (int s = 0; s < numNodes; ++s) {
        fatalIf(locals[s].source != s,
                "local topology source index mismatch");
        fatalIf(locals[s].numModes != numModes,
                "this library uses a uniform mode count per source");
        locals[s].validate(numNodes);
    }
}

GlobalPowerTopology
collapseMode(const GlobalPowerTopology &topology, int mode)
{
    topology.validate();
    fatalIf(mode < 0 || mode >= topology.numModes - 1,
            "can only collapse a mode into a higher-power one");

    GlobalPowerTopology out = topology;
    out.numModes = topology.numModes - 1;
    for (auto &local : out.locals) {
        local.numModes = out.numModes;
        for (int &m : local.modeOfDest) {
            if (m > mode)
                --m; // modes above shift down; mode+1 absorbs mode
        }
    }
    out.validate();
    return out;
}

} // namespace mnoc::core
