/**
 * @file
 * Power models of the two baselines the paper compares against: the
 * ring-resonator clustered crossbar (rNoC) and the clustered mNoC
 * (c_mNoC), both radix-64 optical crossbars with 4-node electrical
 * clusters (paper Sections 2, 5.1 and 5.7).
 */

#ifndef MNOC_CORE_BASELINE_MODELS_HH
#define MNOC_CORE_BASELINE_MODELS_HH

#include <memory>

#include "core/power_model.hh"
#include "optics/crossbar.hh"
#include "sim/trace.hh"

namespace mnoc::core {

/** rNoC technology parameters. */
struct RnocParams
{
    /**
     * Number of trimmed rings.  Calibrated so that ring trimming costs
     * the 23 W the paper reports for the clustered radix-64 crossbar
     * at 20 uW/ring (Section 5.1); the structural estimate and the
     * calibration are discussed in EXPERIMENTS.md.
     */
    long long ringCount = 1150000;
    /** Trimming power per ring over a 20 K range (favors rNoC). */
    double ringTrimPerRing = 20.0e-6;
    /** Activity-independent external laser power, in watts. */
    double laserPower = 5.0;
    /** rNoC photodetector mIOP (1 uW, favoring rNoC; Section 5.7). */
    WattPower miop{1.0e-6};
    /** Crossbar radix (clusters). */
    int radix = 64;
    /** Cores per cluster. */
    int clusterSize = 4;
    /** Electrical router energy per flit traversal, in joules. */
    double routerEnergyPerFlit = 15.0e-12;
    /** Electrical link energy per flit, in joules. */
    double elinkEnergyPerFlit = 4.0e-12;
};

/** Ring-resonator clustered crossbar power model. */
class RnocPowerModel
{
  public:
    /**
     * @param params rNoC parameters.
     * @param electrical Shared electrical/O-E coefficients.
     */
    RnocPowerModel(const RnocParams &params,
                   const PowerParams &electrical = {});

    /** Average power over a (core-granularity) traced interval. */
    PowerBreakdown evaluate(const sim::Trace &trace) const;

    const RnocParams &params() const { return params_; }

  private:
    RnocParams params_;
    PowerParams electrical_;
};

/** c_mNoC parameters: mNoC optics on a radix-64 clustered topology. */
struct CmnocParams
{
    optics::DeviceParams optics;
    /** Crossbar radix (clusters). */
    int radix = 64;
    /** Cores per cluster. */
    int clusterSize = 4;
    /** Port-crossbar serpentine length (shorter than the full die
     *  serpentine; ~10 cm for 64 ports on a 400 mm^2 die). */
    Meters waveguideLength{0.10};
    /** Electrical router energy per flit traversal, in joules. */
    double routerEnergyPerFlit = 15.0e-12;
    /** Electrical link energy per flit, in joules. */
    double elinkEnergyPerFlit = 4.0e-12;
};

/** Clustered mNoC power model (single-mode broadcast per port). */
class CmnocPowerModel
{
  public:
    CmnocPowerModel(const CmnocParams &params = {},
                    const PowerParams &electrical = {});

    /** Average power over a (core-granularity) traced interval. */
    PowerBreakdown evaluate(const sim::Trace &trace) const;

    const CmnocParams &params() const { return params_; }

    /** The port-level optical crossbar (tests). */
    const optics::OpticalCrossbar &portCrossbar() const
    {
        return *crossbar_;
    }

  private:
    CmnocParams params_;
    PowerParams electrical_;
    optics::SerpentineLayout portLayout_;
    std::unique_ptr<optics::OpticalCrossbar> crossbar_;
};

} // namespace mnoc::core

#endif // MNOC_CORE_BASELINE_MODELS_HH
