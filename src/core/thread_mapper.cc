#include "core/thread_mapper.hh"

#include "common/log.hh"
#include "qap/multi_start.hh"
#include "qap/qap.hh"

namespace mnoc::core {

FlowMatrix
powerDistanceMatrix(const optics::OpticalCrossbar &crossbar,
                    MappingObjective objective)
{
    int n = crossbar.numNodes();
    WattPower pmin = crossbar.params().pminAtTap();
    bool pairwise = objective != MappingObjective::SingleModeProfile;
    bool profile = objective != MappingObjective::PairwiseAttenuation;

    FlowMatrix dist(n, n, 0.0);
    for (int a = 0; a < n; ++a) {
        const auto &chain = crossbar.chain(a);
        for (int b = 0; b < n; ++b) {
            if (a == b)
                continue;
            double cost = 0.0;
            if (pairwise)
                cost += (pmin * chain.tapAttenuation(b)).watts();
            if (profile) {
                // Per-packet broadcast drive of the endpoints,
                // amortized per destination; symmetrized so the taboo
                // solver's O(1) updates apply.
                cost += ((crossbar.broadcastPower(a) +
                          crossbar.broadcastPower(b)) /
                         (2.0 * static_cast<double>(n - 1)))
                            .watts();
            }
            dist(a, b) = cost;
        }
    }
    return dist;
}

MappingResult
mapThreads(const optics::OpticalCrossbar &crossbar,
           const FlowMatrix &thread_flow, MappingMethod method,
           const MappingParams &params, MappingObjective objective)
{
    int n = crossbar.numNodes();
    fatalIf(static_cast<int>(thread_flow.rows()) != n ||
            static_cast<int>(thread_flow.cols()) != n,
            "thread flow matrix size mismatch");

    // Symmetrize the flow (the power-distance matrix is symmetric on
    // the serpentine, so only pairwise totals matter) and zero the
    // diagonal so the taboo solver's O(1) delta updates apply.
    FlowMatrix flow(n, n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i != j)
                flow(i, j) = thread_flow(i, j) + thread_flow(j, i);

    qap::QapInstance instance(std::move(flow),
                              powerDistanceMatrix(crossbar, objective));

    MappingResult result;
    auto identity = instance.identity();
    result.identityCost = instance.cost(identity);

    switch (method) {
      case MappingMethod::Identity: {
        result.threadToCore = identity;
        result.qapCost = result.identityCost;
        break;
      }
      case MappingMethod::Taboo: {
        qap::TabooParams tp;
        tp.iterations = params.tabooIterations;
        tp.seed = params.seed;
        auto r = qap::multiStartTaboo(instance, identity, tp,
                                      params.restarts);
        result.threadToCore = r.perm;
        result.qapCost = r.cost;
        break;
      }
      case MappingMethod::Annealing: {
        qap::AnnealingParams ap;
        ap.iterations = params.annealingIterations;
        ap.seed = params.seed;
        auto r = qap::multiStartAnnealing(instance, identity, ap,
                                          params.restarts);
        result.threadToCore = r.perm;
        result.qapCost = r.cost;
        break;
      }
    }
    return result;
}

} // namespace mnoc::core
