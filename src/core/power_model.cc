#include "core/power_model.hh"

#include "common/log.hh"
#include "common/units.hh"
#include "core/energy_ledger.hh"
#include "optics/alpha_optimizer.hh"

namespace mnoc::core {

WattPower
MnocDesign::powerFor(int source, int dest) const
{
    const auto &local = topology.local(source);
    int mode = local.modeOfDest[dest];
    fatalIf(mode < 0, "a source does not transmit to itself");
    return sources[source].modePower[mode];
}

MnocPowerModel::MnocPowerModel(const optics::OpticalCrossbar &crossbar,
                               const PowerParams &params)
    : crossbar_(crossbar), params_(params)
{
    fatalIf(params_.oeBase < WattPower(0.0) ||
                params_.oeMin < WattPower(0.0),
            "O/E power coefficients must be non-negative");
    fatalIf(params_.bufferEnergyPerFlit < 0.0,
            "buffer energy must be non-negative");
}

MnocDesign
MnocPowerModel::designWithWeights(
    const GlobalPowerTopology &topology,
    const std::vector<std::vector<double>> &weights,
    DecibelLoss design_margin) const
{
    topology.validate();
    int n = crossbar_.numNodes();
    fatalIf(topology.numNodes != n, "topology size mismatch");
    fatalIf(design_margin < DecibelLoss(0.0),
            "design margin must be non-negative");

    MnocDesign design;
    design.topology = topology;
    design.sources.reserve(n);
    // Inflating the design-time pmin by the margin makes every
    // reachable link clear the true threshold by that many dB.
    WattPower pmin = crossbar_.params().pminAtTap() *
                     design_margin.toAttenuation();
    for (int s = 0; s < n; ++s) {
        optics::AlphaOptimizer optimizer(crossbar_.chain(s),
                                         topology.local(s).modeOfDest,
                                         weights[s], pmin);
        design.sources.push_back(optimizer.optimize());
    }
    return design;
}

MnocDesign
MnocPowerModel::designFor(const GlobalPowerTopology &topology,
                          const FlowMatrix &design_flow,
                          DecibelLoss design_margin) const
{
    int n = crossbar_.numNodes();
    fatalIf(static_cast<int>(design_flow.rows()) != n ||
            static_cast<int>(design_flow.cols()) != n,
            "design flow matrix size mismatch");

    std::vector<std::vector<double>> weights(n);
    for (int s = 0; s < n; ++s) {
        const auto &local = topology.local(s);
        std::vector<double> w(topology.numModes, 0.0);
        double total = 0.0;
        for (int d = 0; d < n; ++d) {
            if (d == s)
                continue;
            w[local.modeOfDest[d]] += design_flow(s, d);
            total += design_flow(s, d);
        }
        if (total <= 0.0) {
            // No design traffic: weight modes by destination count.
            for (int d = 0; d < n; ++d)
                if (d != s)
                    w[local.modeOfDest[d]] += 1.0;
        }
        weights[s] = std::move(w);
    }
    return designWithWeights(topology, weights, design_margin);
}

MnocDesign
MnocPowerModel::designUniform(const GlobalPowerTopology &topology,
                              DecibelLoss design_margin) const
{
    FlowMatrix uniform(crossbar_.numNodes(), crossbar_.numNodes(), 1.0);
    return designFor(topology, uniform, design_margin);
}

MnocDesign
MnocPowerModel::designWithFractions(
    const GlobalPowerTopology &topology,
    const std::vector<double> &mode_fractions,
    DecibelLoss design_margin) const
{
    fatalIf(static_cast<int>(mode_fractions.size()) !=
                topology.numModes,
            "one fraction per mode required");
    std::vector<std::vector<double>> weights(
        crossbar_.numNodes(), mode_fractions);
    return designWithWeights(topology, weights, design_margin);
}

PowerBreakdown
MnocPowerModel::evaluate(const MnocDesign &design,
                         const sim::Trace &trace) const
{
    return buildLedger(design, trace).averagePower();
}

} // namespace mnoc::core
