#include "core/power_model.hh"

#include "common/log.hh"
#include "common/units.hh"
#include "optics/alpha_optimizer.hh"

namespace mnoc::core {

WattPower
MnocDesign::powerFor(int source, int dest) const
{
    const auto &local = topology.local(source);
    int mode = local.modeOfDest[dest];
    fatalIf(mode < 0, "a source does not transmit to itself");
    return sources[source].modePower[mode];
}

MnocPowerModel::MnocPowerModel(const optics::OpticalCrossbar &crossbar,
                               const PowerParams &params)
    : crossbar_(crossbar), params_(params)
{
    fatalIf(params_.oeBase < WattPower(0.0) ||
                params_.oeMin < WattPower(0.0),
            "O/E power coefficients must be non-negative");
    fatalIf(params_.bufferEnergyPerFlit < 0.0,
            "buffer energy must be non-negative");
}

MnocDesign
MnocPowerModel::designWithWeights(
    const GlobalPowerTopology &topology,
    const std::vector<std::vector<double>> &weights,
    DecibelLoss design_margin) const
{
    topology.validate();
    int n = crossbar_.numNodes();
    fatalIf(topology.numNodes != n, "topology size mismatch");
    fatalIf(design_margin < DecibelLoss(0.0),
            "design margin must be non-negative");

    MnocDesign design;
    design.topology = topology;
    design.sources.reserve(n);
    // Inflating the design-time pmin by the margin makes every
    // reachable link clear the true threshold by that many dB.
    WattPower pmin = crossbar_.params().pminAtTap() *
                     design_margin.toAttenuation();
    for (int s = 0; s < n; ++s) {
        optics::AlphaOptimizer optimizer(crossbar_.chain(s),
                                         topology.local(s).modeOfDest,
                                         weights[s], pmin);
        design.sources.push_back(optimizer.optimize());
    }
    return design;
}

MnocDesign
MnocPowerModel::designFor(const GlobalPowerTopology &topology,
                          const FlowMatrix &design_flow,
                          DecibelLoss design_margin) const
{
    int n = crossbar_.numNodes();
    fatalIf(static_cast<int>(design_flow.rows()) != n ||
            static_cast<int>(design_flow.cols()) != n,
            "design flow matrix size mismatch");

    std::vector<std::vector<double>> weights(n);
    for (int s = 0; s < n; ++s) {
        const auto &local = topology.local(s);
        std::vector<double> w(topology.numModes, 0.0);
        double total = 0.0;
        for (int d = 0; d < n; ++d) {
            if (d == s)
                continue;
            w[local.modeOfDest[d]] += design_flow(s, d);
            total += design_flow(s, d);
        }
        if (total <= 0.0) {
            // No design traffic: weight modes by destination count.
            for (int d = 0; d < n; ++d)
                if (d != s)
                    w[local.modeOfDest[d]] += 1.0;
        }
        weights[s] = std::move(w);
    }
    return designWithWeights(topology, weights, design_margin);
}

MnocDesign
MnocPowerModel::designUniform(const GlobalPowerTopology &topology,
                              DecibelLoss design_margin) const
{
    FlowMatrix uniform(crossbar_.numNodes(), crossbar_.numNodes(), 1.0);
    return designFor(topology, uniform, design_margin);
}

MnocDesign
MnocPowerModel::designWithFractions(
    const GlobalPowerTopology &topology,
    const std::vector<double> &mode_fractions,
    DecibelLoss design_margin) const
{
    fatalIf(static_cast<int>(mode_fractions.size()) !=
                topology.numModes,
            "one fraction per mode required");
    std::vector<std::vector<double>> weights(
        crossbar_.numNodes(), mode_fractions);
    return designWithWeights(topology, weights, design_margin);
}

PowerBreakdown
MnocPowerModel::evaluate(const MnocDesign &design,
                         const sim::Trace &trace) const
{
    int n = crossbar_.numNodes();
    fatalIf(static_cast<int>(trace.flits.rows()) != n ||
            static_cast<int>(trace.flits.cols()) != n,
            "trace size mismatch");
    fatalIf(trace.totalTicks == 0, "trace has zero duration");

    const auto &optics_params = crossbar_.params();
    double flit_time = 1.0 / params_.net.clockHz; // one flit per cycle
    double duration =
        static_cast<double>(trace.totalTicks) / params_.net.clockHz;
    double oe_per_receiver =
        params_.oePowerPerReceiver(optics_params.photodetectorMiop)
            .watts();

    // Precompute the receiver population per (source, mode).
    std::vector<std::vector<int>> reach(n);
    for (int s = 0; s < n; ++s) {
        reach[s].resize(design.topology.numModes);
        for (int m = 0; m < design.topology.numModes; ++m)
            reach[s][m] = design.topology.local(s).reachableCount(m);
    }

    double source_energy = 0.0;
    double oe_energy = 0.0;
    double electrical_energy = 0.0;
    for (int s = 0; s < n; ++s) {
        const auto &local = design.topology.local(s);
        for (int d = 0; d < n; ++d) {
            if (d == s)
                continue;
            auto flits = static_cast<double>(trace.flits(s, d));
            if (flits == 0.0)
                continue;
            int mode = local.modeOfDest[d];
            double tx_time = flits * flit_time;
            // QD LED electrical drive, derated by the 1-to-0 ratio.
            source_energy += tx_time *
                design.sources[s].modePower[mode].watts() *
                optics_params.oneToZeroRatio /
                optics_params.qdLedEfficiency;
            // Every receiver reachable in this mode sees the light and
            // burns O/E power for the packet duration.
            oe_energy += tx_time * reach[s][mode] * oe_per_receiver;
            // Injection + ejection buffers.
            electrical_energy +=
                flits * 2.0 * params_.bufferEnergyPerFlit;
        }
    }

    PowerBreakdown out;
    out.source = source_energy / duration;
    out.oe = oe_energy / duration;
    out.electrical = electrical_energy / duration;
    return out;
}

} // namespace mnoc::core
