/**
 * @file
 * Communication-aware power-mode assignment (paper Section 4.3):
 * destinations sorted by traffic with a source are packed into modes so
 * the hottest partners land in the cheapest mode.  The two-mode design
 * sweeps all binary partitions of the sorted list; designs with more
 * modes evaluate a set of candidate size partitions plus greedy
 * boundary refinement.
 */

#ifndef MNOC_CORE_COMM_AWARE_HH
#define MNOC_CORE_COMM_AWARE_HH

#include <vector>

#include "common/matrix.hh"
#include "core/power_topology.hh"
#include "optics/crossbar.hh"

namespace mnoc::core {

/** Knobs for the communication-aware builder. */
struct CommAwareConfig
{
    /** Number of power modes (>= 2). */
    int numModes = 2;
    /**
     * Candidate mode-size partitions for numModes >= 3, expressed as
     * fractions of the destination count (each row sums to ~1 and has
     * numModes entries).  Empty selects the built-in candidates, which
     * include the paper's {64,64,64,63}, {1,1,2,251} and {4,120,53,78}
     * four-mode splits scaled to the node count.
     */
    std::vector<std::vector<double>> candidateFractions;
    /** Greedy +-boundary refinement after the candidate scan. */
    bool greedyRefine = true;
    /**
     * Frequency banding: destinations whose flows are within this
     * factor of each other count as equally hot and are ordered by
     * attenuation (nearest first) instead.  Pure frequency sorting
     * scatters the low mode across the waveguide when traffic is
     * near-uniform, which costs more than distance grouping; banding
     * recovers distance locality without giving up the hot-partner
     * priority.  Set <= 1 to disable (exact frequency order).
     */
    double frequencyBandFactor = 2.0;
};

/**
 * Build a communication-aware global power topology.
 *
 * @param crossbar Optical crossbar (provides per-pair attenuations).
 * @param design_flow Core-to-core traffic used at design time (flits);
 *        the S4/S12/application-specific weightings of Section 5.4.
 * @param config Mode count and candidate partitions.
 */
GlobalPowerTopology commAwareTopology(
    const optics::OpticalCrossbar &crossbar,
    const FlowMatrix &design_flow, const CommAwareConfig &config = {});

/**
 * Expected injected power of @p source under mode assignment
 * @p mode_of_dest, weighting the modes by @p flow (the Section 3.2
 * objective, Equation 1, with exact splitter design).  Exposed for the
 * evaluation harness and for tests.
 */
WattPower expectedSourcePower(const optics::OpticalCrossbar &crossbar,
                              int source,
                              const std::vector<int> &mode_of_dest,
                              int num_modes, const FlowMatrix &flow);

} // namespace mnoc::core

#endif // MNOC_CORE_COMM_AWARE_HH
