#include "core/accrual.hh"

namespace mnoc::core {

AccrualPlan::AccrualPlan(const MnocDesign &design,
                         const PowerParams &params,
                         const optics::DeviceParams &optics_params,
                         int n)
    : n_(n), numModes_(design.topology.numModes),
      flitTime_(1.0 / params.net.clockHz),
      oneToZeroRatio_(optics_params.oneToZeroRatio),
      qdLedEfficiency_(optics_params.qdLedEfficiency),
      oePerReceiver_(
          params.oePowerPerReceiver(optics_params.photodetectorMiop)
              .watts()),
      bufferEnergyPerFlit_(params.bufferEnergyPerFlit)
{
    auto sn = static_cast<std::size_t>(n);
    auto sm = static_cast<std::size_t>(numModes_);
    modeOf_.assign(sn * sn, -1);
    reach_.assign(sn * sm, 0);
    modePowerW_.assign(sn * sm, 0.0);
    for (int s = 0; s < n; ++s) {
        const auto &local = design.topology.local(s);
        auto row = static_cast<std::size_t>(s) * sn;
        for (int d = 0; d < n; ++d) {
            if (d == s)
                continue;
            modeOf_[row + static_cast<std::size_t>(d)] =
                local.modeOfDest[d];
        }
        auto slot = static_cast<std::size_t>(s) * sm;
        for (int m = 0; m < numModes_; ++m) {
            reach_[slot + static_cast<std::size_t>(m)] =
                local.reachableCount(m);
            modePowerW_[slot + static_cast<std::size_t>(m)] =
                design.sources[s].modePower[m].watts();
        }
    }
}

void
AccrualPlan::accrue(EnergyLedger &ledger, int src, int dst,
                    std::uint64_t flit_count,
                    std::size_t epoch) const
{
    if (flit_count == 0 || dst == src)
        return;
    auto row = static_cast<std::size_t>(src) *
               static_cast<std::size_t>(n_);
    int mode = modeOf_[row + static_cast<std::size_t>(dst)];
    auto slot = static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(numModes_) +
                static_cast<std::size_t>(mode);
    auto flits = static_cast<double>(flit_count);
    double tx_time = flits * flitTime_;
    LedgerCell &cell = ledger.cell(src, mode, epoch);
    cell.flits += flit_count;
    cell.txSeconds += tx_time;
    // QD LED electrical drive, derated by the 1-to-0 ratio.
    cell.sourceEnergy += tx_time * modePowerW_[slot] *
        oneToZeroRatio_ / qdLedEfficiency_;
    // Every receiver reachable in this mode sees the light and
    // burns O/E power for the packet duration.
    cell.oeEnergy += tx_time * reach_[slot] * oePerReceiver_;
    // Injection + ejection buffers.
    cell.electricalEnergy += flits * 2.0 * bufferEnergyPerFlit_;
}

double
AccrualPlan::quote(int src, int dst,
                   std::uint64_t flit_count) const
{
    if (flit_count == 0 || dst == src)
        return 0.0;
    auto row = static_cast<std::size_t>(src) *
               static_cast<std::size_t>(n_);
    int mode = modeOf_[row + static_cast<std::size_t>(dst)];
    auto slot = static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(numModes_) +
                static_cast<std::size_t>(mode);
    auto flits = static_cast<double>(flit_count);
    double tx_time = flits * flitTime_;
    double source_energy = tx_time * modePowerW_[slot] *
        oneToZeroRatio_ / qdLedEfficiency_;
    double oe_energy = tx_time * reach_[slot] * oePerReceiver_;
    double electrical_energy =
        flits * 2.0 * bufferEnergyPerFlit_;
    return source_energy + oe_energy + electrical_energy;
}

} // namespace mnoc::core
