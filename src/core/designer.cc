#include "core/designer.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"
#include "common/trace_span.hh"
#include "core/energy_ledger.hh"
#include "optics/link_budget.hh"
#include "sim/trace_stream.hh"

namespace mnoc::core {

std::string
DesignSpec::label() const
{
    std::string out = std::to_string(numModes) + "M";
    if (mapping != MappingMethod::Identity)
        out += "_T";
    if (numModes > 1) {
        switch (assignment) {
          case Assignment::DistanceBased:
            out += "_N";
            break;
          case Assignment::CommAware:
            out += "_G";
            break;
          case Assignment::Clustered:
            out += "_C";
            break;
        }
        switch (weights) {
          case WeightSource::Uniform:
            out += "_U";
            break;
          case WeightSource::Fractions:
            out += "_W";
            break;
          case WeightSource::DesignFlow:
            out += "_S" + sampleTag;
            break;
        }
    }
    return out;
}

Designer::Designer(const optics::OpticalCrossbar &crossbar,
                   const PowerParams &params)
    : crossbar_(crossbar), model_(crossbar, params)
{
}

MappingResult
Designer::map(const FlowMatrix &thread_flow, MappingMethod method,
              const MappingParams &params) const
{
    return mapThreads(crossbar_, thread_flow, method, params);
}

GlobalPowerTopology
Designer::buildTopology(const DesignSpec &spec,
                        const FlowMatrix &core_design_flow) const
{
    int n = crossbar_.numNodes();
    fatalIf(spec.numModes < 1, "need at least one mode");
    if (spec.numModes == 1)
        return GlobalPowerTopology::singleMode(n);

    switch (spec.assignment) {
      case Assignment::DistanceBased:
        return distanceBasedTopology(n, spec.numModes);
      case Assignment::Clustered:
        fatalIf(spec.numModes != 2,
                "the clustered mapping is a two-mode design");
        return clusteredTopology(n, 4);
      case Assignment::CommAware: {
        CommAwareConfig config;
        config.numModes = spec.numModes;
        return commAwareTopology(crossbar_, core_design_flow, config);
      }
    }
    panic("unreachable assignment kind");
}

MnocDesign
Designer::buildDesign(const DesignSpec &spec,
                      const GlobalPowerTopology &topology,
                      const FlowMatrix &core_design_flow,
                      DecibelLoss design_margin) const
{
    switch (spec.weights) {
      case WeightSource::Uniform:
        return model_.designUniform(topology, design_margin);
      case WeightSource::Fractions:
        return model_.designWithFractions(topology, spec.fractions,
                                          design_margin);
      case WeightSource::DesignFlow:
        return model_.designFor(topology, core_design_flow,
                                design_margin);
    }
    panic("unreachable weight source");
}

namespace {

/** Does @p design hold its budgets at the *unperturbed* parameters? */
bool
nominallyValid(const optics::OpticalCrossbar &crossbar,
               const MnocDesign &design,
               const faults::YieldCriteria &criteria)
{
    WattPower pmin = crossbar.params().pminAtTap();
    for (int s = 0; s < crossbar.numNodes(); ++s) {
        auto report = optics::validateDesign(
            crossbar.chain(s), design.sources[s], pmin,
            criteria.requiredMargin, criteria.maxLeak);
        if (!report.ok)
            return false;
    }
    return true;
}

/**
 * The mode whose links failed most often across the draws, clamped so
 * it can be merged upward (the broadcast mode itself cannot collapse).
 */
int
worstFailingMode(const faults::YieldReport &report, int num_modes)
{
    int worst = 0;
    long long worst_count = -1;
    for (int m = 0; m < num_modes; ++m) {
        long long count = report.marginFailuresByMode[m] +
                          report.leakFailuresByMode[m];
        if (count > worst_count) {
            worst_count = count;
            worst = m;
        }
    }
    return std::min(worst, num_modes - 2);
}

} // namespace

ResilientDesign
Designer::buildResilientDesign(const DesignSpec &spec,
                               const GlobalPowerTopology &topology,
                               const FlowMatrix &core_design_flow,
                               const ResilienceParams &resilience) const
{
    resilience.variation.validate();
    fatalIf(resilience.yieldTarget < 0.0 || resilience.yieldTarget > 1.0,
            "yield target must lie in [0, 1]");
    fatalIf(resilience.trials < 1, "need at least one yield trial");
    fatalIf(resilience.marginStep <= DecibelLoss(0.0),
            "margin step must be positive");
    fatalIf(resilience.maxMargin < DecibelLoss(0.0),
            "max margin must be non-negative");
    fatalIf(resilience.criteria.requiredMargin > resilience.maxMargin,
            "required link margin exceeds the hardenable maximum");

    DesignSpec working = spec;
    GlobalPowerTopology topo = topology;
    DecibelLoss base_margin =
        std::max(DecibelLoss(0.0), resilience.criteria.requiredMargin);

    ResilientDesign out;
    auto &summary = out.summary;
    summary.yieldTarget = resilience.yieldTarget;
    summary.trials = resilience.trials;
    summary.seed = resilience.seed;
    summary.spec = resilience.variation;

    auto analyze = [&](const MnocDesign &design) {
        return faults::analyzeYield(
            crossbar_.layout(), crossbar_.params(), design.sources,
            resilience.variation, resilience.trials, resilience.seed,
            resilience.criteria);
    };

    // Best nominally-valid candidate seen, by yield then by margin.
    double best_yield = -1.0;
    DecibelLoss best_margin;

    while (true) {
        working.numModes = topo.numModes;
        DecibelLoss margin = base_margin;
        faults::YieldReport last_report;
        while (true) {
            auto design = buildDesign(working, topo, core_design_flow,
                                      margin);
            auto report = analyze(design);

            DegradationStep step;
            step.kind = DegradationStep::Kind::Margin;
            step.numModes = topo.numModes;
            step.margin = margin;
            step.yield = report.yield;
            summary.path.push_back(step);

            bool valid =
                nominallyValid(crossbar_, design, resilience.criteria);
            // ">=": among equal yields prefer the later candidate --
            // more margin and a more conservative (further degraded)
            // mode set -- so a hopeless target ends at broadcast.
            if (valid && report.yield >= best_yield) {
                best_yield = report.yield;
                best_margin = margin;
                out.design = std::move(design);
                out.yield = report;
                summary.finalNumModes = topo.numModes;
            }
            if (valid && report.yield >= resilience.yieldTarget) {
                summary.metTarget = true;
                summary.finalYield = report.yield;
                summary.finalMargin = margin;
                return out;
            }
            last_report = std::move(report);
            if (margin >= resilience.maxMargin - DecibelLoss(1e-9))
                break;
            margin = std::min(margin + resilience.marginStep,
                              resilience.maxMargin);
        }

        if (topo.numModes == 1)
            break;

        // Margin is exhausted: degrade by merging the worst-failing
        // mode into the next-higher-power one and sweep margin again.
        int worst = worstFailingMode(last_report, topo.numModes);
        DegradationStep step;
        step.kind = DegradationStep::Kind::Collapse;
        step.numModes = topo.numModes - 1;
        step.collapsedMode = worst;
        step.margin = base_margin;
        summary.path.push_back(step);
        topo = collapseMode(topo, worst);
        if (working.weights == WeightSource::Fractions &&
            !working.fractions.empty()) {
            working.fractions[worst + 1] += working.fractions[worst];
            working.fractions.erase(working.fractions.begin() + worst);
        }
    }

    if (best_yield < 0.0) {
        // Nothing evaluated was even nominally valid (an extreme leak
        // constraint): fall back to broadcast at maximum margin, which
        // has no unreachable links and so always holds its budgets.
        GlobalPowerTopology broadcast =
            GlobalPowerTopology::singleMode(crossbar_.numNodes());
        working.numModes = 1;
        if (working.weights == WeightSource::Fractions)
            working.fractions = {1.0};
        auto design = buildDesign(working, broadcast, core_design_flow,
                                  resilience.maxMargin);
        auto report = analyze(design);
        DegradationStep step;
        step.kind = DegradationStep::Kind::Margin;
        step.numModes = 1;
        step.margin = resilience.maxMargin;
        step.yield = report.yield;
        summary.path.push_back(step);
        panicIf(!nominallyValid(crossbar_, design, resilience.criteria),
                "broadcast fallback violates its nominal budget");
        best_yield = report.yield;
        best_margin = resilience.maxMargin;
        out.design = std::move(design);
        out.yield = std::move(report);
        summary.finalNumModes = 1;
    }

    summary.metTarget = best_yield >= resilience.yieldTarget;
    summary.finalYield = best_yield;
    summary.finalMargin = best_margin;
    return out;
}

PowerBreakdown
Designer::evaluate(const MnocDesign &design,
                   const sim::Trace &thread_trace,
                   const std::vector<int> &thread_to_core) const
{
    sim::Trace mapped = sim::mapTrace(thread_trace, thread_to_core);
    return model_.evaluate(design, mapped);
}

EnergyLedger
Designer::buildLedger(const MnocDesign &design,
                      const sim::Trace &thread_trace,
                      const std::vector<int> &thread_to_core) const
{
    sim::Trace mapped = sim::mapTrace(thread_trace, thread_to_core);
    return model_.buildLedger(design, mapped);
}

EnergyLedger
Designer::buildLedgerStreamed(
    const MnocDesign &design, const std::string &trace_path,
    const std::vector<int> &thread_to_core, ThreadPool *pool) const
{
    TraceSpan span("buildLedgerStreamed", "power");
    sim::TraceReader reader(trace_path);
    sim::checkCoreMapping(thread_to_core, reader.header().numNodes);
    return model_.buildLedger(design, reader, &thread_to_core, pool);
}

PowerBreakdown
Designer::evaluateStreamed(
    const MnocDesign &design, const std::string &trace_path,
    const std::vector<int> &thread_to_core, ThreadPool *pool) const
{
    return buildLedgerStreamed(design, trace_path, thread_to_core,
                               pool)
        .averagePower();
}

} // namespace mnoc::core
