#include "core/designer.hh"

#include "common/log.hh"

namespace mnoc::core {

std::string
DesignSpec::label() const
{
    std::string out = std::to_string(numModes) + "M";
    if (mapping != MappingMethod::Identity)
        out += "_T";
    if (numModes > 1) {
        switch (assignment) {
          case Assignment::DistanceBased:
            out += "_N";
            break;
          case Assignment::CommAware:
            out += "_G";
            break;
          case Assignment::Clustered:
            out += "_C";
            break;
        }
        switch (weights) {
          case WeightSource::Uniform:
            out += "_U";
            break;
          case WeightSource::Fractions:
            out += "_W";
            break;
          case WeightSource::DesignFlow:
            out += "_S" + sampleTag;
            break;
        }
    }
    return out;
}

Designer::Designer(const optics::OpticalCrossbar &crossbar,
                   const PowerParams &params)
    : crossbar_(crossbar), model_(crossbar, params)
{
}

MappingResult
Designer::map(const FlowMatrix &thread_flow, MappingMethod method,
              const MappingParams &params) const
{
    return mapThreads(crossbar_, thread_flow, method, params);
}

GlobalPowerTopology
Designer::buildTopology(const DesignSpec &spec,
                        const FlowMatrix &core_design_flow) const
{
    int n = crossbar_.numNodes();
    fatalIf(spec.numModes < 1, "need at least one mode");
    if (spec.numModes == 1)
        return GlobalPowerTopology::singleMode(n);

    switch (spec.assignment) {
      case Assignment::DistanceBased:
        return distanceBasedTopology(n, spec.numModes);
      case Assignment::Clustered:
        fatalIf(spec.numModes != 2,
                "the clustered mapping is a two-mode design");
        return clusteredTopology(n, 4);
      case Assignment::CommAware: {
        CommAwareConfig config;
        config.numModes = spec.numModes;
        return commAwareTopology(crossbar_, core_design_flow, config);
      }
    }
    panic("unreachable assignment kind");
}

MnocDesign
Designer::buildDesign(const DesignSpec &spec,
                      const GlobalPowerTopology &topology,
                      const FlowMatrix &core_design_flow) const
{
    switch (spec.weights) {
      case WeightSource::Uniform:
        return model_.designUniform(topology);
      case WeightSource::Fractions:
        return model_.designWithFractions(topology, spec.fractions);
      case WeightSource::DesignFlow:
        return model_.designFor(topology, core_design_flow);
    }
    panic("unreachable weight source");
}

PowerBreakdown
Designer::evaluate(const MnocDesign &design,
                   const sim::Trace &thread_trace,
                   const std::vector<int> &thread_to_core) const
{
    sim::Trace mapped = sim::mapTrace(thread_trace, thread_to_core);
    return model_.evaluate(design, mapped);
}

} // namespace mnoc::core
