/**
 * @file
 * The per-message energy-accrual plan shared by every ledger build
 * and by the adaptive controller's candidate evaluation.
 *
 * An AccrualPlan gathers one design's accrual inputs into SoA tables
 * -- flat per-(source, dest) mode ids, per-(source, mode) drive
 * watts and receiver populations -- so the hot loop reads contiguous
 * arrays instead of chasing topology/design pointers per message.
 * The stored doubles are the very values the source expressions
 * produce and the arithmetic keeps its association order, so accrued
 * energies are bit-identical to a naive per-message walk.
 *
 * Two consumers:
 *  - accrue() charges a message into an EnergyLedger cell (the
 *    whole-file and streamed builds in MnocPowerModel::buildLedger,
 *    and the adaptive controller's epoch-by-epoch attribution);
 *  - quote() prices the same message without a ledger, which is how
 *    the adaptive controller scores candidate designs against a
 *    traffic window before deciding whether switching pays.
 */

#ifndef MNOC_CORE_ACCRUAL_HH
#define MNOC_CORE_ACCRUAL_HH

#include <cstdint>
#include <vector>

#include "core/energy_ledger.hh"
#include "core/power_model.hh"
#include "optics/device_params.hh"

namespace mnoc::core {

/** Precomputed SoA accrual tables for one design (see file docs). */
class AccrualPlan
{
  public:
    AccrualPlan(const MnocDesign &design, const PowerParams &params,
                const optics::DeviceParams &optics_params, int n);

    /** Charge @p flit_count flits from @p src to @p dst into the
     *  (src, mode, epoch) cell of @p ledger.  Self-messages and
     *  zero counts accrue nothing. */
    void accrue(EnergyLedger &ledger, int src, int dst,
                std::uint64_t flit_count, std::size_t epoch) const;

    /** Energy in joules the same message would accrue -- source +
     *  O/E + electrical buckets, identical expressions and
     *  association order to accrue() -- without touching a ledger. */
    double quote(int src, int dst, std::uint64_t flit_count) const;

    int numModes() const { return numModes_; }

  private:
    int n_;
    int numModes_;
    double flitTime_;
    double oneToZeroRatio_;
    double qdLedEfficiency_;
    double oePerReceiver_;
    double bufferEnergyPerFlit_;
    std::vector<int> modeOf_;
    std::vector<int> reach_;
    std::vector<double> modePowerW_;
};

} // namespace mnoc::core

#endif // MNOC_CORE_ACCRUAL_HH
