#include "core/energy_ledger.hh"

#include "common/log.hh"
#include "common/metrics.hh"

namespace mnoc::core {

EnergyLedger::EnergyLedger(int num_sources, int num_modes,
                           std::size_t num_epochs,
                           double duration_seconds)
    : numSources_(num_sources), numModes_(num_modes),
      numEpochs_(num_epochs), duration_(duration_seconds)
{
    panicIf(num_sources < 1 || num_modes < 1 || num_epochs < 1,
            "ledger dimensions must be positive");
    panicIf(duration_seconds <= 0.0,
            "ledger duration must be positive");
    cells_.resize(static_cast<std::size_t>(num_sources) *
                  static_cast<std::size_t>(num_modes) * num_epochs);
    losses_.resize(static_cast<std::size_t>(num_sources) *
                   static_cast<std::size_t>(num_modes));
    reconfig_.resize(num_epochs, 0.0);
}

void
EnergyLedger::addReconfigEnergy(std::size_t epoch, double joules)
{
    panicIf(epoch >= numEpochs_, "ledger epoch out of range");
    panicIf(joules < 0.0, "reconfiguration energy must be "
                          "non-negative");
    reconfig_[epoch] += joules;
}

double
EnergyLedger::reconfigEnergy(std::size_t epoch) const
{
    panicIf(epoch >= numEpochs_, "ledger epoch out of range");
    return reconfig_[epoch];
}

double
EnergyLedger::totalReconfigEnergy() const
{
    double total = 0.0;
    for (double joules : reconfig_)
        total += joules;
    return total;
}

std::size_t
EnergyLedger::index(int source, int mode, std::size_t epoch) const
{
    panicIf(source < 0 || source >= numSources_,
            "ledger source out of range");
    panicIf(mode < 0 || mode >= numModes_,
            "ledger mode out of range");
    panicIf(epoch >= numEpochs_, "ledger epoch out of range");
    return (static_cast<std::size_t>(source) *
                static_cast<std::size_t>(numModes_) +
            static_cast<std::size_t>(mode)) *
               numEpochs_ +
           epoch;
}

LedgerCell &
EnergyLedger::cell(int source, int mode, std::size_t epoch)
{
    return cells_[index(source, mode, epoch)];
}

const LedgerCell &
EnergyLedger::cell(int source, int mode, std::size_t epoch) const
{
    return cells_[index(source, mode, epoch)];
}

const optics::ChainLossBreakdown &
EnergyLedger::loss(int source, int mode) const
{
    panicIf(source < 0 || source >= numSources_,
            "ledger source out of range");
    panicIf(mode < 0 || mode >= numModes_,
            "ledger mode out of range");
    return losses_[static_cast<std::size_t>(source) *
                       static_cast<std::size_t>(numModes_) +
                   static_cast<std::size_t>(mode)];
}

PowerBreakdown
EnergyLedger::averagePower() const
{
    double source_energy = 0.0;
    double oe_energy = 0.0;
    double electrical_energy = 0.0;
    for (const LedgerCell &cell : cells_) {
        source_energy += cell.sourceEnergy;
        oe_energy += cell.oeEnergy;
        electrical_energy += cell.electricalEnergy;
    }
    PowerBreakdown out;
    out.source = source_energy / duration_;
    out.oe = oe_energy / duration_;
    out.electrical = electrical_energy / duration_;
    out.reconfig = totalReconfigEnergy() / duration_;
    return out;
}

double
EnergyLedger::totalEnergy() const
{
    double total = 0.0;
    for (const LedgerCell &cell : cells_)
        total += cell.totalEnergy();
    return total + totalReconfigEnergy();
}

FlowMatrix
EnergyLedger::sourceEpochPower() const
{
    // Rendered as watts assuming equal-time windows: attributed
    // energy over the mean window duration.  Epochs are message
    // windows, so this is the natural normalization for comparing
    // sources within one row of the heatmap.
    double window = duration_ / static_cast<double>(numEpochs_);
    FlowMatrix out(numEpochs_, numSources_, 0.0);
    for (std::size_t e = 0; e < numEpochs_; ++e) {
        for (int s = 0; s < numSources_; ++s) {
            double energy = 0.0;
            for (int m = 0; m < numModes_; ++m)
                energy += cell(s, m, e).totalEnergy();
            out(e, s) = energy / window;
        }
    }
    return out;
}

EnergyLedger
MnocPowerModel::buildLedger(const MnocDesign &design,
                            const sim::Trace &trace) const
{
    int n = crossbar_.numNodes();
    fatalIf(static_cast<int>(trace.flits.rows()) != n ||
                static_cast<int>(trace.flits.cols()) != n,
            "trace size mismatch");
    fatalIf(trace.totalTicks == 0, "trace has zero duration");

    const auto &optics_params = crossbar_.params();
    double flit_time = 1.0 / params_.net.clockHz; // one flit per cycle
    double duration =
        static_cast<double>(trace.totalTicks) / params_.net.clockHz;
    double oe_per_receiver =
        params_.oePowerPerReceiver(optics_params.photodetectorMiop)
            .watts();

    // Receiver population per (source, mode).
    std::vector<std::vector<int>> reach(n);
    for (int s = 0; s < n; ++s) {
        reach[s].resize(design.topology.numModes);
        for (int m = 0; m < design.topology.numModes; ++m)
            reach[s][m] = design.topology.local(s).reachableCount(m);
    }

    // An epoch-free trace (MNOC_LEDGER was off at capture, or a
    // version-2 file) attributes the whole run to a single epoch, so
    // every consumer handles both trace kinds uniformly.
    std::size_t num_epochs =
        trace.epochs.empty() ? 1 : trace.epochs.epochs.size();
    EnergyLedger ledger(n, design.topology.numModes, num_epochs,
                        duration);
    ledger.epochMsgs_ = trace.epochs.messagesPerEpoch;

    auto accrue = [&](int src, int dst, std::uint64_t flit_count,
                      std::size_t epoch) {
        if (flit_count == 0 || dst == src)
            return;
        int mode = design.topology.local(src).modeOfDest[dst];
        auto flits = static_cast<double>(flit_count);
        double tx_time = flits * flit_time;
        LedgerCell &cell = ledger.cell(src, mode, epoch);
        cell.flits += flit_count;
        cell.txSeconds += tx_time;
        // QD LED electrical drive, derated by the 1-to-0 ratio.
        cell.sourceEnergy += tx_time *
            design.sources[src].modePower[mode].watts() *
            optics_params.oneToZeroRatio /
            optics_params.qdLedEfficiency;
        // Every receiver reachable in this mode sees the light and
        // burns O/E power for the packet duration.
        cell.oeEnergy += tx_time * reach[src][mode] * oe_per_receiver;
        // Injection + ejection buffers.
        cell.electricalEnergy +=
            flits * 2.0 * params_.bufferEnergyPerFlit;
    };

    if (trace.epochs.empty()) {
        for (int s = 0; s < n; ++s)
            for (int d = 0; d < n; ++d)
                accrue(s, d, trace.flits(s, d), 0);
    } else {
        for (std::size_t e = 0; e < num_epochs; ++e)
            for (const noc::EpochCell &cell : trace.epochs.epochs[e])
                accrue(cell.src, cell.dst, cell.flits, e);
    }

    // Per-(source, mode) optical loss attribution at that mode's
    // injected power.  lossBreakdown() self-checks that the buckets
    // sum to the injected power (photon conservation).
    for (int s = 0; s < n; ++s) {
        const auto &source = design.sources[s];
        for (int m = 0; m < design.topology.numModes; ++m) {
            std::size_t slot =
                static_cast<std::size_t>(s) *
                    static_cast<std::size_t>(
                        design.topology.numModes) +
                static_cast<std::size_t>(m);
            ledger.losses_[slot] = crossbar_.chain(s).lossBreakdown(
                source.chain, source.modePower[m]);
        }
    }

    auto &metrics = MetricsRegistry::global();
    metrics.counter("ledger.builds").add();
    Series &epoch_flits = metrics.series("ledger.epoch_flits");
    for (std::size_t e = 0; e < num_epochs; ++e) {
        std::uint64_t flits = 0;
        for (int s = 0; s < n; ++s)
            for (int m = 0; m < design.topology.numModes; ++m)
                flits += ledger.cell(s, m, e).flits;
        epoch_flits.add(e, flits);
    }
    return ledger;
}

} // namespace mnoc::core
