#include "core/energy_ledger.hh"

#include "common/log.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "core/accrual.hh"
#include "sim/trace_stream.hh"

namespace mnoc::core {

EnergyLedger::EnergyLedger(int num_sources, int num_modes,
                           std::size_t num_epochs,
                           double duration_seconds)
    : numSources_(num_sources), numModes_(num_modes),
      numEpochs_(num_epochs), duration_(duration_seconds)
{
    panicIf(num_sources < 1 || num_modes < 1 || num_epochs < 1,
            "ledger dimensions must be positive");
    panicIf(duration_seconds <= 0.0,
            "ledger duration must be positive");
    cells_.resize(static_cast<std::size_t>(num_sources) *
                  static_cast<std::size_t>(num_modes) * num_epochs);
    losses_.resize(static_cast<std::size_t>(num_sources) *
                   static_cast<std::size_t>(num_modes));
    reconfig_.resize(num_epochs, 0.0);
}

void
EnergyLedger::addReconfigEnergy(std::size_t epoch, double joules)
{
    panicIf(epoch >= numEpochs_, "ledger epoch out of range");
    panicIf(joules < 0.0, "reconfiguration energy must be "
                          "non-negative");
    reconfig_[epoch] += joules;
}

double
EnergyLedger::reconfigEnergy(std::size_t epoch) const
{
    panicIf(epoch >= numEpochs_, "ledger epoch out of range");
    return reconfig_[epoch];
}

double
EnergyLedger::totalReconfigEnergy() const
{
    double total = 0.0;
    for (double joules : reconfig_)
        total += joules;
    return total;
}

std::size_t
EnergyLedger::index(int source, int mode, std::size_t epoch) const
{
    panicIf(source < 0 || source >= numSources_,
            "ledger source out of range");
    panicIf(mode < 0 || mode >= numModes_,
            "ledger mode out of range");
    panicIf(epoch >= numEpochs_, "ledger epoch out of range");
    return (static_cast<std::size_t>(source) *
                static_cast<std::size_t>(numModes_) +
            static_cast<std::size_t>(mode)) *
               numEpochs_ +
           epoch;
}

LedgerCell &
EnergyLedger::cell(int source, int mode, std::size_t epoch)
{
    return cells_[index(source, mode, epoch)];
}

const LedgerCell &
EnergyLedger::cell(int source, int mode, std::size_t epoch) const
{
    return cells_[index(source, mode, epoch)];
}

const optics::ChainLossBreakdown &
EnergyLedger::loss(int source, int mode) const
{
    panicIf(source < 0 || source >= numSources_,
            "ledger source out of range");
    panicIf(mode < 0 || mode >= numModes_,
            "ledger mode out of range");
    return losses_[static_cast<std::size_t>(source) *
                       static_cast<std::size_t>(numModes_) +
                   static_cast<std::size_t>(mode)];
}

PowerBreakdown
EnergyLedger::averagePower() const
{
    double source_energy = 0.0;
    double oe_energy = 0.0;
    double electrical_energy = 0.0;
    for (const LedgerCell &cell : cells_) {
        source_energy += cell.sourceEnergy;
        oe_energy += cell.oeEnergy;
        electrical_energy += cell.electricalEnergy;
    }
    PowerBreakdown out;
    out.source = source_energy / duration_;
    out.oe = oe_energy / duration_;
    out.electrical = electrical_energy / duration_;
    out.reconfig = totalReconfigEnergy() / duration_;
    return out;
}

double
EnergyLedger::totalEnergy() const
{
    double total = 0.0;
    for (const LedgerCell &cell : cells_)
        total += cell.totalEnergy();
    return total + totalReconfigEnergy();
}

double
EnergyLedger::epochAttributedEnergy(std::size_t epoch) const
{
    double total = 0.0;
    for (int s = 0; s < numSources_; ++s)
        for (int m = 0; m < numModes_; ++m)
            total += cell(s, m, epoch).totalEnergy();
    return total;
}

FlowMatrix
EnergyLedger::sourceEpochPower() const
{
    // Rendered as watts assuming equal-time windows: attributed
    // energy over the mean window duration.  Epochs are message
    // windows, so this is the natural normalization for comparing
    // sources within one row of the heatmap.
    double window = duration_ / static_cast<double>(numEpochs_);
    FlowMatrix out(numEpochs_, numSources_, 0.0);
    for (std::size_t e = 0; e < numEpochs_; ++e) {
        for (int s = 0; s < numSources_; ++s) {
            double energy = 0.0;
            for (int m = 0; m < numModes_; ++m)
                energy += cell(s, m, e).totalEnergy();
            out(e, s) = energy / window;
        }
    }
    return out;
}

void
MnocPowerModel::attachLosses(const MnocDesign &design,
                             EnergyLedger &ledger,
                             ThreadPool *pool) const
{
    // Per-(source, mode) optical loss attribution at that mode's
    // injected power.  lossBreakdown() self-checks that the buckets
    // sum to the injected power (photon conservation).  Every task
    // writes only its own source's slots, so fanning the chain walks
    // across the pool is bit-identical to the serial loop.
    int n = crossbar_.numNodes();
    int num_modes = design.topology.numModes;
    ThreadPool &workers = pool ? *pool : ThreadPool::global();
    workers.parallelFor(n, [&](long long s_index) {
        int s = static_cast<int>(s_index);
        const auto &source = design.sources[s];
        for (int m = 0; m < num_modes; ++m) {
            std::size_t slot =
                static_cast<std::size_t>(s) *
                    static_cast<std::size_t>(num_modes) +
                static_cast<std::size_t>(m);
            ledger.losses_[slot] = crossbar_.chain(s).lossBreakdown(
                source.chain, source.modePower[m]);
        }
    });
}

void
MnocPowerModel::recordLedgerMetrics(const EnergyLedger &ledger) const
{
    auto &metrics = MetricsRegistry::global();
    metrics.counter("ledger.builds").add();
    Series &epoch_flits = metrics.series("ledger.epoch_flits");
    for (std::size_t e = 0; e < ledger.numEpochs(); ++e) {
        std::uint64_t flits = 0;
        for (int s = 0; s < ledger.numSources(); ++s)
            for (int m = 0; m < ledger.numModes(); ++m)
                flits += ledger.cell(s, m, e).flits;
        epoch_flits.add(e, flits);
    }
}

EnergyLedger
MnocPowerModel::buildLedger(const MnocDesign &design,
                            const sim::Trace &trace) const
{
    int n = crossbar_.numNodes();
    fatalIf(static_cast<int>(trace.flits.rows()) != n ||
                static_cast<int>(trace.flits.cols()) != n,
            "trace size mismatch");
    fatalIf(trace.totalTicks == 0, "trace has zero duration");

    double duration =
        static_cast<double>(trace.totalTicks) / params_.net.clockHz;

    // An epoch-free trace (MNOC_LEDGER was off at capture, or a
    // version-2 file) attributes the whole run to a single epoch, so
    // every consumer handles both trace kinds uniformly.
    std::size_t num_epochs =
        trace.epochs.empty() ? 1 : trace.epochs.epochs.size();
    EnergyLedger ledger(n, design.topology.numModes, num_epochs,
                        duration);
    ledger.epochMsgs_ = trace.epochs.messagesPerEpoch;

    AccrualPlan plan(design, params_, crossbar_.params(), n);
    if (trace.epochs.empty()) {
        for (int s = 0; s < n; ++s)
            for (int d = 0; d < n; ++d)
                plan.accrue(ledger, s, d, trace.flits(s, d), 0);
    } else {
        for (std::size_t e = 0; e < num_epochs; ++e)
            for (const noc::EpochCell &cell : trace.epochs.epochs[e])
                plan.accrue(ledger, cell.src, cell.dst, cell.flits,
                            e);
    }

    attachLosses(design, ledger, nullptr);
    recordLedgerMetrics(ledger);
    return ledger;
}

EnergyLedger
MnocPowerModel::buildLedger(const MnocDesign &design,
                            sim::TraceReader &reader,
                            const std::vector<int> *thread_to_core,
                            ThreadPool *pool) const
{
    int n = crossbar_.numNodes();
    const sim::TraceHeader &header = reader.header();
    fatalIf(header.numNodes != n, "trace size mismatch");
    fatalIf(header.totalTicks == 0, "trace has zero duration");

    double duration = static_cast<double>(header.totalTicks) /
                      params_.net.clockHz;
    std::size_t num_epochs =
        header.numEpochs == 0 ? 1 : header.numEpochs;
    EnergyLedger ledger(n, design.topology.numModes, num_epochs,
                        duration);
    ledger.epochMsgs_ = header.messagesPerEpoch;

    AccrualPlan plan(design, params_, crossbar_.params(), n);
    if (header.numEpochs == 0) {
        // Epoch-free trace: fold the streamed messages into a dense
        // (mapped) flit matrix first, then accrue in (src, dst)
        // order.  Integer folds are exact in any order, and the
        // accrual then visits cells exactly as the whole-file path
        // does, so the ledger is bit-identical to it.
        CountMatrix flits(static_cast<std::size_t>(n),
                          static_cast<std::size_t>(n), 0);
        std::vector<sim::TraceMessage> batch;
        while (reader.nextMessages(batch, sim::kMessageBatch) > 0) {
            for (const sim::TraceMessage &msg : batch) {
                int src = msg.src;
                int dst = msg.dst;
                if (thread_to_core) {
                    src = (*thread_to_core)[static_cast<std::size_t>(
                        src)];
                    dst = (*thread_to_core)[static_cast<std::size_t>(
                        dst)];
                }
                flits(static_cast<std::size_t>(src),
                      static_cast<std::size_t>(dst)) += msg.flits;
            }
        }
        for (int s = 0; s < n; ++s)
            for (int d = 0; d < n; ++d)
                plan.accrue(ledger, s, d,
                            flits(static_cast<std::size_t>(s),
                                  static_cast<std::size_t>(d)),
                            0);
    } else {
        // Epoch shards are disjoint epoch ranges and every epoch
        // touches only its own (source, mode, epoch) cells, so
        // fanning the shard parses across the pool accrues into
        // disjoint slots -- bit-identical at any MNOC_THREADS.
        ThreadPool &workers = pool ? *pool : ThreadPool::global();
        auto shards = static_cast<long long>(reader.numShards());
        workers.parallelFor(shards, [&](long long shard) {
            reader.readShard(
                static_cast<std::size_t>(shard),
                [&](std::size_t epoch,
                    std::vector<noc::EpochCell> &&cells) {
                    if (thread_to_core)
                        cells = sim::mapEpochCells(cells,
                                                   *thread_to_core);
                    for (const noc::EpochCell &cell : cells)
                        plan.accrue(ledger, cell.src, cell.dst,
                                    cell.flits, epoch);
                });
        });
    }

    attachLosses(design, ledger, pool);
    recordLedgerMetrics(ledger);
    return ledger;
}

} // namespace mnoc::core
