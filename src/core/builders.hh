/**
 * @file
 * Conventional and distance-based power-topology builders
 * (paper Sections 4.1 and 4.2).
 */

#ifndef MNOC_CORE_BUILDERS_HH
#define MNOC_CORE_BUILDERS_HH

#include <vector>

#include "core/power_topology.hh"

namespace mnoc::core {

/**
 * Two-mode clustered topology (Figure 5a): destinations inside the
 * source's cluster of @p cluster_size consecutive nodes use the low
 * mode, all others the high mode.
 */
GlobalPowerTopology clusteredTopology(int num_nodes, int cluster_size);

/**
 * Map a binary n-cube onto a power topology: the mode of a destination
 * is its hop count from the source minus one (Section 4.1's general
 * recipe applied to hypercubes).  @p num_nodes must be a power of two.
 */
GlobalPowerTopology hypercubeTopology(int num_nodes);

/**
 * Map a complete binary tree onto a power topology (Section 4.1's
 * "trees"): nodes are tree vertices in level order, a destination's
 * mode is the tree hop count of the shortest path minus one, and the
 * mode count is capped at @p max_modes by saturating distant
 * destinations into the top mode.
 */
GlobalPowerTopology binaryTreeTopology(int num_nodes, int max_modes);

/**
 * Distance-based topology (Figure 5b): for each source, destinations
 * sorted by waveguide distance are grouped into modes of the given
 * sizes (nearest group -> lowest mode).  Sizes must sum to
 * num_nodes - 1.
 */
GlobalPowerTopology distanceBasedTopology(
    int num_nodes, const std::vector<int> &mode_sizes);

/**
 * Convenience: split the destinations into @p num_modes near-equal
 * distance groups (the paper's 2-mode 128/127 and 4-mode 64-ish
 * groupings).
 */
GlobalPowerTopology distanceBasedTopology(int num_nodes, int num_modes);

} // namespace mnoc::core

#endif // MNOC_CORE_BUILDERS_HH
