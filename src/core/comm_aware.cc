#include "core/comm_aware.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "optics/alpha_optimizer.hh"

namespace mnoc::core {

namespace {

/**
 * Per-source working state: destinations sorted by design flow
 * (descending), with prefix sums of tap attenuation and flow so any
 * contiguous partition of the sorted list evaluates in O(M).
 */
struct SortedDests
{
    std::vector<int> order;       // destination ids, hottest first
    std::vector<double> attenPrefix; // attenPrefix[k] = sum of first k
    std::vector<double> flowPrefix;  // flowPrefix[k] = sum of first k

    SortedDests(const optics::OpticalCrossbar &crossbar, int source,
                const FlowMatrix &flow, double band_factor)
    {
        int n = crossbar.numNodes();
        const auto &chain = crossbar.chain(source);
        order.reserve(n - 1);
        double max_flow = 0.0;
        for (int d = 0; d < n; ++d) {
            if (d == source)
                continue;
            order.push_back(d);
            max_flow = std::max(max_flow, flow(source, d));
        }
        bool any_flow = max_flow > 0.0;

        // Band index: 0 for the hottest destinations, increasing as
        // flow falls off by powers of band_factor; flows inside a band
        // order by attenuation so near-uniform traffic keeps distance
        // locality.
        auto band_of = [&](int d) {
            if (band_factor <= 1.0)
                return 0;
            double f = flow(source, d);
            if (!(f > 0.0) || max_flow <= 0.0)
                return 1000000;
            return static_cast<int>(std::floor(
                std::log(max_flow / f) / std::log(band_factor)));
        };

        std::sort(order.begin(), order.end(), [&](int a, int b) {
            if (band_factor > 1.0) {
                int ba = band_of(a);
                int bb = band_of(b);
                if (ba != bb)
                    return ba < bb;
            } else {
                double fa = flow(source, a);
                double fb = flow(source, b);
                if (fa != fb)
                    return fa > fb;
            }
            // Within a band (or on exact ties): cheaper destinations
            // first, so close nodes pack into low modes.
            LinearFactor aa = chain.tapAttenuation(a);
            LinearFactor ab = chain.tapAttenuation(b);
            if (aa != ab)
                return aa < ab;
            return a < b;
        });

        attenPrefix.assign(order.size() + 1, 0.0);
        flowPrefix.assign(order.size() + 1, 0.0);
        for (std::size_t k = 0; k < order.size(); ++k) {
            attenPrefix[k + 1] =
                attenPrefix[k] + chain.tapAttenuation(order[k]).value();
            // With no design traffic at all, fall back to uniform
            // per-destination weight (every destination equally likely).
            double f = any_flow ? flow(source, order[k]) : 1.0;
            flowPrefix[k + 1] = flowPrefix[k] + f;
        }
    }

    int count() const { return static_cast<int>(order.size()); }

    /**
     * Expected-power objective of the contiguous partition whose mode
     * boundaries are @p bounds (bounds[m] = first sorted index of mode
     * m+1; bounds.size() == numModes-1).  Returns objective/pmin.
     */
    double
    evaluate(const std::vector<int> &bounds) const
    {
        std::size_t m = bounds.size() + 1;
        std::vector<double> cost(m), weight(m);
        int prev = 0;
        for (std::size_t i = 0; i < m; ++i) {
            int end = i + 1 < m ? bounds[i] : count();
            cost[i] = attenPrefix[end] - attenPrefix[prev];
            weight[i] = flowPrefix[end] - flowPrefix[prev];
            prev = end;
        }
        return optics::optimizeAlphaVector(cost, weight).objective;
    }
};

/** Built-in candidate fractions for M >= 3 (paper Section 4.3). */
std::vector<std::vector<double>>
defaultCandidates(int num_modes)
{
    std::vector<std::vector<double>> out;
    // Equal split.
    out.emplace_back(num_modes, 1.0 / num_modes);
    if (num_modes == 4) {
        // The paper's explicit 255-destination partitions, as
        // fractions: {64,64,64,63}, {1,1,2,251}, {4,120,53,78}.
        out.push_back({64.0 / 255, 64.0 / 255, 64.0 / 255, 63.0 / 255});
        out.push_back({1.0 / 255, 1.0 / 255, 2.0 / 255, 251.0 / 255});
        out.push_back({4.0 / 255, 120.0 / 255, 53.0 / 255, 78.0 / 255});
        // A geometric ramp as an extra starting point.
        out.push_back({0.03, 0.12, 0.35, 0.50});
    } else {
        // Geometric ramp: each mode twice the previous.
        std::vector<double> geo(num_modes);
        double total = 0.0;
        for (int i = 0; i < num_modes; ++i) {
            geo[i] = std::pow(2.0, i);
            total += geo[i];
        }
        for (double &g : geo)
            g /= total;
        out.push_back(geo);
    }
    return out;
}

/** Convert fractions of @p count into boundary indices. */
std::vector<int>
fractionsToBounds(const std::vector<double> &fractions, int count)
{
    std::vector<int> bounds;
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < fractions.size(); ++i) {
        acc += fractions[i];
        int b = static_cast<int>(std::lround(acc * count));
        bounds.push_back(b);
    }
    // Enforce strictly increasing bounds in [1, count-1] so every mode
    // keeps at least one destination.
    int lo = 1;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        bounds[i] = std::max(bounds[i], lo);
        int max_allowed =
            count - static_cast<int>(bounds.size() - i);
        bounds[i] = std::min(bounds[i], max_allowed);
        lo = bounds[i] + 1;
    }
    return bounds;
}

/** Greedy +-1/2/4/8 boundary moves while they improve. */
void
refineBounds(const SortedDests &dests, std::vector<int> &bounds,
             double &best)
{
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
            for (int step : {8, 4, 2, 1}) {
                for (int dir : {-1, 1}) {
                    int candidate = bounds[i] + dir * step;
                    int lo = i == 0 ? 1 : bounds[i - 1] + 1;
                    int hi = i + 1 < bounds.size()
                                 ? bounds[i + 1] - 1
                                 : dests.count() - 1;
                    if (candidate < lo || candidate > hi)
                        continue;
                    int saved = bounds[i];
                    bounds[i] = candidate;
                    double obj = dests.evaluate(bounds);
                    if (obj < best - 1e-15) {
                        best = obj;
                        improved = true;
                    } else {
                        bounds[i] = saved;
                    }
                }
            }
        }
    }
}

} // namespace

WattPower
expectedSourcePower(const optics::OpticalCrossbar &crossbar, int source,
                    const std::vector<int> &mode_of_dest, int num_modes,
                    const FlowMatrix &flow)
{
    const auto &chain = crossbar.chain(source);
    int n = crossbar.numNodes();
    fatalIf(static_cast<int>(mode_of_dest.size()) != n,
            "mode assignment size mismatch");

    std::vector<double> cost(num_modes, 0.0);
    std::vector<double> weight(num_modes, 0.0);
    bool any_flow = false;
    for (int d = 0; d < n; ++d) {
        if (d == source)
            continue;
        int m = mode_of_dest[d];
        fatalIf(m < 0 || m >= num_modes, "destination mode out of range");
        cost[m] += chain.tapAttenuation(d).value();
        weight[m] += flow(source, d);
        any_flow = any_flow || flow(source, d) > 0.0;
    }
    if (!any_flow) {
        for (int d = 0; d < n; ++d)
            if (d != source)
                weight[mode_of_dest[d]] += 1.0;
    }
    double objective = optics::optimizeAlphaVector(cost, weight).objective;
    return crossbar.params().pminAtTap() * objective;
}

GlobalPowerTopology
commAwareTopology(const optics::OpticalCrossbar &crossbar,
                  const FlowMatrix &design_flow,
                  const CommAwareConfig &config)
{
    int n = crossbar.numNodes();
    fatalIf(config.numModes < 2,
            "communication-aware designs need >= 2 modes");
    fatalIf(n - 1 < config.numModes, "more modes than destinations");
    fatalIf(static_cast<int>(design_flow.rows()) != n ||
            static_cast<int>(design_flow.cols()) != n,
            "design flow matrix size mismatch");

    Matrix<int> modes(n, n, 0);
    for (int s = 0; s < n; ++s) {
        SortedDests dests(crossbar, s, design_flow,
                          config.frequencyBandFactor);
        std::vector<int> best_bounds;
        double best = 0.0;

        if (config.numModes == 2) {
            // Full binary-partition sweep (Section 4.3).
            for (int k = 1; k <= dests.count() - 1; ++k) {
                std::vector<int> bounds = {k};
                double obj = dests.evaluate(bounds);
                if (best_bounds.empty() || obj < best) {
                    best = obj;
                    best_bounds = bounds;
                }
            }
        } else {
            auto candidates = config.candidateFractions.empty()
                                  ? defaultCandidates(config.numModes)
                                  : config.candidateFractions;
            for (const auto &fractions : candidates) {
                fatalIf(static_cast<int>(fractions.size()) !=
                            config.numModes,
                        "candidate partition has wrong mode count");
                auto bounds = fractionsToBounds(fractions,
                                                dests.count());
                double obj = dests.evaluate(bounds);
                if (best_bounds.empty() || obj < best) {
                    best = obj;
                    best_bounds = bounds;
                }
            }
        }

        if (config.greedyRefine)
            refineBounds(dests, best_bounds, best);

        int mode = 0;
        std::size_t boundary = 0;
        for (int k = 0; k < dests.count(); ++k) {
            while (boundary < best_bounds.size() &&
                   k >= best_bounds[boundary]) {
                ++mode;
                ++boundary;
            }
            modes(s, dests.order[k]) = mode;
        }
    }
    return GlobalPowerTopology::fromModeMatrix(modes, config.numModes);
}

} // namespace mnoc::core
