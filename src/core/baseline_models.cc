#include "core/baseline_models.hh"

#include "common/log.hh"

namespace mnoc::core {

namespace {

/**
 * Aggregate a core-granularity flit matrix to cluster granularity and
 * split it into inter-cluster and intra-cluster totals.
 */
struct ClusterTraffic
{
    FlowMatrix interFlits; // cluster -> cluster, off-diagonal
    double intraFlits = 0.0;
    double interTotal = 0.0;

    ClusterTraffic(const CountMatrix &flits, int cluster_size,
                   int radix)
        : interFlits(radix, radix, 0.0)
    {
        int n = static_cast<int>(flits.rows());
        fatalIf(n != radix * cluster_size,
                "trace size does not match the clustered topology");
        for (int s = 0; s < n; ++s) {
            for (int d = 0; d < n; ++d) {
                auto f = static_cast<double>(flits(s, d));
                if (f == 0.0 || s == d)
                    continue;
                int sc = s / cluster_size;
                int dc = d / cluster_size;
                if (sc == dc) {
                    intraFlits += f;
                } else {
                    interFlits(sc, dc) += f;
                    interTotal += f;
                }
            }
        }
    }
};

} // namespace

RnocPowerModel::RnocPowerModel(const RnocParams &params,
                               const PowerParams &electrical)
    : params_(params), electrical_(electrical)
{
    fatalIf(params_.ringCount < 0, "negative ring count");
    fatalIf(params_.radix < 2, "radix must be at least 2");
    fatalIf(params_.clusterSize < 1, "cluster size must be positive");
}

PowerBreakdown
RnocPowerModel::evaluate(const sim::Trace &trace) const
{
    fatalIf(trace.totalTicks == 0, "trace has zero duration");
    ClusterTraffic traffic(trace.flits, params_.clusterSize,
                           params_.radix);

    double flit_time = 1.0 / electrical_.net.clockHz;
    double duration = static_cast<double>(trace.totalTicks) /
                      electrical_.net.clockHz;

    PowerBreakdown out;
    // Activity-independent components.
    out.ringHeating = static_cast<double>(params_.ringCount) *
                      params_.ringTrimPerRing;
    out.laser = params_.laserPower;

    // O/E: a SWMR port broadcast lights up the other radix-1 ports'
    // receivers for the packet duration.  The low rNoC mIOP buys laser
    // budget but costs high-gain receivers.
    double oe_per_receiver =
        electrical_.oePowerPerReceiver(params_.miop).watts();
    out.oe = traffic.interTotal * flit_time *
             static_cast<double>(params_.radix - 1) * oe_per_receiver /
             duration;

    // Electrical: intra-cluster crosses one router and two links;
    // inter-cluster crosses two routers and two links.
    double electrical_energy =
        traffic.intraFlits * (params_.routerEnergyPerFlit +
                              2.0 * params_.elinkEnergyPerFlit) +
        traffic.interTotal * 2.0 * (params_.routerEnergyPerFlit +
                                    params_.elinkEnergyPerFlit);
    out.electrical = electrical_energy / duration;
    return out;
}

CmnocPowerModel::CmnocPowerModel(const CmnocParams &params,
                                 const PowerParams &electrical)
    : params_(params), electrical_(electrical),
      portLayout_(params.radix, params.waveguideLength)
{
    crossbar_ = std::make_unique<optics::OpticalCrossbar>(
        portLayout_, params_.optics);
}

PowerBreakdown
CmnocPowerModel::evaluate(const sim::Trace &trace) const
{
    fatalIf(trace.totalTicks == 0, "trace has zero duration");
    ClusterTraffic traffic(trace.flits, params_.clusterSize,
                           params_.radix);

    double flit_time = 1.0 / electrical_.net.clockHz;
    double duration = static_cast<double>(trace.totalTicks) /
                      electrical_.net.clockHz;
    double oe_per_receiver =
        electrical_
            .oePowerPerReceiver(params_.optics.photodetectorMiop)
            .watts();

    PowerBreakdown out;
    double source_energy = 0.0;
    double oe_energy = 0.0;
    for (int sc = 0; sc < params_.radix; ++sc) {
        // Single-mode port crossbar: every inter-cluster flit from
        // this port broadcasts at the port's full-reach power.
        double port_flits = traffic.interFlits.rowTotal(sc);
        if (port_flits == 0.0)
            continue;
        double tx_time = port_flits * flit_time;
        source_energy += tx_time *
                         crossbar_->broadcastPower(sc).watts() *
                         params_.optics.oneToZeroRatio /
                         params_.optics.qdLedEfficiency;
        oe_energy += tx_time *
                     static_cast<double>(params_.radix - 1) *
                     oe_per_receiver;
    }
    out.source = source_energy / duration;
    out.oe = oe_energy / duration;

    double electrical_energy =
        traffic.intraFlits * (params_.routerEnergyPerFlit +
                              2.0 * params_.elinkEnergyPerFlit) +
        traffic.interTotal * 2.0 * (params_.routerEnergyPerFlit +
                                    params_.elinkEnergyPerFlit);
    out.electrical = electrical_energy / duration;
    return out;
}

} // namespace mnoc::core
