/**
 * @file
 * QAP thread mapping (paper Section 4.4): place frequently
 * communicating threads on the cores whose single-mode source power is
 * lowest (the middle of the serpentine).
 */

#ifndef MNOC_CORE_THREAD_MAPPER_HH
#define MNOC_CORE_THREAD_MAPPER_HH

#include <cstdint>
#include <vector>

#include "common/matrix.hh"
#include "optics/crossbar.hh"

namespace mnoc::core {

/** What the QAP distance matrix models. */
enum class MappingObjective
{
    /**
     * The paper's Section 4.4 formulation: mapping is based on the
     * single-mode power topology, so a pair's cost is the broadcast
     * drive power of its endpoints -- heavy communicators migrate to
     * the middle of the serpentine where broadcast is cheap.
     */
    SingleModeProfile,
    /**
     * Pairwise tap attenuation: the marginal power to reach exactly
     * the partner, which is what multi-mode designs charge.  Position
     * independent; favors adjacency.
     */
    PairwiseAttenuation,
    /** Sum of both terms (default): profile and locality gradients. */
    Blended,
};

/** Mapping heuristic selection. */
enum class MappingMethod
{
    Identity, ///< naive: thread t on core t
    Taboo,    ///< Taillard robust taboo search (the paper's default)
    Annealing, ///< Connolly-style simulated annealing
};

/** Result of a thread-mapping run. */
struct MappingResult
{
    /** threadToCore[t] = core that thread t runs on. */
    std::vector<int> threadToCore;
    /** QAP objective of the mapping (lower is better). */
    double qapCost = 0.0;
    /** QAP objective of the identity mapping, for comparison. */
    double identityCost = 0.0;
};

/** Knobs for the mapping heuristics. */
struct MappingParams
{
    long long tabooIterations = 20000;
    long long annealingIterations = 400000;
    std::uint64_t seed = 1;
    /** Independently seeded restarts run concurrently on the shared
     *  ThreadPool; the best permutation wins (ordered reduction, so
     *  the result is identical at any MNOC_THREADS).  1 restores the
     *  single-start searches. */
    int restarts = 4;
};

/**
 * Build the QAP distance matrix for @p objective (symmetric, zero
 * diagonal).  SingleModeProfile charges (B(a) + B(b)) / (2 (N-1))
 * where B is the broadcast drive power; PairwiseAttenuation charges
 * pmin * A(a, b); Blended sums both.
 */
FlowMatrix powerDistanceMatrix(
    const optics::OpticalCrossbar &crossbar,
    MappingObjective objective = MappingObjective::Blended);

/**
 * Map threads to cores so that high-flow pairs land on low-power core
 * pairs.
 *
 * @param crossbar Optical crossbar providing the power profile.
 * @param thread_flow Thread-to-thread traffic (flits or packets).
 * @param method Heuristic to use.
 * @param params Heuristic knobs.
 */
MappingResult mapThreads(
    const optics::OpticalCrossbar &crossbar,
    const FlowMatrix &thread_flow,
    MappingMethod method = MappingMethod::Taboo,
    const MappingParams &params = {},
    MappingObjective objective = MappingObjective::Blended);

} // namespace mnoc::core

#endif // MNOC_CORE_THREAD_MAPPER_HH
