/**
 * @file
 * Latency/contention model of the radix-N SWMR mNoC crossbar.
 *
 * Every source owns a dedicated serpentine waveguide, so the only
 * contention point is the source's own injection channel: each node
 * carries a chromophore receiver on every waveguide, so packets from
 * different sources eject concurrently.  Optical traversal takes 1-9
 * cycles at 5 GHz depending on the waveguide distance (paper Table 2).
 */

#ifndef MNOC_NOC_MNOC_NETWORK_HH
#define MNOC_NOC_MNOC_NETWORK_HH

#include <vector>

#include "noc/channel.hh"
#include "noc/config.hh"
#include "noc/network.hh"
#include "optics/serpentine_layout.hh"

namespace mnoc::noc {

/** SWMR optical crossbar timing model. */
class MnocNetwork : public Network
{
  public:
    /**
     * @param layout Serpentine geometry (shared with the power model).
     * @param config Timing parameters.
     */
    MnocNetwork(const optics::SerpentineLayout &layout,
                const NetworkConfig &config);

    int numNodes() const override;
    Tick deliver(const Packet &packet, Tick now) override;
    int zeroLoadLatency(int src, int dst) const override;
    std::string name() const override { return "mNoC"; }
    void reset() override;

  private:
    const optics::SerpentineLayout &layout_;
    NetworkConfig config_;
    /** Injection channel per source waveguide. */
    std::vector<Channel> sourceChannel_;
};

} // namespace mnoc::noc

#endif // MNOC_NOC_MNOC_NETWORK_HH
