/**
 * @file
 * Latency/contention model of the clustered photonic topologies (rNoC
 * and c_mNoC): a radix-64 optical crossbar whose ports are shared by
 * 4-node electrical clusters (paper Section 2 and Table 2).
 *
 * Intra-cluster traffic crosses one electrical router; inter-cluster
 * traffic crosses the source router, the optical crossbar (1-5 cycles),
 * and the destination router.  The four nodes of a cluster share their
 * port's injection channel, which is the clustered designs' bandwidth
 * disadvantage against the full crossbar.
 */

#ifndef MNOC_NOC_CLUSTERED_NETWORK_HH
#define MNOC_NOC_CLUSTERED_NETWORK_HH

#include <vector>

#include "noc/channel.hh"
#include "noc/config.hh"
#include "noc/network.hh"
#include "optics/serpentine_layout.hh"

namespace mnoc::noc {

/** Clustered optical-crossbar timing model (rNoC / c_mNoC). */
class ClusteredNetwork : public Network
{
  public:
    /**
     * @param num_nodes Total cores; must be a multiple of the cluster
     *        size in @p config.
     * @param port_layout Serpentine geometry of the radix-(N/cluster)
     *        optical crossbar connecting the cluster ports.
     * @param config Timing parameters.
     * @param model_name Reported name ("rNoC" or "c_mNoC").
     */
    ClusteredNetwork(int num_nodes,
                     const optics::SerpentineLayout &port_layout,
                     const NetworkConfig &config,
                     std::string model_name);

    int numNodes() const override { return numNodes_; }
    Tick deliver(const Packet &packet, Tick now) override;
    int zeroLoadLatency(int src, int dst) const override;
    std::string name() const override { return modelName_; }
    void reset() override;

    /** Cluster (optical port) of node @p node. */
    int clusterOf(int node) const { return node / config_.clusterSize; }

  private:
    int numNodes_;
    const optics::SerpentineLayout &portLayout_;
    NetworkConfig config_;
    std::string modelName_;
    /** Injection channel per optical port (shared per cluster). */
    std::vector<Channel> portChannel_;
    /** Ejection channel per optical port. */
    std::vector<Channel> ejectChannel_;
    /** Local electrical router per cluster. */
    std::vector<Channel> routerChannel_;
};

} // namespace mnoc::noc

#endif // MNOC_NOC_CLUSTERED_NETWORK_HH
