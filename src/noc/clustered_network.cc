#include "noc/clustered_network.hh"

#include <algorithm>

#include "common/log.hh"

namespace mnoc::noc {

ClusteredNetwork::ClusteredNetwork(
    int num_nodes, const optics::SerpentineLayout &port_layout,
    const NetworkConfig &config, std::string model_name)
    : numNodes_(num_nodes), portLayout_(port_layout), config_(config),
      modelName_(std::move(model_name))
{
    fatalIf(config_.clusterSize < 1, "cluster size must be positive");
    fatalIf(num_nodes % config_.clusterSize != 0,
            "node count must be a multiple of the cluster size");
    int ports = num_nodes / config_.clusterSize;
    fatalIf(ports != port_layout.numNodes(),
            "port layout size must equal the cluster count");
    portChannel_.assign(ports, Channel());
    ejectChannel_.assign(ports, Channel());
    routerChannel_.assign(ports, Channel());
}

int
ClusteredNetwork::zeroLoadLatency(int src, int dst) const
{
    if (src == dst)
        return 0;
    int src_cluster = src / config_.clusterSize;
    int dst_cluster = dst / config_.clusterSize;
    if (src_cluster == dst_cluster) {
        // node -> link -> router -> link -> node
        return config_.routerCycles + 2 * config_.electricalLinkCycles;
    }
    int optical = config_.opticalCycles(
        portLayout_.distanceBetween(src_cluster, dst_cluster));
    // node -> link -> src router -> optical -> dst router -> link -> node
    return 2 * (config_.routerCycles + config_.electricalLinkCycles) +
           optical;
}

Tick
ClusteredNetwork::deliver(const Packet &packet, Tick now)
{
    panicIf(packet.src < 0 || packet.src >= numNodes_ ||
            packet.dst < 0 || packet.dst >= numNodes_,
            "packet endpoint out of range");
    if (packet.src == packet.dst)
        return now;

    int src_cluster = packet.src / config_.clusterSize;
    int dst_cluster = packet.dst / config_.clusterSize;

    // Local router crossing, serialized per cluster router.
    Tick through_router =
        routerChannel_[src_cluster].book(now, packet.flits);
    Tick at_router = through_router + config_.electricalLinkCycles +
                     config_.routerCycles;

    if (src_cluster == dst_cluster)
        return at_router + config_.electricalLinkCycles;

    // Inject into the cluster's shared optical port.
    Tick tx_done = portChannel_[src_cluster].book(at_router,
                                                  packet.flits);
    Tick arrival = tx_done + config_.opticalCycles(
        portLayout_.distanceBetween(src_cluster, dst_cluster));

    Tick ejected = ejectChannel_[dst_cluster].book(arrival,
                                                   packet.flits);

    // Destination-side router crossing, serialized as well.
    Tick through_dst = routerChannel_[dst_cluster].book(ejected,
                                                        packet.flits);
    return through_dst + config_.routerCycles +
           config_.electricalLinkCycles;
}

void
ClusteredNetwork::reset()
{
    for (Channel &channel : portChannel_)
        channel.reset();
    for (Channel &channel : ejectChannel_)
        channel.reset();
    for (Channel &channel : routerChannel_)
        channel.reset();
}

} // namespace mnoc::noc
