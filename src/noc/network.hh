/**
 * @file
 * Abstract network model interface and the traffic recorder used to
 * capture communication matrices from simulation.
 */

#ifndef MNOC_NOC_NETWORK_HH
#define MNOC_NOC_NETWORK_HH

#include <string>

#include "common/matrix.hh"
#include "noc/packet.hh"

namespace mnoc::noc {

/**
 * A point-to-point network timing model.  deliver() is stateful: it
 * advances per-channel occupancy so that back-to-back packets on the
 * same channel serialize.
 */
class Network
{
  public:
    virtual ~Network() = default;

    /** Number of network endpoints. */
    virtual int numNodes() const = 0;

    /**
     * Inject @p packet at @p now and return its delivery tick,
     * accounting for serialization and channel contention.
     */
    virtual Tick deliver(const Packet &packet, Tick now) = 0;

    /** Zero-load latency in cycles from @p src to @p dst. */
    virtual int zeroLoadLatency(int src, int dst) const = 0;

    /** Model name for reports. */
    virtual std::string name() const = 0;

    /** Reset all channel-occupancy state. */
    virtual void reset() = 0;
};

/**
 * Records per-(src, dst) packet and flit counts.  The power models
 * consume the flit matrix; the thread mapper consumes the packet
 * matrix.
 */
class TrafficRecorder
{
  public:
    explicit TrafficRecorder(int num_nodes)
        : packets_(num_nodes, num_nodes, 0),
          flits_(num_nodes, num_nodes, 0)
    {}

    /** Record one delivered packet. */
    void
    record(const Packet &packet)
    {
        packets_(packet.src, packet.dst) += 1;
        flits_(packet.src, packet.dst) +=
            static_cast<std::uint64_t>(packet.flits);
    }

    const CountMatrix &packets() const { return packets_; }
    const CountMatrix &flits() const { return flits_; }

    /** Total packets recorded. */
    std::uint64_t totalPackets() const { return packets_.total(); }
    /** Total flits recorded. */
    std::uint64_t totalFlits() const { return flits_.total(); }

  private:
    CountMatrix packets_;
    CountMatrix flits_;
};

} // namespace mnoc::noc

#endif // MNOC_NOC_NETWORK_HH
