/**
 * @file
 * Abstract network model interface and the traffic recorder used to
 * capture communication matrices from simulation.
 */

#ifndef MNOC_NOC_NETWORK_HH
#define MNOC_NOC_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.hh"
#include "noc/packet.hh"

namespace mnoc::noc {

/**
 * A point-to-point network timing model.  deliver() is stateful: it
 * advances per-channel occupancy so that back-to-back packets on the
 * same channel serialize.
 */
class Network
{
  public:
    virtual ~Network() = default;

    /** Number of network endpoints. */
    virtual int numNodes() const = 0;

    /**
     * Inject @p packet at @p now and return its delivery tick,
     * accounting for serialization and channel contention.
     */
    virtual Tick deliver(const Packet &packet, Tick now) = 0;

    /** Zero-load latency in cycles from @p src to @p dst. */
    virtual int zeroLoadLatency(int src, int dst) const = 0;

    /** Model name for reports. */
    virtual std::string name() const = 0;

    /** Reset all channel-occupancy state. */
    virtual void reset() = 0;
};

/** One (src, dst) traffic entry inside an attribution epoch. */
struct EpochCell
{
    int src = 0;
    int dst = 0;
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
};

/**
 * Traffic bucketed into fixed message-count windows, in delivery
 * order: epoch e holds messages [e*messagesPerEpoch,
 * (e+1)*messagesPerEpoch).  Cells within an epoch are sorted by
 * (src, dst), so the representation is canonical and two captures of
 * the same run compare byte-identical.
 */
struct EpochTraffic
{
    std::uint64_t messagesPerEpoch = 0;
    std::vector<std::vector<EpochCell>> epochs;

    bool empty() const { return epochs.empty(); }
};

/**
 * Records per-(src, dst) packet and flit counts.  The power models
 * consume the flit matrix; the thread mapper consumes the packet
 * matrix.  With enableEpochs(), traffic is additionally bucketed
 * into message-count windows for the energy-attribution ledger.
 * record() is serial (the event loop owns it), so no locking.
 */
class TrafficRecorder
{
  public:
    explicit TrafficRecorder(int num_nodes)
        : packets_(num_nodes, num_nodes, 0),
          flits_(num_nodes, num_nodes, 0)
    {}

    /** Start bucketing traffic into windows of @p messages_per_epoch
     *  delivered packets (0 disables; the default). */
    void
    enableEpochs(std::uint64_t messages_per_epoch)
    {
        epochs_.messagesPerEpoch = messages_per_epoch;
    }

    /**
     * Stream sealed epochs into @p sink (e.g. a TraceShardWriter)
     * instead of accumulating them in memory, so a capture's peak
     * memory no longer grows with run length.  Cells arrive sorted by
     * (src, dst), exactly as takeEpochs() would have stored them.
     * takeEpochs() then returns only messagesPerEpoch and whatever
     * the sink has not consumed (nothing), so callers that persist
     * through the sink skip saveTrace()'s epoch block.
     */
    void
    setEpochSink(std::function<void(std::vector<EpochCell> &&)> sink)
    {
        epochSink_ = std::move(sink);
    }

    /** Record one delivered packet. */
    void
    record(const Packet &packet)
    {
        packets_(packet.src, packet.dst) += 1;
        flits_(packet.src, packet.dst) +=
            static_cast<std::uint64_t>(packet.flits);
        if (epochs_.messagesPerEpoch == 0)
            return;
        auto &cell = current_[{packet.src, packet.dst}];
        cell.first += 1;
        cell.second += static_cast<std::uint64_t>(packet.flits);
        if (++messages_in_epoch_ == epochs_.messagesPerEpoch)
            sealEpoch();
    }

    /** Finish the partial epoch (if any) and hand over the captured
     *  windows; the recorder's epoch state is left empty. */
    EpochTraffic
    takeEpochs()
    {
        if (messages_in_epoch_ > 0)
            sealEpoch();
        EpochTraffic out = std::move(epochs_);
        epochs_ = EpochTraffic{};
        epochs_.messagesPerEpoch = out.messagesPerEpoch;
        return out;
    }

    const CountMatrix &packets() const { return packets_; }
    const CountMatrix &flits() const { return flits_; }

    /** Total packets recorded. */
    std::uint64_t totalPackets() const { return packets_.total(); }
    /** Total flits recorded. */
    std::uint64_t totalFlits() const { return flits_.total(); }

  private:
    void
    sealEpoch()
    {
        std::vector<EpochCell> cells;
        cells.reserve(current_.size());
        // std::map iterates in key order, so the sealed epoch is
        // already sorted by (src, dst).
        for (const auto &[key, counts] : current_)
            cells.push_back(EpochCell{key.first, key.second,
                                      counts.first, counts.second});
        if (epochSink_)
            epochSink_(std::move(cells));
        else
            epochs_.epochs.push_back(std::move(cells));
        current_.clear();
        messages_in_epoch_ = 0;
    }

    CountMatrix packets_;
    CountMatrix flits_;
    EpochTraffic epochs_;
    std::function<void(std::vector<EpochCell> &&)> epochSink_;
    std::map<std::pair<int, int>,
             std::pair<std::uint64_t, std::uint64_t>>
        current_;
    std::uint64_t messages_in_epoch_ = 0;
};

} // namespace mnoc::noc

#endif // MNOC_NOC_NETWORK_HH
