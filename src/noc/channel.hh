/**
 * @file
 * Analytical channel contention model.
 *
 * The coherence engine books packets on channels at out-of-time-order
 * instants (a directory response lands 100+ cycles after the request
 * that is being processed now), so an exact FCFS watermark either
 * loses idle holes or ratchets unboundedly.  Following Graphite's
 * methodology -- the paper's own simulator uses analytical queueing
 * contention models per link -- each channel instead estimates its
 * utilization over a sliding window and charges an M/D/1-style
 * queueing delay: Wq = rho / (2 (1 - rho)) * service_time.  The model
 * is order-insensitive and deterministic.
 */

#ifndef MNOC_NOC_CHANNEL_HH
#define MNOC_NOC_CHANNEL_HH

#include "noc/packet.hh"

namespace mnoc::noc {

/** One serialized link with 1 flit/cycle bandwidth. */
class Channel
{
  public:
    /**
     * Occupy the channel with @p flits around time @p when.
     *
     * @return The tick at which the packet's last flit has left,
     *         including the utilization-dependent queueing delay.
     */
    Tick
    book(Tick when, int flits)
    {
        Tick bucket = when / windowCycles;
        if (bucket > currentBucket_) {
            previousCount_ =
                bucket == currentBucket_ + 1 ? currentCount_ : 0;
            currentCount_ = 0;
            currentBucket_ = bucket;
        }
        currentCount_ += static_cast<Tick>(flits);

        double rho = utilization();
        double queue = rho / (2.0 * (1.0 - rho)) *
                       static_cast<double>(flits);
        return when + static_cast<Tick>(queue) +
               static_cast<Tick>(flits);
    }

    /** Current utilization estimate in [0, maxUtilization]. */
    double
    utilization() const
    {
        double windows =
            previousCount_ > 0 || currentBucket_ > 0 ? 2.0 : 1.0;
        double rho = static_cast<double>(previousCount_ +
                                         currentCount_) /
                     (windows * static_cast<double>(windowCycles));
        return rho < maxUtilization ? rho : maxUtilization;
    }

    void
    reset()
    {
        currentBucket_ = 0;
        currentCount_ = 0;
        previousCount_ = 0;
    }

  private:
    /** Utilization-averaging window, in cycles. */
    static constexpr Tick windowCycles = 2048;
    /** Cap so the queueing term stays finite under overload. */
    static constexpr double maxUtilization = 0.98;

    Tick currentBucket_ = 0;
    Tick currentCount_ = 0;
    Tick previousCount_ = 0;
};

} // namespace mnoc::noc

#endif // MNOC_NOC_CHANNEL_HH
