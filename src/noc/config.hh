/**
 * @file
 * Shared simulation configuration (paper Table 2).
 */

#ifndef MNOC_NOC_CONFIG_HH
#define MNOC_NOC_CONFIG_HH

#include "common/units.hh"

namespace mnoc::noc {

/** System-level timing parameters; defaults reproduce paper Table 2. */
struct NetworkConfig
{
    /** Core and network clock, in Hz. */
    double clockHz = 5.0 * gigahertz;
    /** Flit size in bits. */
    int flitBits = 256;
    /** Router pipeline depth in cycles (electrical routers). */
    int routerCycles = 4;
    /** Electrical link traversal in cycles. */
    int electricalLinkCycles = 1;
    /** Speed of light in the waveguide, meters per second (~10 cm/ns,
     *  the paper's conservative assumption). */
    double waveguideLightSpeed = 0.10 / nanosecond;
    /** Nodes per cluster in the clustered topologies. */
    int clusterSize = 4;

    /** Cycles of optical time-of-flight over @p distance, clamped to
     *  at least one cycle (which also covers O/E + E/O). */
    int
    opticalCycles(Meters distance) const
    {
        double seconds = distance.meters() / waveguideLightSpeed;
        double cycles = seconds * clockHz;
        int whole = static_cast<int>(cycles);
        if (static_cast<double>(whole) < cycles)
            ++whole;
        return whole < 1 ? 1 : whole;
    }
};

} // namespace mnoc::noc

#endif // MNOC_NOC_CONFIG_HH
