#include "noc/mnoc_network.hh"

#include "common/log.hh"

namespace mnoc::noc {

MnocNetwork::MnocNetwork(const optics::SerpentineLayout &layout,
                         const NetworkConfig &config)
    : layout_(layout), config_(config),
      sourceChannel_(layout.numNodes())
{
}

int
MnocNetwork::numNodes() const
{
    return layout_.numNodes();
}

int
MnocNetwork::zeroLoadLatency(int src, int dst) const
{
    if (src == dst)
        return 0;
    return config_.opticalCycles(layout_.distanceBetween(src, dst));
}

Tick
MnocNetwork::deliver(const Packet &packet, Tick now)
{
    panicIf(packet.src < 0 || packet.src >= numNodes() ||
            packet.dst < 0 || packet.dst >= numNodes(),
            "packet endpoint out of range");
    if (packet.src == packet.dst)
        return now; // local, never enters the network

    // Serialize on the source's dedicated waveguide.  Each destination
    // has a dedicated receiver per waveguide, so there is no ejection
    // contention: arrival is transmission end plus optical traversal.
    Tick tx_done = sourceChannel_[packet.src].book(now, packet.flits);
    return tx_done +
        static_cast<Tick>(zeroLoadLatency(packet.src, packet.dst));
}

void
MnocNetwork::reset()
{
    for (Channel &channel : sourceChannel_)
        channel.reset();
}

} // namespace mnoc::noc
