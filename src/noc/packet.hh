/**
 * @file
 * Network packet types shared by the NoC models and the simulator.
 */

#ifndef MNOC_NOC_PACKET_HH
#define MNOC_NOC_PACKET_HH

#include <cstdint>

namespace mnoc::noc {

/** Simulation time in core clock cycles. */
using Tick = std::uint64_t;

/** Packet kinds, which determine the flit count. */
enum class PacketClass
{
    Control, ///< coherence requests, invalidations, acks (1 flit)
    Data,    ///< cache-line transfers (header + 64B payload)
};

/** One network packet. */
struct Packet
{
    int src = 0;
    int dst = 0;
    PacketClass cls = PacketClass::Control;
    int flits = 1;
};

/** Flits per packet class with 256-bit flits and 64-byte lines. */
inline int
flitsFor(PacketClass cls)
{
    // 64B line = 512 bits = 2 flits, plus a header flit.
    return cls == PacketClass::Data ? 3 : 1;
}

/** Construct a packet of class @p cls from @p src to @p dst. */
inline Packet
makePacket(int src, int dst, PacketClass cls)
{
    return {src, dst, cls, flitsFor(cls)};
}

} // namespace mnoc::noc

#endif // MNOC_NOC_PACKET_HH
