#include "qap/qap.hh"

#include <numeric>

#include "common/log.hh"
#include "common/units.hh"

namespace mnoc::qap {

QapInstance::QapInstance(FlowMatrix flow, FlowMatrix dist)
    : flow_(std::move(flow)), dist_(std::move(dist))
{
    fatalIf(flow_.rows() != flow_.cols(), "flow matrix must be square");
    fatalIf(dist_.rows() != dist_.cols(), "dist matrix must be square");
    fatalIf(flow_.rows() != dist_.rows(),
            "flow and dist matrices must agree in size");
    size_ = static_cast<int>(flow_.rows());
    fatalIf(size_ < 2, "QAP instance needs at least two facilities");

    symmetric_ = true;
    for (int i = 0; i < size_ && symmetric_; ++i) {
        if (flow_(i, i) != 0.0 || dist_(i, i) != 0.0) {
            symmetric_ = false;
            break;
        }
        for (int j = i + 1; j < size_; ++j) {
            if (!nearlyEqual(flow_(i, j), flow_(j, i)) ||
                !nearlyEqual(dist_(i, j), dist_(j, i))) {
                symmetric_ = false;
                break;
            }
        }
    }
}

double
QapInstance::cost(const Permutation &perm) const
{
    checkPermutation(perm);
    double total = 0.0;
    for (int i = 0; i < size_; ++i)
        for (int j = 0; j < size_; ++j)
            total += flow_(i, j) * dist_(perm[i], perm[j]);
    return total;
}

double
QapInstance::swapDelta(const Permutation &perm, int u, int v) const
{
    panicIf(u == v, "swapDelta requires distinct facilities");
    int pu = perm[u];
    int pv = perm[v];
    // Raw row pointers: this is the innermost kernel of the taboo
    // search, where the bounds-checked accessors cost an order of
    // magnitude.
    const std::size_t n = static_cast<std::size_t>(size_);
    const double *f = flow_.data().data();
    const double *d = dist_.data().data();
    const double *f_u = f + static_cast<std::size_t>(u) * n;
    const double *f_v = f + static_cast<std::size_t>(v) * n;
    const double *d_pu = d + static_cast<std::size_t>(pu) * n;
    const double *d_pv = d + static_cast<std::size_t>(pv) * n;

    double delta = 0.0;
    for (int k = 0; k < size_; ++k) {
        if (k == u || k == v)
            continue;
        std::size_t pk = static_cast<std::size_t>(perm[k]);
        double d_to = d_pv[pk] - d_pu[pk];
        delta += (f_u[k] - f_v[k]) * d_to;
        double d_from = d[pk * n + pv] - d[pk * n + pu];
        delta += (f[static_cast<std::size_t>(k) * n + u] -
                  f[static_cast<std::size_t>(k) * n + v]) *
                 d_from;
    }
    std::size_t su = static_cast<std::size_t>(u);
    std::size_t sv = static_cast<std::size_t>(v);
    std::size_t spu = static_cast<std::size_t>(pu);
    std::size_t spv = static_cast<std::size_t>(pv);
    delta += f_u[sv] * (d_pv[spu] - d_pu[spv]);
    delta += f_v[su] * (d_pu[spv] - d_pv[spu]);
    delta += f_u[su] * (d_pv[spv] - d_pu[spu]);
    delta += f_v[sv] * (d_pu[spu] - d_pv[spv]);
    return delta;
}

Permutation
QapInstance::identity() const
{
    Permutation perm(size_);
    std::iota(perm.begin(), perm.end(), 0);
    return perm;
}

void
QapInstance::checkPermutation(const Permutation &perm) const
{
    fatalIf(static_cast<int>(perm.size()) != size_,
            "permutation size mismatch");
    std::vector<bool> seen(size_, false);
    for (int p : perm) {
        fatalIf(p < 0 || p >= size_, "permutation entry out of range");
        fatalIf(seen[p], "duplicate entry in permutation");
        seen[p] = true;
    }
}

} // namespace mnoc::qap
