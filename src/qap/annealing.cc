#include "qap/annealing.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/prng.hh"

namespace mnoc::qap {

QapResult
simulatedAnnealing(const QapInstance &instance, const Permutation &start,
                   const AnnealingParams &params)
{
    instance.checkPermutation(start);
    fatalIf(params.iterations < 10, "annealing needs iterations >= 10");

    int n = instance.size();
    Prng rng(params.seed);
    Permutation perm = start;
    double cost = instance.cost(perm);
    Permutation best_perm = perm;
    double best_cost = cost;

    // Connolly warm-up: sample random swap deltas to estimate the
    // starting and final temperatures.
    auto warmup = std::max<long long>(
        10, static_cast<long long>(params.warmupFraction *
                                   static_cast<double>(params.iterations)));
    double min_up = std::numeric_limits<double>::infinity();
    double max_up = 0.0;
    for (long long i = 0; i < warmup; ++i) {
        int u = static_cast<int>(rng.below(n));
        int v = static_cast<int>(rng.below(n));
        if (u == v)
            continue;
        double delta = instance.swapDelta(perm, u, v);
        if (delta > 0.0) {
            min_up = std::min(min_up, delta);
            max_up = std::max(max_up, delta);
        }
    }
    if (!std::isfinite(min_up)) {
        // No uphill move seen; instance is flat around the start.
        min_up = 1.0;
        max_up = 10.0;
    }
    double t0 = min_up + (max_up - min_up) / 10.0; // Connolly's choice
    double t1 = min_up;
    long long moves = params.iterations;
    // Reciprocal schedule: t_{k+1} = t_k / (1 + beta t_k).
    double beta = (t0 - t1) / (static_cast<double>(moves) * t0 * t1);

    double temp = t0;
    QapResult result;
    for (long long iter = 0; iter < moves; ++iter) {
        int u = static_cast<int>(rng.below(n));
        int v = static_cast<int>(rng.below(n));
        if (u == v)
            continue;
        double delta = instance.swapDelta(perm, u, v);
        bool accept = delta <= 0.0 ||
                      rng.uniform() < std::exp(-delta / temp);
        if (accept) {
            std::swap(perm[u], perm[v]);
            cost += delta;
            if (cost < best_cost) {
                best_cost = cost;
                best_perm = perm;
            }
        }
        temp = temp / (1.0 + beta * temp);
        ++result.iterations;
    }

    result.perm = best_perm;
    result.cost = best_cost;
    return result;
}

} // namespace mnoc::qap
