/**
 * @file
 * Taillard's robust taboo search for the QAP (Parallel Computing 17,
 * 1991), the primary thread-mapping heuristic of paper Section 4.4.
 */

#ifndef MNOC_QAP_TABOO_HH
#define MNOC_QAP_TABOO_HH

#include <cstdint>

#include "qap/qap.hh"

namespace mnoc::qap {

/** Tuning knobs for the robust taboo search. */
struct TabooParams
{
    /** Total swap moves to apply. */
    long long iterations = 20000;
    /** Tenure is redrawn uniformly from [minTenureFactor*n,
     *  maxTenureFactor*n] every tenureRedrawPeriod iterations. */
    double minTenureFactor = 0.9;
    double maxTenureFactor = 1.1;
    long long tenureRedrawPeriod = 800;
    /** Aspiration: accept a taboo move improving on the best by any
     *  margin.  Always on in the robust variant. */
    std::uint64_t seed = 1;
};

/**
 * Run robust taboo search.  Requires a symmetric instance with zero
 * diagonals (the thread mapper symmetrizes its flow matrix; the power
 * profile distance matrix is symmetric by construction) so that the
 * O(1) delta-table update applies.
 *
 * @param instance The QAP instance (must be symmetric).
 * @param start Initial permutation.
 * @param params Search knobs.
 * @return Best permutation found and its cost.
 */
QapResult tabooSearch(const QapInstance &instance,
                      const Permutation &start,
                      const TabooParams &params = {});

} // namespace mnoc::qap

#endif // MNOC_QAP_TABOO_HH
