#include "qap/taboo.hh"

#include <limits>
#include <vector>

#include "common/log.hh"
#include "common/prng.hh"

namespace mnoc::qap {

namespace {

/**
 * Delta table maintained across moves.  For a symmetric instance with
 * zero diagonals the delta of a pair (r, s) disjoint from the applied
 * swap (u, v) updates in O(1):
 *
 *   delta'(r,s) = delta(r,s)
 *     + 2 * (f(r,u) - f(r,v) + f(s,v) - f(s,u))
 *         * (d(p(s),p(v)) - d(p(s),p(u)) + d(p(r),p(u)) - d(p(r),p(v)))
 *
 * with p taken *before* the swap (Taillard 1991).
 */
class DeltaTable
{
  public:
    DeltaTable(const QapInstance &inst, const Permutation &perm)
        : inst_(inst), n_(inst.size()), table_(n_ * n_, 0.0),
          fu_(n_, 0.0), fv_(n_, 0.0), dpu_(n_, 0.0), dpv_(n_, 0.0)
    {
        for (int u = 0; u < n_; ++u)
            for (int v = u + 1; v < n_; ++v)
                at(u, v) = inst_.swapDelta(perm, u, v);
    }

    double &at(int u, int v) { return table_[u * n_ + v]; }
    double get(int u, int v) const { return table_[u * n_ + v]; }

    /** Refresh the table after swapping facilities u and v; @p perm is
     *  the permutation before the swap is applied. */
    void
    applySwap(Permutation &perm, int u, int v)
    {
        const std::size_t n = static_cast<std::size_t>(n_);
        const double *f = inst_.flow().data().data();
        const double *d = inst_.dist().data().data();
        std::size_t pu = static_cast<std::size_t>(perm[u]);
        std::size_t pv = static_cast<std::size_t>(perm[v]);

        // Gather the four strided/permuted operand columns into
        // contiguous arrays once per swap, so the O(n^2) update loop
        // below streams sequentially instead of striding by n and
        // chasing perm[] per element.  The gathered values are the
        // same doubles the strided reads produced, and the update
        // expression keeps its shape, so the table stays bit-
        // identical to the pre-gather code.
        for (int k = 0; k < n_; ++k) {
            std::size_t kn = static_cast<std::size_t>(k) * n;
            std::size_t pk = static_cast<std::size_t>(perm[k]) * n;
            fu_[static_cast<std::size_t>(k)] =
                f[kn + static_cast<std::size_t>(u)];
            fv_[static_cast<std::size_t>(k)] =
                f[kn + static_cast<std::size_t>(v)];
            dpu_[static_cast<std::size_t>(k)] = d[pk + pu];
            dpv_[static_cast<std::size_t>(k)] = d[pk + pv];
        }

        for (int r = 0; r < n_; ++r) {
            if (r == u || r == v)
                continue;
            std::size_t rn = static_cast<std::size_t>(r) * n;
            std::size_t sr = static_cast<std::size_t>(r);
            // Symmetric matrices: column reads become row reads.
            double fr = fu_[sr] - fv_[sr];
            double dr = dpu_[sr] - dpv_[sr];
            double *row = &table_[rn];
            for (int s = r + 1; s < n_; ++s) {
                if (s == u || s == v)
                    continue;
                std::size_t ss = static_cast<std::size_t>(s);
                row[s] += 2.0 * (fr + fv_[ss] - fu_[ss]) *
                          (dpv_[ss] - dpu_[ss] + dr);
            }
        }

        std::swap(perm[u], perm[v]);

        // Pairs involving u or v are recomputed directly.
        for (int k = 0; k < n_; ++k) {
            if (k != u)
                at(std::min(k, u), std::max(k, u)) =
                    inst_.swapDelta(perm, std::min(k, u), std::max(k, u));
            if (k != v)
                at(std::min(k, v), std::max(k, v)) =
                    inst_.swapDelta(perm, std::min(k, v), std::max(k, v));
        }
    }

  private:
    const QapInstance &inst_;
    int n_;
    std::vector<double> table_;
    /** Per-swap gather buffers (see applySwap), allocated once. */
    std::vector<double> fu_, fv_, dpu_, dpv_;
};

} // namespace

QapResult
tabooSearch(const QapInstance &instance, const Permutation &start,
            const TabooParams &params)
{
    fatalIf(!instance.isSymmetric(),
            "taboo search requires a symmetric QAP instance "
            "(symmetrize the flow matrix first)");
    instance.checkPermutation(start);

    int n = instance.size();
    Prng rng(params.seed);
    Permutation perm = start;
    Permutation best_perm = perm;
    double cost = instance.cost(perm);
    double best_cost = cost;

    DeltaTable deltas(instance, perm);

    // tabuUntil(facility, location): iteration until which placing the
    // facility back on that location is forbidden.
    std::vector<long long> tabu_until(
        static_cast<std::size_t>(n) * n, -1);
    auto tabu = [&](int fac, int loc) -> long long & {
        return tabu_until[static_cast<std::size_t>(fac) * n + loc];
    };

    auto draw_tenure = [&]() {
        double lo = params.minTenureFactor * n;
        double hi = params.maxTenureFactor * n;
        return static_cast<long long>(lo + rng.uniform() * (hi - lo)) + 1;
    };
    long long tenure = draw_tenure();

    // Long-term diversification (Taillard's aspiration function u):
    // a pair untouched for this long is forced regardless of delta.
    const long long force_after =
        5LL * static_cast<long long>(n) * n;
    std::vector<long long> last_used(
        static_cast<std::size_t>(n) * n, 0);
    auto used = [&](int u, int v) -> long long & {
        return last_used[static_cast<std::size_t>(u) * n + v];
    };

    QapResult result;
    for (long long iter = 0; iter < params.iterations; ++iter) {
        if (params.tenureRedrawPeriod > 0 &&
            iter % params.tenureRedrawPeriod == 0) {
            tenure = draw_tenure();
        }

        int best_u = -1;
        int best_v = -1;
        double best_delta = std::numeric_limits<double>::infinity();
        bool best_was_tabu = false;
        bool forced = false;

        for (int u = 0; u < n && !forced; ++u) {
            for (int v = u + 1; v < n; ++v) {
                double delta = deltas.get(u, v);
                bool is_tabu = tabu(u, perm[v]) > iter &&
                               tabu(v, perm[u]) > iter;
                bool aspired = cost + delta < best_cost - 1e-12;
                // Long-term diversification: force a pair that has
                // been idle too long.
                if (iter - used(u, v) > force_after && iter > 0) {
                    best_u = u;
                    best_v = v;
                    best_delta = delta;
                    forced = true;
                    break;
                }
                if (is_tabu && !aspired)
                    continue;
                // Prefer non-taboo moves at equal delta.
                if (delta < best_delta - 1e-15 ||
                    (delta < best_delta + 1e-15 && best_was_tabu &&
                     !is_tabu)) {
                    best_delta = delta;
                    best_u = u;
                    best_v = v;
                    best_was_tabu = is_tabu;
                }
            }
        }

        if (best_u < 0) {
            // Everything taboo and nothing aspires: age the list by one
            // iteration and retry.
            continue;
        }

        // Forbid undoing the move: each facility may not return to the
        // location it is leaving.
        tabu(best_u, perm[best_u]) = iter + tenure;
        tabu(best_v, perm[best_v]) = iter + tenure;
        used(best_u, best_v) = iter;

        deltas.applySwap(perm, best_u, best_v);
        cost += best_delta;
        ++result.iterations;

        if (cost < best_cost) {
            best_cost = cost;
            best_perm = perm;
        }
    }

    result.perm = best_perm;
    result.cost = best_cost;
    return result;
}

} // namespace mnoc::qap
