#include "qap/multi_start.hh"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/metrics.hh"
#include "common/prng.hh"
#include "common/trace_span.hh"

namespace mnoc::qap {

namespace {

/** Salt separating start-shuffle streams from solver seed streams
 *  (both derive from the same base seed). */
constexpr std::uint64_t kShuffleSalt = 0x7375666c65724d53ULL;

/** Fisher-Yates on our own Prng: std::shuffle's draw pattern is
 *  implementation-defined, this one is pinned everywhere. */
Permutation
shuffledStart(const Permutation &start, std::uint64_t stream_seed)
{
    Permutation perm = start;
    Prng rng(stream_seed);
    for (std::size_t i = perm.size(); i > 1; --i) {
        auto j = static_cast<std::size_t>(rng.below(i));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

template <typename Solver>
QapResult
multiStart(const QapInstance &instance, const Permutation &start,
           std::uint64_t base_seed, int restarts, ThreadPool *pool,
           const Solver &solve)
{
    fatalIf(restarts < 1, "multi-start needs at least one restart");
    instance.checkPermutation(start);

    TraceSpan span("qapMultiStart", "qap");
    Counter &restart_tally =
        MetricsRegistry::global().counter("qap.restarts");
    ThreadPool &workers = pool != nullptr ? *pool
                                          : ThreadPool::global();
    std::vector<QapResult> results(
        static_cast<std::size_t>(restarts));
    workers.parallelFor(restarts, [&](long long r) {
        auto index = static_cast<std::uint64_t>(r);
        std::uint64_t solver_seed =
            r == 0 ? base_seed : deriveSeed(base_seed, index);
        Permutation perm =
            r == 0 ? start
                   : shuffledStart(
                         start,
                         deriveSeed(base_seed ^ kShuffleSalt, index));
        results[static_cast<std::size_t>(r)] =
            solve(perm, solver_seed);
        // Sharded integer add: deterministic total at any thread
        // count (DESIGN.md §10).
        restart_tally.add();
    });

    // Ordered reduction: lowest cost wins and ties go to the lowest
    // restart index, so the winner is independent of thread count.
    QapResult best = results[0];
    long long total_iterations = results[0].iterations;
    for (std::size_t r = 1; r < results.size(); ++r) {
        total_iterations += results[r].iterations;
        if (results[r].cost < best.cost)
            best = results[r];
    }
    best.iterations = total_iterations;
    MetricsRegistry::global()
        .counter("qap.iterations")
        .add(static_cast<std::uint64_t>(total_iterations));
    return best;
}

} // namespace

QapResult
multiStartTaboo(const QapInstance &instance, const Permutation &start,
                const TabooParams &params, int restarts,
                ThreadPool *pool)
{
    return multiStart(
        instance, start, params.seed, restarts, pool,
        [&](const Permutation &perm, std::uint64_t seed) {
            TabooParams restart_params = params;
            restart_params.seed = seed;
            return tabooSearch(instance, perm, restart_params);
        });
}

QapResult
multiStartAnnealing(const QapInstance &instance,
                    const Permutation &start,
                    const AnnealingParams &params, int restarts,
                    ThreadPool *pool)
{
    return multiStart(
        instance, start, params.seed, restarts, pool,
        [&](const Permutation &perm, std::uint64_t seed) {
            AnnealingParams restart_params = params;
            restart_params.seed = seed;
            return simulatedAnnealing(instance, perm, restart_params);
        });
}

} // namespace mnoc::qap
