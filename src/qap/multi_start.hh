/**
 * @file
 * Parallel multi-start wrappers over the QAP heuristics.
 *
 * Taillard's robust taboo search was designed for parallel restarts:
 * N independently seeded searches explore N basins and the best
 * permutation wins.  These wrappers run the restarts concurrently on
 * the shared ThreadPool with per-restart splitmix-derived seeds and
 * an ordered reduction, so the result is bit-identical to a serial
 * run at any thread count (DESIGN.md §9).
 */

#ifndef MNOC_QAP_MULTI_START_HH
#define MNOC_QAP_MULTI_START_HH

#include "common/thread_pool.hh"
#include "qap/annealing.hh"
#include "qap/qap.hh"
#include "qap/taboo.hh"

namespace mnoc::qap {

/**
 * Run @p restarts independently seeded taboo searches and return the
 * best result.  Restart 0 reproduces tabooSearch(instance, start,
 * params) exactly (so restarts == 1 is the plain single-start
 * search); restart r > 0 starts from a seeded shuffle of @p start
 * and runs under the r-th seed derived from params.seed.  The
 * reduction is ordered -- lowest cost wins, ties go to the lowest
 * restart index -- and the returned iteration count sums over all
 * restarts.
 *
 * @param pool Pool to run the restarts on; null uses the global
 *        pool (sized by MNOC_THREADS).
 */
QapResult multiStartTaboo(const QapInstance &instance,
                          const Permutation &start,
                          const TabooParams &params = {},
                          int restarts = 4,
                          ThreadPool *pool = nullptr);

/** Multi-start simulated annealing; same contract as
 *  multiStartTaboo. */
QapResult multiStartAnnealing(const QapInstance &instance,
                              const Permutation &start,
                              const AnnealingParams &params = {},
                              int restarts = 4,
                              ThreadPool *pool = nullptr);

} // namespace mnoc::qap

#endif // MNOC_QAP_MULTI_START_HH
