#include "qap/exhaustive.hh"

#include <algorithm>

#include "common/log.hh"

namespace mnoc::qap {

QapResult
exhaustiveSearch(const QapInstance &instance)
{
    fatalIf(instance.size() > 10,
            "exhaustive search limited to 10 facilities");

    Permutation perm = instance.identity();
    QapResult result;
    result.perm = perm;
    result.cost = instance.cost(perm);
    do {
        double c = instance.cost(perm);
        ++result.iterations;
        if (c < result.cost) {
            result.cost = c;
            result.perm = perm;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return result;
}

} // namespace mnoc::qap
