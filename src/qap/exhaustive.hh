/**
 * @file
 * Exhaustive QAP solver for small instances; the ground truth the
 * heuristic solvers are tested against.
 */

#ifndef MNOC_QAP_EXHAUSTIVE_HH
#define MNOC_QAP_EXHAUSTIVE_HH

#include "qap/qap.hh"

namespace mnoc::qap {

/**
 * Enumerate all permutations and return the optimum.  Fatal for
 * instances larger than 10 facilities.
 */
QapResult exhaustiveSearch(const QapInstance &instance);

} // namespace mnoc::qap

#endif // MNOC_QAP_EXHAUSTIVE_HH
