/**
 * @file
 * Simulated annealing for the QAP in the style of Connolly's improved
 * annealing scheme (EJOR 46, 1990), used as the comparison heuristic in
 * paper Section 4.4.
 */

#ifndef MNOC_QAP_ANNEALING_HH
#define MNOC_QAP_ANNEALING_HH

#include <cstdint>

#include "qap/qap.hh"

namespace mnoc::qap {

/** Tuning knobs for simulated annealing. */
struct AnnealingParams
{
    /** Total proposed swaps. */
    long long iterations = 200000;
    /** Fraction of iterations spent sampling the delta distribution to
     *  set the initial/final temperatures (Connolly's warm-up). */
    double warmupFraction = 0.02;
    std::uint64_t seed = 1;
};

/**
 * Run simulated annealing from @p start.  Works on asymmetric
 * instances; proposal is a uniform random facility swap and the
 * temperature decreases with Connolly's reciprocal schedule between
 * t0 and t1 derived from sampled deltas.
 */
QapResult simulatedAnnealing(const QapInstance &instance,
                             const Permutation &start,
                             const AnnealingParams &params = {});

} // namespace mnoc::qap

#endif // MNOC_QAP_ANNEALING_HH
