/**
 * @file
 * Quadratic assignment problem (QAP) instance and cost evaluation.
 *
 * The thread-mapping problem of paper Section 4.4 is a QAP: facilities
 * are threads, locations are cores, flow is the inter-thread traffic and
 * distance is the per-core-pair communication power cost derived from
 * the serpentine power profile.
 */

#ifndef MNOC_QAP_QAP_HH
#define MNOC_QAP_QAP_HH

#include <vector>

#include "common/matrix.hh"

namespace mnoc::qap {

/** A permutation; perm[facility] = location. */
using Permutation = std::vector<int>;

/**
 * A QAP instance: minimize sum_{i,j} flow(i,j) * dist(p(i), p(j)) over
 * permutations p.
 */
class QapInstance
{
  public:
    /**
     * @param flow Facility-to-facility flow (square, zero diagonal).
     * @param dist Location-to-location cost (square, same size).
     */
    QapInstance(FlowMatrix flow, FlowMatrix dist);

    int size() const { return size_; }
    const FlowMatrix &flow() const { return flow_; }
    const FlowMatrix &dist() const { return dist_; }

    /** True when both matrices are symmetric with zero diagonals. */
    bool isSymmetric() const { return symmetric_; }

    /** Full objective value of @p perm. */
    double cost(const Permutation &perm) const;

    /**
     * Cost change from exchanging the locations of facilities @p u and
     * @p v in @p perm, computed in O(n).  Valid for asymmetric
     * instances.
     */
    double swapDelta(const Permutation &perm, int u, int v) const;

    /** Identity permutation of this instance's size. */
    Permutation identity() const;

    /** Validate that @p perm is a permutation of [0, n). */
    void checkPermutation(const Permutation &perm) const;

  private:
    int size_;
    FlowMatrix flow_;
    FlowMatrix dist_;
    bool symmetric_;
};

/** Result of a QAP solver run. */
struct QapResult
{
    Permutation perm;
    double cost = 0.0;
    /** Number of neighborhood moves evaluated or applied. */
    long long iterations = 0;
};

} // namespace mnoc::qap

#endif // MNOC_QAP_QAP_HH
