/**
 * @file
 * Irregular-structure kernels: barnes and cholesky.
 */

#include "workloads/splash.hh"

#include <algorithm>
#include <vector>

namespace mnoc::workloads {

namespace {

constexpr std::uint64_t bodyBase = 0;
constexpr std::uint64_t cellBase = 1ULL << 20;
constexpr std::uint64_t colBase = 1ULL << 21;

} // namespace

void
BarnesWorkload::generate(int num_threads, Prng &rng)
{
    // Barnes-Hut: per timestep, rebuild local bodies, then walk the
    // octree.  Tree cells at level k are shared with partners at
    // distance 2^k (near levels dominate), plus a thin tail of random
    // long-range reads for distant cell summaries.
    int iters = 6;
    int per_iter = (scale_.opsPerThread * 14 / 10) / iters;
    int local = per_iter / 2;
    int levels = 1;
    while ((1 << levels) < num_threads)
        ++levels;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 6700417ULL);
        for (int it = 0; it < iters; ++it) {
            // Integrate our bodies and publish cell summaries.
            for (int i = 0; i < local; ++i)
                update(t, t, bodyBase + trng.below(512), 4);
            for (int c = 0; c < 8; ++c)
                write(t, t, cellBase + c, 1);
            // Tree walk: geometrically fewer reads per level.
            int reads = per_iter / 4;
            for (int level = 0; level < levels && reads > 0; ++level) {
                int span = 1 << level;
                int count = std::max(1, reads / 2);
                reads -= count;
                for (int i = 0; i < count; ++i) {
                    int sign = trng.chance(0.5) ? 1 : -1;
                    int partner =
                        ((t + sign * span) % num_threads +
                         num_threads) % num_threads;
                    if (i % 4 == 0)
                        read(t, partner, cellBase + trng.below(8), 3);
                    else
                        readStream(t, partner, cellBase + trng.below(8),
                                   2);
                }
            }
            // Long-range gravity: sparse uniform reads.
            for (int i = 0; i < per_iter / 16; ++i) {
                int partner = static_cast<int>(trng.below(num_threads));
                read(t, partner, cellBase + trng.below(8), 3);
            }
        }
    }
}

void
CholeskyWorkload::generate(int num_threads, Prng &rng)
{
    // Sparse supernodal factorization: supernodes are assigned to
    // threads round-robin along a random elimination tree; each thread
    // consumes column updates from its tree children and publishes its
    // factored columns for its parent and ancestors.
    int iters = 5;
    int per_iter = (scale_.opsPerThread * 13 / 10) / iters;

    // Random binary elimination tree over the threads (deterministic
    // per seed, shared by all threads).
    std::vector<int> parent(num_threads, -1);
    for (int t = 1; t < num_threads; ++t)
        parent[t] = static_cast<int>(rng.below(t)); // random ancestor
    std::vector<std::vector<int>> children(num_threads);
    for (int t = 1; t < num_threads; ++t)
        children[parent[t]].push_back(t);

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 179426549ULL);
        for (int it = 0; it < iters; ++it) {
            // Gather updates from our children's columns.
            for (int child : children[t]) {
                for (int b = 0; b < per_iter / 8; ++b) {
                    if (b % 8 == 0)
                        read(t, child, colBase + b % 32, 3);
                    else
                        readStream(t, child, colBase + b % 32, 2);
                }
            }
            // Factor our supernode.
            for (int i = 0; i < per_iter / 2; ++i)
                update(t, t, colBase + trng.below(384), 4);
            // Publish columns our ancestors will read.
            for (int b = 0; b < 16; ++b)
                write(t, t, colBase + b, 1);
            // Read the pivot scaling from our parent's columns.
            if (parent[t] >= 0) {
                for (int b = 0; b < per_iter / 8; ++b) {
                    if (b % 8 == 0)
                        read(t, parent[t], colBase + b % 32, 3);
                    else
                        readStream(t, parent[t], colBase + b % 32, 2);
                }
            }
        }
    }
}

} // namespace mnoc::workloads
