/**
 * @file
 * Benchmark registry: create any of the 12 SPLASH kernels by name.
 */

#ifndef MNOC_WORKLOADS_REGISTRY_HH
#define MNOC_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/generated.hh"

namespace mnoc::workloads {

/** The 12 benchmark names, in the paper's figure order. */
const std::vector<std::string> &splashBenchmarks();

/** The four sampled benchmarks of the S4 designs (Section 5.4). */
const std::vector<std::string> &sampledBenchmarks();

/**
 * Instantiate the benchmark named @p name.
 * @throws FatalError for unknown names.
 */
std::unique_ptr<GeneratedWorkload> makeWorkload(
    const std::string &name, const WorkloadScale &scale = {});

} // namespace mnoc::workloads

#endif // MNOC_WORKLOADS_REGISTRY_HH
