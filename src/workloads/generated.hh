/**
 * @file
 * Base class for the synthetic SPLASH-2 kernels.
 *
 * Each kernel pre-generates one memory-operation stream per thread in
 * generate(); the streams replay through the simulator's coherence
 * machinery, which turns the sharing structure into network traffic.
 * Data placement is explicit: a line belongs to the thread that
 * "allocated" it (first touch), so remote reads of a neighbour's data
 * produce cache-to-cache transfers between exactly the threads the
 * kernel's communication pattern names.
 */

#ifndef MNOC_WORKLOADS_GENERATED_HH
#define MNOC_WORKLOADS_GENERATED_HH

#include <cstdint>
#include <vector>

#include "common/prng.hh"
#include "sim/workload.hh"

namespace mnoc::workloads {

/** Scale knob shared by all kernels. */
struct WorkloadScale
{
    /**
     * Nominal operations per thread; individual kernels multiply this
     * by their relative injection intensity so that, e.g., radix
     * produces an order of magnitude more traffic than volrend
     * (paper Table 4).
     */
    int opsPerThread = 4000;
};

/** Pre-generated per-thread operation streams. */
class GeneratedWorkload : public sim::Workload
{
  public:
    void reset(int num_threads, std::uint64_t seed) final;
    bool next(int thread, sim::MemOp &op) final;

    /** Total generated operations across all threads (tests). */
    std::uint64_t totalOps() const;

  protected:
    explicit GeneratedWorkload(const WorkloadScale &scale)
        : scale_(scale)
    {}

    /** Fill streams_ for @p num_threads threads. */
    virtual void generate(int num_threads, Prng &rng) = 0;

    /** Emit a read by @p thread of line @p index owned by @p owner. */
    void
    read(int thread, int owner, std::uint64_t line_index,
         std::uint32_t compute = 0)
    {
        emit(thread, owner, line_index, false, false, compute);
    }

    /**
     * Emit a software-prefetched streaming read: the core overlaps it
     * with execution through the outstanding-access buffer.
     */
    void
    readStream(int thread, int owner, std::uint64_t line_index,
               std::uint32_t compute = 0)
    {
        emit(thread, owner, line_index, false, true, compute);
    }

    /** Emit a write by @p thread of line @p index owned by @p owner. */
    void
    write(int thread, int owner, std::uint64_t line_index,
          std::uint32_t compute = 0)
    {
        emit(thread, owner, line_index, true, false, compute);
    }

    /**
     * Emit a read-modify-write of a line (read then write), the common
     * update idiom in the kernels.
     */
    void
    update(int thread, int owner, std::uint64_t line_index,
           std::uint32_t compute = 0)
    {
        read(thread, owner, line_index, compute);
        write(thread, owner, line_index, 0);
    }

    /**
     * Append an already-built operation to @p thread's stream.  The
     * phase-splice workload replays child kernels' streams through
     * this, so spliced phases keep exactly the ops the standalone
     * kernels would generate.
     */
    void emitOp(int thread, const sim::MemOp &op);

    WorkloadScale scale_;

  private:
    void emit(int thread, int owner, std::uint64_t line_index,
              bool is_write, bool non_blocking, std::uint32_t compute);

    std::vector<std::vector<sim::MemOp>> streams_;
    std::vector<std::size_t> cursor_;
};

} // namespace mnoc::workloads

#endif // MNOC_WORKLOADS_GENERATED_HH
