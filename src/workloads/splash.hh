/**
 * @file
 * The 12 synthetic SPLASH-2 kernels used throughout the paper's
 * evaluation (Section 5.1).
 *
 * Each kernel reproduces the communication *structure* of its SPLASH-2
 * namesake -- who talks to whom, at what relative volume -- as
 * characterized by Woo et al. (ISCA'95) and Barrow-Williams et al.
 * (IISWC'09), rather than its numerical computation.  See DESIGN.md
 * Section 3 for the substitution rationale.
 */

#ifndef MNOC_WORKLOADS_SPLASH_HH
#define MNOC_WORKLOADS_SPLASH_HH

#include "workloads/generated.hh"

namespace mnoc::workloads {

/** Barnes-Hut N-body: octree partners at power-of-two distances plus
 *  sparse long-range reads. */
class BarnesWorkload : public GeneratedWorkload
{
  public:
    explicit BarnesWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "barnes"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Radix sort: all-to-all permutation writes; the heaviest network
 *  load in the suite (paper Table 4: 120 W base power). */
class RadixWorkload : public GeneratedWorkload
{
  public:
    explicit RadixWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "radix"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Ocean, contiguous partitions: 2D nearest-neighbour halo exchange
 *  plus multigrid strides. */
class OceanContiguousWorkload : public GeneratedWorkload
{
  public:
    explicit OceanContiguousWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "ocean_c"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Ocean, non-contiguous partitions: the same stencil with a layout
 *  that inflates remote traffic and write sharing. */
class OceanNonContiguousWorkload : public GeneratedWorkload
{
  public:
    explicit OceanNonContiguousWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "ocean_nc"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Raytrace: mostly-local tile rendering with sparse read-only BVH
 *  lookups; light network load. */
class RaytraceWorkload : public GeneratedWorkload
{
  public:
    explicit RaytraceWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "raytrace"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** FFT: six-step transform with all-to-all transposes. */
class FftWorkload : public GeneratedWorkload
{
  public:
    explicit FftWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "fft"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Water, spatial decomposition: 8-neighbour 2D domain exchange with
 *  remote force accumulation (the Figure 7 benchmark). */
class WaterSpatialWorkload : public GeneratedWorkload
{
  public:
    explicit WaterSpatialWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "water_s"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Water, n-squared: broad half-ring pairwise interactions. */
class WaterNSquaredWorkload : public GeneratedWorkload
{
  public:
    explicit WaterNSquaredWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "water_ns"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Cholesky: supernode updates along a random elimination tree. */
class CholeskyWorkload : public GeneratedWorkload
{
  public:
    explicit CholeskyWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "cholesky"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** LU, contiguous blocks: pivot row/column broadcast per step. */
class LuContiguousWorkload : public GeneratedWorkload
{
  public:
    explicit LuContiguousWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "lu_cb"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** LU, non-contiguous blocks: the same pattern with line-granularity
 *  interleaving that causes heavy write sharing (43.7 W in Table 4). */
class LuNonContiguousWorkload : public GeneratedWorkload
{
  public:
    explicit LuNonContiguousWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "lu_ncb"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** Volrend: local ray casting with sparse shared-octree reads and
 *  neighbour task stealing; the lightest load in the suite. */
class VolrendWorkload : public GeneratedWorkload
{
  public:
    explicit VolrendWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "volrend"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

} // namespace mnoc::workloads

#endif // MNOC_WORKLOADS_SPLASH_HH
