/**
 * @file
 * Grid-decomposed kernels: ocean (contiguous / non-contiguous) and
 * water (spatial / n-squared).
 */

#include "workloads/splash.hh"

#include <algorithm>

#include "workloads/grid.hh"

namespace mnoc::workloads {

namespace {

// Line-index bases keep each owner's regions (interior data, halo
// boundary, force accumulators) disjoint.
constexpr std::uint64_t interiorBase = 0;
constexpr std::uint64_t haloBase = 1ULL << 20;
constexpr std::uint64_t forceBase = 1ULL << 21;

} // namespace

void
OceanContiguousWorkload::generate(int num_threads, Prng &rng)
{
    // Red-black Gauss-Seidel sweeps over per-thread subgrids: local
    // stencil updates plus halo reads from the four cardinal
    // neighbours, with periodic multigrid reads at strides 2 and 4.
    ThreadGrid grid(num_threads);
    int iters = 10;
    int per_iter = (scale_.opsPerThread * 3 / 2) / iters;
    int halo_lines = per_iter / 6;
    int local_lines = per_iter - 4 * halo_lines / 2;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t));
        for (int it = 0; it < iters; ++it) {
            // Refresh our own boundary so neighbours must re-fetch it.
            for (int b = 0; b < halo_lines; ++b)
                write(t, t, haloBase + b, 1);
            // Interior relaxation.
            for (int i = 0; i < local_lines; ++i)
                update(t, t, interiorBase + trng.below(768), 3);
            // Halo reads from the cardinal neighbours; the physical
            // grid does not wrap, so boundary threads exchange less.
            const int dirs[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
            for (const auto &d : dirs) {
                int nb = grid.neighborClamped(t, d[0], d[1]);
                if (nb < 0)
                    continue;
                for (int b = 0; b < halo_lines / 2; ++b) {
                    if (b % 4 == 0)
                        read(t, nb, haloBase + b, 2);
                    else
                        readStream(t, nb, haloBase + b, 2);
                }
            }
            // Multigrid restriction every third sweep: reads from the
            // coarser-grid owners at strides 2 and 4.
            if (it % 3 == 2) {
                for (int stride : {2, 4}) {
                    int nb_x = grid.neighborClamped(t, stride, 0);
                    int nb_y = grid.neighborClamped(t, 0, stride);
                    for (int b = 0; b < halo_lines / 4; ++b) {
                        if (nb_x >= 0)
                            readStream(t, nb_x, haloBase + b, 2);
                        if (nb_y >= 0)
                            readStream(t, nb_y, haloBase + b, 2);
                    }
                }
            }
        }
    }
}

void
OceanNonContiguousWorkload::generate(int num_threads, Prng &rng)
{
    // The non-contiguous layout puts each boundary element on its own
    // line and interleaves rows, roughly doubling remote volume and
    // adding write sharing on the neighbours' boundary lines.
    ThreadGrid grid(num_threads);
    int iters = 10;
    int per_iter = (scale_.opsPerThread * 2) / iters;
    int halo_lines = per_iter / 6;
    int local_lines = per_iter / 3;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 31);
        for (int it = 0; it < iters; ++it) {
            for (int b = 0; b < halo_lines; ++b)
                write(t, t, haloBase + b, 0);
            for (int i = 0; i < local_lines; ++i)
                update(t, t, interiorBase + trng.below(768), 2);
            const int dirs[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
            for (const auto &d : dirs) {
                int nb = grid.neighborClamped(t, d[0], d[1]);
                if (nb < 0)
                    continue;
                for (int b = 0; b < halo_lines; ++b) {
                    if (b % 4 == 0)
                        read(t, nb, haloBase + b, 1);
                    else
                        readStream(t, nb, haloBase + b, 1);
                }
                // False sharing: corner updates write into the
                // neighbour's boundary lines.
                for (int b = 0; b < halo_lines / 8; ++b)
                    update(t, nb, forceBase + b, 1);
            }
        }
    }
}

void
WaterSpatialWorkload::generate(int num_threads, Prng &rng)
{
    // Spatial decomposition: each cell exchanges molecule positions
    // with its eight surrounding cells and accumulates forces directly
    // into the neighbours' accumulator lines.
    ThreadGrid grid(num_threads);
    int iters = 8;
    int per_iter = scale_.opsPerThread / iters;
    int molecules = per_iter / 4;
    int exchange = std::max(1, per_iter / 40);

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 7919);
        for (int it = 0; it < iters; ++it) {
            // Integrate own molecules.
            for (int i = 0; i < molecules; ++i)
                update(t, t, interiorBase + trng.below(512), 6);
            // Publish our boundary molecules.
            for (int b = 0; b < exchange; ++b)
                write(t, t, haloBase + b, 1);
            // Pairwise terms with the surrounding cells; the spatial
            // box does not wrap, so corner cells have only three
            // partners.
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0)
                        continue;
                    int nb = grid.neighborClamped(t, dx, dy);
                    if (nb < 0)
                        continue;
                    for (int b = 0; b < exchange; ++b) {
                        if (b % 2 == 0)
                            read(t, nb, haloBase + b, 4);
                        else
                            readStream(t, nb, haloBase + b, 2);
                    }
                    // Newton's third law: accumulate into the
                    // neighbour's force lines (remote writes).
                    for (int b = 0; b < exchange / 4; ++b)
                        update(t, nb, forceBase + b, 2);
                }
            }
        }
    }
}

void
WaterNSquaredWorkload::generate(int num_threads, Prng &rng)
{
    // O(n^2) interaction list: thread t computes the pair (t, t+k) for
    // k = 1 .. n/2 (each pair computed once), reading the partner's
    // molecule lines lightly and updating its own accumulators.
    int iters = 4;
    int half = std::max(1, num_threads / 2);
    int reads_per_partner =
        std::max(1, scale_.opsPerThread / (iters * half * 2));

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 104729);
        for (int it = 0; it < iters; ++it) {
            for (int b = 0; b < half / 2; ++b)
                write(t, t, haloBase + trng.below(256), 1);
            for (int k = 1; k <= half; ++k) {
                int partner = (t + k) % num_threads;
                for (int b = 0; b < reads_per_partner; ++b) {
                    if (k % 2 == 0)
                        read(t, partner, haloBase + b, 8);
                    else
                        readStream(t, partner, haloBase + b, 4);
                }
                update(t, t, forceBase + (k & 255), 4);
            }
        }
    }
}

} // namespace mnoc::workloads
