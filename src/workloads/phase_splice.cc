#include "workloads/phase_splice.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "workloads/registry.hh"

namespace mnoc::workloads {

PhaseSpliceWorkload::PhaseSpliceWorkload(
    std::vector<std::string> phases, const WorkloadScale &scale)
    : GeneratedWorkload(scale), phases_(std::move(phases))
{
    fatalIf(phases_.size() < 2,
            "a phase splice needs at least two phases");
    const std::vector<std::string> &known = splashBenchmarks();
    for (const std::string &phase : phases_)
        fatalIf(std::find(known.begin(), known.end(), phase) ==
                    known.end(),
                "unknown benchmark in phase splice: " + phase);
}

void
PhaseSpliceWorkload::generate(int num_threads, Prng &rng)
{
    // Each phase is the unmodified kernel, generated with a seed
    // drawn from the splice's own stream in phase order; its
    // per-thread streams are then replayed verbatim onto ours.  One
    // draw per phase whatever the kernel, so adding a phase never
    // shifts the seeds of the ones before it.
    for (const std::string &phase : phases_) {
        std::uint64_t child_seed = rng();
        std::unique_ptr<GeneratedWorkload> child =
            makeWorkload(phase, scale_);
        child->reset(num_threads, child_seed);
        for (int t = 0; t < num_threads; ++t) {
            sim::MemOp op;
            while (child->next(t, op))
                emitOp(t, op);
        }
    }
}

} // namespace mnoc::workloads
