#include "workloads/generated.hh"

#include "common/log.hh"

namespace mnoc::workloads {

void
GeneratedWorkload::reset(int num_threads, std::uint64_t seed)
{
    fatalIf(num_threads < 1, "workload needs at least one thread");
    streams_.assign(num_threads, {});
    cursor_.assign(num_threads, 0);
    Prng rng(seed ^ 0x5eed5eedULL);
    generate(num_threads, rng);
}

bool
GeneratedWorkload::next(int thread, sim::MemOp &op)
{
    panicIf(thread < 0 ||
            thread >= static_cast<int>(streams_.size()),
            "thread index out of range");
    auto &cursor = cursor_[thread];
    const auto &stream = streams_[thread];
    if (cursor >= stream.size())
        return false;
    op = stream[cursor++];
    return true;
}

std::uint64_t
GeneratedWorkload::totalOps() const
{
    std::uint64_t total = 0;
    for (const auto &s : streams_)
        total += s.size();
    return total;
}

void
GeneratedWorkload::emitOp(int thread, const sim::MemOp &op)
{
    panicIf(thread < 0 ||
            thread >= static_cast<int>(streams_.size()),
            "emitting thread out of range");
    streams_[thread].push_back(op);
}

void
GeneratedWorkload::emit(int thread, int owner, std::uint64_t line_index,
                        bool is_write, bool non_blocking,
                        std::uint32_t compute)
{
    panicIf(thread < 0 ||
            thread >= static_cast<int>(streams_.size()),
            "emitting thread out of range");
    panicIf(owner < 0 || owner >= static_cast<int>(streams_.size()),
            "line owner out of range");
    sim::MemOp op;
    op.addr = sim::placedAddr(owner, line_index << sim::lineShift);
    op.write = is_write;
    op.nonBlocking = non_blocking;
    op.computeCycles = compute;
    streams_[thread].push_back(op);
}

} // namespace mnoc::workloads
