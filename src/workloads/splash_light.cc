/**
 * @file
 * Light-traffic kernels: raytrace and volrend.
 */

#include "workloads/splash.hh"

namespace mnoc::workloads {

namespace {

constexpr std::uint64_t tileBase = 0;
constexpr std::uint64_t sceneBase = 1ULL << 20;
constexpr std::uint64_t queueBase = 1ULL << 21;

} // namespace

void
RaytraceWorkload::generate(int num_threads, Prng &rng)
{
    // Tile-parallel ray tracing: long local compute runs over our own
    // tiles with sparse read-only lookups into the BVH, which is
    // distributed round-robin over all threads.  Read-only sharing
    // means mostly GETS traffic with cache-to-cache supply.
    int rays = scale_.opsPerThread / 2;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 87178291ULL);
        for (int r = 0; r < rays; ++r) {
            // Shade into our own framebuffer tile.
            update(t, t, tileBase + trng.below(640), 14);
            // BVH traversal: a few scene-node reads per ray, biased
            // toward the top of the tree (a handful of hot owners).
            int depth = 1 + static_cast<int>(trng.below(3));
            for (int d = 0; d < depth; ++d) {
                int owner = trng.chance(0.5)
                    ? static_cast<int>(trng.below(8)) // hot tree top
                    : static_cast<int>(trng.below(num_threads));
                owner %= num_threads;
                read(t, owner, sceneBase + trng.below(64), 4);
            }
        }
    }
}

void
VolrendWorkload::generate(int num_threads, Prng &rng)
{
    // Volume rendering: ray casting through our own brick of the
    // volume, shared-octree reads from a few owner threads, and
    // occasional task stealing from the successor thread's queue.
    int rays = scale_.opsPerThread / 2;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 472882027ULL);
        for (int r = 0; r < rays; ++r) {
            // Sample our own volume brick.
            update(t, t, tileBase + trng.below(768), 8);
            // Octree occupancy lookup (read-only, few owners).
            if (trng.chance(0.4)) {
                int owner = static_cast<int>(trng.below(16))
                            % num_threads;
                read(t, owner, sceneBase + trng.below(32), 8);
            }
            // Task stealing from the next thread's work queue.
            if (trng.chance(0.05)) {
                int victim = (t + 1) % num_threads;
                update(t, victim, queueBase, 4);
            }
        }
    }
}

} // namespace mnoc::workloads
