#include "workloads/synthetic.hh"

namespace mnoc::workloads {

void
UniformWorkload::generate(int num_threads, Prng &rng)
{
    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t));
        for (int i = 0; i < scale_.opsPerThread; ++i) {
            int owner = static_cast<int>(trng.below(num_threads));
            read(t, owner, trng.below(256), 2);
        }
    }
}

void
HotspotWorkload::generate(int num_threads, Prng &rng)
{
    int hot = numHotspots_ < num_threads ? numHotspots_ : num_threads;
    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 13);
        for (int i = 0; i < scale_.opsPerThread; ++i) {
            int owner = static_cast<int>(trng.below(hot));
            read(t, owner, trng.below(64), 2);
        }
    }
}

void
RingWorkload::generate(int num_threads, Prng &rng)
{
    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 17);
        int next = (t + 1) % num_threads;
        for (int i = 0; i < scale_.opsPerThread; ++i) {
            if (i % 4 == 0)
                write(t, t, trng.below(64), 1);
            else
                read(t, next, trng.below(64), 1);
        }
    }
}

} // namespace mnoc::workloads
