#include "workloads/registry.hh"

#include "common/log.hh"
#include "workloads/phase_splice.hh"
#include "workloads/splash.hh"

namespace mnoc::workloads {

const std::vector<std::string> &
splashBenchmarks()
{
    static const std::vector<std::string> names = {
        "barnes",  "radix",    "ocean_c",  "ocean_nc",
        "raytrace", "fft",     "water_s",  "water_ns",
        "cholesky", "lu_cb",   "lu_ncb",   "volrend",
    };
    return names;
}

const std::vector<std::string> &
sampledBenchmarks()
{
    static const std::vector<std::string> names = {
        "lu_cb", "radix", "raytrace", "water_s",
    };
    return names;
}

std::unique_ptr<GeneratedWorkload>
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    // "splice:a+b[+c...]" concatenates known kernels into one
    // phase-changing run (workloads/phase_splice.hh).
    if (name.rfind("splice:", 0) == 0) {
        std::vector<std::string> phases;
        std::string rest = name.substr(7);
        std::size_t start = 0;
        while (start <= rest.size()) {
            std::size_t plus = rest.find('+', start);
            std::string phase =
                rest.substr(start, plus == std::string::npos
                                       ? std::string::npos
                                       : plus - start);
            fatalIf(phase.empty(),
                    "malformed phase splice (empty phase): " + name);
            phases.push_back(phase);
            if (plus == std::string::npos)
                break;
            start = plus + 1;
        }
        return std::make_unique<PhaseSpliceWorkload>(
            std::move(phases), scale);
    }
    if (name == "barnes")
        return std::make_unique<BarnesWorkload>(scale);
    if (name == "radix")
        return std::make_unique<RadixWorkload>(scale);
    if (name == "ocean_c")
        return std::make_unique<OceanContiguousWorkload>(scale);
    if (name == "ocean_nc")
        return std::make_unique<OceanNonContiguousWorkload>(scale);
    if (name == "raytrace")
        return std::make_unique<RaytraceWorkload>(scale);
    if (name == "fft")
        return std::make_unique<FftWorkload>(scale);
    if (name == "water_s")
        return std::make_unique<WaterSpatialWorkload>(scale);
    if (name == "water_ns")
        return std::make_unique<WaterNSquaredWorkload>(scale);
    if (name == "cholesky")
        return std::make_unique<CholeskyWorkload>(scale);
    if (name == "lu_cb")
        return std::make_unique<LuContiguousWorkload>(scale);
    if (name == "lu_ncb")
        return std::make_unique<LuNonContiguousWorkload>(scale);
    if (name == "volrend")
        return std::make_unique<VolrendWorkload>(scale);
    fatal("unknown benchmark: " + name);
}

} // namespace mnoc::workloads
