/**
 * @file
 * Thread-grid helper for the domain-decomposed kernels (ocean, water,
 * LU): threads arranged on a near-square 2D grid with toroidal
 * wrap-around.
 */

#ifndef MNOC_WORKLOADS_GRID_HH
#define MNOC_WORKLOADS_GRID_HH

#include <cmath>

#include "common/log.hh"

namespace mnoc::workloads {

/** Near-square toroidal grid over @p n threads. */
class ThreadGrid
{
  public:
    explicit ThreadGrid(int n) : n_(n)
    {
        fatalIf(n < 1, "grid needs at least one thread");
        cols_ = static_cast<int>(std::floor(std::sqrt(
            static_cast<double>(n))));
        while (cols_ > 1 && n % cols_ != 0)
            --cols_; // largest divisor <= sqrt(n) keeps rows exact
        rows_ = n / cols_;
    }

    int cols() const { return cols_; }
    int rows() const { return rows_; }

    int xOf(int t) const { return t % cols_; }
    int yOf(int t) const { return t / cols_; }

    /** Thread at (x, y) with toroidal wrap. */
    int
    at(int x, int y) const
    {
        x = ((x % cols_) + cols_) % cols_;
        y = ((y % rows_) + rows_) % rows_;
        return y * cols_ + x;
    }

    /** Neighbour of @p t displaced by (dx, dy), wrapping. */
    int
    neighbor(int t, int dx, int dy) const
    {
        return at(xOf(t) + dx, yOf(t) + dy);
    }

    /**
     * Neighbour without wrap-around, or -1 when it falls off the
     * grid.  Physical domain decompositions (ocean, water) do not
     * wrap, which leaves boundary threads with fewer partners -- the
     * per-thread load skew the QAP mapper exploits.
     */
    int
    neighborClamped(int t, int dx, int dy) const
    {
        int x = xOf(t) + dx;
        int y = yOf(t) + dy;
        if (x < 0 || x >= cols_ || y < 0 || y >= rows_)
            return -1;
        return y * cols_ + x;
    }

  private:
    int n_;
    int cols_;
    int rows_;
};

} // namespace mnoc::workloads

#endif // MNOC_WORKLOADS_GRID_HH
