/**
 * @file
 * The traffic-heavy kernels: radix, fft, and both LU variants.
 */

#include "workloads/splash.hh"

#include <algorithm>

#include "workloads/grid.hh"

namespace mnoc::workloads {

namespace {

constexpr std::uint64_t keyBase = 0;
constexpr std::uint64_t bucketBase = 1ULL << 20;
constexpr std::uint64_t histBase = 1ULL << 21;
constexpr std::uint64_t blockBase = 1ULL << 22;

} // namespace

void
RadixWorkload::generate(int num_threads, Prng &rng)
{
    // Per digit pass: local histogram, logarithmic prefix-sum tree,
    // then the permutation phase scattering keys into buckets that
    // live on pseudo-random destination threads -- the all-to-all
    // write storm that makes radix the network-heaviest benchmark.
    int passes = 4;
    int per_pass = (scale_.opsPerThread * 12) / passes;
    int scatter = per_pass * 17 / 20;
    int local = per_pass - scatter;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 2654435761ULL);
        for (int pass = 0; pass < passes; ++pass) {
            // Local histogram over our own keys.
            for (int i = 0; i < local; ++i)
                read(t, t, keyBase + trng.below(1024), 0);
            // Prefix-sum tree rooted at thread 0: lower-numbered
            // threads combine more partial sums.
            for (int k = 1; k < num_threads; k <<= 1) {
                if (t % (2 * k) == 0 && t + k < num_threads) {
                    read(t, t + k, histBase + pass, 1);
                    write(t, t, histBase + pass, 0);
                } else if (t % (2 * k) == k) {
                    read(t, t - k, histBase + pass, 1);
                }
            }
            // Permutation: each key lands in a fresh slot of its
            // bucket owner -- streamed cold writes, not hot-line
            // ping-pong -- which is what saturates the network.  Key
            // digits are not uniform, so low-numbered buckets (and
            // their owner threads) receive noticeably more keys.
            for (int i = 0; i < scatter; ++i) {
                double u = trng.uniform();
                int dest = static_cast<int>(
                    u * u * static_cast<double>(num_threads));
                write(t, dest,
                      bucketBase + (static_cast<std::uint64_t>(pass)
                                    << 16) + trng.below(8192),
                      0);
            }
        }
    }
}

void
FftWorkload::generate(int num_threads, Prng &rng)
{
    // Six-step FFT: local row transforms separated by all-to-all
    // transposes in which every thread reads one sub-block from every
    // other thread.
    int stages = 3; // transpose, compute, transpose (steady state)
    int per_stage = (scale_.opsPerThread * 5 / 2) / stages;
    int block = std::max(1, per_stage / (2 * std::max(1,
                                                      num_threads - 1)));
    int local = per_stage / 2;

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 40503ULL);
        for (int stage = 0; stage < stages; ++stage) {
            // Publish our freshly computed rows.
            for (int i = 0; i < local / 2; ++i)
                write(t, t, blockBase + trng.below(768), 2);
            // Transpose: gather a block from every other thread,
            // starting at our own offset to avoid hotspots.
            for (int k = 1; k < num_threads; ++k) {
                int partner = (t + k) % num_threads;
                for (int b = 0; b < block; ++b) {
                    std::uint64_t line =
                        blockBase + (static_cast<std::uint64_t>(t)
                                     % 64) * 32 + b;
                    // Streamed gather: one blocking read per block to
                    // keep dependences, the rest prefetched.
                    if (b == 0)
                        read(t, partner, line, 1);
                    else
                        readStream(t, partner, line, 1);
                }
            }
            // Local butterfly on the gathered data.
            for (int i = 0; i < local / 2; ++i)
                update(t, t, keyBase + trng.below(768), 2);
        }
    }
}

void
LuContiguousWorkload::generate(int num_threads, Prng &rng)
{
    // Blocked dense LU on a thread grid: at step k the diagonal owner
    // factors its block; its row and column broadcast pivots; interior
    // blocks read their step-k row and column owners.
    ThreadGrid grid(num_threads);
    int steps = std::min(grid.cols() * 2, 24);
    int per_step = scale_.opsPerThread / steps;
    int pivot_lines = std::max(2, per_step / 8);

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 15485863ULL);
        int tx = grid.xOf(t);
        int ty = grid.yOf(t);
        for (int k = 0; k < steps; ++k) {
            int kc = k % grid.cols();
            int kr = k % grid.rows();
            int diag = grid.at(kc, kr);
            int row_owner = grid.at(kc, ty);  // our row, pivot column
            int col_owner = grid.at(tx, kr);  // our column, pivot row
            if (t == diag) {
                // Factor the diagonal block.
                for (int i = 0; i < per_step; ++i)
                    update(t, t, blockBase + trng.below(512), 3);
                continue;
            }
            // Perimeter blocks read the diagonal; interior blocks read
            // their row and column pivot owners.
            for (int b = 0; b < pivot_lines; ++b) {
                bool blocking = b % 4 == 0;
                if (tx == kc || ty == kr) {
                    if (blocking)
                        read(t, diag, blockBase + b, 2);
                    else
                        readStream(t, diag, blockBase + b, 2);
                } else if (blocking) {
                    read(t, row_owner, blockBase + b, 2);
                    read(t, col_owner, blockBase + b, 2);
                } else {
                    readStream(t, row_owner, blockBase + b, 2);
                    readStream(t, col_owner, blockBase + b, 2);
                }
            }
            // Trailing update of our own block.
            for (int i = 0; i < per_step / 2; ++i)
                update(t, t, blockBase + trng.below(512), 3);
        }
    }
}

void
LuNonContiguousWorkload::generate(int num_threads, Prng &rng)
{
    // Non-contiguous blocks: matrix rows are interleaved at line
    // granularity across the thread grid's row, so trailing updates
    // hit lines owned by row-mates and write-share them heavily.
    ThreadGrid grid(num_threads);
    int steps = std::min(grid.cols() * 2, 24);
    int per_step = (scale_.opsPerThread * 7) / steps;
    int pivot_lines = std::max(2, per_step / 10);

    for (int t = 0; t < num_threads; ++t) {
        Prng trng(rng() ^ static_cast<std::uint64_t>(t) * 32452843ULL);
        int tx = grid.xOf(t);
        int ty = grid.yOf(t);
        for (int k = 0; k < steps; ++k) {
            int kc = k % grid.cols();
            int kr = k % grid.rows();
            int diag = grid.at(kc, kr);
            int row_owner = grid.at(kc, ty);
            int col_owner = grid.at(tx, kr);
            for (int b = 0; b < pivot_lines; ++b) {
                if (b % 4 == 0)
                    read(t, diag, blockBase + b, 1);
                else
                    readStream(t, diag, blockBase + b, 1);
                if (tx != kc)
                    readStream(t, row_owner, blockBase + b, 1);
                if (ty != kr)
                    readStream(t, col_owner, blockBase + b, 1);
            }
            // Trailing update: the interleaved layout lands half of
            // our writes on lines owned by our row neighbours.
            for (int i = 0; i < per_step / 2; ++i) {
                int owner = t;
                if (trng.chance(0.5))
                    owner = grid.at(static_cast<int>(
                                        trng.below(grid.cols())), ty);
                std::uint64_t line = blockBase + 64 + trng.below(4096);
                readStream(t, owner, line, 1);
                write(t, owner, line, 0);
            }
        }
    }
}

} // namespace mnoc::workloads
