/**
 * @file
 * Simple synthetic traffic workloads for tests and examples: uniform
 * random, hotspot, and ring-neighbour patterns.
 */

#ifndef MNOC_WORKLOADS_SYNTHETIC_HH
#define MNOC_WORKLOADS_SYNTHETIC_HH

#include "workloads/generated.hh"

namespace mnoc::workloads {

/** Uniform-random remote reads across all threads. */
class UniformWorkload : public GeneratedWorkload
{
  public:
    explicit UniformWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "uniform"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

/** All threads hammer a handful of hot owner threads. */
class HotspotWorkload : public GeneratedWorkload
{
  public:
    /**
     * @param scale Ops budget.
     * @param num_hotspots Number of hot destination threads.
     */
    explicit HotspotWorkload(const WorkloadScale &scale = {},
                             int num_hotspots = 4)
        : GeneratedWorkload(scale), numHotspots_(num_hotspots)
    {}
    std::string name() const override { return "hotspot"; }

  protected:
    void generate(int num_threads, Prng &rng) override;

  private:
    int numHotspots_;
};

/** Each thread talks only to its ring successor. */
class RingWorkload : public GeneratedWorkload
{
  public:
    explicit RingWorkload(const WorkloadScale &scale = {})
        : GeneratedWorkload(scale)
    {}
    std::string name() const override { return "ring"; }

  protected:
    void generate(int num_threads, Prng &rng) override;
};

} // namespace mnoc::workloads

#endif // MNOC_WORKLOADS_SYNTHETIC_HH
