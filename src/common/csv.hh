/**
 * @file
 * Small CSV writer used by the bench harness to emit the series behind
 * each reproduced figure alongside the printed table.
 */

#ifndef MNOC_COMMON_CSV_HH
#define MNOC_COMMON_CSV_HH

#include <string>
#include <vector>

#include "common/io.hh"

namespace mnoc {

/**
 * Streams rows of string/number cells into a CSV file.  Quoting follows
 * RFC 4180: cells containing commas, quotes, or newlines are quoted and
 * embedded quotes doubled.
 *
 * Stream health is checked after every row and again in close(), so a
 * full disk fails fatally with the path instead of truncating the file
 * silently.  Call close() when the data matters; the destructor only
 * warn()s about unreported errors (it must not throw).
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing.
     * @throws FatalError when the file cannot be opened.
     */
    explicit CsvWriter(const std::string &path);

    /**
     * Write one row of already-formatted cells.
     * @throws FatalError when the stream reports a write error.
     */
    void writeRow(const std::vector<std::string> &cells);

    /** Append a string cell to the pending row. */
    CsvWriter &cell(const std::string &value);
    /** Append a numeric cell to the pending row. */
    CsvWriter &cell(double value);
    /** Append an integer cell to the pending row. */
    CsvWriter &cell(long long value);
    /** Terminate the pending row. */
    void endRow();

    /**
     * Flush and close the file, reporting errors the destructor would
     * swallow.  Idempotent.
     * @throws FatalError naming the path on any I/O error.
     */
    void close();

  private:
    static std::string escape(const std::string &raw);

    FileWriter writer_;
    std::vector<std::string> pending_;
};

} // namespace mnoc

#endif // MNOC_COMMON_CSV_HH
