#include "common/metrics.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/manifest.hh"

namespace mnoc {

namespace {

/** Raw MNOC_METRICS value ("" when unset). */
std::string
envValue()
{
    const char *value = std::getenv("MNOC_METRICS");
    return value != nullptr ? std::string(value) : std::string();
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag(
        parsePathKnob(envValue().c_str(), "MNOC_METRICS").enabled);
    return flag;
}

std::atomic<int> next_shard_slot{0};

std::atomic<bool> &
ledgerFlag()
{
    static std::atomic<bool> flag(parseBoolKnob(
        std::getenv("MNOC_LEDGER"), "MNOC_LEDGER"));
    return flag;
}

/** Backstop against a corrupt epoch index allocating the machine
 *  away: 2^24 epochs of 8-byte slots is already a 128 MiB series. */
constexpr std::size_t kMaxSeriesSlots = std::size_t{1} << 24;

void
exportGlobalAtExit()
{
    MetricsRegistry::global().writeJson(
        MetricsRegistry::exportPath());
}

} // namespace

int
metricShardSlot()
{
    thread_local int slot =
        next_shard_slot.fetch_add(1, std::memory_order_relaxed);
    return slot & (kMetricShards - 1);
}

bool
metricsEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (Shard &shard : shards_)
        shard.count.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::string name, std::vector<double> edges)
    : name_(std::move(name)), edges_(std::move(edges)),
      buckets_(edges_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    fatalIf(edges_.empty(), "histogram '" + name_ +
                                "' needs at least one bucket edge");
    for (std::size_t i = 1; i < edges_.size(); ++i)
        fatalIf(edges_[i] <= edges_[i - 1],
                "histogram '" + name_ +
                    "' bucket edges must be strictly ascending");
}

void
Histogram::observe(double value)
{
    if (!metricsEnabled())
        return;
    std::size_t bucket = edges_.size();
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (value <= edges_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);

    // Commutative folds: the final min/max are independent of the
    // order in which concurrent observers run.
    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        out.push_back(bucket.load(std::memory_order_relaxed));
    return out;
}

std::uint64_t
Histogram::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::minValue() const
{
    return min_.load(std::memory_order_relaxed);
}

double
Histogram::maxValue() const
{
    return max_.load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

void
Series::add(std::size_t index, std::uint64_t n)
{
    if (!metricsEnabled())
        return;
    fatalIf(index >= kMaxSeriesSlots,
            "series '" + name_ + "' index out of range: " +
                std::to_string(index));
    auto slot = static_cast<std::size_t>(metricShardSlot());
    Shard &shard = shards_[slot];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.slots.size() <= index)
        shard.slots.resize(index + 1, 0);
    shard.slots[index] += n;
}

std::vector<std::uint64_t>
Series::values() const
{
    std::vector<std::uint64_t> merged;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (merged.size() < shard.slots.size())
            merged.resize(shard.slots.size(), 0);
        for (std::size_t i = 0; i < shard.slots.size(); ++i)
            merged[i] += shard.slots[i];
    }
    return merged;
}

void
Series::reset()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.slots.clear();
    }
}

bool
ledgerEnabled()
{
    return ledgerFlag().load(std::memory_order_relaxed);
}

void
setLedgerEnabled(bool on)
{
    ledgerFlag().store(on, std::memory_order_relaxed);
}

bool
parseBoolKnob(const char *text, const char *knob)
{
    if (text == nullptr || *text == '\0' ||
        std::strcmp(text, "0") == 0)
        return false;
    fatalIf(std::strcmp(text, "1") != 0,
            std::string(knob) + " must be 0 or 1, got '" + text +
                "'");
    return true;
}

PathKnob
parsePathKnob(const char *text, const char *knob)
{
    if (text == nullptr || *text == '\0' ||
        std::strcmp(text, "0") == 0)
        return {};
    if (std::strcmp(text, "1") == 0)
        return {true, ""};

    std::string value(text);
    std::string lowered;
    for (char c : value)
        lowered += static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    bool flagish = lowered == "true" || lowered == "false" ||
                   lowered == "yes" || lowered == "no" ||
                   lowered == "on" || lowered == "off";
    bool all_digits = true;
    for (char c : value)
        all_digits = all_digits && c >= '0' && c <= '9';
    fatalIf(flagish || all_digits,
            std::string(knob) + " must be 0, 1 or an export path, "
                                "got '" +
                value + "'");
    return {true, value};
}

std::uint64_t
parsePositiveCount(const char *text, const char *knob,
                   std::uint64_t fallback)
{
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(text, &end, 10);
    fatalIf(end == text || *end != '\0' || parsed < 1,
            std::string(knob) +
                " must be a positive integer, got '" + text + "'");
    return static_cast<std::uint64_t>(parsed);
}

std::uint64_t
ledgerEpochMessages()
{
    static std::uint64_t cached =
        parsePositiveCount(std::getenv("MNOC_EPOCH_MSGS"),
                           "MNOC_EPOCH_MSGS", 1024);
    return cached;
}

bool
faultsEnabled()
{
    static bool cached =
        parseBoolKnob(std::getenv("MNOC_FAULTS"), "MNOC_FAULTS");
    return cached;
}

std::uint64_t
faultSeed()
{
    static std::uint64_t cached =
        parsePositiveCount(std::getenv("MNOC_FAULT_SEED"),
                           "MNOC_FAULT_SEED", 1);
    return cached;
}

bool
adaptEnabled()
{
    static bool cached =
        parseBoolKnob(std::getenv("MNOC_ADAPT"), "MNOC_ADAPT");
    return cached;
}

std::uint64_t
adaptWindow()
{
    static std::uint64_t cached =
        parsePositiveCount(std::getenv("MNOC_ADAPT_WINDOW"),
                           "MNOC_ADAPT_WINDOW", 32);
    return cached;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *instance = [] {
        auto *registry = new MetricsRegistry();
        if (!exportPath().empty())
            std::atexit(exportGlobalAtExit);
        return registry;
    }();
    return *instance;
}

void
MetricsRegistry::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

std::string
MetricsRegistry::exportPath()
{
    return parsePathKnob(envValue().c_str(), "MNOC_METRICS").path;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(name, std::unique_ptr<Counter>(
                                    new Counter(name)))
                 .first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(name,
                          std::unique_ptr<Gauge>(new Gauge(name)))
                 .first;
    return *it->second;
}

Series &
MetricsRegistry::series(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(name);
    if (it == series_.end())
        it = series_
                 .emplace(name,
                          std::unique_ptr<Series>(new Series(name)))
                 .first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name, std::unique_ptr<Histogram>(
                                    new Histogram(name, edges)))
                 .first;
    fatalIf(it->second->edges().size() != edges.size(),
            "histogram '" + name +
                "' re-registered with a different bucket count");
    return *it->second;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\n  \"schema\": \"mnoc-metrics-v2\",\n";
    // Provenance: stable within a process, so it never perturbs the
    // bit-identity comparison across pool sizes.
    out += "  \"manifest\": " + manifestJson(currentManifest()) +
           ",\n";

    out += "  \"counters\": {";
    const char *sep = "";
    for (const auto &[name, counter] : counters_) {
        out += sep;
        out += "\n    \"" + escapeJson(name) +
               "\": " + std::to_string(counter->value());
        sep = ",";
    }
    out += counters_.empty() ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    sep = "";
    for (const auto &[name, gauge] : gauges_) {
        out += sep;
        out += "\n    \"" + escapeJson(name) +
               "\": " + std::to_string(gauge->value());
        sep = ",";
    }
    out += gauges_.empty() ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    sep = "";
    for (const auto &[name, hist] : histograms_) {
        out += sep;
        out += "\n    \"" + escapeJson(name) + "\": {\n";
        out += "      \"edges\": [";
        const char *comma = "";
        for (double edge : hist->edges()) {
            out += comma;
            out += jsonNumber(edge);
            comma = ", ";
        }
        out += "],\n      \"counts\": [";
        comma = "";
        for (std::uint64_t count : hist->bucketCounts()) {
            out += comma;
            out += std::to_string(count);
            comma = ", ";
        }
        std::uint64_t total = hist->totalCount();
        out += "],\n      \"count\": " + std::to_string(total);
        out += ",\n      \"min\": ";
        out += total > 0 ? jsonNumber(hist->minValue()) : "null";
        out += ",\n      \"max\": ";
        out += total > 0 ? jsonNumber(hist->maxValue()) : "null";
        out += "\n    }";
        sep = ",";
    }
    out += histograms_.empty() ? "},\n" : "\n  },\n";

    out += "  \"series\": {";
    sep = "";
    for (const auto &[name, s] : series_) {
        out += sep;
        out += "\n    \"" + escapeJson(name) + "\": [";
        const char *comma = "";
        for (std::uint64_t v : s->values()) {
            out += comma;
            out += std::to_string(v);
            comma = ", ";
        }
        out += "]";
        sep = ",";
    }
    out += series_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    FileWriter writer(path);
    writer.stream() << toJson();
    writer.close();
}

void
MetricsRegistry::printText(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        out << name << " " << counter->value() << "\n";
    for (const auto &[name, gauge] : gauges_)
        out << name << " " << gauge->value() << "\n";
    for (const auto &[name, hist] : histograms_) {
        out << name << " count " << hist->totalCount();
        if (hist->totalCount() > 0)
            out << " min " << jsonNumber(hist->minValue()) << " max "
                << jsonNumber(hist->maxValue());
        out << "\n";
    }
    for (const auto &[name, s] : series_) {
        std::vector<std::uint64_t> values = s->values();
        std::uint64_t total = 0;
        for (std::uint64_t v : values)
            total += v;
        out << name << " slots " << values.size() << " total "
            << total << "\n";
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, hist] : histograms_)
        hist->reset();
    for (auto &[name, s] : series_)
        s->reset();
}

} // namespace mnoc
