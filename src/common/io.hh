/**
 * @file
 * Checked file output: every artifact writer in the tree goes through
 * FileWriter, the single place allowed to own a raw std::ofstream
 * (enforced by the mnoc-lint raw-ofstream rule).
 *
 * The point is failure visibility.  A plain ofstream swallows write
 * errors -- a full disk or revoked permissions produce a silently
 * truncated artifact that only fails on the next load, far from the
 * cause.  FileWriter checks the stream at open, on demand
 * (failIfBad(), cheap enough to call per row), and at close(), and
 * every failure is a fatal() naming the path.  The destructor never
 * throws; an unclosed writer that failed is reported through warn()
 * so callers that care must call close() themselves.
 */

#ifndef MNOC_COMMON_IO_HH
#define MNOC_COMMON_IO_HH

#include <fstream>
#include <string>

namespace mnoc {

/** A checked output file: open/write/close failures are loud and
 *  always name the path. */
class FileWriter
{
  public:
    /**
     * Open @p path for writing (truncating).
     * @param binary Open in binary mode (PGM pixel data).
     * @throws FatalError when the file cannot be opened.
     */
    explicit FileWriter(const std::string &path, bool binary = false);

    /** Closes; failures are warn()ed, never thrown.  Call close()
     *  to get the checked, throwing path. */
    ~FileWriter();

    FileWriter(const FileWriter &) = delete;
    FileWriter &operator=(const FileWriter &) = delete;

    /** The underlying stream; write through it freely, then close()
     *  (or failIfBad() for mid-write checkpoints). */
    std::ostream &stream() { return out_; }

    /** The path being written (for caller-side messages). */
    const std::string &path() const { return path_; }

    /**
     * Fail loudly if the stream has seen any error so far.
     * @throws FatalError naming the path.
     */
    void failIfBad();

    /**
     * Flush, verify, and close the file.  Idempotent.
     * @throws FatalError when the stream reports an error (disk
     *         full, I/O error), naming the path.
     */
    void close();

  private:
    std::string path_;
    std::ofstream out_;
    bool closed_ = false;
};

} // namespace mnoc

#endif // MNOC_COMMON_IO_HH
