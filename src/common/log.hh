/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * fatal() terminates due to user error (bad configuration, invalid
 * arguments); panic() terminates due to an internal invariant violation
 * (a bug in this library). warn()/inform() report but never terminate.
 */

#ifndef MNOC_COMMON_LOG_HH
#define MNOC_COMMON_LOG_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mnoc {

/** Exception thrown by fatal(): the caller supplied an invalid request. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/**
 * Report an unrecoverable user-level error.
 *
 * @param msg Description of the invalid request.
 * @throws FatalError always.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/**
 * Report an internal invariant violation (a library bug).
 *
 * @param msg Description of the violated invariant.
 * @throws PanicError always.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

/** Emit a non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

/** Emit an informational status message to stderr. */
inline void
inform(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

/**
 * Check a user-facing precondition, calling fatal() on failure.
 *
 * @param cond Condition that must hold.
 * @param msg Message used when the condition fails.
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/**
 * Check an internal invariant, calling panic() on failure.
 *
 * @param cond Condition that must hold for the library to be correct.
 * @param msg Message used when the condition fails.
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace mnoc

#endif // MNOC_COMMON_LOG_HH
