/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * fatal() terminates due to user error (bad configuration, invalid
 * arguments); panic() terminates due to an internal invariant violation
 * (a bug in this library). warn()/inform() report but never terminate.
 */

#ifndef MNOC_COMMON_LOG_HH
#define MNOC_COMMON_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mnoc {

/**
 * Verbosity threshold for the non-fatal log helpers, from the
 * MNOC_LOG_LEVEL environment variable: "quiet" silences warn() and
 * inform(), "warn" silences only inform(), "info" (the default)
 * prints both; any other value is a fatal configuration error.
 * fatal()/panic() are never suppressed.
 */
enum class LogLevel
{
    Quiet = 0,
    Warn = 1,
    Info = 2,
};

[[noreturn]] inline void fatal(const std::string &msg);

/**
 * Strict parser for MNOC_LOG_LEVEL-style knobs: "quiet", "warn" and
 * "info" map to their levels, unset/empty means the Info default,
 * and anything else is a fatal configuration error naming the knob
 * (a typo like "qiuet" must not silently re-enable warnings).
 * Pure function, exposed for the knob tests.
 */
inline LogLevel
parseLogLevelKnob(const char *text, const std::string &knob)
{
    std::string raw = text != nullptr ? text : "";
    if (raw.empty() || raw == "info")
        return LogLevel::Info;
    if (raw == "quiet")
        return LogLevel::Quiet;
    if (raw == "warn")
        return LogLevel::Warn;
    fatal(knob + " must be quiet, warn, or info, got '" + raw +
          "'");
}

namespace log_detail {

inline std::atomic<int> &
levelFlag()
{
    static std::atomic<int> level = [] {
        return static_cast<int>(
            parseLogLevelKnob(std::getenv("MNOC_LOG_LEVEL"),
                              "MNOC_LOG_LEVEL"));
    }();
    return level;
}

inline std::atomic<std::uint64_t> &
suppressedWarnings()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

} // namespace log_detail

/** Current verbosity threshold. */
inline LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        log_detail::levelFlag().load(std::memory_order_relaxed));
}

/** Override the MNOC_LOG_LEVEL threshold (tests, `mnocpt stats`). */
inline void
setLogLevel(LogLevel level)
{
    log_detail::levelFlag().store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

/** How many warn() calls were swallowed by a quiet log level; let
 *  `mnocpt stats` reveal that silence was not the same as health. */
inline std::uint64_t
suppressedWarningCount()
{
    return log_detail::suppressedWarnings().load(
        std::memory_order_relaxed);
}

/** Exception thrown by fatal(): the caller supplied an invalid request. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/**
 * Report an unrecoverable user-level error.
 *
 * @param msg Description of the invalid request.
 * @throws FatalError always.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/**
 * Report an internal invariant violation (a library bug).
 *
 * @param msg Description of the violated invariant.
 * @throws PanicError always.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

/** Emit a non-fatal warning to stderr (counted, not printed, below
 *  LogLevel::Warn). */
inline void
warn(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn) {
        log_detail::suppressedWarnings().fetch_add(
            1, std::memory_order_relaxed);
        return;
    }
    std::cerr << "warn: " << msg << "\n";
}

/** Emit an informational status message to stderr (dropped below
 *  LogLevel::Info). */
inline void
inform(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::cerr << "info: " << msg << "\n";
}

/**
 * Check a user-facing precondition, calling fatal() on failure.
 *
 * @param cond Condition that must hold.
 * @param msg Message used when the condition fails.
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/**
 * Check an internal invariant, calling panic() on failure.
 *
 * @param cond Condition that must hold for the library to be correct.
 * @param msg Message used when the condition fails.
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace mnoc

#endif // MNOC_COMMON_LOG_HH
