#include "common/pgm.hh"

#include <cmath>
#include <fstream>

#include "common/log.hh"

namespace mnoc {

void
writePgmHeatmap(const std::string &path, const FlowMatrix &data,
                bool log_scale)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out.is_open(), "cannot open PGM file: " + path);

    double max_value = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            double v = data(r, c);
            if (log_scale)
                v = std::log1p(v);
            max_value = std::max(max_value, v);
        }
    }

    out << "P5\n" << data.cols() << " " << data.rows() << "\n255\n";
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            double v = data(r, c);
            if (log_scale)
                v = std::log1p(v);
            double norm = max_value > 0.0 ? v / max_value : 0.0;
            // dark = high intensity, per the paper's rendering
            auto pixel = static_cast<unsigned char>(
                std::lround(255.0 * (1.0 - norm)));
            out.put(static_cast<char>(pixel));
        }
    }
}

} // namespace mnoc
