#include "common/pgm.hh"

#include <cmath>

#include "common/io.hh"

namespace mnoc {

void
writePgmHeatmap(const std::string &path, const FlowMatrix &data,
                bool log_scale, const std::string &comment)
{
    FileWriter writer(path, /*binary=*/true);
    auto &out = writer.stream();

    double max_value = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            double v = data(r, c);
            if (log_scale)
                v = std::log1p(v);
            max_value = std::max(max_value, v);
        }
    }

    out << "P5\n";
    if (!comment.empty()) {
        std::string flat = comment;
        for (char &c : flat)
            if (c == '\n' || c == '\r')
                c = ' ';
        out << "# " << flat << "\n";
    }
    out << data.cols() << " " << data.rows() << "\n255\n";
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            double v = data(r, c);
            if (log_scale)
                v = std::log1p(v);
            double norm = max_value > 0.0 ? v / max_value : 0.0;
            // dark = high intensity, per the paper's rendering
            auto pixel = static_cast<unsigned char>(
                std::lround(255.0 * (1.0 - norm)));
            out.put(static_cast<char>(pixel));
        }
    }
    // A full disk or revoked permissions surface here with the path,
    // not as a truncated image discovered by a viewer later.
    writer.close();
}

} // namespace mnoc
