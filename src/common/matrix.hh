/**
 * @file
 * Dense row-major matrix used for communication/flow matrices.
 */

#ifndef MNOC_COMMON_MATRIX_HH
#define MNOC_COMMON_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"

namespace mnoc {

/**
 * Minimal dense matrix.  Element type is typically double (traffic
 * fractions) or std::uint64_t (packet counts).
 */
template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    /** Construct a rows x cols matrix filled with @p init. */
    Matrix(std::size_t rows, std::size_t cols, T init = T())
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    T &
    operator()(std::size_t r, std::size_t c)
    {
        panicIf(r >= rows_ || c >= cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        panicIf(r >= rows_ || c >= cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

    /** Sum of all elements. */
    T
    total() const
    {
        T sum = T();
        for (const T &v : data_)
            sum += v;
        return sum;
    }

    /** Sum of one row. */
    T
    rowTotal(std::size_t r) const
    {
        panicIf(r >= rows_, "row index out of range");
        T sum = T();
        for (std::size_t c = 0; c < cols_; ++c)
            sum += data_[r * cols_ + c];
        return sum;
    }

    /** Sum of one column. */
    T
    colTotal(std::size_t c) const
    {
        panicIf(c >= cols_, "column index out of range");
        T sum = T();
        for (std::size_t r = 0; r < rows_; ++r)
            sum += data_[r * cols_ + c];
        return sum;
    }

    /** Fill every element with @p value. */
    void
    fill(T value)
    {
        data_.assign(data_.size(), value);
    }

    /** Raw row-major storage (for serialization and heatmaps). */
    const std::vector<T> &data() const { return data_; }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

/** Flow matrix alias used by the traffic and QAP layers. */
using FlowMatrix = Matrix<double>;
/** Packet-count matrix captured from simulation. */
using CountMatrix = Matrix<std::uint64_t>;

/** Convert a count matrix into a double-valued flow matrix. */
inline FlowMatrix
toFlowMatrix(const CountMatrix &counts)
{
    FlowMatrix flow(counts.rows(), counts.cols(), 0.0);
    for (std::size_t r = 0; r < counts.rows(); ++r)
        for (std::size_t c = 0; c < counts.cols(); ++c)
            flow(r, c) = static_cast<double>(counts(r, c));
    return flow;
}

/**
 * Permute a square flow matrix by a thread-to-core assignment.
 *
 * @param flow Flow between threads (thread s -> thread d).
 * @param thread_to_core thread_to_core[t] is the core thread t runs on.
 * @return Flow between cores.
 */
inline FlowMatrix
permuteFlow(const FlowMatrix &flow, const std::vector<int> &thread_to_core)
{
    panicIf(flow.rows() != flow.cols(), "flow matrix must be square");
    panicIf(thread_to_core.size() != flow.rows(),
            "assignment size mismatch");
    FlowMatrix out(flow.rows(), flow.cols(), 0.0);
    for (std::size_t s = 0; s < flow.rows(); ++s)
        for (std::size_t d = 0; d < flow.cols(); ++d)
            out(thread_to_core[s], thread_to_core[d]) += flow(s, d);
    return out;
}

} // namespace mnoc

#endif // MNOC_COMMON_MATRIX_HH
