/**
 * @file
 * Scoped span timers exporting Chrome trace-event JSON: wrap a hot
 * region in a TraceSpan and load the emitted file in chrome://tracing
 * (or any Perfetto-compatible viewer) to see where wall-clock time
 * goes across the simulator, the QAP solvers, the yield analyzer,
 * and the bench harness.
 *
 * Spans record *timings*, which are never bit-stable run to run, so
 * they are observability only -- nothing in the library may read
 * them back.  The deterministic counterpart is the metrics registry
 * (common/metrics.hh); DESIGN.md §10 draws the line between the two.
 *
 * Enablement: the MNOC_TRACE_SPANS environment variable.  Unset,
 * empty, or "0" disables recording (constructing a TraceSpan is one
 * predictable branch); "1" records and writes "mnoc_spans.json" in
 * the working directory at process exit; any other value records and
 * writes to that path instead.
 *
 * Thread model: spans append to per-thread buffers registered under
 * a mutex on first use, so recording from ThreadPool workers never
 * contends; the export merges and time-sorts all buffers.
 */

#ifndef MNOC_COMMON_TRACE_SPAN_HH
#define MNOC_COMMON_TRACE_SPAN_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mnoc {

/** True when span recording is on; cached from MNOC_TRACE_SPANS and
 *  overridable (tests). */
bool spansEnabled();

/** One completed span (a Chrome "complete" event, ph = "X"). */
struct SpanEvent
{
    std::string name;
    std::string category;
    /** Microseconds since the recorder was created. */
    std::uint64_t startUs = 0;
    std::uint64_t durationUs = 0;
    /** Small stable id of the recording thread (registration
     *  order). */
    int tid = 0;
};

/** Collects SpanEvents from all threads and serializes them. */
class SpanRecorder
{
  public:
    /** The process-wide recorder (never destroyed; an
     *  MNOC_TRACE_SPANS path registers an at-exit export on first
     *  use). */
    static SpanRecorder &global();

    /** Force recording on/off, overriding MNOC_TRACE_SPANS. */
    static void setEnabled(bool on);

    /** Export path implied by MNOC_TRACE_SPANS ("" when none;
     *  "mnoc_spans.json" for the value "1"). */
    static std::string exportPath();

    /** Microseconds since the recorder was created. */
    std::uint64_t nowUs() const;

    /** Append a completed span to the calling thread's buffer. */
    void record(SpanEvent event);

    /** All recorded events merged across threads and sorted by
     *  (start, tid, name). */
    std::vector<SpanEvent> events() const;

    /** Chrome trace-event JSON ({"traceEvents": [...]}); loadable
     *  in chrome://tracing even when no spans were recorded. */
    std::string toJson() const;

    /** Write toJson() to @p path, failing loudly on I/O errors. */
    void writeJson(const std::string &path) const;

    /** Drop every recorded event (tests). */
    void reset();

  private:
    SpanRecorder();

    std::vector<SpanEvent> &threadBuffer();

    std::uint64_t epochUs_ = 0;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<std::vector<SpanEvent>>> buffers_;
};

/**
 * Parse Chrome trace-event JSON back into SpanEvents (`mnocpt
 * profile` reads files written by SpanRecorder::writeJson or any
 * other ph="X" producer).  A tolerant extractor, not a full JSON
 * parser: it collects the complete-event objects inside the
 * traceEvents array and reads their name/cat/tid/ts/dur fields,
 * skipping events without a duration (counter/instant overlays such
 * as the `mnocpt explain` output compose cleanly).
 *
 * Unknown top-level sections -- trailers from newer writers -- are
 * named, with their byte offset, in the same diagnostic style as the
 * TraceReader, instead of being silently consumed.
 *
 * @param path File name used in diagnostics ("span input" when
 *        empty).
 * @throws FatalError when @p text contains no traceEvents array or
 *         carries an unknown top-level section.
 */
std::vector<SpanEvent> parseSpanJson(const std::string &text,
                                     const std::string &path = "");

/** One aggregated hotspot of a span profile. */
struct ProfileRow
{
    std::string name;
    /** Number of spans bearing the name. */
    std::uint64_t calls = 0;
    /** Total wall time inside the span, children included. */
    std::uint64_t inclusiveUs = 0;
    /** Wall time not covered by nested spans on the same thread. */
    std::uint64_t exclusiveUs = 0;
};

/**
 * Aggregate raw span events into per-name hotspot rows, sorted by
 * inclusive wall time (descending; ties by name).  Exclusive time
 * subtracts each span's same-thread nested children, so the column
 * sums to thread wall time without double counting.
 */
std::vector<ProfileRow> profileSpans(std::vector<SpanEvent> events);

/**
 * RAII span: times its own lifetime and records it into the global
 * SpanRecorder on destruction.  Constructing one while spans are
 * disabled costs a single branch and records nothing.
 */
class TraceSpan
{
  public:
    TraceSpan(std::string name, std::string category);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string name_;
    std::string category_;
    std::uint64_t startUs_ = 0;
    bool active_ = false;
};

} // namespace mnoc

#endif // MNOC_COMMON_TRACE_SPAN_HH
