/**
 * @file
 * Run manifests: the provenance block embedded in every artifact the
 * tree writes (trace files, design files, BENCH_*.json), recording
 * enough to re-run the exact experiment from the artifact alone --
 * the seed, the git revision of the build, the thread-pool size, the
 * MNOC_* environment knobs in effect, and a digest of the
 * configuration that produced the artifact.
 *
 * Two serializations exist:
 *   - a line/token text block ("manifest <n>" + n entries) embedded
 *     in the line-oriented trace and design formats; values are
 *     percent-encoded so they always form a single token;
 *   - a JSON object (manifestJson) embedded in the JSON artifacts.
 * Both are byte-deterministic for a fixed manifest, so golden-file
 * tests can cover them.
 */

#ifndef MNOC_COMMON_MANIFEST_HH
#define MNOC_COMMON_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mnoc {

/** Provenance of one run, embedded in its artifacts. */
struct RunManifest
{
    /** Workload / solver seed of the run (0 when seedless). */
    std::uint64_t seed = 0;
    /** Git revision the binary was built from ("unknown" outside a
     *  checkout). */
    std::string gitSha;
    /** Worker-pool size in effect (ThreadPool::configuredThreads). */
    int threads = 0;
    /** Caller-supplied digest of the producing configuration. */
    std::string configDigest;
    /** MNOC_* environment knobs that were set, as (name, value). */
    std::vector<std::pair<std::string, std::string>> env;
};

/** FNV-1a 64-bit hash, used for config digests. */
std::uint64_t fnv1a64(const std::string &text);

/** 16-hex-digit rendering of a digest value. */
std::string hexDigest(std::uint64_t value);

/**
 * The manifest of the current process: compiled-in git SHA, the
 * configured thread count, and every MNOC_* knob currently set.
 */
RunManifest currentManifest(std::uint64_t seed = 0,
                            const std::string &config_digest = "");

/** Percent-encode @p value so it is one whitespace-free token. */
std::string encodeManifestValue(const std::string &value);

/** Invert encodeManifestValue. */
std::string decodeManifestValue(const std::string &text);

/**
 * The text-block body: one "key value" (or "env name value") line
 * per entry, in fixed order (seed, git, threads, config, env...).
 * The block header is "manifest <lines.size()>".
 */
std::vector<std::string> manifestLines(const RunManifest &manifest);

/**
 * Apply one parsed entry to @p manifest.  @p key is the first token
 * of the line; for "env" entries @p a is the knob name and @p b its
 * encoded value, otherwise @p a is the encoded value and @p b is
 * ignored.  Unknown keys are ignored (forward compatibility).
 */
void setManifestField(RunManifest &manifest, const std::string &key,
                      const std::string &a, const std::string &b);

/** Parse one "key value..." line; false on a malformed line. */
bool parseManifestEntry(const std::string &line,
                        RunManifest &manifest);

/** The manifest as a JSON object (one line, escaped, fixed key
 *  order). */
std::string manifestJson(const RunManifest &manifest);

} // namespace mnoc

#endif // MNOC_COMMON_MANIFEST_HH
