/**
 * @file
 * Minimal JSON emission helpers shared by every artifact writer
 * (metrics registry export, span traces, BENCH_*.json, manifests).
 * Only escaping and number formatting live here -- the writers
 * assemble their own structure, which keeps the output byte-stable
 * (no map reordering, no locale surprises).
 */

#ifndef MNOC_COMMON_JSON_HH
#define MNOC_COMMON_JSON_HH

#include <sstream>
#include <string>

namespace mnoc {

/**
 * Escape @p text for embedding inside a JSON string literal: quotes
 * and backslashes are backslash-escaped, the common control
 * characters use their short forms, and every other control
 * character becomes a \\u00XX sequence.  Non-ASCII bytes pass
 * through untouched (the files are UTF-8).
 */
inline std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        auto byte = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"':
            out += "\\\"";
            continue;
          case '\\':
            out += "\\\\";
            continue;
          case '\n':
            out += "\\n";
            continue;
          case '\t':
            out += "\\t";
            continue;
          case '\r':
            out += "\\r";
            continue;
          case '\b':
            out += "\\b";
            continue;
          case '\f':
            out += "\\f";
            continue;
          default:
            break;
        }
        if (byte < 0x20) {
            const char *digits = "0123456789abcdef";
            out += "\\u00";
            out += digits[(byte >> 4) & 0xf];
            out += digits[byte & 0xf];
            continue;
        }
        out += ch;
    }
    return out;
}

/**
 * Deterministic decimal rendering of a double for JSON: 17
 * significant digits round-trip every distinct bit pattern, so two
 * runs that computed identical doubles emit identical bytes.
 */
inline std::string
jsonNumber(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

} // namespace mnoc

#endif // MNOC_COMMON_JSON_HH
