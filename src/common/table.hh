/**
 * @file
 * Aligned plain-text table printer used by the bench binaries to print
 * paper-style tables and figure series.
 */

#ifndef MNOC_COMMON_TABLE_HH
#define MNOC_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mnoc {

/**
 * Collects rows of cells and prints them with columns padded to the
 * widest cell.  The first row added is treated as the header and is
 * underlined when printed.
 */
class TextTable
{
  public:
    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 3);

    /** Render all rows to @p os with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mnoc

#endif // MNOC_COMMON_TABLE_HH
