#include "common/io.hh"

#include "common/log.hh"

namespace mnoc {

FileWriter::FileWriter(const std::string &path, bool binary)
    : path_(path),
      out_(path, binary ? std::ios::out | std::ios::binary
                        : std::ios::out)
{
    fatalIf(!out_.is_open(), "cannot open file for write: " + path_);
}

FileWriter::~FileWriter()
{
    if (closed_)
        return;
    out_.flush();
    if (!out_.good())
        warn("failed writing file (disk full or I/O error): " +
             path_);
}

void
FileWriter::failIfBad()
{
    fatalIf(!out_.good(),
            "failed writing file (disk full or I/O error): " + path_);
}

void
FileWriter::close()
{
    if (closed_)
        return;
    out_.flush();
    fatalIf(!out_.good(),
            "failed writing file (disk full or I/O error): " + path_);
    out_.close();
    fatalIf(out_.fail(),
            "failed closing file (disk full or I/O error): " + path_);
    closed_ = true;
}

} // namespace mnoc
