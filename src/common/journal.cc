#include "common/journal.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/metrics.hh"

namespace mnoc {

namespace {

constexpr char kHeaderMagic[8] = {'M', 'N', 'O', 'C', 'J', 'R', 'N', 'L'};
constexpr char kEndMagic[8] = {'M', 'N', 'O', 'C', 'J', 'E', 'N', 'D'};

/** Raw MNOC_JOURNAL value ("" when unset). */
std::string
envValue()
{
    const char *value = std::getenv("MNOC_JOURNAL");
    return value != nullptr ? std::string(value) : std::string();
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag(
        parsePathKnob(envValue().c_str(), "MNOC_JOURNAL").enabled);
    return flag;
}

void
exportGlobalAtExit()
{
    Journal::global().writeFile(Journal::exportPath());
}

/** Deterministic human rendering of a real (explain narrative and
 *  timeline CSV; JSONL uses jsonNumber instead). */
std::string
formatReal(double value)
{
    std::ostringstream out;
    out << std::scientific << std::setprecision(6) << value;
    return out.str();
}

void
appendU32(std::string &out, std::uint32_t value)
{
    char bytes[4];
    std::memcpy(bytes, &value, sizeof(bytes));
    out.append(bytes, sizeof(bytes));
}

void
appendU64(std::string &out, std::uint64_t value)
{
    char bytes[8];
    std::memcpy(bytes, &value, sizeof(bytes));
    out.append(bytes, sizeof(bytes));
}

void
appendF64(std::string &out, double value)
{
    char bytes[8];
    std::memcpy(bytes, &value, sizeof(bytes));
    out.append(bytes, sizeof(bytes));
}

std::uint32_t
readU32(const std::string &bytes, std::size_t offset)
{
    std::uint32_t value = 0;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
}

std::uint64_t
readU64(const std::string &bytes, std::size_t offset)
{
    std::uint64_t value = 0;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
}

double
readF64(const std::string &bytes, std::size_t offset)
{
    double value = 0;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
}

void
appendRecord(std::string &out, const JournalRecord &rec)
{
    appendU32(out, static_cast<std::uint32_t>(rec.kind));
    appendU64(out, rec.epoch);
    appendU32(out, rec.numInts);
    appendU32(out, rec.numReals);
    for (std::size_t i = 0; i < JournalRecord::kMaxInts; ++i)
        appendU64(out, static_cast<std::uint64_t>(rec.ints[i]));
    for (std::size_t i = 0; i < JournalRecord::kMaxReals; ++i)
        appendF64(out, rec.reals[i]);
}

std::string
journalHeader(const std::string &manifest_json)
{
    std::string out;
    out.append(kHeaderMagic, sizeof(kHeaderMagic));
    appendU32(out, kJournalVersion);
    fatalIf(manifest_json.size() > (std::uint32_t(1) << 24),
            "journal manifest stamp is implausibly large");
    appendU32(out, static_cast<std::uint32_t>(manifest_json.size()));
    out.append(manifest_json);
    return out;
}

std::string
journalFooter(std::uint64_t count)
{
    std::string out;
    out.append(kEndMagic, sizeof(kEndMagic));
    appendU64(out, count);
    return out;
}

/** Field names for the fixed int/real slots of each kind (JSONL keys
 *  and explain detail labels).  PhaseSignature's real slots past
 *  "distance" form the signature vector and are rendered specially. */
struct FieldNames
{
    std::vector<const char *> ints;
    std::vector<const char *> reals;
};

const FieldNames &
fieldNamesFor(JournalKind kind)
{
    static const FieldNames phase_signature{{"buckets"}, {"distance"}};
    static const FieldNames phase_change{{}, {"distance"}};
    static const FieldNames retarget{{"slot", "window_first", "window_last"},
                                     {}};
    static const FieldNames price{{"candidate", "suffix_epochs"},
                                  {"active_j", "challenger_j", "gain"}};
    static const FieldNames switch_{{"from", "to", "streak"},
                                    {"gain", "energy_j"}};
    static const FieldNames retire{{"candidate"}, {}};
    static const FieldNames expire{{"candidate", "built_at"}, {}};
    static const FieldNames degrade{{"source", "mode", "streak"},
                                    {"trim_db", "energy_j"}};
    static const FieldNames fault{{"fault", "node", "mode"}, {"magnitude"}};
    static const FieldNames boundary{{"cells", "packets", "flits"}, {}};
    static const FieldNames reconcile{{},
                                      {"ledger_j", "log_j", "residual_j"}};
    static const FieldNames margin{{"active_faults", "actions", "modes"},
                                   {"before_db", "after_db", "reconfig_j"}};
    static const FieldNames none{{}, {}};

    switch (kind) {
    case JournalKind::PhaseSignature: return phase_signature;
    case JournalKind::PhaseChange: return phase_change;
    case JournalKind::Retarget: return retarget;
    case JournalKind::Price: return price;
    case JournalKind::Switch: return switch_;
    case JournalKind::Retire: return retire;
    case JournalKind::Expire: return expire;
    case JournalKind::Trim:
    case JournalKind::Relax:
    case JournalKind::Failover:
    case JournalKind::Restore:
    case JournalKind::Collapse: return degrade;
    case JournalKind::FaultStart:
    case JournalKind::FaultEnd: return fault;
    case JournalKind::EpochBoundary: return boundary;
    case JournalKind::Reconcile: return reconcile;
    case JournalKind::Margin: return margin;
    }
    return none;
}

} // namespace

const char *
journalKindName(JournalKind kind)
{
    static const char *const names[kJournalKindCount + 1] = {
        "",         "phase_signature", "phase_change", "retarget",
        "price",    "switch",          "retire",       "expire",
        "trim",     "relax",           "failover",     "restore",
        "collapse", "fault_start",     "fault_end",    "epoch_boundary",
        "reconcile", "margin",
    };
    auto index = static_cast<std::uint32_t>(kind);
    panicIf(index == 0 || index > kJournalKindCount,
            "journalKindName: invalid kind");
    return names[index];
}

JournalRecord &
JournalRecord::addInt(std::int64_t v)
{
    panicIf(numInts >= kMaxInts, "journal record int slots exhausted");
    ints[numInts++] = v;
    return *this;
}

JournalRecord &
JournalRecord::addReal(double v)
{
    panicIf(numReals >= kMaxReals, "journal record real slots exhausted");
    reals[numReals++] = v;
    return *this;
}

bool
journalEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

Journal &
Journal::global()
{
    static Journal *instance = [] {
        auto *journal = new Journal();
        if (!exportPath().empty())
            std::atexit(exportGlobalAtExit);
        return journal;
    }();
    return *instance;
}

std::string
Journal::exportPath()
{
    PathKnob knob = parsePathKnob(envValue().c_str(), "MNOC_JOURNAL");
    if (!knob.enabled)
        return "";
    return knob.path.empty() ? "mnoc_journal.mjrn" : knob.path;
}

void
Journal::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

void
Journal::record(const JournalRecord &rec)
{
    std::lock_guard<std::mutex> guard(mutex_);
    records_.push_back(rec);
}

void
Journal::setManifest(const std::string &manifest_json)
{
    std::lock_guard<std::mutex> guard(mutex_);
    manifestJson_ = manifest_json;
}

std::string
Journal::toBinary() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::string out = journalHeader(manifestJson_);
    out.reserve(out.size() + records_.size() * kJournalRecordBytes + 16);
    for (const JournalRecord &rec : records_)
        appendRecord(out, rec);
    out += journalFooter(records_.size());
    return out;
}

void
Journal::writeFile(const std::string &path) const
{
    std::string bytes = toBinary();
    FileWriter writer(path, /*binary=*/true);
    writer.stream().write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size()));
    writer.failIfBad();
    writer.close();
}

std::vector<JournalRecord>
Journal::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return records_;
}

std::size_t
Journal::size() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return records_.size();
}

void
Journal::reset()
{
    std::lock_guard<std::mutex> guard(mutex_);
    records_.clear();
    manifestJson_.clear();
}

JournalWriter::JournalWriter(const std::string &path,
                             const std::string &manifest_json)
    : path_(path), buffer_(journalHeader(manifest_json))
{
}

JournalWriter::~JournalWriter()
{
    if (!closed_)
        warn("journal writer for '" + path_ +
             "' destroyed without close(); journal not written");
}

void
JournalWriter::append(const JournalRecord &rec)
{
    panicIf(closed_, "append to closed journal writer '" + path_ + "'");
    appendRecord(buffer_, rec);
    ++count_;
}

void
JournalWriter::close()
{
    panicIf(closed_, "double close of journal writer '" + path_ + "'");
    buffer_ += journalFooter(count_);
    FileWriter writer(path_, /*binary=*/true);
    writer.stream().write(buffer_.data(),
                          static_cast<std::streamsize>(buffer_.size()));
    writer.failIfBad();
    writer.close();
    closed_ = true;
}

JournalFile
loadJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open journal '" + path + "'");
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());

    auto truncated = [&](const std::string &what, std::size_t at) {
        fatal(path + ": truncated journal: missing " + what + " at byte " +
              std::to_string(at));
    };

    if (bytes.size() < sizeof(kHeaderMagic))
        truncated("header magic", bytes.size());
    fatalIf(std::memcmp(bytes.data(), kHeaderMagic, sizeof(kHeaderMagic)) !=
                0,
            path + ": not a journal file (bad magic at byte 0)");
    std::size_t offset = sizeof(kHeaderMagic);

    if (bytes.size() < offset + 4)
        truncated("header version", offset);
    std::uint32_t version = readU32(bytes, offset);
    fatalIf(version != kJournalVersion,
            path + ": unsupported journal version " +
                std::to_string(version) + " at byte " +
                std::to_string(offset));
    offset += 4;

    if (bytes.size() < offset + 4)
        truncated("manifest stamp length", offset);
    std::uint32_t stamp_len = readU32(bytes, offset);
    offset += 4;
    if (bytes.size() < offset + stamp_len)
        truncated("manifest stamp", offset);

    JournalFile file;
    file.manifestJson = bytes.substr(offset, stamp_len);
    offset += stamp_len;

    while (true) {
        std::size_t remaining = bytes.size() - offset;
        if (remaining >= sizeof(kEndMagic) &&
            std::memcmp(bytes.data() + offset, kEndMagic,
                        sizeof(kEndMagic)) == 0) {
            offset += sizeof(kEndMagic);
            if (bytes.size() < offset + 8)
                truncated("record count", offset);
            std::uint64_t declared = readU64(bytes, offset);
            offset += 8;
            fatalIf(declared != file.records.size(),
                    path + ": journal end marker declares " +
                        std::to_string(declared) + " records but file holds " +
                        std::to_string(file.records.size()) + " (at byte " +
                        std::to_string(offset - 8) + ")");
            fatalIf(offset != bytes.size(),
                    path + ": trailing bytes after journal end "
                           "marker at byte " +
                        std::to_string(offset));
            break;
        }
        if (remaining < kJournalRecordBytes) {
            // Name the kind when enough of the record survived to read it.
            std::string what =
                "record " + std::to_string(file.records.size());
            if (remaining >= 4) {
                std::uint32_t kind = readU32(bytes, offset);
                if (kind >= 1 && kind <= kJournalKindCount)
                    what += " (" +
                            std::string(journalKindName(
                                static_cast<JournalKind>(kind))) +
                            ")";
            }
            truncated(what + " or end marker", offset);
        }

        std::uint32_t kind = readU32(bytes, offset);
        fatalIf(kind == 0 || kind > kJournalKindCount,
                path + ": unknown journal record kind " +
                    std::to_string(kind) + " at byte " +
                    std::to_string(offset));

        JournalRecord rec;
        rec.kind = static_cast<JournalKind>(kind);
        rec.epoch = readU64(bytes, offset + 4);
        rec.numInts = readU32(bytes, offset + 12);
        rec.numReals = readU32(bytes, offset + 16);
        fatalIf(rec.numInts > JournalRecord::kMaxInts ||
                    rec.numReals > JournalRecord::kMaxReals,
                path + ": corrupt " +
                    std::string(journalKindName(rec.kind)) +
                    " record: field counts out of range at byte " +
                    std::to_string(offset));
        for (std::size_t i = 0; i < JournalRecord::kMaxInts; ++i)
            rec.ints[i] = static_cast<std::int64_t>(
                readU64(bytes, offset + 20 + i * 8));
        for (std::size_t i = 0; i < JournalRecord::kMaxReals; ++i)
            rec.reals[i] = readF64(bytes, offset + 52 + i * 8);
        file.records.push_back(rec);
        offset += kJournalRecordBytes;
    }
    return file;
}

std::string
journalToJsonl(const JournalFile &file)
{
    std::string out = "{\"journal\": {\"version\": " +
                      std::to_string(kJournalVersion) + ", \"records\": " +
                      std::to_string(file.records.size()) + ", \"manifest\": ";
    out += file.manifestJson.empty() ? std::string("null")
                                     : file.manifestJson;
    out += "}}\n";

    for (const JournalRecord &rec : file.records) {
        const FieldNames &names = fieldNamesFor(rec.kind);
        std::string line = "{\"kind\": \"" +
                           std::string(journalKindName(rec.kind)) +
                           "\", \"epoch\": " + std::to_string(rec.epoch);
        for (std::uint32_t i = 0; i < rec.numInts; ++i) {
            std::string key = i < names.ints.size()
                                  ? names.ints[i]
                                  : "int" + std::to_string(i);
            line += ", \"" + key + "\": " + std::to_string(rec.ints[i]);
        }
        if (rec.kind == JournalKind::PhaseSignature) {
            if (rec.numReals >= 1)
                line += ", \"distance\": " + jsonNumber(rec.reals[0]);
            line += ", \"signature\": [";
            for (std::uint32_t i = 1; i < rec.numReals; ++i) {
                if (i > 1)
                    line += ", ";
                line += jsonNumber(rec.reals[i]);
            }
            line += "]";
        } else {
            for (std::uint32_t i = 0; i < rec.numReals; ++i) {
                std::string key = i < names.reals.size()
                                      ? names.reals[i]
                                      : "real" + std::to_string(i);
                line += ", \"" + key + "\": " + jsonNumber(rec.reals[i]);
            }
        }
        line += "}\n";
        out += line;
    }
    return out;
}

std::string
journalRecordDetail(const JournalRecord &rec)
{
    const FieldNames &names = fieldNamesFor(rec.kind);
    std::string out;
    auto add = [&](const std::string &key, const std::string &value) {
        if (!out.empty())
            out += ' ';
        out += key + "=" + value;
    };
    for (std::uint32_t i = 0; i < rec.numInts; ++i)
        add(i < names.ints.size() ? names.ints[i]
                                  : "int" + std::to_string(i),
            std::to_string(rec.ints[i]));
    if (rec.kind == JournalKind::PhaseSignature) {
        if (rec.numReals >= 1)
            add("distance", formatReal(rec.reals[0]));
        std::string sig = "[";
        for (std::uint32_t i = 1; i < rec.numReals; ++i) {
            if (i > 1)
                sig += ' ';
            sig += formatReal(rec.reals[i]);
        }
        sig += ']';
        add("signature", sig);
    } else {
        for (std::uint32_t i = 0; i < rec.numReals; ++i)
            add(i < names.reals.size() ? names.reals[i]
                                       : "real" + std::to_string(i),
                formatReal(rec.reals[i]));
    }
    return out;
}

namespace {

/** Records bucketed by epoch, ascending, preserving in-epoch order
 *  (reconcile records are appended after the run, so the raw sequence
 *  is not epoch-sorted). */
std::map<std::uint64_t, std::vector<const JournalRecord *>>
byEpoch(const JournalFile &file)
{
    std::map<std::uint64_t, std::vector<const JournalRecord *>> epochs;
    for (const JournalRecord &rec : file.records)
        epochs[rec.epoch].push_back(&rec);
    return epochs;
}

} // namespace

std::string
renderExplainMarkdown(const JournalFile &file)
{
    std::string out = "# mnocpt explain: decision timeline\n\n";
    out += "- manifest: `" +
           (file.manifestJson.empty() ? std::string("(unstamped)")
                                      : file.manifestJson) +
           "`\n";
    out += "- records: " + std::to_string(file.records.size()) + "\n";

    auto epochs = byEpoch(file);
    if (!epochs.empty())
        out += "- epochs: " + std::to_string(epochs.begin()->first) + ".." +
               std::to_string(epochs.rbegin()->first) + "\n";
    out += "\n";

    std::array<std::size_t, kJournalKindCount + 1> counts{};
    for (const JournalRecord &rec : file.records)
        ++counts[static_cast<std::uint32_t>(rec.kind)];
    out += "| kind | count |\n|---|---|\n";
    for (std::uint32_t k = 1; k <= kJournalKindCount; ++k)
        if (counts[k] > 0)
            out += "| " +
                   std::string(journalKindName(static_cast<JournalKind>(k))) +
                   " | " + std::to_string(counts[k]) + " |\n";
    out += "\n";

    for (const auto &[epoch, records] : epochs) {
        out += "## Epoch " + std::to_string(epoch) + "\n\n";
        for (const JournalRecord *rec : records) {
            out += "- `" + std::string(journalKindName(rec->kind)) + "`";
            std::string detail = journalRecordDetail(*rec);
            if (!detail.empty())
                out += " " + detail;
            out += "\n";
        }
        out += "\n";
    }
    return out;
}

std::string
renderExplainTimelineCsv(const JournalFile &file)
{
    std::string out = "# " +
                      (file.manifestJson.empty() ? std::string("(unstamped)")
                                                 : file.manifestJson) +
                      "\n";
    out += "epoch,kind,detail\n";
    for (const auto &[epoch, records] : byEpoch(file))
        for (const JournalRecord *rec : records)
            out += std::to_string(epoch) + "," +
                   journalKindName(rec->kind) + "," +
                   journalRecordDetail(*rec) + "\n";
    return out;
}

std::string
renderExplainTrace(const JournalFile &file)
{
    // Chrome-trace overlay: counter ("C") and instant ("i") events at
    // ts = epoch * 1000 us.  mnocpt profile skips phases other than
    // "X", so this file composes with MNOC_TRACE_SPANS output.
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  " + event;
    };
    auto counter = [&](std::uint64_t epoch, const std::string &name,
                       const std::string &key, const std::string &value) {
        emit("{\"name\": \"" + name + "\", \"ph\": \"C\", \"ts\": " +
             std::to_string(epoch * 1000) +
             ", \"pid\": 1, \"tid\": 1, \"args\": {\"" + key +
             "\": " + value + "}}");
    };
    auto instant = [&](std::uint64_t epoch, const JournalRecord &rec) {
        emit("{\"name\": \"" + std::string(journalKindName(rec.kind)) +
             "\", \"ph\": \"i\", \"ts\": " + std::to_string(epoch * 1000) +
             ", \"pid\": 1, \"tid\": 1, \"s\": \"g\", \"args\": "
             "{\"detail\": \"" +
             escapeJson(journalRecordDetail(rec)) + "\"}}");
    };

    for (const auto &[epoch, records] : byEpoch(file)) {
        for (const JournalRecord *rec : records) {
            switch (rec->kind) {
            case JournalKind::Switch:
                instant(epoch, *rec);
                if (rec->numInts >= 2)
                    counter(epoch, "active_design", "design",
                            std::to_string(rec->ints[1]));
                break;
            case JournalKind::Margin:
                if (rec->numReals >= 2)
                    counter(epoch, "worst_margin_db", "db",
                            jsonNumber(rec->reals[1]));
                if (rec->numInts >= 2)
                    counter(epoch, "degradation_actions", "count",
                            std::to_string(rec->ints[1]));
                break;
            case JournalKind::PhaseChange:
            case JournalKind::Expire:
            case JournalKind::Trim:
            case JournalKind::Relax:
            case JournalKind::Failover:
            case JournalKind::Restore:
            case JournalKind::Collapse:
            case JournalKind::FaultStart:
            case JournalKind::FaultEnd:
                instant(epoch, *rec);
                break;
            default:
                break;
            }
        }
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

} // namespace mnoc
