/**
 * @file
 * Deterministic, thread-pool-aware metrics registry: named counters,
 * gauges, and fixed-bucket histograms that parallel code can update
 * from inside ThreadPool tasks without breaking the bit-identity
 * contract of DESIGN.md §9.
 *
 * Determinism rule (DESIGN.md §10): everything recorded from a
 * parallel region must be order-independent.  Counters and histogram
 * bucket tallies are unsigned integers combined by addition; the
 * histogram min/max fold is commutative; nothing else (no
 * floating-point sums, no "last writer wins" fields) may be touched
 * concurrently.  Each counter is sharded into cache-line-padded
 * per-worker slots and merged in slot order on read, so the exported
 * registry is bit-identical at any thread count.
 *
 * Enablement: the MNOC_METRICS environment variable.  Unset, empty,
 * or "0" disables recording (add()/observe()/set() reduce to one
 * predictable branch -- see bench/micro_kernels.cc); "1" enables
 * collection; any other value enables collection *and* writes the
 * registry JSON to that path at process exit.
 */

#ifndef MNOC_COMMON_METRICS_HH
#define MNOC_COMMON_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mnoc {

/** Shard count for striped tallies; power of two, sized so a full
 *  pool of workers rarely collides on one cache line. */
constexpr int kMetricShards = 16;

/** Stable small slot index for the calling thread, used to pick a
 *  metric shard (assigned on first use, in registration order). */
int metricShardSlot();

/** True when the registry records; cached from MNOC_METRICS and
 *  overridable (tests, `mnocpt stats`). */
bool metricsEnabled();

/** Monotonically increasing unsigned tally, safe to bump from
 *  concurrent pool tasks (sharded; merged in slot order). */
class Counter
{
  public:
    /** Add @p n; no-op while metrics are disabled. */
    void
    add(std::uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        auto slot = static_cast<std::size_t>(metricShardSlot());
        shards_[slot].count.fetch_add(n, std::memory_order_relaxed);
    }

    /** Slot-order sum of the shards (deterministic: integer adds
     *  commute, so any interleaving yields the same total). */
    std::uint64_t value() const;

  private:
    friend class MetricsRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    void reset();

    struct Shard
    {
        alignas(64) std::atomic<std::uint64_t> count{0};
    };

    std::string name_;
    std::array<Shard, kMetricShards> shards_;
};

/** Last-writer-wins signed value; only meaningful when set from
 *  serial sections (a concurrent set would be order-dependent). */
class Gauge
{
  public:
    void
    set(std::int64_t value)
    {
        if (!metricsEnabled())
            return;
        value_.store(value, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    void reset() { value_.store(0, std::memory_order_relaxed); }

    std::string name_;
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram: bucket edges are ascending upper bounds
 * fixed at registration (observation x lands in the first bucket
 * with x <= edge, else the overflow bucket).  Bucket tallies are
 * integer adds and the min/max fold is commutative, so concurrent
 * observes from pool tasks stay deterministic.
 */
class Histogram
{
  public:
    void observe(double value);

    const std::vector<double> &edges() const { return edges_; }
    /** Per-bucket tallies (edges().size() + 1 entries, overflow
     *  last). */
    std::vector<std::uint64_t> bucketCounts() const;
    std::uint64_t totalCount() const;
    /** Smallest/largest observed value; only valid when
     *  totalCount() > 0. */
    double minValue() const;
    double maxValue() const;

  private:
    friend class MetricsRegistry;
    Histogram(std::string name, std::vector<double> edges);
    void reset();

    std::string name_;
    std::vector<double> edges_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/**
 * Labeled time-series: an indexed sequence of unsigned tallies (one
 * slot per epoch) that grows on demand.  Each shard owns a
 * mutex-guarded vector; add() locks only the caller's shard, and
 * values() merges shards by slot-wise addition.  Integer adds
 * commute, so the merged series is bit-identical at any thread
 * count, preserving the DESIGN.md §9 contract for per-epoch data.
 */
class Series
{
  public:
    /** Accrue @p n into slot @p index; no-op while metrics are
     *  disabled.  @p index is capped (fatal) to keep a corrupt epoch
     *  id from allocating unbounded memory. */
    void add(std::size_t index, std::uint64_t n = 1);

    /** Slot-wise sum across shards, sized to the largest index
     *  touched (deterministic: integer adds commute). */
    std::vector<std::uint64_t> values() const;

  private:
    friend class MetricsRegistry;
    explicit Series(std::string name) : name_(std::move(name)) {}
    void reset();

    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<std::uint64_t> slots;
    };

    std::string name_;
    std::array<Shard, kMetricShards> shards_;
};

/** True when the energy-attribution ledger should be collected
 *  (MNOC_LEDGER unset/empty/"0" disables; overridable in tests). */
bool ledgerEnabled();

/** Force ledger collection on/off, overriding MNOC_LEDGER. */
void setLedgerEnabled(bool on);

/** Messages per attribution epoch (MNOC_EPOCH_MSGS, default 1024;
 *  values < 1 are a fatal configuration error). */
std::uint64_t ledgerEpochMessages();

/**
 * Strict parser behind the counted environment knobs
 * (MNOC_EPOCH_MSGS, MNOC_FAULT_SEED): null or empty @p text yields
 * @p fallback; anything else must parse entirely as a positive
 * integer, or the call fatals naming @p knob and the offending
 * value.  Silent fallback on garbage is deliberately not offered --
 * a mistyped knob must stop the run, not quietly reconfigure it.
 */
std::uint64_t parsePositiveCount(const char *text, const char *knob,
                                 std::uint64_t fallback);

/**
 * Strict parser behind the boolean environment knobs (MNOC_LEDGER,
 * MNOC_FAULTS): null, "" and "0" are off, "1" is on, and any other
 * value fatals naming @p knob -- a mistyped knob must stop the
 * run, not silently flip a feature.
 */
bool parseBoolKnob(const char *text, const char *knob);

/** Parsed value of a path-or-flag knob (MNOC_METRICS,
 *  MNOC_TRACE_SPANS). */
struct PathKnob
{
    bool enabled = false;
    std::string path; ///< export path ("" when the value was "1")
};

/**
 * Strict parser behind the path-or-flag environment knobs: null,
 * "" and "0" disable, "1" enables without an export path, and any
 * other value enables with that value as the export path -- except
 * values that are clearly a mistyped flag rather than a path
 * (true/false/yes/no/on/off in any case, or all-digit strings),
 * which fatal naming @p knob.
 */
PathKnob parsePathKnob(const char *text, const char *knob);

/** True when the runtime fault-injection engine should run
 *  (MNOC_FAULTS: unset, empty or "0" disables, "1" enables; any
 *  other value is a fatal configuration error). */
bool faultsEnabled();

/** Seed of the runtime fault timeline (MNOC_FAULT_SEED, default 1;
 *  garbage, zero or negative values are a fatal error). */
std::uint64_t faultSeed();

/** True when the traffic-adaptive controller should fold its
 *  static-vs-adaptive comparison into `mnocpt report` (MNOC_ADAPT:
 *  unset, empty or "0" disables, "1" enables; any other value is a
 *  fatal configuration error). */
bool adaptEnabled();

/** Trailing traffic window of the adaptive controller, in epochs
 *  (MNOC_ADAPT_WINDOW, default 32; garbage, zero or negative values
 *  are a fatal error). */
std::uint64_t adaptWindow();

/**
 * Process-wide registry of named metrics.  Registration is
 * mutex-guarded and handles are stable for the registry's lifetime,
 * so call sites fetch a handle once and record lock-free afterwards.
 * Export (toJson/printText) iterates names in sorted order, making
 * the output deterministic.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry (never destroyed; an MNOC_METRICS
     *  path registers an at-exit JSON export on first use). */
    static MetricsRegistry &global();

    /** Force recording on/off, overriding MNOC_METRICS. */
    static void setEnabled(bool on);

    /** The export path from MNOC_METRICS ("" when none). */
    static std::string exportPath();

    /** Find-or-create the named counter. */
    Counter &counter(const std::string &name);

    /** Find-or-create the named gauge. */
    Gauge &gauge(const std::string &name);

    /**
     * Find-or-create the named histogram.  @p edges (ascending upper
     * bucket bounds) applies on first registration; later calls must
     * pass the same edge count.
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &edges);

    /** Find-or-create the named time-series. */
    Series &series(const std::string &name);

    /** Deterministic JSON export (schema "mnoc-metrics-v2"):
     *  sorted names, 17-digit doubles, integer tallies. */
    std::string toJson() const;

    /** Write toJson() to @p path, failing loudly on I/O errors. */
    void writeJson(const std::string &path) const;

    /** Human-readable dump (one metric per line, sorted). */
    void printText(std::ostream &out) const;

    /** Zero every value, keeping registrations (tests use this to
     *  compare runs of the same workload). */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<Series>> series_;
};

} // namespace mnoc

#endif // MNOC_COMMON_METRICS_HH
