#include "common/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/log.hh"

namespace mnoc {

namespace {

/** Set inside workerLoop(): which pool (if any) owns this thread.
 *  submit()/parallelFor() consult it to run nested work inline. */
thread_local const ThreadPool *tls_owner_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(int num_threads) : numThreads_(num_threads)
{
    fatalIf(num_threads < 1,
            "thread pool needs at least one thread");
    // The pool-of-one spawns no workers: every task runs inline on
    // the caller, which is both the MNOC_THREADS=1 escape hatch and
    // the reference schedule parallel runs must reproduce.
    if (numThreads_ == 1)
        return;
    workers_.reserve(static_cast<std::size_t>(numThreads_));
    for (int i = 0; i < numThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    condition_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    tls_owner_pool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            condition_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

bool
ThreadPool::runsInline() const
{
    return numThreads_ == 1 || tls_owner_pool == this;
}

void
ThreadPool::parallelFor(long long n,
                        const std::function<void(long long)> &body)
{
    if (n <= 0)
        return;
    if (runsInline() || n == 1) {
        for (long long i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Static contiguous chunking.  The chunk shape never reaches the
    // results -- tasks write disjoint slots and callers reduce in
    // index order afterwards -- so it only sets the grain size.
    long long chunks = std::min<long long>(numThreads_, n);
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(chunks));
    for (long long c = 0; c < chunks; ++c) {
        long long begin = n * c / chunks;
        long long end = n * (c + 1) / chunks;
        futures.push_back(submit([&body, begin, end] {
            for (long long i = begin; i < end; ++i)
                body(i);
        }));
    }

    // get() in chunk order, after every chunk has finished: the
    // lowest-index chunk's exception wins regardless of scheduling.
    std::exception_ptr first;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(configuredThreads());
    return pool;
}

int
ThreadPool::configuredThreads()
{
    int hardware =
        static_cast<int>(std::thread::hardware_concurrency());
    if (hardware < 1)
        hardware = 1;
    return parseThreads(std::getenv("MNOC_THREADS"), hardware);
}

int
ThreadPool::parseThreads(const char *text, int fallback)
{
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    long value = std::strtol(text, &end, 10);
    // A mistyped override must stop the run: silently falling back
    // would run at a different thread count than the user asked
    // for, and nobody would notice until the provenance manifests
    // disagree.
    fatalIf(end == text || *end != '\0' || value < 1 ||
                value > 4096,
            "MNOC_THREADS must be an integer in [1, 4096], got '" +
                std::string(text) + "'");
    return static_cast<int>(value);
}

} // namespace mnoc
