/**
 * @file
 * Grayscale PGM heatmap emission for the Figure 7 communication and
 * power-mode maps and the per-epoch source-power maps of
 * `mnocpt report`.
 */

#ifndef MNOC_COMMON_PGM_HH
#define MNOC_COMMON_PGM_HH

#include <string>

#include "common/matrix.hh"

namespace mnoc {

/**
 * Write a matrix as an 8-bit grayscale PGM image.
 *
 * Values are scaled so the matrix maximum maps to black (the paper's
 * "dark = high intensity" convention) and zero maps to white.  When
 * @p log_scale is set, values are log-compressed first, which matches
 * how heavy-tailed communication matrices are usually rendered.
 *
 * The stream is flushed and checked after the pixel data, so a full
 * disk is a fatal error naming the path, never a silently truncated
 * image.
 *
 * @param path Output file path.
 * @param data Matrix to render (one pixel per element).
 * @param log_scale Apply log1p compression before scaling.
 * @param comment Optional provenance stamp emitted as a PGM `#`
 *        comment line (newlines are replaced with spaces).
 */
void writePgmHeatmap(const std::string &path, const FlowMatrix &data,
                     bool log_scale = true,
                     const std::string &comment = "");

} // namespace mnoc

#endif // MNOC_COMMON_PGM_HH
