/**
 * @file
 * Grayscale PGM heatmap emission for the Figure 7 communication and
 * power-mode maps.
 */

#ifndef MNOC_COMMON_PGM_HH
#define MNOC_COMMON_PGM_HH

#include <string>

#include "common/matrix.hh"

namespace mnoc {

/**
 * Write a matrix as an 8-bit grayscale PGM image.
 *
 * Values are scaled so the matrix maximum maps to black (the paper's
 * "dark = high intensity" convention) and zero maps to white.  When
 * @p log_scale is set, values are log-compressed first, which matches
 * how heavy-tailed communication matrices are usually rendered.
 *
 * @param path Output file path.
 * @param data Matrix to render (one pixel per element).
 * @param log_scale Apply log1p compression before scaling.
 */
void writePgmHeatmap(const std::string &path, const FlowMatrix &data,
                     bool log_scale = true);

} // namespace mnoc

#endif // MNOC_COMMON_PGM_HH
