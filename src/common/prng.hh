/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** implementation is used instead of std::mt19937 so
 * that streams are cheap to fork (one independent stream per simulated
 * core) and results are reproducible across standard libraries.
 */

#ifndef MNOC_COMMON_PRNG_HH
#define MNOC_COMMON_PRNG_HH

#include <cstdint>

namespace mnoc {

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used with
 * the standard distributions, and offers convenience helpers for the
 * uniform draws the simulator needs.
 */
class Prng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Draw the next 64 random bits. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound); bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fork an independent stream (seeded from this stream). */
    Prng
    fork()
    {
        return Prng((*this)() ^ 0xa5a5a5a5deadbeefULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

/**
 * Seed of the @p index-th independent stream derived from @p base:
 * the index-th output of a splitmix64 generator seeded with @p base.
 * Parallel code seeds one Prng per task this way (never sharing a
 * stream across tasks), so results do not depend on the execution
 * order of the tasks; see DESIGN.md §9 for the seeding policy.
 */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace mnoc

#endif // MNOC_COMMON_PRNG_HH
