/**
 * @file
 * Epoch-anchored decision journal (the runtime flight recorder).
 *
 * The adaptive and degradation controllers make their decisions at
 * epoch boundaries, in serial sections of otherwise parallel runs.
 * The journal records those decisions -- phase-detector signatures,
 * candidate pricing, switches, trims, fault firings, and per-epoch
 * ledger reconciliation residuals -- as an append-only sequence of
 * fixed-width records so a run can be audited after the fact with
 * `mnocpt explain`.
 *
 * Determinism contract: every emission point lives in a serial epoch
 * loop, so the record sequence (and therefore the exported bytes) is
 * bit-identical at any MNOC_THREADS, enforced the same way as the
 * energy ledger.  Journal code never reads wall clocks: records are
 * anchored to epoch indices, not timestamps.
 *
 * Cost contract: with MNOC_JOURNAL unset the only per-event cost is
 * one relaxed atomic load behind journalEnabled() -- no allocation,
 * no lock, no record construction (call sites build the record inside
 * the enabled branch).  The journal_overhead section of bench_parallel
 * pins this.
 *
 * Binary format (little-endian, fixed width):
 *
 *     8 bytes   magic "MNOCJRNL"
 *     u32       version (kJournalVersion)
 *     u32       manifest stamp length L
 *     L bytes   manifest stamp JSON (caller-set; runtime verbs stamp
 *               the *trace's* embedded manifest so the bytes do not
 *               depend on the rendering process's pool size)
 *     N x 180B  records: u32 kind, u64 epoch, u32 numInts,
 *               u32 numReals, 4 x i64 ints, 16 x f64 reals
 *     8 bytes   end magic "MNOCJEND"
 *     u64       record count N
 *
 * loadJournal() fails fatally with the record kind and byte offset on
 * corruption, and distinguishes truncation from corruption, in the
 * same diagnostic style as the TraceReader.
 */

#ifndef MNOC_COMMON_JOURNAL_HH
#define MNOC_COMMON_JOURNAL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mnoc {

/** What a journal record describes.  Values are part of the binary
 *  format; append new kinds at the end and bump kJournalVersion. */
enum class JournalKind : std::uint32_t {
    PhaseSignature = 1, ///< phase-detector ring-distance signature
    PhaseChange = 2,    ///< detector distance crossed the threshold
    Retarget = 3,       ///< adaptive: challenger build targeted a slot
    Price = 4,          ///< adaptive: out-of-sample challenger pricing
    Switch = 5,         ///< adaptive: active design switched
    Retire = 6,         ///< adaptive: candidate retired after a switch
    Expire = 7,         ///< adaptive: stale unswitched candidate aged out
    Trim = 8,           ///< degradation: source power trimmed up
    Relax = 9,          ///< degradation: trim stepped back down
    Failover = 10,      ///< degradation: mode remapped off a dead source
    Restore = 11,       ///< degradation: mode restored to its origin
    Collapse = 12,      ///< degradation: mode collapsed out of the topo
    FaultStart = 13,    ///< fault-timeline event became active
    FaultEnd = 14,      ///< fault-timeline event ended
    EpochBoundary = 15, ///< simulator sealed a traffic epoch
    Reconcile = 16,     ///< per-epoch ledger-vs-log residual
    Margin = 17,        ///< degradation: end-of-epoch margin summary
};

/** Number of kinds; valid kind values are 1..kJournalKindCount. */
inline constexpr std::uint32_t kJournalKindCount = 17;

/** Stable lower_snake name of a kind (used in JSONL and explain). */
const char *journalKindName(JournalKind kind);

/** One fixed-capacity journal record.  Plain value type: call sites
 *  build one on the stack inside a journalEnabled() branch and hand
 *  it to Journal::record(); nothing here allocates. */
struct JournalRecord
{
    static constexpr std::size_t kMaxInts = 4;
    static constexpr std::size_t kMaxReals = 16;

    JournalKind kind = JournalKind::PhaseSignature;
    std::uint64_t epoch = 0;
    std::uint32_t numInts = 0;
    std::uint32_t numReals = 0;
    std::array<std::int64_t, kMaxInts> ints{};
    std::array<double, kMaxReals> reals{};

    JournalRecord() = default;
    JournalRecord(JournalKind k, std::uint64_t e) : kind(k), epoch(e) {}

    JournalRecord &addInt(std::int64_t v);
    JournalRecord &addReal(double v);
};

/** Serialized size of one record in the binary format. */
inline constexpr std::size_t kJournalRecordBytes = 180;

/** Binary format version written by this build. */
inline constexpr std::uint32_t kJournalVersion = 1;

/** True when MNOC_JOURNAL asks for a journal.  One relaxed atomic
 *  load; this is the only thing the hot path pays when recording is
 *  off. */
bool journalEnabled();

/** Process-wide journal sink (mirrors the SpanRecorder pattern).
 *  record() appends under a mutex; all emission points run in serial
 *  epoch loops, so the order is deterministic regardless of pool
 *  size. */
class Journal
{
  public:
    /** The shared journal.  First use arms an atexit hook that writes
     *  the binary journal to exportPath() when MNOC_JOURNAL names a
     *  destination. */
    static Journal &global();

    /** Export destination: MNOC_JOURNAL's path, or the default
     *  "mnoc_journal.mjrn" when the knob is just "1".  Empty when the
     *  knob is off. */
    static std::string exportPath();

    /** Override the knob (tests). */
    static void setEnabled(bool enabled);

    /** Append one record.  Call sites must guard with
     *  journalEnabled() so the disabled path never reaches here. */
    void record(const JournalRecord &rec);

    /** Stamp the manifest JSON embedded in the binary header.  The
     *  runtime verbs stamp the *trace's* manifest so journal bytes do
     *  not depend on MNOC_THREADS of the recording process. */
    void setManifest(const std::string &manifest_json);

    /** Serialize header + records + end marker to a byte string. */
    std::string toBinary() const;

    /** Write toBinary() to @p path through the FileWriter choke
     *  point. */
    void writeFile(const std::string &path) const;

    /** Snapshot of the records so far (tests, explain-on-self). */
    std::vector<JournalRecord> snapshot() const;

    std::size_t size() const;

    /** Drop all records and the manifest stamp (tests). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::vector<JournalRecord> records_;
    std::string manifestJson_;
};

/** Incremental binary journal writer for rendering pipelines that
 *  stream records without staging them in a Journal.  Must be
 *  close()d; the destructor only warns (mnoc-analyze's
 *  unclosed-writer rule covers this type). */
class JournalWriter
{
  public:
    JournalWriter(const std::string &path, const std::string &manifest_json);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    void append(const JournalRecord &rec);

    /** Write the end marker and flush; fatal on I/O failure. */
    void close();

  private:
    std::string path_;
    std::string buffer_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** A journal loaded back from disk. */
struct JournalFile
{
    std::string manifestJson; ///< stamp from the header, verbatim
    std::vector<JournalRecord> records;
};

/** Parse a binary journal.  Fatal with the file, the record kind
 *  where known, and the byte offset on any malformation; truncation
 *  and corruption produce distinct messages.  The result carries the
 *  full record sequence -- discarding it is always a bug (enforced by
 *  mnoc-analyze's discarded-result rule). */
[[nodiscard]] JournalFile loadJournal(const std::string &path);

/** Render a journal as JSONL: one object per record with per-kind
 *  field names, preceded by a manifest line.  Deterministic. */
std::string journalToJsonl(const JournalFile &file);

/** One-line human rendering of a record (shared by explain's
 *  markdown narrative and timeline CSV). */
std::string journalRecordDetail(const JournalRecord &rec);

/** Render the `mnocpt explain` markdown narrative. */
std::string renderExplainMarkdown(const JournalFile &file);

/** Render the `mnocpt explain` timeline CSV (stamp comment row,
 *  header, one row per record). */
std::string renderExplainTimelineCsv(const JournalFile &file);

/** Render the Chrome-trace overlay: counter ("C") and instant ("i")
 *  events keyed by epoch.  Composes with MNOC_TRACE_SPANS output --
 *  `mnocpt profile` skips non-"X" phases. */
std::string renderExplainTrace(const JournalFile &file);

} // namespace mnoc

#endif // MNOC_COMMON_JOURNAL_HH
