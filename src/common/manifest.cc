#include "common/manifest.hh"

#include <cstdlib>
#include <sstream>

#include "common/json.hh"
#include "common/thread_pool.hh"

#ifndef MNOC_GIT_SHA
#define MNOC_GIT_SHA "unknown"
#endif

namespace mnoc {

namespace {

/** Environment knobs worth recording, in the order they are
 *  emitted. */
constexpr const char *kKnobs[] = {
    "MNOC_THREADS",     "MNOC_METRICS",   "MNOC_TRACE_SPANS",
    "MNOC_BENCH_CORES", "MNOC_BENCH_OPS", "MNOC_BENCH_DIR",
    "MNOC_FAULTS",      "MNOC_FAULT_SEED",
};

bool
needsEncoding(char ch)
{
    auto byte = static_cast<unsigned char>(ch);
    return byte <= 0x20 || byte == 0x7f || ch == '%';
}

int
hexValue(char ch)
{
    if (ch >= '0' && ch <= '9')
        return ch - '0';
    if (ch >= 'a' && ch <= 'f')
        return ch - 'a' + 10;
    if (ch >= 'A' && ch <= 'F')
        return ch - 'A' + 10;
    return -1;
}

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hexDigest(std::uint64_t value)
{
    const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

RunManifest
currentManifest(std::uint64_t seed, const std::string &config_digest)
{
    RunManifest manifest;
    manifest.seed = seed;
    manifest.gitSha = MNOC_GIT_SHA;
    manifest.threads = ThreadPool::configuredThreads();
    manifest.configDigest = config_digest;
    for (const char *knob : kKnobs) {
        const char *value = std::getenv(knob);
        if (value != nullptr)
            manifest.env.emplace_back(knob, value);
    }
    return manifest;
}

std::string
encodeManifestValue(const std::string &value)
{
    const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(value.size());
    for (char ch : value) {
        if (needsEncoding(ch)) {
            auto byte = static_cast<unsigned char>(ch);
            out += '%';
            out += digits[(byte >> 4) & 0xf];
            out += digits[byte & 0xf];
        } else {
            out += ch;
        }
    }
    // An empty value still needs to be one token.
    return out.empty() ? std::string("%") : out;
}

std::string
decodeManifestValue(const std::string &text)
{
    if (text == "%")
        return "";
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '%' && i + 2 < text.size() &&
            hexValue(text[i + 1]) >= 0 && hexValue(text[i + 2]) >= 0) {
            int byte = hexValue(text[i + 1]) * 16 +
                       hexValue(text[i + 2]);
            out += static_cast<char>(byte);
            i += 2;
        } else {
            out += text[i];
        }
    }
    return out;
}

std::vector<std::string>
manifestLines(const RunManifest &manifest)
{
    std::vector<std::string> lines;
    lines.push_back("seed " + std::to_string(manifest.seed));
    lines.push_back("git " + encodeManifestValue(manifest.gitSha));
    lines.push_back("threads " + std::to_string(manifest.threads));
    lines.push_back("config " +
                    encodeManifestValue(manifest.configDigest));
    for (const auto &[name, value] : manifest.env)
        lines.push_back("env " + name + " " +
                        encodeManifestValue(value));
    return lines;
}

void
setManifestField(RunManifest &manifest, const std::string &key,
                 const std::string &a, const std::string &b)
{
    if (key == "seed")
        manifest.seed = std::strtoull(a.c_str(), nullptr, 10);
    else if (key == "git")
        manifest.gitSha = decodeManifestValue(a);
    else if (key == "threads")
        manifest.threads =
            static_cast<int>(std::strtol(a.c_str(), nullptr, 10));
    else if (key == "config")
        manifest.configDigest = decodeManifestValue(a);
    else if (key == "env")
        manifest.env.emplace_back(a, decodeManifestValue(b));
    // Unknown keys are skipped so newer writers stay readable.
}

bool
parseManifestEntry(const std::string &line, RunManifest &manifest)
{
    std::istringstream in(line);
    std::string key, a, b;
    if (!(in >> key >> a))
        return false;
    if (key == "env" && !(in >> b))
        return false;
    std::string extra;
    if (in >> extra)
        return false;
    setManifestField(manifest, key, a, b);
    return true;
}

std::string
manifestJson(const RunManifest &manifest)
{
    std::string out = "{\"seed\": " + std::to_string(manifest.seed);
    out += ", \"git\": \"" + escapeJson(manifest.gitSha) + "\"";
    out += ", \"threads\": " + std::to_string(manifest.threads);
    out += ", \"config\": \"" + escapeJson(manifest.configDigest) +
           "\"";
    out += ", \"env\": {";
    const char *sep = "";
    for (const auto &[name, value] : manifest.env) {
        out += sep;
        out += '"';
        out += escapeJson(name);
        out += "\": \"";
        out += escapeJson(value);
        out += '"';
        sep = ", ";
    }
    out += "}}";
    return out;
}

} // namespace mnoc
