#include "common/trace_span.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/metrics.hh"

namespace mnoc {

namespace {

/** Raw MNOC_TRACE_SPANS value ("" when unset). */
std::string
envValue()
{
    const char *value = std::getenv("MNOC_TRACE_SPANS");
    return value != nullptr ? std::string(value) : std::string();
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag(
        parsePathKnob(envValue().c_str(), "MNOC_TRACE_SPANS")
            .enabled);
    return flag;
}

std::uint64_t
steadyNowUs()
{
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now);
    return static_cast<std::uint64_t>(us.count());
}

void
exportGlobalAtExit()
{
    SpanRecorder::global().writeJson(SpanRecorder::exportPath());
}

/** Per-thread event buffer and id, registered lazily with the
 *  recorder (one mutex acquisition per thread, not per span). */
thread_local std::vector<SpanEvent> *tl_buffer = nullptr;
thread_local int tl_tid = 0;

} // namespace

bool
spansEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

SpanRecorder::SpanRecorder() : epochUs_(steadyNowUs()) {}

SpanRecorder &
SpanRecorder::global()
{
    static SpanRecorder *instance = [] {
        auto *recorder = new SpanRecorder();
        if (!exportPath().empty())
            std::atexit(exportGlobalAtExit);
        return recorder;
    }();
    return *instance;
}

void
SpanRecorder::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

std::string
SpanRecorder::exportPath()
{
    PathKnob knob =
        parsePathKnob(envValue().c_str(), "MNOC_TRACE_SPANS");
    if (!knob.enabled)
        return "";
    return knob.path.empty() ? "mnoc_spans.json" : knob.path;
}

std::uint64_t
SpanRecorder::nowUs() const
{
    return steadyNowUs() - epochUs_;
}

std::vector<SpanEvent> &
SpanRecorder::threadBuffer()
{
    if (tl_buffer == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::make_unique<std::vector<SpanEvent>>());
        tl_tid = static_cast<int>(buffers_.size());
        tl_buffer = buffers_.back().get();
    }
    return *tl_buffer;
}

void
SpanRecorder::record(SpanEvent event)
{
    std::vector<SpanEvent> &buffer = threadBuffer();
    event.tid = tl_tid;
    buffer.push_back(std::move(event));
}

std::vector<SpanEvent>
SpanRecorder::events() const
{
    std::vector<SpanEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_)
            out.insert(out.end(), buffer->begin(), buffer->end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         return std::tie(a.startUs, a.tid, a.name) <
                                std::tie(b.startUs, b.tid, b.name);
                     });
    return out;
}

std::string
SpanRecorder::toJson() const
{
    std::string out = "{\n  \"traceEvents\": [";
    const char *sep = "";
    for (const SpanEvent &event : events()) {
        out += sep;
        out += "\n    {\"name\": \"" + escapeJson(event.name) +
               "\", \"cat\": \"" + escapeJson(event.category) +
               "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " +
               std::to_string(event.tid) +
               ", \"ts\": " + std::to_string(event.startUs) +
               ", \"dur\": " + std::to_string(event.durationUs) + "}";
        sep = ",";
    }
    if (*sep != '\0')
        out += "\n  ";
    out += "],\n  \"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

void
SpanRecorder::writeJson(const std::string &path) const
{
    FileWriter writer(path);
    writer.stream() << toJson();
    writer.close();
}

namespace {

/** Locate the value after `"key":` inside one event object; returns
 *  npos when the key is absent. */
std::size_t
valuePos(const std::string &obj, const std::string &key)
{
    std::size_t at = obj.find("\"" + key + "\"");
    if (at == std::string::npos)
        return at;
    at = obj.find(':', at + key.size() + 2);
    if (at == std::string::npos)
        return at;
    ++at;
    while (at < obj.size() &&
           (obj[at] == ' ' || obj[at] == '\t' || obj[at] == '\n'))
        ++at;
    return at;
}

/** Extract a string field, undoing the common JSON escapes. */
std::string
extractString(const std::string &obj, const std::string &key)
{
    std::size_t at = valuePos(obj, key);
    if (at == std::string::npos || at >= obj.size() ||
        obj[at] != '"')
        return "";
    std::string out;
    for (std::size_t i = at + 1; i < obj.size(); ++i) {
        char c = obj[i];
        if (c == '"')
            break;
        if (c == '\\' && i + 1 < obj.size()) {
            char next = obj[++i];
            switch (next) {
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              default: out += next; break;
            }
            continue;
        }
        out += c;
    }
    return out;
}

/** Extract a non-negative integer field; @p found reports whether
 *  the key was present with a numeric value. */
std::uint64_t
extractUint(const std::string &obj, const std::string &key,
            bool &found)
{
    found = false;
    std::size_t at = valuePos(obj, key);
    if (at == std::string::npos)
        return 0;
    std::uint64_t out = 0;
    bool any = false;
    for (std::size_t i = at; i < obj.size(); ++i) {
        char c = obj[i];
        if (c < '0' || c > '9') {
            if (c == '.') // fractional microseconds: truncate
                break;
            if (!any)
                return 0;
            break;
        }
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
        any = true;
    }
    found = any;
    return out;
}

} // namespace

std::vector<SpanEvent>
parseSpanJson(const std::string &text, const std::string &path)
{
    const std::string where = path.empty() ? "span input" : path;
    std::size_t array_at = text.find("\"traceEvents\"");
    fatalIf(array_at == std::string::npos,
            where + ": span file has no traceEvents array");

    // Walk the document, collecting the depth-2 objects (the events
    // inside the traceEvents array) while respecting strings so a
    // brace inside a span name cannot derail the scan.  Top-level
    // keys are tracked so an unknown trailer section from a newer
    // writer is named with its byte offset rather than silently
    // consumed (or worse, its nested objects mistaken for events).
    std::vector<SpanEvent> out;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t start = 0;
    std::size_t string_start = 0;
    int string_depth = 0;
    std::string section;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"') {
                in_string = false;
                if (string_depth == 1) {
                    // A root-level string followed by ':' names a
                    // section of the document.
                    std::size_t after = i + 1;
                    while (after < text.size() &&
                           (text[after] == ' ' ||
                            text[after] == '\n' ||
                            text[after] == '\t' ||
                            text[after] == '\r'))
                        ++after;
                    if (after < text.size() && text[after] == ':') {
                        section = text.substr(
                            string_start + 1, i - string_start - 1);
                        fatalIf(section != "traceEvents" &&
                                    section != "displayTimeUnit",
                                where + ": unknown span-file "
                                        "section \"" +
                                    section + "\" at byte " +
                                    std::to_string(string_start));
                    }
                }
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
            string_start = i;
            string_depth = depth;
        } else if (c == '{') {
            if (++depth == 2)
                start = i;
        } else if (c == '}') {
            if (depth-- != 2 || section != "traceEvents")
                continue;
            std::string obj = text.substr(start, i - start + 1);
            std::string ph = extractString(obj, "ph");
            if (!ph.empty() && ph != "X")
                continue; // only complete events carry a duration
            bool has_ts = false, has_dur = false, has_tid = false;
            SpanEvent event;
            event.startUs = extractUint(obj, "ts", has_ts);
            event.durationUs = extractUint(obj, "dur", has_dur);
            event.tid = static_cast<int>(
                extractUint(obj, "tid", has_tid));
            if (!has_ts || !has_dur)
                continue;
            event.name = extractString(obj, "name");
            event.category = extractString(obj, "cat");
            if (event.name.empty())
                continue;
            out.push_back(std::move(event));
        }
    }
    return out;
}

std::vector<ProfileRow>
profileSpans(std::vector<SpanEvent> events)
{
    // Parents first at equal start times: a longer span at the same
    // timestamp encloses the shorter one (RAII nesting).
    std::stable_sort(
        events.begin(), events.end(),
        [](const SpanEvent &a, const SpanEvent &b) {
            return std::tie(a.tid, a.startUs) <
                       std::tie(b.tid, b.startUs) ||
                   (a.tid == b.tid && a.startUs == b.startUs &&
                    a.durationUs > b.durationUs);
        });

    // Exclusive time: walk each thread's spans with an open-span
    // stack, charging every span's duration against its innermost
    // enclosing parent.
    std::vector<std::int64_t> exclusive(events.size());
    struct Open
    {
        std::uint64_t end;
        std::size_t idx;
    };
    std::vector<Open> stack;
    int current_tid = 0;
    bool first = true;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const SpanEvent &event = events[i];
        exclusive[i] = static_cast<std::int64_t>(event.durationUs);
        if (first || event.tid != current_tid) {
            stack.clear();
            current_tid = event.tid;
            first = false;
        }
        while (!stack.empty() &&
               stack.back().end <= event.startUs)
            stack.pop_back();
        if (!stack.empty())
            exclusive[stack.back().idx] -=
                static_cast<std::int64_t>(event.durationUs);
        stack.push_back(
            Open{event.startUs + event.durationUs, i});
    }

    std::map<std::string, ProfileRow> rows;
    for (std::size_t i = 0; i < events.size(); ++i) {
        ProfileRow &row = rows[events[i].name];
        row.name = events[i].name;
        row.calls += 1;
        row.inclusiveUs += events[i].durationUs;
        // Clamp: overlapping (non-nested) spans in a foreign trace
        // could otherwise drive the subtraction negative.
        row.exclusiveUs += static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, exclusive[i]));
    }

    std::vector<ProfileRow> out;
    out.reserve(rows.size());
    for (auto &[name, row] : rows)
        out.push_back(std::move(row));
    std::stable_sort(out.begin(), out.end(),
                     [](const ProfileRow &a, const ProfileRow &b) {
                         if (a.inclusiveUs != b.inclusiveUs)
                             return a.inclusiveUs > b.inclusiveUs;
                         return a.name < b.name;
                     });
    return out;
}

void
SpanRecorder::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &buffer : buffers_)
        buffer->clear();
}

TraceSpan::TraceSpan(std::string name, std::string category)
{
    if (!spansEnabled())
        return;
    name_ = std::move(name);
    category_ = std::move(category);
    startUs_ = SpanRecorder::global().nowUs();
    active_ = true;
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    SpanRecorder &recorder = SpanRecorder::global();
    SpanEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.startUs = startUs_;
    event.durationUs = recorder.nowUs() - startUs_;
    recorder.record(std::move(event));
}

} // namespace mnoc
