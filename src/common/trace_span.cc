#include "common/trace_span.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <tuple>

#include "common/json.hh"
#include "common/log.hh"

namespace mnoc {

namespace {

/** Raw MNOC_TRACE_SPANS value ("" when unset). */
std::string
envValue()
{
    const char *value = std::getenv("MNOC_TRACE_SPANS");
    return value != nullptr ? std::string(value) : std::string();
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag(!envValue().empty() &&
                                  envValue() != "0");
    return flag;
}

std::uint64_t
steadyNowUs()
{
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now);
    return static_cast<std::uint64_t>(us.count());
}

void
exportGlobalAtExit()
{
    SpanRecorder::global().writeJson(SpanRecorder::exportPath());
}

/** Per-thread event buffer and id, registered lazily with the
 *  recorder (one mutex acquisition per thread, not per span). */
thread_local std::vector<SpanEvent> *tl_buffer = nullptr;
thread_local int tl_tid = 0;

} // namespace

bool
spansEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

SpanRecorder::SpanRecorder() : epochUs_(steadyNowUs()) {}

SpanRecorder &
SpanRecorder::global()
{
    static SpanRecorder *instance = [] {
        auto *recorder = new SpanRecorder();
        if (!exportPath().empty())
            std::atexit(exportGlobalAtExit);
        return recorder;
    }();
    return *instance;
}

void
SpanRecorder::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

std::string
SpanRecorder::exportPath()
{
    std::string value = envValue();
    if (value.empty() || value == "0")
        return "";
    if (value == "1")
        return "mnoc_spans.json";
    return value;
}

std::uint64_t
SpanRecorder::nowUs() const
{
    return steadyNowUs() - epochUs_;
}

std::vector<SpanEvent> &
SpanRecorder::threadBuffer()
{
    if (tl_buffer == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::make_unique<std::vector<SpanEvent>>());
        tl_tid = static_cast<int>(buffers_.size());
        tl_buffer = buffers_.back().get();
    }
    return *tl_buffer;
}

void
SpanRecorder::record(SpanEvent event)
{
    std::vector<SpanEvent> &buffer = threadBuffer();
    event.tid = tl_tid;
    buffer.push_back(std::move(event));
}

std::vector<SpanEvent>
SpanRecorder::events() const
{
    std::vector<SpanEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_)
            out.insert(out.end(), buffer->begin(), buffer->end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         return std::tie(a.startUs, a.tid, a.name) <
                                std::tie(b.startUs, b.tid, b.name);
                     });
    return out;
}

std::string
SpanRecorder::toJson() const
{
    std::string out = "{\n  \"traceEvents\": [";
    const char *sep = "";
    for (const SpanEvent &event : events()) {
        out += sep;
        out += "\n    {\"name\": \"" + escapeJson(event.name) +
               "\", \"cat\": \"" + escapeJson(event.category) +
               "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " +
               std::to_string(event.tid) +
               ", \"ts\": " + std::to_string(event.startUs) +
               ", \"dur\": " + std::to_string(event.durationUs) + "}";
        sep = ",";
    }
    if (*sep != '\0')
        out += "\n  ";
    out += "],\n  \"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

void
SpanRecorder::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out.is_open(),
            "cannot open span export file: " + path);
    out << toJson();
    out.flush();
    fatalIf(!out.good(), "failed writing span export: " + path);
}

void
SpanRecorder::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &buffer : buffers_)
        buffer->clear();
}

TraceSpan::TraceSpan(std::string name, std::string category)
{
    if (!spansEnabled())
        return;
    name_ = std::move(name);
    category_ = std::move(category);
    startUs_ = SpanRecorder::global().nowUs();
    active_ = true;
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    SpanRecorder &recorder = SpanRecorder::global();
    SpanEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.startUs = startUs_;
    event.durationUs = recorder.nowUs() - startUs_;
    recorder.record(std::move(event));
}

} // namespace mnoc
