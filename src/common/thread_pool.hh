/**
 * @file
 * Fixed-size worker pool shared by every parallel path in the tree.
 *
 * All concurrency in this library goes through this pool (mnoc-lint's
 * raw-thread rule enforces it): the QAP multi-start solvers, the
 * Monte Carlo yield analyzer, and the bench harness submit tasks here
 * instead of spawning threads.  The pool never affects results --
 * parallel callers write to disjoint, index-addressed slots and
 * reduce in index order afterwards, so every result is bit-identical
 * to a serial run at any thread count (see DESIGN.md §9).
 *
 * The default pool size is the hardware concurrency; the MNOC_THREADS
 * environment variable overrides it (MNOC_THREADS=1 gives the
 * pool-of-one, which runs every task inline on the caller with no
 * worker threads at all).
 */

#ifndef MNOC_COMMON_THREAD_POOL_HH
#define MNOC_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mnoc {

/**
 * Fixed-size worker pool with futures-based task submission.
 *
 * Tasks submitted from inside one of the pool's own workers run
 * inline on the submitting worker instead of being queued, so nested
 * submission (a pool task that itself calls parallelFor) can never
 * deadlock on a fixed worker count.
 */
class ThreadPool
{
  public:
    /** @param num_threads Worker count (>= 1); 1 means inline. */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return numThreads_; }

    /**
     * Submit a callable; the returned future carries its result, or
     * rethrows the exception it raised.  Runs inline (and returns an
     * already-ready future) on a pool-of-one or when called from one
     * of this pool's workers.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        if (runsInline()) {
            (*task)();
            return future;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        condition_.notify_one();
        return future;
    }

    /**
     * Run @p body(i) for every i in [0, n) and block until all calls
     * finish.  Iterations are grouped into at most numThreads()
     * contiguous chunks; callers must only write to disjoint slots
     * indexed by i (the determinism contract of DESIGN.md §9).  If
     * any iteration throws, the exception of the lowest-index chunk
     * is rethrown once every chunk has finished -- independent of
     * scheduling order.
     */
    void parallelFor(long long n,
                     const std::function<void(long long)> &body);

    /** The process-wide pool, sized by configuredThreads() on first
     *  use. */
    static ThreadPool &global();

    /** MNOC_THREADS when set to a valid count, else the hardware
     *  concurrency (at least 1). */
    static int configuredThreads();

    /** Parse a thread-count override; returns @p fallback on null
     *  or empty text and fatals (naming the offending value) on
     *  garbage, zero, negative or out-of-range input. */
    static int parseThreads(const char *text, int fallback);

  private:
    void workerLoop();
    /** True when tasks must run on the caller: pool-of-one, or the
     *  caller is one of this pool's own workers. */
    bool runsInline() const;

    int numThreads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable condition_;
    bool stop_ = false;
};

} // namespace mnoc

#endif // MNOC_COMMON_THREAD_POOL_HH
