/**
 * @file
 * Units and compile-time unit safety for the optical power models.
 *
 * All optical powers are carried in watts; losses are expressed in
 * decibels in configuration structs and converted to linear ratios at
 * the model boundary.  A loss of x dB corresponds to an attenuation
 * factor of 10^(x/10) >= 1 (power divided by the factor).
 *
 * The strong types below make dB-vs-linear and uW-vs-W mix-ups a
 * compile error instead of a silently corrupted Eq. 1 / Eq. 2 result:
 *
 *  - DecibelLoss   a signed dB quantity (losses, margins, skews)
 *  - LinearFactor  a dimensionless power ratio (transmission >= 0)
 *  - WattPower     an absolute optical/electrical power in watts
 *  - Meters        a physical length
 *
 * Every wrapper is a zero-overhead single double with explicit
 * construction and explicit, named conversions
 * (DecibelLoss::toTransmission() -> LinearFactor, WattPower::fromDbm,
 * ...).  Raw 10^(x/10) math must not appear outside this header;
 * tools/mnoc_lint.py enforces that invariant.
 */

#ifndef MNOC_COMMON_UNITS_HH
#define MNOC_COMMON_UNITS_HH

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/log.hh"

namespace mnoc {

/** One microwatt in watts. */
inline constexpr double microWatt = 1e-6;
/** One milliwatt in watts. */
inline constexpr double milliWatt = 1e-3;
/** One centimeter in meters. */
inline constexpr double centimeter = 1e-2;
/** One millimeter in meters. */
inline constexpr double millimeter = 1e-3;
/** One nanosecond in seconds. */
inline constexpr double nanosecond = 1e-9;
/** One gigahertz in hertz. */
inline constexpr double gigahertz = 1e9;

/**
 * Convert a loss in dB to the linear attenuation factor (>= 1 for
 * positive dB).  Power after the loss is power_before / factor.
 *
 * @param db Loss in decibels.
 * @return Linear attenuation factor 10^(db/10).
 */
inline double
dbToAttenuation(double db)
{
    return std::pow(10.0, db / 10.0);
}

/**
 * Convert a loss in dB to the linear transmission factor (<= 1 for
 * positive dB).  Power after the loss is power_before * factor.
 *
 * @param db Loss in decibels.
 * @return Linear transmission factor 10^(-db/10).
 */
inline double
dbToTransmission(double db)
{
    return std::pow(10.0, -db / 10.0);
}

/**
 * Convert a linear power ratio to decibels.
 *
 * @param ratio Power ratio; must be positive.
 * @return 10*log10(ratio).
 */
inline double
ratioToDb(double ratio)
{
    panicIf(ratio <= 0.0, "ratioToDb requires a positive ratio");
    return 10.0 * std::log10(ratio);
}

class LinearFactor;

/**
 * A signed quantity in decibels.  Positive values are losses (or
 * margins above a threshold); negative values are gains (or levels
 * below a threshold).  Purely additive: two DecibelLoss values add and
 * subtract, and scale by dimensionless doubles, but never multiply
 * each other.
 */
class DecibelLoss
{
  public:
    constexpr DecibelLoss() = default;
    /** Wrap a raw dB value; the only way in from a bare double. */
    explicit constexpr DecibelLoss(double db) : db_(db) {}

    /** The raw value in dB. */
    constexpr double dB() const { return db_; }

    /** 10^(-dB/10): multiply a power by this to apply the loss. */
    LinearFactor toTransmission() const;
    /** 10^(+dB/10): divide a power by this to apply the loss. */
    LinearFactor toAttenuation() const;

    constexpr DecibelLoss operator-() const { return DecibelLoss(-db_); }
    constexpr DecibelLoss
    operator+(DecibelLoss other) const
    {
        return DecibelLoss(db_ + other.db_);
    }
    constexpr DecibelLoss
    operator-(DecibelLoss other) const
    {
        return DecibelLoss(db_ - other.db_);
    }
    constexpr DecibelLoss &
    operator+=(DecibelLoss other)
    {
        db_ += other.db_;
        return *this;
    }
    constexpr DecibelLoss &
    operator-=(DecibelLoss other)
    {
        db_ -= other.db_;
        return *this;
    }
    constexpr DecibelLoss
    operator*(double scale) const
    {
        return DecibelLoss(db_ * scale);
    }
    constexpr DecibelLoss
    operator/(double scale) const
    {
        return DecibelLoss(db_ / scale);
    }
    constexpr DecibelLoss &
    operator*=(double scale)
    {
        db_ *= scale;
        return *this;
    }
    friend constexpr DecibelLoss
    operator*(double scale, DecibelLoss x)
    {
        return DecibelLoss(scale * x.db_);
    }
    constexpr auto operator<=>(const DecibelLoss &) const = default;

  private:
    double db_ = 0.0;
};

/**
 * A dimensionless linear power ratio: transmissions (<= 1 for lossy
 * elements), attenuations (>= 1), and splitter shares.  Factors
 * compose multiplicatively.
 */
class LinearFactor
{
  public:
    constexpr LinearFactor() = default;
    /** Wrap a raw ratio; must be non-negative where it models power. */
    explicit constexpr LinearFactor(double value) : value_(value) {}

    /** The raw dimensionless ratio. */
    constexpr double value() const { return value_; }

    /** 10*log10(value) as a signed dB quantity; value must be > 0. */
    DecibelLoss
    toDb() const
    {
        return DecibelLoss(ratioToDb(value_));
    }

    constexpr LinearFactor
    operator*(LinearFactor other) const
    {
        return LinearFactor(value_ * other.value_);
    }
    constexpr LinearFactor
    operator/(LinearFactor other) const
    {
        return LinearFactor(value_ / other.value_);
    }
    constexpr LinearFactor &
    operator*=(LinearFactor other)
    {
        value_ *= other.value_;
        return *this;
    }
    constexpr LinearFactor
    inverse() const
    {
        return LinearFactor(1.0 / value_);
    }
    constexpr auto operator<=>(const LinearFactor &) const = default;

  private:
    double value_ = 1.0;
};

inline LinearFactor
DecibelLoss::toTransmission() const
{
    return LinearFactor(dbToTransmission(db_));
}

inline LinearFactor
DecibelLoss::toAttenuation() const
{
    return LinearFactor(dbToAttenuation(db_));
}

/**
 * An absolute power in watts.  Powers add, scale by dimensionless
 * doubles and LinearFactors, and divide into dimensionless ratios;
 * they never multiply each other.
 */
class WattPower
{
  public:
    constexpr WattPower() = default;
    /** Wrap a raw power in watts; the only way in from a bare double. */
    explicit constexpr WattPower(double watts) : watts_(watts) {}

    /** Construct from a dBm level (0 dBm = 1 mW). */
    static WattPower
    fromDbm(double dbm)
    {
        return WattPower(milliWatt * dbToAttenuation(dbm));
    }

    /** The raw value in watts. */
    constexpr double watts() const { return watts_; }
    /** The raw value in microwatts. */
    constexpr double microwatts() const { return watts_ / microWatt; }
    /** The level in dBm; power must be positive. */
    double toDbm() const { return ratioToDb(watts_ / milliWatt); }

    constexpr WattPower
    operator+(WattPower other) const
    {
        return WattPower(watts_ + other.watts_);
    }
    constexpr WattPower
    operator-(WattPower other) const
    {
        return WattPower(watts_ - other.watts_);
    }
    constexpr WattPower &
    operator+=(WattPower other)
    {
        watts_ += other.watts_;
        return *this;
    }
    constexpr WattPower &
    operator-=(WattPower other)
    {
        watts_ -= other.watts_;
        return *this;
    }
    constexpr WattPower
    operator*(double scale) const
    {
        return WattPower(watts_ * scale);
    }
    friend constexpr WattPower
    operator*(double scale, WattPower p)
    {
        return WattPower(scale * p.watts_);
    }
    constexpr WattPower
    operator/(double scale) const
    {
        return WattPower(watts_ / scale);
    }
    /** Ratio of two powers is dimensionless. */
    constexpr double
    operator/(WattPower other) const
    {
        return watts_ / other.watts_;
    }
    /** Apply a transmission: power * factor. */
    constexpr WattPower
    operator*(LinearFactor f) const
    {
        return WattPower(watts_ * f.value());
    }
    friend constexpr WattPower
    operator*(LinearFactor f, WattPower p)
    {
        return WattPower(f.value() * p.watts_);
    }
    /** Apply an attenuation: power / factor. */
    constexpr WattPower
    operator/(LinearFactor f) const
    {
        return WattPower(watts_ / f.value());
    }
    constexpr auto operator<=>(const WattPower &) const = default;

  private:
    double watts_ = 0.0;
};

/** A physical length in meters. */
class Meters
{
  public:
    constexpr Meters() = default;
    /** Wrap a raw length in meters. */
    explicit constexpr Meters(double meters) : meters_(meters) {}

    /** The raw value in meters. */
    constexpr double meters() const { return meters_; }
    /** The raw value in centimeters. */
    constexpr double centimeters() const { return meters_ / centimeter; }

    constexpr Meters
    operator+(Meters other) const
    {
        return Meters(meters_ + other.meters_);
    }
    constexpr Meters
    operator-(Meters other) const
    {
        return Meters(meters_ - other.meters_);
    }
    constexpr Meters
    operator*(double scale) const
    {
        return Meters(meters_ * scale);
    }
    friend constexpr Meters
    operator*(double scale, Meters m)
    {
        return Meters(scale * m.meters_);
    }
    constexpr Meters
    operator/(double scale) const
    {
        return Meters(meters_ / scale);
    }
    /** Ratio of two lengths is dimensionless. */
    constexpr double
    operator/(Meters other) const
    {
        return meters_ / other.meters_;
    }
    constexpr auto operator<=>(const Meters &) const = default;

  private:
    double meters_ = 0.0;
};

/** Absolute length (for |a - b| waveguide distances). */
inline Meters
abs(Meters m)
{
    return Meters(std::fabs(m.meters()));
}

/** Diagnostic printing (log messages, test failure output). */
inline std::ostream &
operator<<(std::ostream &os, DecibelLoss loss)
{
    return os << loss.dB() << " dB";
}

inline std::ostream &
operator<<(std::ostream &os, LinearFactor factor)
{
    return os << factor.value() << "x";
}

inline std::ostream &
operator<<(std::ostream &os, WattPower power)
{
    return os << power.watts() << " W";
}

inline std::ostream &
operator<<(std::ostream &os, Meters length)
{
    return os << length.meters() << " m";
}

namespace unit_literals {

/** 3.5_dB -> DecibelLoss(3.5). */
constexpr DecibelLoss operator""_dB(long double db)
{
    return DecibelLoss(static_cast<double>(db));
}
constexpr DecibelLoss operator""_dB(unsigned long long db)
{
    return DecibelLoss(static_cast<double>(db));
}
/** 2.0_W -> WattPower(2.0). */
constexpr WattPower operator""_W(long double w)
{
    return WattPower(static_cast<double>(w));
}
constexpr WattPower operator""_W(unsigned long long w)
{
    return WattPower(static_cast<double>(w));
}
/** 10_uW -> WattPower(10e-6). */
constexpr WattPower operator""_uW(long double w)
{
    return WattPower(static_cast<double>(w) * microWatt);
}
constexpr WattPower operator""_uW(unsigned long long w)
{
    return WattPower(static_cast<double>(w) * microWatt);
}
/** 5_mW -> WattPower(5e-3). */
constexpr WattPower operator""_mW(long double w)
{
    return WattPower(static_cast<double>(w) * milliWatt);
}
constexpr WattPower operator""_mW(unsigned long long w)
{
    return WattPower(static_cast<double>(w) * milliWatt);
}
/** 0.18_m -> Meters(0.18). */
constexpr Meters operator""_m(long double m)
{
    return Meters(static_cast<double>(m));
}
constexpr Meters operator""_m(unsigned long long m)
{
    return Meters(static_cast<double>(m));
}
/** 18_cm -> Meters(0.18). */
constexpr Meters operator""_cm(long double m)
{
    return Meters(static_cast<double>(m) * centimeter);
}
constexpr Meters operator""_cm(unsigned long long m)
{
    return Meters(static_cast<double>(m) * centimeter);
}

} // namespace unit_literals

/**
 * Relative comparison of two doubles.
 *
 * @param a First value.
 * @param b Second value.
 * @param rel_tol Allowed relative error.
 * @return true when |a-b| <= rel_tol * max(|a|,|b|, 1e-300).
 */
inline bool
nearlyEqual(double a, double b, double rel_tol = 1e-9)
{
    double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
    return std::fabs(a - b) <= rel_tol * scale;
}

/** nearlyEqual over two powers. */
inline bool
nearlyEqual(WattPower a, WattPower b, double rel_tol = 1e-9)
{
    return nearlyEqual(a.watts(), b.watts(), rel_tol);
}

} // namespace mnoc

#endif // MNOC_COMMON_UNITS_HH
