/**
 * @file
 * Unit conversions used throughout the optical power models.
 *
 * All optical powers are carried in watts; losses are expressed in
 * decibels in configuration structs and converted to linear ratios at
 * the model boundary.  A loss of x dB corresponds to an attenuation
 * factor of 10^(x/10) >= 1 (power divided by the factor).
 */

#ifndef MNOC_COMMON_UNITS_HH
#define MNOC_COMMON_UNITS_HH

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace mnoc {

/** One microwatt in watts. */
inline constexpr double microWatt = 1e-6;
/** One milliwatt in watts. */
inline constexpr double milliWatt = 1e-3;
/** One centimeter in meters. */
inline constexpr double centimeter = 1e-2;
/** One millimeter in meters. */
inline constexpr double millimeter = 1e-3;
/** One nanosecond in seconds. */
inline constexpr double nanosecond = 1e-9;
/** One gigahertz in hertz. */
inline constexpr double gigahertz = 1e9;

/**
 * Convert a loss in dB to the linear attenuation factor (>= 1 for
 * positive dB).  Power after the loss is power_before / factor.
 *
 * @param db Loss in decibels.
 * @return Linear attenuation factor 10^(db/10).
 */
inline double
dbToAttenuation(double db)
{
    return std::pow(10.0, db / 10.0);
}

/**
 * Convert a loss in dB to the linear transmission factor (<= 1 for
 * positive dB).  Power after the loss is power_before * factor.
 *
 * @param db Loss in decibels.
 * @return Linear transmission factor 10^(-db/10).
 */
inline double
dbToTransmission(double db)
{
    return std::pow(10.0, -db / 10.0);
}

/**
 * Convert a linear power ratio to decibels.
 *
 * @param ratio Power ratio; must be positive.
 * @return 10*log10(ratio).
 */
inline double
ratioToDb(double ratio)
{
    panicIf(ratio <= 0.0, "ratioToDb requires a positive ratio");
    return 10.0 * std::log10(ratio);
}

/**
 * Relative comparison of two doubles.
 *
 * @param a First value.
 * @param b Second value.
 * @param rel_tol Allowed relative error.
 * @return true when |a-b| <= rel_tol * max(|a|,|b|, 1e-300).
 */
inline bool
nearlyEqual(double a, double b, double rel_tol = 1e-9)
{
    double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
    return std::fabs(a - b) <= rel_tol * scale;
}

} // namespace mnoc

#endif // MNOC_COMMON_UNITS_HH
