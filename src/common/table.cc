#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mnoc {

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    for (const auto &row : rows_) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto &row = rows_[r];
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t w : widths)
                total += w + 2;
            os << std::string(total, '-') << "\n";
        }
    }
}

} // namespace mnoc
