/**
 * @file
 * Summary statistics helpers (the paper reports harmonic means for
 * normalized power and arithmetic means for absolute watts).
 */

#ifndef MNOC_COMMON_STATS_HH
#define MNOC_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"

namespace mnoc {

/** Arithmetic mean; fatal on an empty sample. */
inline double
mean(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "mean of empty sample");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Harmonic mean; fatal on empty or non-positive samples. */
inline double
harmonicMean(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "harmonic mean of empty sample");
    double inv_sum = 0.0;
    for (double x : xs) {
        fatalIf(x <= 0.0, "harmonic mean requires positive samples");
        inv_sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv_sum;
}

/** Geometric mean; fatal on empty or non-positive samples. */
inline double
geometricMean(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "geometric mean of empty sample");
    double log_sum = 0.0;
    for (double x : xs) {
        fatalIf(x <= 0.0, "geometric mean requires positive samples");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Population standard deviation. */
inline double
stddev(const std::vector<double> &xs)
{
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

/** Minimum element; fatal on an empty sample. */
inline double
minOf(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "min of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

/** Maximum element; fatal on an empty sample. */
inline double
maxOf(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "max of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

} // namespace mnoc

#endif // MNOC_COMMON_STATS_HH
