#include "common/csv.hh"

#include <sstream>

#include "common/log.hh"

namespace mnoc {

CsvWriter::CsvWriter(const std::string &path)
    : writer_(path)
{
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    auto &out = writer_.stream();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ',';
        out << escape(cells[i]);
    }
    out << '\n';
    writer_.failIfBad();
}

CsvWriter &
CsvWriter::cell(const std::string &value)
{
    pending_.push_back(value);
    return *this;
}

CsvWriter &
CsvWriter::cell(double value)
{
    std::ostringstream ss;
    ss.precision(10);
    ss << value;
    pending_.push_back(ss.str());
    return *this;
}

CsvWriter &
CsvWriter::cell(long long value)
{
    pending_.push_back(std::to_string(value));
    return *this;
}

void
CsvWriter::endRow()
{
    writeRow(pending_);
    pending_.clear();
}

void
CsvWriter::close()
{
    writer_.close();
}

std::string
CsvWriter::escape(const std::string &raw)
{
    bool needs_quote = raw.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return raw;
    std::string quoted = "\"";
    for (char c : raw) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace mnoc
