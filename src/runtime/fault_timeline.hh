/**
 * @file
 * Seeded, deterministic schedule of runtime fault events.
 *
 * PR 1's DeviceVariation captures *fabrication-time* variation: one
 * frozen draw per die.  A deployed crossbar also degrades while
 * traffic flows -- ring heaters drift with the thermal environment,
 * QD LED output droops with age, evanescent splitter ratios creep,
 * receivers lose sensitivity, and a drive mode can die outright
 * (PROTEUS-style runtime faults; see PAPERS.md).  The FaultTimeline
 * turns a rate/magnitude spec plus a seed into a canonical, sorted
 * list of FaultEvents over the epochs of a traced run, and
 * stateAt(epoch) composes the events active in one epoch into a
 * RuntimeFaultState that layers *on top of* a base DeviceVariation.
 *
 * Determinism: event generation is a pure function of (spec,
 * num_nodes, num_modes, num_epochs, seed); composition is a pure
 * function of the event list.  The timeline never consults wall
 * clocks or global RNGs, so a faulted run replays bit-identically at
 * any MNOC_THREADS (DESIGN.md §9).
 */

#ifndef MNOC_RUNTIME_FAULT_TIMELINE_HH
#define MNOC_RUNTIME_FAULT_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "faults/variation.hh"

namespace mnoc::runtime {

/** The modeled classes of runtime degradation. */
enum class FaultKind
{
    /** Transient per-source ring thermal detuning: extra coupling
     *  loss ramping up and back down over a window of epochs. */
    ThermalDrift,
    /** Permanent relative QD LED output droop of one source. */
    LaserDroop,
    /** Permanent multiplicative creep of one node's splitter
     *  ratio on every waveguide that taps it. */
    SplitterAging,
    /** Permanent die-wide receiver-sensitivity loss (mIOP rises). */
    ReceiverDrift,
    /** Transient outage of one (source, mode) drive level; the
     *  controller must fail traffic over to a higher mode. */
    DeadMode,
};

/** Stable lower-case name used in CSVs and logs. */
const char *faultKindName(FaultKind kind);

/** One scheduled fault event. */
struct FaultEvent
{
    FaultKind kind = FaultKind::ThermalDrift;
    /** First epoch the event is active in. */
    std::size_t startEpoch = 0;
    /** One past the last active epoch (permanent events extend to
     *  the end of the run). */
    std::size_t endEpoch = 0;
    /** Affected source or tap node; -1 for die-wide events. */
    int node = -1;
    /** Affected drive mode (DeadMode only; -1 otherwise). */
    int mode = -1;
    /** Kind-specific magnitude: peak dB for ThermalDrift and
     *  ReceiverDrift, relative output loss for LaserDroop, relative
     *  ratio shift for SplitterAging, unused for DeadMode. */
    double magnitude = 0.0;
};

/**
 * Rates and magnitudes of the generated schedule.  Rates are
 * expected events per epoch over the whole die, so the event count
 * of a run scales with its length; magnitudes are per-event peaks.
 */
struct FaultTimelineSpec
{
    double thermalDriftRate = 0.10;
    double laserDroopRate = 0.05;
    double splitterAgingRate = 0.05;
    double receiverDriftRate = 0.03;
    double deadModeRate = 0.02;
    /** Peak per-source thermal coupling excursion. */
    DecibelLoss thermalDriftPeak{0.6};
    /** Length of a thermal ramp, in epochs. */
    std::size_t thermalDriftEpochs = 8;
    /** Relative LED output lost per droop event, in (0, 1). */
    double laserDroopStep = 0.04;
    /** Relative splitter-ratio shift per aging event. */
    double splitterAgingStep = 0.03;
    /** Die-wide mIOP rise per receiver-drift event. */
    DecibelLoss receiverDriftStep{0.15};
    /** Length of a dead-mode outage, in epochs. */
    std::size_t deadModeEpochs = 6;

    /** A copy with every rate multiplied by @p factor (0 disables
     *  event generation entirely). */
    FaultTimelineSpec scaled(double factor) const;

    /** Fatal on negative rates or out-of-range magnitudes. */
    void validate() const;
};

/**
 * The composed fault state of one epoch, applied on top of a base
 * DeviceVariation when replaying link budgets (the base draw gives
 * the as-fabricated die; this adds what the run did to it since).
 */
struct RuntimeFaultState
{
    /** Extra per-source coupling-loss skew from thermal drift. */
    std::vector<DecibelLoss> thermalSkew;
    /** Multiplicative per-source LED output derating, in (0, 1]. */
    std::vector<double> ledScale;
    /** Multiplicative per-node splitter-ratio aging scale. */
    std::vector<double> splitterAgeScale;
    /** Die-wide receiver-sensitivity loss (raises pmin). */
    DecibelLoss receiverSkew{0.0};
    /** Per-source bitmask of dead drive modes (bit m set = source
     *  cannot drive mode m this epoch; the broadcast mode is never
     *  marked dead -- it is the spare of last resort). */
    std::vector<std::uint32_t> deadModes;
    /** Events active during the epoch. */
    int activeEvents = 0;
};

/**
 * A generated fault schedule over one run.  Events are canonically
 * ordered by (startEpoch, kind, node, mode), so two timelines built
 * from the same inputs compare equal element-wise.
 */
class FaultTimeline
{
  public:
    /**
     * Generate the schedule.  The number of events of each kind is
     * round(rate * num_epochs); their epochs, targets and magnitudes
     * are drawn from a Prng seeded with @p seed, consuming a
     * spec-independent number of variates per event.
     *
     * @param num_modes Modes of the design the timeline will run
     *        against; DeadMode events target modes below the
     *        broadcast mode (none are generated when num_modes < 2).
     */
    FaultTimeline(const FaultTimelineSpec &spec, int num_nodes,
                  int num_modes, std::size_t num_epochs,
                  std::uint64_t seed);

    /**
     * Build a timeline from an explicit, hand-crafted event list
     * (regression scenarios, replayed schedules).  Events are
     * validated -- epoch windows inside the run, nodes/modes in
     * range, the broadcast mode never dead -- and re-sorted into
     * the same canonical order the seeded constructor produces.
     * seed() reports 0.
     */
    FaultTimeline(std::vector<FaultEvent> events, int num_nodes,
                  int num_modes, std::size_t num_epochs);

    const std::vector<FaultEvent> &events() const { return events_; }
    int numNodes() const { return numNodes_; }
    int numModes() const { return numModes_; }
    std::size_t numEpochs() const { return numEpochs_; }
    std::uint64_t seed() const { return seed_; }

    /** Compose the state active during @p epoch (pure function of
     *  the event list; O(events) per call). */
    RuntimeFaultState stateAt(std::size_t epoch) const;

    /** Journal the events that start or end at @p epoch (fault_start
     *  / fault_end records, in canonical event order).  No-op unless
     *  MNOC_JOURNAL is on; called by the degradation controller at
     *  each epoch boundary. */
    void journalFirings(std::size_t epoch) const;

  private:
    int numNodes_;
    int numModes_;
    std::size_t numEpochs_;
    std::uint64_t seed_;
    std::vector<FaultEvent> events_;
};

} // namespace mnoc::runtime

#endif // MNOC_RUNTIME_FAULT_TIMELINE_HH
