#include "runtime/degradation_controller.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/journal.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "core/power_topology.hh"
#include "optics/link_budget.hh"
#include "optics/splitter_chain.hh"
#include "runtime/hysteresis.hh"

namespace mnoc::runtime {

namespace {

/** Comparison slack for margin thresholds, in dB; matches the
 *  ledger's conservation tolerance. */
constexpr DecibelLoss kEps{1e-9};

/** One source's health under the current fault state and controller
 *  settings; each parallel evaluation owns its slot. */
struct SourceHealth
{
    DecibelLoss worstMargin{1e9};
    /** Current-space mode of the source's worst failing link, or -1
     *  when every reachable link clears the requirement. */
    int worstFailingMode = -1;
};

/** Smallest usable original drive mode >= @p orig_mode for a source
 *  whose dead-mode bitmask is @p dead; the broadcast mode is never
 *  dead (the timeline guarantees it), so the walk terminates. */
int
resolveDriveMode(int orig_mode, std::uint32_t dead, int num_modes)
{
    int mode = orig_mode;
    while (mode < num_modes - 1 &&
           ((dead >> static_cast<unsigned>(mode)) & 1u) != 0u)
        ++mode;
    return mode;
}

} // namespace

void
DegradationPolicy::validate() const
{
    fatalIf(trimStep <= DecibelLoss(0.0),
            "trim step must be positive");
    fatalIf(maxTrim < trimStep, "trim ceiling must cover one step");
    fatalIf(restoreHysteresis < DecibelLoss(0.0),
            "restore hysteresis must be non-negative");
    fatalIf(healthyEpochsToRelax < 1,
            "relax streak must be at least one epoch");
    fatalIf(trimEnergyPerDb < 0.0 || failoverEnergy < 0.0 ||
                collapseEnergy < 0.0,
            "reconfiguration costs must be non-negative");
}

const char *
actionKindName(ActionKind kind)
{
    switch (kind) {
    case ActionKind::Trim:
        return "trim";
    case ActionKind::Relax:
        return "relax";
    case ActionKind::Failover:
        return "failover";
    case ActionKind::Restore:
        return "restore";
    case ActionKind::Collapse:
        return "collapse";
    }
    panic("unhandled action kind");
}

int
DegradationLog::countActions(ActionKind kind) const
{
    int count = 0;
    for (const DegradationAction &action : actions)
        if (action.kind == kind)
            ++count;
    return count;
}

DegradationLog
runDegradationController(const optics::SerpentineLayout &layout,
                         const core::MnocDesign &design,
                         const faults::DeviceVariation &variation,
                         const FaultTimeline &timeline,
                         const DegradationPolicy &policy,
                         core::EnergyLedger *ledger, ThreadPool *pool)
{
    policy.validate();
    int n = design.topology.numNodes;
    int orig_modes = design.topology.numModes;
    fatalIf(layout.numNodes() != n,
            "layout and design disagree on node count");
    fatalIf(timeline.numNodes() != n,
            "fault timeline and design disagree on node count");
    fatalIf(timeline.numModes() != orig_modes,
            "fault timeline and design disagree on mode count");
    fatalIf(static_cast<int>(variation.splitterScale.size()) != n ||
                static_cast<int>(variation.ledOutputScale.size()) !=
                    n,
            "device variation does not cover every source");
    std::size_t num_epochs = timeline.numEpochs();
    fatalIf(ledger != nullptr && ledger->numEpochs() != num_epochs,
            "fault timeline and ledger disagree on epoch count");

    TraceSpan span("runDegradationController", "runtime");
    auto &metrics = MetricsRegistry::global();
    metrics.counter("runtime.controller_runs").add();
    Series &margin_series = metrics.series("runtime.margin");
    Series &action_series = metrics.series("runtime.actions");
    ThreadPool &workers =
        pool != nullptr ? *pool : ThreadPool::global();

    // Mutable controller state.  modeOrigin maps a current-space
    // mode index to the original design mode whose drive power it
    // uses; runtime collapses erase entries, mirroring
    // collapseMode()'s renumbering.
    core::GlobalPowerTopology topo = design.topology;
    std::vector<int> mode_origin(
        static_cast<std::size_t>(orig_modes));
    for (int m = 0; m < orig_modes; ++m)
        mode_origin[static_cast<std::size_t>(m)] = m;
    std::vector<DecibelLoss> trims(static_cast<std::size_t>(n),
                                   DecibelLoss(0.0));
    std::vector<std::uint32_t> prev_dead(
        static_cast<std::size_t>(n), 0u);
    RuntimeFaultState state;
    // One hysteresis gate per source: a relax must be re-earned by
    // *that* source after any of its own unhealthy epochs or
    // dead-mode liveness changes.  A single die-wide counter here
    // let a just-restored source be relaxed on the next epoch (the
    // failover's broadcast reroute keeps the die-wide margin
    // comfortable, so the shared streak never reset).
    std::vector<StreakGate> relax_gates(
        static_cast<std::size_t>(n),
        StreakGate(policy.healthyEpochsToRelax));

    std::vector<SourceHealth> health(static_cast<std::size_t>(n));

    // Worst-case budget of one source under the epoch's fault state:
    // rebuild its chain with the runtime skews folded into the base
    // variation, replay every current mode's received powers, and
    // fold them through the shared link-budget accounting.  Pure
    // function of (state, topo, mode_origin, trims) -- safe to fan
    // out over disjoint slots.
    auto evaluate_source = [&](int s) {
        auto slot = static_cast<std::size_t>(s);
        double receiver_scale =
            state.receiverSkew.toAttenuation().value();
        auto params = variation.params.perturbed(
            DecibelLoss(0.0), state.thermalSkew[slot],
            DecibelLoss(0.0), receiver_scale);
        WattPower pmin = params.pminAtTap();
        optics::SplitterChain chain(layout, params, s);

        std::vector<double> scale(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j)
            scale[static_cast<std::size_t>(j)] =
                variation.splitterScale[slot]
                                       [static_cast<std::size_t>(j)] *
                state.splitterAgeScale[static_cast<std::size_t>(j)];

        const auto &source = design.sources[slot];
        double output_scale =
            state.ledScale[slot] * variation.ledOutputScale[slot];
        std::vector<std::vector<double>> received;
        received.reserve(
            static_cast<std::size_t>(topo.numModes));
        for (int k = 0; k < topo.numModes; ++k) {
            int drive = resolveDriveMode(
                mode_origin[static_cast<std::size_t>(k)],
                state.deadModes[slot], orig_modes);
            WattPower injected =
                source.modePower[static_cast<std::size_t>(drive)] *
                trims[slot].toAttenuation() * output_scale;
            received.push_back(
                chain.evaluate(source.chain, injected, scale));
        }

        auto report = optics::validateReceivedPowers(
            received, topo.local(s).modeOfDest, s, pmin,
            policy.requiredMargin, optics::unconstrainedLeak);
        SourceHealth out;
        out.worstMargin = report.worstReachableMargin;
        DecibelLoss worst_fail{1e9};
        for (const auto &link : report.links) {
            if (link.reachable &&
                link.margin < policy.requiredMargin - kEps &&
                link.margin < worst_fail) {
                worst_fail = link.margin;
                out.worstFailingMode = link.mode;
            }
        }
        health[slot] = out;
    };

    auto evaluate_all = [&] {
        workers.parallelFor(n, [&](long long s) {
            evaluate_source(static_cast<int>(s));
        });
    };
    auto evaluate_subset = [&](const std::vector<int> &dirty) {
        workers.parallelFor(
            static_cast<long long>(dirty.size()),
            [&](long long i) {
                evaluate_source(
                    dirty[static_cast<std::size_t>(i)]);
            });
    };

    // Reductions in source order: identical at any thread count.
    auto worst_margin = [&] {
        DecibelLoss worst{1e9};
        for (const SourceHealth &h : health)
            worst = std::min(worst, h.worstMargin);
        return worst;
    };
    auto worst_source = [&] {
        int arg = 0;
        for (int s = 1; s < n; ++s)
            if (health[static_cast<std::size_t>(s)].worstMargin <
                health[static_cast<std::size_t>(arg)].worstMargin)
                arg = s;
        return arg;
    };
    auto worst_failing_mode = [&] {
        DecibelLoss worst{1e9};
        int mode = -1;
        for (const SourceHealth &h : health) {
            if (h.worstFailingMode >= 0 && h.worstMargin < worst) {
                worst = h.worstMargin;
                mode = h.worstFailingMode;
            }
        }
        return mode;
    };

    DegradationLog log;
    log.epochs.reserve(num_epochs);

    // Rule-loop termination bound: every iteration either trims at
    // least one source (bounded by the per-source ceiling) or
    // collapses a mode (bounded by the mode count); anything more
    // is a controller bug, caught by the guard's panic.
    long long guard_budget =
        static_cast<long long>(n) *
            (static_cast<long long>(std::ceil(
                 policy.maxTrim.dB() / policy.trimStep.dB())) +
             2) +
        orig_modes + 8;

    for (std::size_t e = 0; e < num_epochs; ++e) {
        state = timeline.stateAt(e);
        timeline.journalFirings(e);
        std::size_t first_action = log.actions.size();

        auto record = [&](ActionKind kind, int source, int mode,
                          DecibelLoss trim_after, double cost) {
            DegradationAction action;
            action.kind = kind;
            action.epoch = e;
            action.source = source;
            action.mode = mode;
            action.trimAfter = trim_after;
            action.energyCost = cost;
            log.actions.push_back(action);
            if (journalEnabled()) {
                JournalKind jkind = JournalKind::Trim;
                switch (kind) {
                case ActionKind::Trim:
                    jkind = JournalKind::Trim;
                    break;
                case ActionKind::Relax:
                    jkind = JournalKind::Relax;
                    break;
                case ActionKind::Failover:
                    jkind = JournalKind::Failover;
                    break;
                case ActionKind::Restore:
                    jkind = JournalKind::Restore;
                    break;
                case ActionKind::Collapse:
                    jkind = JournalKind::Collapse;
                    break;
                }
                JournalRecord rec(jkind, e);
                int streak =
                    source >= 0
                        ? relax_gates[static_cast<std::size_t>(
                                          source)]
                              .streak()
                        : 0;
                rec.addInt(source).addInt(mode).addInt(streak);
                rec.addReal(trim_after.dB()).addReal(cost);
                Journal::global().record(rec);
            }
        };

        // Rule 1: dead-mode failover, and restore on recovery.  The
        // reroute itself is state-driven inside evaluate_source();
        // here the controller books the reprogramming cost when a
        // mode's liveness changes.
        for (int s = 0; s < n; ++s) {
            auto slot = static_cast<std::size_t>(s);
            std::uint32_t newly =
                state.deadModes[slot] & ~prev_dead[slot];
            std::uint32_t recovered =
                prev_dead[slot] & ~state.deadModes[slot];
            for (int m = 0; m < orig_modes; ++m) {
                auto bit = 1u << static_cast<unsigned>(m);
                if ((newly & bit) != 0u)
                    record(ActionKind::Failover, s, m, trims[slot],
                           policy.failoverEnergy);
                if ((recovered & bit) != 0u)
                    record(ActionKind::Restore, s, m, trims[slot],
                           policy.failoverEnergy);
            }
            // A liveness change reroutes the source's traffic, so
            // its relax streak restarts from zero: a restored mode
            // must re-earn the full trip count before any trim on
            // that source is relaxed.
            if ((newly | recovered) != 0u)
                relax_gates[slot].reset();
            prev_dead[slot] = state.deadModes[slot];
        }

        evaluate_all();
        DecibelLoss before = worst_margin();

        // Hysteresis: relax one trim step on a source only after a
        // streak of epochs where that source held comfortable
        // headroom, so a marginal die does not chatter between trim
        // and relax.  Per-source gates: one source's trouble (or a
        // failover/restore on it) never rides on another source's
        // healthy streak.
        {
            std::vector<int> dirty;
            for (int s = 0; s < n; ++s) {
                auto slot = static_cast<std::size_t>(s);
                relax_gates[slot].observe(
                    health[slot].worstMargin >=
                    policy.requiredMargin +
                        policy.restoreHysteresis);
                if (!relax_gates[slot].ready() ||
                    trims[slot] <= DecibelLoss(0.0))
                    continue;
                DecibelLoss step =
                    std::min(trims[slot], policy.trimStep);
                trims[slot] -= step;
                record(ActionKind::Relax, s, -1, trims[slot],
                       policy.trimEnergyPerDb * step.dB());
                relax_gates[slot].consume();
                dirty.push_back(s);
            }
            if (!dirty.empty())
                evaluate_subset(dirty);
        }

        // Rules 2-4: defend the margin requirement before the epoch
        // closes -- trim, then collapse, then fatal.
        long long guard = guard_budget;
        DecibelLoss now = worst_margin();
        while (now < policy.requiredMargin - kEps) {
            std::vector<int> dirty;
            for (int s = 0; s < n; ++s) {
                auto slot = static_cast<std::size_t>(s);
                if (health[slot].worstMargin >=
                        policy.requiredMargin - kEps ||
                    trims[slot] >= policy.maxTrim - kEps)
                    continue;
                DecibelLoss step = std::min(
                    policy.trimStep, policy.maxTrim - trims[slot]);
                trims[slot] += step;
                record(ActionKind::Trim, s, -1, trims[slot],
                       policy.trimEnergyPerDb * step.dB());
                dirty.push_back(s);
            }
            if (!dirty.empty()) {
                evaluate_subset(dirty);
            } else {
                int mode = worst_failing_mode();
                if (topo.numModes > 1 && mode >= 0 &&
                    mode < topo.numModes - 1) {
                    topo = core::collapseMode(topo, mode);
                    mode_origin.erase(
                        mode_origin.begin() + mode);
                    record(ActionKind::Collapse, -1, mode,
                           DecibelLoss(0.0),
                           policy.collapseEnergy);
                    evaluate_all();
                } else {
                    int s = worst_source();
                    fatal(
                        "degradation controller cannot restore " +
                        std::to_string(
                            policy.requiredMargin.dB()) +
                        " dB margin at epoch " + std::to_string(e) +
                        ": worst margin " +
                        std::to_string(
                            health[static_cast<std::size_t>(s)]
                                .worstMargin.dB()) +
                        " dB at source " + std::to_string(s) +
                        " with trims and mode collapses exhausted");
                }
            }
            now = worst_margin();
            panicIf(--guard <= 0,
                    "degradation rule loop failed to terminate");
        }

        // The ledger-style invariant of this subsystem: an epoch
        // never closes below the required worst-case margin --
        // the rule loop either restored it or fataled above.
        panicIf(now < policy.requiredMargin - kEps,
                "degradation controller left an epoch with a "
                "margin below requirement");

        EpochDegradation epoch;
        epoch.epoch = e;
        epoch.marginBefore = before;
        epoch.marginAfter = now;
        epoch.activeFaults = state.activeEvents;
        epoch.actions = static_cast<int>(log.actions.size() -
                                         first_action);
        epoch.numModes = topo.numModes;
        for (std::size_t a = first_action; a < log.actions.size();
             ++a)
            epoch.reconfigEnergy += log.actions[a].energyCost;
        log.epochs.push_back(epoch);
        log.totalReconfigEnergy += epoch.reconfigEnergy;
        if (ledger != nullptr)
            ledger->addReconfigEnergy(e, epoch.reconfigEnergy);
        if (journalEnabled()) {
            JournalRecord rec(JournalKind::Margin, e);
            rec.addInt(epoch.activeFaults)
                .addInt(epoch.actions)
                .addInt(epoch.numModes);
            rec.addReal(before.dB())
                .addReal(now.dB())
                .addReal(epoch.reconfigEnergy);
            Journal::global().record(rec);
        }

        // Deterministic epoch series: worst-case margin after the
        // rules ran (non-negative by the invariant above), in
        // milli-dB, and the epoch's action count.
        margin_series.add(
            e, static_cast<std::uint64_t>(std::llround(
                   std::max(0.0, now.dB()) * 1000.0)));
        if (epoch.actions > 0)
            action_series.add(
                e, static_cast<std::uint64_t>(epoch.actions));
    }

    log.finalNumModes = topo.numModes;
    return log;
}

} // namespace mnoc::runtime
