/**
 * @file
 * Shared hysteresis machinery for the epoch-boundary controllers.
 *
 * Both runtime controllers -- the fault-driven DegradationController
 * and the traffic-driven AdaptiveController -- gate their "undo" and
 * "switch" rules behind the same streak discipline: an action fires
 * only after a configured number of *consecutive* favorable epochs,
 * and any unfavorable epoch (or an external disturbance such as a
 * failover/restore on the same source) resets the count to zero, so
 * a marginal die cannot chatter between opposing rules.
 *
 * StreakGate is a pure counter: deterministic, trivially copyable,
 * no clocks, no RNG -- safe to keep one per source in controller
 * loops that must stay bit-identical at any MNOC_THREADS.
 */

#ifndef MNOC_RUNTIME_HYSTERESIS_HH
#define MNOC_RUNTIME_HYSTERESIS_HH

#include "common/log.hh"

namespace mnoc::runtime {

/** Consecutive-epoch trip counter with a maturity threshold. */
class StreakGate
{
  public:
    /** @param epochs_to_mature Consecutive favorable observations
     *  required before ready() holds; must be at least 1. */
    explicit StreakGate(int epochs_to_mature = 1)
        : epochsToMature_(epochs_to_mature)
    {
        fatalIf(epochs_to_mature < 1,
                "hysteresis streak must be at least one epoch");
    }

    /** Record one epoch: a favorable epoch lengthens the streak, an
     *  unfavorable one resets it. */
    void observe(bool favorable)
    {
        streak_ = favorable ? streak_ + 1 : 0;
    }

    /** Reset the streak without observing an epoch (external
     *  disturbance: the protected state changed under us). */
    void reset() { streak_ = 0; }

    /** True once the streak has matured. */
    bool ready() const { return streak_ >= epochsToMature_; }

    /** Consume a matured streak: the gated action fired, so the
     *  next one must re-earn the full count. */
    void consume() { streak_ = 0; }

    int streak() const { return streak_; }

  private:
    int epochsToMature_;
    int streak_ = 0;
};

} // namespace mnoc::runtime

#endif // MNOC_RUNTIME_HYSTERESIS_HH
