#include "runtime/adaptive_controller.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>
#include <utility>

#include "common/journal.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "core/accrual.hh"
#include "runtime/hysteresis.hh"
#include "sim/phase_detector.hh"
#include "sim/trace.hh"
#include "sim/trace_stream.hh"

namespace mnoc::runtime {

namespace {

/** Reconciliation slack, matching the ledger's conservation
 *  tolerance. */
constexpr double kRelTol = 1e-9;

/** Per-source view of the trailing traffic window: (dest, flits)
 *  pairs in window order, so per-source pricing folds in a fixed
 *  order whatever the thread count. */
using SourceTraffic =
    std::vector<std::vector<std::pair<int, std::uint64_t>>>;

/**
 * Price one design against the window: per-source partial sums fan
 * out across the pool into disjoint slots and reduce in source
 * order -- bit-identical at any MNOC_THREADS.
 */
double
priceWindow(const core::AccrualPlan &plan,
            const SourceTraffic &traffic, ThreadPool &workers)
{
    auto n = static_cast<long long>(traffic.size());
    std::vector<double> per_source(traffic.size(), 0.0);
    workers.parallelFor(n, [&](long long s_index) {
        auto s = static_cast<std::size_t>(s_index);
        double energy = 0.0;
        for (const auto &[dst, flits] : traffic[s])
            energy += plan.quote(static_cast<int>(s), dst, flits);
        per_source[s] = energy;
    });
    double total = 0.0;
    for (double energy : per_source)
        total += energy;
    return total;
}

/** Serial per-epoch pricing in cell order (the CSV columns). */
double
priceEpoch(const core::AccrualPlan &plan,
           const std::vector<noc::EpochCell> &cells)
{
    double energy = 0.0;
    for (const noc::EpochCell &cell : cells)
        energy += plan.quote(cell.src, cell.dst, cell.flits);
    return energy;
}

} // namespace

void
AdaptivePolicy::validate() const
{
    fatalIf(phaseChangeThreshold <= 0.0 ||
                phaseChangeThreshold > 2.0,
            "phase change threshold must lie in (0, 2]");
    fatalIf(trafficWindow < 1,
            "traffic window must be at least one epoch");
    fatalIf(switchGainThreshold <= 0.0,
            "switch gain threshold must be positive");
    fatalIf(epochsToSwitch < 1,
            "switch streak must be at least one epoch");
    fatalIf(maxCandidates < 2,
            "candidate pool must hold the static design and at "
            "least one retarget");
    fatalIf(switchEnergyPerSource < 0.0,
            "switch energy must be non-negative");
    fatalIf(candidateSpec.weights != core::WeightSource::DesignFlow,
            "candidate spec must use design-flow weighting");
    fatalIf(candidateSpec.numModes < 1,
            "candidate spec needs at least one mode");
    fatalIf(candidateMargin < DecibelLoss(0.0),
            "candidate margin must be non-negative");
}

const char *
adaptiveActionKindName(AdaptiveActionKind kind)
{
    switch (kind) {
    case AdaptiveActionKind::PhaseChange:
        return "phase_change";
    case AdaptiveActionKind::Retarget:
        return "retarget";
    case AdaptiveActionKind::Switch:
        return "switch";
    }
    panic("unhandled adaptive action kind");
}

int
AdaptiveLog::countActions(AdaptiveActionKind kind) const
{
    int count = 0;
    for (const AdaptiveAction &action : actions)
        if (action.kind == kind)
            ++count;
    return count;
}

AdaptiveLog
runAdaptiveController(const core::Designer &designer,
                      const core::MnocDesign &static_design,
                      const AdaptivePolicy &policy,
                      sim::TraceReader &reader,
                      const std::vector<int> *thread_to_core,
                      core::EnergyLedger *adaptive_ledger,
                      ThreadPool *pool)
{
    policy.validate();
    int n = static_design.topology.numNodes;
    const sim::TraceHeader &header = reader.header();
    fatalIf(header.numNodes != n,
            "trace and design disagree on node count");
    fatalIf(header.numEpochs == 0,
            "adaptive controller needs an epoch-bucketed trace "
            "(capture with MNOC_LEDGER=1)");
    fatalIf(policy.candidateSpec.numModes !=
                static_design.topology.numModes,
            "candidate mode count must match the deployed design");
    std::size_t num_epochs = header.numEpochs;
    if (adaptive_ledger != nullptr) {
        fatalIf(adaptive_ledger->numEpochs() != num_epochs,
                "adaptive ledger and trace disagree on epoch count");
        fatalIf(adaptive_ledger->numSources() != n ||
                    adaptive_ledger->numModes() !=
                        static_design.topology.numModes,
                "adaptive ledger and design disagree on shape");
    }

    TraceSpan span("runAdaptiveController", "runtime");
    auto &metrics = MetricsRegistry::global();
    metrics.counter("runtime.adaptive_runs").add();
    Series &active_series = metrics.series("runtime.adaptive_active");
    Series &action_series =
        metrics.series("runtime.adaptive_actions");
    ThreadPool &workers =
        pool != nullptr ? *pool : ThreadPool::global();

    const core::MnocPowerModel &model = designer.model();
    const core::PowerParams &params = model.params();
    const optics::DeviceParams &optics_params =
        model.crossbar().params();

    // Candidate pool: designs plus their pricing plans; member 0 is
    // the deployed static design and is never evicted.  Each entry
    // remembers the epoch whose window built it (-1 for the static
    // design, solved before the run) so rule S can price it
    // out-of-sample.
    std::vector<core::MnocDesign> candidates;
    std::vector<core::AccrualPlan> plans;
    std::vector<long long> built_at;
    // A candidate the controller switched away from is retired: its
    // trailing-window pricing already failed to hold up once, so it
    // may not challenge again (a recurring phase earns a fresh
    // retarget instead), and its slot is first in line for reuse.
    std::vector<char> retired;
    candidates.push_back(static_design);
    plans.emplace_back(static_design, params, optics_params, n);
    built_at.push_back(-1);
    retired.push_back(0);

    sim::PhaseDetector detector(n, policy.trafficWindow,
                                policy.phaseChangeThreshold);
    StreakGate switch_gate(policy.epochsToSwitch);
    int pending_target = -1;
    int active = 0;
    // The warm-up retarget arms here; phase changes re-arm it.
    bool retarget_pending = true;

    // Trailing window of mapped epoch cells (newest last), with the
    // epoch index of each entry alongside for out-of-sample pricing.
    std::deque<std::vector<noc::EpochCell>> window;
    std::deque<std::size_t> window_epochs;

    AdaptiveLog log;
    log.epochs.reserve(num_epochs);

    auto window_flow = [&] {
        FlowMatrix flow(static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n), 0.0);
        for (const auto &cells : window)
            for (const noc::EpochCell &cell : cells)
                flow(static_cast<std::size_t>(cell.src),
                     static_cast<std::size_t>(cell.dst)) +=
                    static_cast<double>(cell.flits);
        return flow;
    };

    // Window traffic restricted to epochs strictly newer than
    // @p newer_than (-1 for the whole window).
    auto window_traffic = [&](long long newer_than) {
        SourceTraffic traffic(static_cast<std::size_t>(n));
        for (std::size_t w = 0; w < window.size(); ++w) {
            if (static_cast<long long>(window_epochs[w]) <=
                newer_than)
                continue;
            for (const noc::EpochCell &cell : window[w])
                if (cell.flits > 0 && cell.dst != cell.src)
                    traffic[static_cast<std::size_t>(cell.src)]
                        .emplace_back(cell.dst, cell.flits);
        }
        return traffic;
    };

    // Build a candidate from the trailing window and place it in the
    // pool: a retired slot first, then a fresh slot while there is
    // room, then the oldest slot that is neither the static design
    // nor active.
    auto retarget = [&](std::size_t epoch) {
        int slot = -1;
        for (std::size_t c = 1; c < candidates.size(); ++c)
            if (retired[c]) {
                slot = static_cast<int>(c);
                break;
            }
        if (slot < 0 && static_cast<int>(candidates.size()) <
                            policy.maxCandidates)
            slot = static_cast<int>(candidates.size());
        if (slot < 0) {
            // Oldest live retarget slot that is not mid-accrual;
            // with a two-entry pool whose retarget slot is active
            // there is nothing to evict, so skip this retarget.
            slot = active == 1 ? 2 : 1;
            if (slot >= static_cast<int>(candidates.size()))
                return;
        }
        FlowMatrix flow = window_flow();
        core::GlobalPowerTopology topo =
            designer.buildTopology(policy.candidateSpec, flow);
        core::MnocDesign design = designer.buildDesign(
            policy.candidateSpec, topo, flow,
            policy.candidateMargin);
        if (slot == static_cast<int>(candidates.size())) {
            candidates.push_back(std::move(design));
            plans.emplace_back(candidates.back(), params,
                               optics_params, n);
            built_at.push_back(static_cast<long long>(epoch));
            retired.push_back(0);
        } else {
            candidates[static_cast<std::size_t>(slot)] =
                std::move(design);
            plans[static_cast<std::size_t>(slot)] =
                core::AccrualPlan(
                    candidates[static_cast<std::size_t>(slot)],
                    params, optics_params, n);
            built_at[static_cast<std::size_t>(slot)] =
                static_cast<long long>(epoch);
            retired[static_cast<std::size_t>(slot)] = 0;
            // The replaced challenger may have been mid-streak.
            if (pending_target == slot) {
                pending_target = -1;
                switch_gate.reset();
            }
        }
        AdaptiveAction action;
        action.kind = AdaptiveActionKind::Retarget;
        action.epoch = epoch;
        action.design = slot;
        log.actions.push_back(action);
        if (journalEnabled()) {
            JournalRecord rec(JournalKind::Retarget, epoch);
            rec.addInt(slot)
                .addInt(static_cast<std::int64_t>(
                    window_epochs.front()))
                .addInt(static_cast<std::int64_t>(
                    window_epochs.back()));
            Journal::global().record(rec);
        }
    };

    std::vector<noc::EpochCell> cells;
    for (std::size_t e = 0; e < num_epochs; ++e) {
        panicIf(!reader.nextEpoch(cells),
                "trace ended before its declared epoch count");
        if (thread_to_core != nullptr)
            cells = sim::mapEpochCells(cells, *thread_to_core);

        std::size_t first_action = log.actions.size();
        AdaptiveEpoch epoch;
        epoch.epoch = e;
        epoch.activeDesign = active;

        // Causality: epoch e ran under the design active entering
        // it; its traffic is only observed now, at the boundary.
        const core::AccrualPlan &active_plan =
            plans[static_cast<std::size_t>(active)];
        if (adaptive_ledger != nullptr)
            for (const noc::EpochCell &cell : cells)
                active_plan.accrue(*adaptive_ledger, cell.src,
                                   cell.dst, cell.flits, e);
        epoch.staticEnergy = priceEpoch(plans[0], cells);
        epoch.adaptiveEnergy = priceEpoch(active_plan, cells);

        window.push_back(cells);
        window_epochs.push_back(e);
        if (window.size() > policy.trafficWindow) {
            window.pop_front();
            window_epochs.pop_front();
        }

        // Rule P: phase detection over the epoch signature.
        bool changed = detector.observe(cells);
        epoch.phaseChange = changed;
        if (changed) {
            AdaptiveAction action;
            action.kind = AdaptiveActionKind::PhaseChange;
            action.epoch = e;
            action.gain = detector.lastDistance();
            log.actions.push_back(action);
            if (journalEnabled()) {
                JournalRecord rec(JournalKind::PhaseChange, e);
                rec.addReal(detector.lastDistance());
                Journal::global().record(rec);
            }
            // The old phase's traffic must not leak into the new
            // phase's retarget flow or pricing window: a candidate
            // built from a straddling window lands in traffic it was
            // not solved for.  Flush down to the change epoch (the
            // new phase's first) and let any mid-streak challenger
            // re-earn its streak against the new traffic.
            window.erase(window.begin(), window.end() - 1);
            window_epochs.erase(window_epochs.begin(),
                                window_epochs.end() - 1);
            pending_target = -1;
            switch_gate.reset();
            retarget_pending = true;
        }

        // Rule R: retarget once the window holds a full window of
        // single-phase traffic -- at warm-up, and again after every
        // phase change once the flushed window has refilled.
        if (retarget_pending &&
            window.size() == policy.trafficWindow) {
            retarget(e);
            retarget_pending = false;
        }

        // Candidate expiry: a retarget is a bet on the phase whose
        // window built it.  One that has not won a switch within a
        // few windows of its build modeled traffic that has since
        // drifted away (pair-level drift is invisible to the
        // distance-histogram phase detector), and betting a
        // reconfiguration on it now would chase noise -- retire it
        // and free its slot.
        long long expiry =
            4 * static_cast<long long>(policy.trafficWindow);
        for (std::size_t c = 1; c < candidates.size(); ++c)
            if (!retired[c] && static_cast<int>(c) != active &&
                static_cast<long long>(e) > built_at[c] + expiry) {
                retired[c] = 1;
                if (journalEnabled()) {
                    JournalRecord rec(JournalKind::Expire, e);
                    rec.addInt(static_cast<std::int64_t>(c))
                        .addInt(built_at[c]);
                    Journal::global().record(rec);
                }
            }

        // Rule S: price every challenger against the trailing
        // window, *out-of-sample*: a retarget candidate is solved to
        // be cheap on the very window that built it, so judging it
        // there would reward overfit to the window's sampling noise.
        // Each challenger is therefore priced only on window epochs
        // newer than both its own and the active design's build
        // flow, with the active design priced on the same suffix.
        // The best unbiased gain must clear the threshold for a full
        // streak before the controller pays for a switch.
        if (candidates.size() > 1) {
            // A one-epoch suffix is too small a sample to bet a
            // reconfiguration on; demand at least a quarter window
            // of out-of-sample evidence.
            std::size_t min_suffix = (policy.trafficWindow + 3) / 4;
            int best = -1;
            double gain = 0.0;
            for (std::size_t c = 0; c < candidates.size(); ++c) {
                if (static_cast<int>(c) == active || retired[c])
                    continue;
                long long barrier = std::max(
                    built_at[c],
                    built_at[static_cast<std::size_t>(active)]);
                std::size_t suffix = 0;
                for (std::size_t epoch_index : window_epochs)
                    if (static_cast<long long>(epoch_index) >
                        barrier)
                        ++suffix;
                if (suffix < min_suffix)
                    continue;
                SourceTraffic traffic = window_traffic(barrier);
                double active_cost = priceWindow(
                    plans[static_cast<std::size_t>(active)],
                    traffic, workers);
                if (active_cost <= 0.0)
                    continue;
                double challenger_cost =
                    priceWindow(plans[c], traffic, workers);
                double c_gain =
                    (active_cost - challenger_cost) / active_cost;
                if (journalEnabled()) {
                    JournalRecord rec(JournalKind::Price, e);
                    rec.addInt(static_cast<std::int64_t>(c))
                        .addInt(static_cast<std::int64_t>(suffix));
                    rec.addReal(active_cost)
                        .addReal(challenger_cost)
                        .addReal(c_gain);
                    Journal::global().record(rec);
                }
                if (best < 0 || c_gain > gain) {
                    best = static_cast<int>(c);
                    gain = c_gain;
                }
            }
            if (best >= 0 && gain > policy.switchGainThreshold) {
                if (best != pending_target) {
                    pending_target = best;
                    switch_gate.reset();
                }
                switch_gate.observe(true);
            } else {
                pending_target = -1;
                switch_gate.reset();
            }
            if (pending_target >= 0 && switch_gate.ready()) {
                double cost = static_cast<double>(n) *
                              policy.switchEnergyPerSource;
                AdaptiveAction action;
                action.kind = AdaptiveActionKind::Switch;
                action.epoch = e;
                action.design = pending_target;
                action.gain = gain;
                action.energyCost = cost;
                log.actions.push_back(action);
                if (adaptive_ledger != nullptr)
                    adaptive_ledger->addReconfigEnergy(e, cost);
                if (journalEnabled()) {
                    JournalRecord rec(JournalKind::Switch, e);
                    rec.addInt(active)
                        .addInt(pending_target)
                        .addInt(switch_gate.streak());
                    rec.addReal(gain).addReal(cost);
                    Journal::global().record(rec);
                }
                if (active != 0) {
                    retired[static_cast<std::size_t>(active)] = 1;
                    if (journalEnabled()) {
                        JournalRecord rec(JournalKind::Retire, e);
                        rec.addInt(active);
                        Journal::global().record(rec);
                    }
                }
                active = pending_target;
                pending_target = -1;
                switch_gate.consume();
            }
        }

        epoch.actions = static_cast<int>(log.actions.size() -
                                         first_action);
        for (std::size_t a = first_action; a < log.actions.size();
             ++a)
            epoch.reconfigEnergy += log.actions[a].energyCost;
        log.epochs.push_back(epoch);
        log.totalReconfigEnergy += epoch.reconfigEnergy;

        active_series.add(
            e, static_cast<std::uint64_t>(epoch.activeDesign));
        if (epoch.actions > 0)
            action_series.add(
                e, static_cast<std::uint64_t>(epoch.actions));
    }

    log.numCandidates = static_cast<int>(candidates.size());
    log.finalDesign = active;

    // The run's losses are attributed under the design it finished
    // with -- the one a deployed die would be driving.
    if (adaptive_ledger != nullptr)
        model.attachLosses(
            candidates[static_cast<std::size_t>(active)],
            *adaptive_ledger, pool);
    return log;
}

AdaptiveComparison
reconcileAdaptive(const core::EnergyLedger &static_ledger,
                  const core::EnergyLedger &adaptive_ledger,
                  const AdaptiveLog &log)
{
    panicIf(static_ledger.numEpochs() !=
                    adaptive_ledger.numEpochs() ||
                static_ledger.numSources() !=
                    adaptive_ledger.numSources(),
            "static and adaptive ledgers cover different runs");
    panicIf(log.epochs.size() != adaptive_ledger.numEpochs(),
            "adaptive log and ledger disagree on epoch count");

    AdaptiveComparison out;
    out.staticEnergy = static_ledger.totalEnergy();
    out.adaptiveEnergy = adaptive_ledger.totalEnergy();
    out.reconfigEnergy = adaptive_ledger.totalReconfigEnergy();
    for (std::size_t e = 0; e < static_ledger.numEpochs(); ++e) {
        double static_cell = static_ledger.epochAttributedEnergy(e);
        double adaptive_cell =
            adaptive_ledger.epochAttributedEnergy(e);
        out.savings += static_cell - adaptive_cell;
        if (journalEnabled()) {
            // Residual between what the ledger attributed to the
            // epoch and what the controller's pricing log recorded
            // for it -- should sit at rounding noise; the journal
            // makes any drift auditable per epoch.
            JournalRecord rec(JournalKind::Reconcile, e);
            rec.addReal(adaptive_cell)
                .addReal(log.epochs[e].adaptiveEnergy)
                .addReal(adaptive_cell -
                         log.epochs[e].adaptiveEnergy);
            Journal::global().record(rec);
        }
    }
    out.netSavings = out.staticEnergy - out.adaptiveEnergy;

    // Conservation: the adaptive run may move joules between modes
    // and epochs, never lose them.  Cell sums regroup across the
    // two totals, hence the relative tolerance.
    double expected = out.staticEnergy -
                      static_ledger.totalReconfigEnergy() -
                      out.savings + out.reconfigEnergy;
    double scale = std::max({std::abs(expected),
                             std::abs(out.adaptiveEnergy), 1e-30});
    panicIf(std::abs(out.adaptiveEnergy - expected) / scale >
                kRelTol,
            "static-vs-adaptive ledgers do not reconcile: "
            "adaptive total " +
                std::to_string(out.adaptiveEnergy) +
                " J, expected " + std::to_string(expected) + " J");
    return out;
}

} // namespace mnoc::runtime
