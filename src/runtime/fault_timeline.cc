#include "runtime/fault_timeline.hh"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/journal.hh"
#include "common/log.hh"
#include "common/prng.hh"

namespace mnoc::runtime {

namespace {

/** Kinds in generation order; the enum order is the canonical sort
 *  order, so keep the two lists identical. */
constexpr FaultKind kKinds[] = {
    FaultKind::ThermalDrift,   FaultKind::LaserDroop,
    FaultKind::SplitterAging,  FaultKind::ReceiverDrift,
    FaultKind::DeadMode,
};

double
rateOf(const FaultTimelineSpec &spec, FaultKind kind)
{
    switch (kind) {
    case FaultKind::ThermalDrift:
        return spec.thermalDriftRate;
    case FaultKind::LaserDroop:
        return spec.laserDroopRate;
    case FaultKind::SplitterAging:
        return spec.splitterAgingRate;
    case FaultKind::ReceiverDrift:
        return spec.receiverDriftRate;
    case FaultKind::DeadMode:
        return spec.deadModeRate;
    }
    panic("unhandled fault kind");
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ThermalDrift:
        return "thermal_drift";
    case FaultKind::LaserDroop:
        return "laser_droop";
    case FaultKind::SplitterAging:
        return "splitter_aging";
    case FaultKind::ReceiverDrift:
        return "receiver_drift";
    case FaultKind::DeadMode:
        return "dead_mode";
    }
    panic("unhandled fault kind");
}

FaultTimelineSpec
FaultTimelineSpec::scaled(double factor) const
{
    fatalIf(factor < 0.0, "fault rate scale must be non-negative");
    FaultTimelineSpec out = *this;
    out.thermalDriftRate *= factor;
    out.laserDroopRate *= factor;
    out.splitterAgingRate *= factor;
    out.receiverDriftRate *= factor;
    out.deadModeRate *= factor;
    return out;
}

void
FaultTimelineSpec::validate() const
{
    fatalIf(thermalDriftRate < 0.0 || laserDroopRate < 0.0 ||
                splitterAgingRate < 0.0 || receiverDriftRate < 0.0 ||
                deadModeRate < 0.0,
            "fault rates must be non-negative");
    fatalIf(thermalDriftPeak < DecibelLoss(0.0),
            "thermal drift peak must be non-negative");
    fatalIf(receiverDriftStep < DecibelLoss(0.0),
            "receiver drift step must be non-negative");
    fatalIf(laserDroopStep < 0.0 || laserDroopStep >= 1.0,
            "laser droop step must lie in [0, 1)");
    fatalIf(splitterAgingStep < 0.0 || splitterAgingStep >= 1.0,
            "splitter aging step must lie in [0, 1)");
    fatalIf(thermalDriftEpochs < 1,
            "thermal drift needs at least one epoch");
    fatalIf(deadModeEpochs < 1,
            "dead-mode outages need at least one epoch");
}

FaultTimeline::FaultTimeline(const FaultTimelineSpec &spec,
                             int num_nodes, int num_modes,
                             std::size_t num_epochs,
                             std::uint64_t seed)
    : numNodes_(num_nodes), numModes_(num_modes),
      numEpochs_(num_epochs), seed_(seed)
{
    spec.validate();
    fatalIf(num_nodes < 1, "fault timeline needs at least one node");
    fatalIf(num_modes < 1, "fault timeline needs at least one mode");
    fatalIf(num_modes > 32,
            "fault timeline supports at most 32 modes");
    fatalIf(num_epochs < 1,
            "fault timeline needs at least one epoch");

    // Every event consumes exactly four variates, whatever its kind
    // or the spec's magnitudes, so timelines that differ only in
    // rates or magnitudes see the same underlying draws (the same
    // property drawVariation() maintains for fabrication draws).
    Prng prng(seed);
    for (FaultKind kind : kKinds) {
        auto count = static_cast<long long>(
            std::llround(rateOf(spec, kind) *
                         static_cast<double>(num_epochs)));
        if (kind == FaultKind::DeadMode && num_modes < 2)
            count = 0; // broadcast-only: no spare to fail over to
        for (long long i = 0; i < count; ++i) {
            std::size_t start =
                prng.below(static_cast<std::uint64_t>(num_epochs));
            int node = static_cast<int>(
                prng.below(static_cast<std::uint64_t>(num_nodes)));
            double aux = prng.uniform();
            double unit = 0.5 + prng.uniform(); // in [0.5, 1.5)

            FaultEvent event;
            event.kind = kind;
            event.startEpoch = start;
            event.node = node;
            switch (kind) {
            case FaultKind::ThermalDrift:
                event.endEpoch = std::min(
                    num_epochs, start + spec.thermalDriftEpochs);
                event.magnitude = spec.thermalDriftPeak.dB() * unit;
                break;
            case FaultKind::LaserDroop:
                event.endEpoch = num_epochs;
                event.magnitude = spec.laserDroopStep * unit;
                break;
            case FaultKind::SplitterAging:
                event.endEpoch = num_epochs;
                // Ratios creep in either direction; aux picks the
                // sign so the magnitude draw stays one-sided.
                event.magnitude = spec.splitterAgingStep * unit *
                                  (aux < 0.5 ? -1.0 : 1.0);
                break;
            case FaultKind::ReceiverDrift:
                event.endEpoch = num_epochs;
                event.node = -1; // die-wide
                event.magnitude = spec.receiverDriftStep.dB() * unit;
                break;
            case FaultKind::DeadMode:
                event.endEpoch = std::min(num_epochs,
                                          start + spec.deadModeEpochs);
                // Only modes below broadcast can die: the broadcast
                // mode is the spare of last resort.
                event.mode = static_cast<int>(
                    aux * static_cast<double>(num_modes - 1));
                event.mode =
                    std::min(event.mode, num_modes - 2);
                break;
            }
            events_.push_back(event);
        }
    }

    // Canonical order: the schedule compares equal element-wise for
    // equal inputs, and every consumer iterates deterministically.
    std::sort(events_.begin(), events_.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return std::tie(a.startEpoch, a.kind, a.node,
                                  a.mode, a.magnitude) <
                         std::tie(b.startEpoch, b.kind, b.node,
                                  b.mode, b.magnitude);
              });
}

FaultTimeline::FaultTimeline(std::vector<FaultEvent> events,
                             int num_nodes, int num_modes,
                             std::size_t num_epochs)
    : numNodes_(num_nodes), numModes_(num_modes),
      numEpochs_(num_epochs), seed_(0),
      events_(std::move(events))
{
    fatalIf(num_nodes < 1, "fault timeline needs at least one node");
    fatalIf(num_modes < 1, "fault timeline needs at least one mode");
    fatalIf(num_modes > 32,
            "fault timeline supports at most 32 modes");
    fatalIf(num_epochs < 1,
            "fault timeline needs at least one epoch");

    for (const FaultEvent &event : events_) {
        fatalIf(event.startEpoch >= event.endEpoch ||
                    event.endEpoch > num_epochs,
                "fault event window must lie inside the run");
        bool die_wide = event.kind == FaultKind::ReceiverDrift;
        fatalIf(die_wide ? event.node != -1
                         : (event.node < 0 ||
                            event.node >= num_nodes),
                "fault event node out of range");
        if (event.kind == FaultKind::DeadMode)
            fatalIf(event.mode < 0 || event.mode > num_modes - 2,
                    "dead-mode event must target a mode below "
                    "broadcast");
        else
            fatalIf(event.mode != -1,
                    "only dead-mode events carry a mode");
    }

    std::sort(events_.begin(), events_.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return std::tie(a.startEpoch, a.kind, a.node,
                                  a.mode, a.magnitude) <
                         std::tie(b.startEpoch, b.kind, b.node,
                                  b.mode, b.magnitude);
              });
}

RuntimeFaultState
FaultTimeline::stateAt(std::size_t epoch) const
{
    panicIf(epoch >= numEpochs_, "fault epoch out of range");
    RuntimeFaultState state;
    auto n = static_cast<std::size_t>(numNodes_);
    state.thermalSkew.assign(n, DecibelLoss(0.0));
    state.ledScale.assign(n, 1.0);
    state.splitterAgeScale.assign(n, 1.0);
    state.deadModes.assign(n, 0u);

    for (const FaultEvent &event : events_) {
        if (epoch < event.startEpoch || epoch >= event.endEpoch)
            continue;
        ++state.activeEvents;
        auto node = static_cast<std::size_t>(
            event.node < 0 ? 0 : event.node);
        switch (event.kind) {
        case FaultKind::ThermalDrift: {
            // Triangular ramp: detuning rises to the peak at the
            // window's midpoint and recovers by its end.
            auto dur = static_cast<double>(event.endEpoch -
                                           event.startEpoch);
            auto pos = static_cast<double>(epoch - event.startEpoch);
            double ramp =
                dur <= 1.0
                    ? 1.0
                    : 1.0 - std::abs(2.0 * pos / (dur - 1.0) - 1.0);
            state.thermalSkew[node] +=
                DecibelLoss(event.magnitude * ramp);
            break;
        }
        case FaultKind::LaserDroop:
            // Repeated droops compound; clamp keeps a much-faulted
            // LED at a sliver of output rather than exactly zero,
            // which would make every budget identically -inf dB.
            state.ledScale[node] = std::max(
                0.05, state.ledScale[node] * (1.0 - event.magnitude));
            break;
        case FaultKind::SplitterAging:
            state.splitterAgeScale[node] = std::max(
                0.05,
                state.splitterAgeScale[node] *
                    (1.0 + event.magnitude));
            break;
        case FaultKind::ReceiverDrift:
            state.receiverSkew += DecibelLoss(event.magnitude);
            break;
        case FaultKind::DeadMode:
            state.deadModes[node] |=
                1u << static_cast<unsigned>(event.mode);
            break;
        }
    }
    return state;
}

void
FaultTimeline::journalFirings(std::size_t epoch) const
{
    if (!journalEnabled())
        return;
    for (const FaultEvent &event : events_) {
        bool starts = event.startEpoch == epoch;
        // endEpoch is one past the last active epoch: the event is
        // gone *entering* epoch endEpoch.
        bool ends = event.endEpoch == epoch && event.endEpoch > 0;
        if (!starts && !ends)
            continue;
        JournalRecord rec(starts ? JournalKind::FaultStart
                                 : JournalKind::FaultEnd,
                          epoch);
        rec.addInt(static_cast<std::int64_t>(event.kind))
            .addInt(event.node)
            .addInt(event.mode);
        rec.addReal(event.magnitude);
        Journal::global().record(rec);
    }
}

} // namespace mnoc::runtime
