/**
 * @file
 * Epoch-boundary graceful-degradation controller.
 *
 * At every ledger epoch boundary the controller recomputes each
 * source's worst-case link margin through the link-budget model
 * (optics/link_budget.hh) under the epoch's composed fault state,
 * then applies a rule table until the run-time margin requirement
 * holds again:
 *
 *   1. fail over dead drive modes to their parent (the next-higher
 *      mode: mode sets are nested, so the parent's power superset
 *      covers the dead mode's destinations);
 *   2. re-trim failing sources' drive power upward in fixed steps,
 *      up to a per-source trim ceiling;
 *   3. collapse the worst-failing mode into its parent (the PR 1
 *      graceful mode-collapse path, applied at run time);
 *   4. fatal -- only when no rule can restore the required margin.
 *
 * Hysteresis keeps the controller from chattering: trims relax one
 * step only after a streak of healthy epochs with margin headroom
 * above the restore threshold.  Every action is charged through a
 * reconfiguration-cost model into the energy ledger, so degraded
 * runs still account for every joule (the ledger's conservation
 * self-checks extend over the reconfiguration cells).
 *
 * Determinism: per-source margin evaluation fans out over the shared
 * ThreadPool into disjoint slots and reduces in source order; rule
 * firing is serial over that reduction.  A faulted run is therefore
 * bit-identical at any MNOC_THREADS (DESIGN.md §9), which
 * test_determinism asserts.
 */

#ifndef MNOC_RUNTIME_DEGRADATION_CONTROLLER_HH
#define MNOC_RUNTIME_DEGRADATION_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/thread_pool.hh"
#include "common/units.hh"
#include "core/energy_ledger.hh"
#include "core/power_model.hh"
#include "faults/variation.hh"
#include "runtime/fault_timeline.hh"

namespace mnoc::runtime {

/** Rule-table constants and the reconfiguration-cost model. */
struct DegradationPolicy
{
    /** Worst-case margin the controller defends at every epoch. */
    DecibelLoss requiredMargin{0.0};
    /** Drive-power boost applied per trim action. */
    DecibelLoss trimStep{0.5};
    /** Ceiling on a source's accumulated trim. */
    DecibelLoss maxTrim{6.0};
    /** Headroom above requiredMargin a healthy streak must show
     *  before a trim relaxes (keep it above trimStep, or relax and
     *  re-trim can chatter). */
    DecibelLoss restoreHysteresis{1.0};
    /** Healthy epochs in a row before one relax step fires. */
    int healthyEpochsToRelax = 4;
    /** Energy to reprogram one source's drive point, per dB of trim
     *  change, in joules (LED driver DAC rewrite + settle). */
    double trimEnergyPerDb = 2.0e-9;
    /** Energy to reroute one (source, mode) onto its spare, in
     *  joules (address-filter table rewrite at the receivers). */
    double failoverEnergy = 5.0e-9;
    /** Energy to collapse a mode die-wide, in joules (every
     *  source's mode table rewritten). */
    double collapseEnergy = 2.0e-8;

    /** Fatal on nonsensical constants. */
    void validate() const;
};

/** What a single controller action did. */
enum class ActionKind
{
    Trim,     ///< raised one source's drive power by one step
    Relax,    ///< lowered one source's trim after a healthy streak
    Failover, ///< rerouted a dead (source, mode) onto its parent
    Restore,  ///< dead mode recovered; reroute undone
    Collapse, ///< merged a mode into its parent die-wide
};

/** Stable lower-case name used in CSVs and logs. */
const char *actionKindName(ActionKind kind);

/** One rule firing, with its charged reconfiguration energy. */
struct DegradationAction
{
    ActionKind kind = ActionKind::Trim;
    std::size_t epoch = 0;
    /** Acting source (-1 for die-wide collapses). */
    int source = -1;
    /** Affected mode (Failover/Restore/Collapse; -1 otherwise). */
    int mode = -1;
    /** Trim level in effect after the action (Trim/Relax). */
    DecibelLoss trimAfter{0.0};
    /** Energy charged to the ledger for this action, in joules. */
    double energyCost = 0.0;
};

/** Controller outcome for one epoch. */
struct EpochDegradation
{
    std::size_t epoch = 0;
    /** Worst-case margin when the epoch opened (faults applied,
     *  rules not yet fired). */
    DecibelLoss marginBefore{0.0};
    /** Worst-case margin after the rule table ran; never below the
     *  policy's requiredMargin (panic-checked). */
    DecibelLoss marginAfter{0.0};
    /** Fault events active during the epoch. */
    int activeFaults = 0;
    /** Actions fired this epoch. */
    int actions = 0;
    /** Mode count in effect after the epoch. */
    int numModes = 0;
    /** Reconfiguration energy charged this epoch, in joules. */
    double reconfigEnergy = 0.0;
};

/** Full controller trajectory over a run. */
struct DegradationLog
{
    std::vector<EpochDegradation> epochs;
    /** Every action, in firing order. */
    std::vector<DegradationAction> actions;
    /** Mode count left when the run ended. */
    int finalNumModes = 0;
    /** Sum of every action's charged energy, in joules. */
    double totalReconfigEnergy = 0.0;

    int countActions(ActionKind kind) const;
};

/**
 * Run the controller over every epoch of @p ledger.
 *
 * @param layout Serpentine geometry shared by all waveguides.
 * @param design The deployed design (topology + splitter designs).
 * @param variation As-fabricated device state the fault timeline
 *        degrades from (identity draw for a nominal die).
 * @param timeline Fault schedule; must cover the ledger's epochs.
 * @param policy Rule-table constants and reconfiguration costs.
 * @param ledger Ledger to charge reconfiguration energy into; may
 *        be null to run the controller without cost attribution.
 * @param pool Worker pool for the per-source margin fan-out
 *        (defaults to the shared global pool).
 *
 * @throws FatalError when no rule can restore the required margin.
 * @throws PanicError if the rule loop would leave an epoch with a
 *         margin below requirement (a controller bug, not an input
 *         error -- the loop must act or fatal instead).
 */
DegradationLog runDegradationController(
    const optics::SerpentineLayout &layout,
    const core::MnocDesign &design,
    const faults::DeviceVariation &variation,
    const FaultTimeline &timeline, const DegradationPolicy &policy,
    core::EnergyLedger *ledger, ThreadPool *pool = nullptr);

} // namespace mnoc::runtime

#endif // MNOC_RUNTIME_DEGRADATION_CONTROLLER_HH
