/**
 * @file
 * Traffic-driven epoch-boundary mode re-selection (the PROTEUS-style
 * adaptive runtime; see PAPERS.md and docs/runtime-faults.md).
 *
 * The paper's §3.2.2 drive tables are designed once, against a whole
 * run's average traffic.  A phase-changing workload (barnes-style
 * neighbor exchange spliced into radix-style all-to-all) pays for
 * that averaging twice: during each phase the deployed mode sets are
 * matched to traffic the phase is not sending.  The splitter chains
 * are fabricated, but the per-mode drive tables, receiver address
 * filters and evanescent tap biases are runtime-programmable (the
 * fault-driven DegradationController already rewrites them), so the
 * runtime may *re-select the active design*: re-partition
 * destinations into mode sets and re-solve the drive table for the
 * traffic it is actually observing, paying a reconfiguration-energy
 * charge per switch.
 *
 * The controller runs at epoch boundaries over the per-(source,
 * mode, epoch) traffic the simulator already captures:
 *
 *  - rule P (phase): a sim::PhaseDetector watches the epoch traffic
 *    signature; a phase change flushes the trailing window down to
 *    the change epoch (old-phase traffic must not leak into the new
 *    phase's flow or pricing) and arms rule R;
 *  - rule R (retarget): once the window holds a full window of
 *    single-phase traffic -- at warm-up, and after each phase change
 *    when the flushed window has refilled -- build a candidate
 *    design from it via the designer (comm-aware assignment +
 *    design-flow splitter weighting), joining a bounded candidate
 *    pool whose member 0 is the deployed static design;
 *  - rule S (switch): every epoch, challengers are priced against
 *    the trailing window with the shared AccrualPlan::quote() --
 *    out-of-sample, on window epochs newer than both the
 *    challenger's and the active design's build flow, since a
 *    candidate is trivially cheap on the window that built it; when
 *    a challenger undercuts the active design by the gain threshold
 *    for a full hysteresis streak (runtime/hysteresis.hh), the
 *    controller switches to it *from the next epoch* and charges
 *    numNodes * switchEnergyPerSource joules of reconfiguration
 *    energy into the ledger's reconfig cells.
 *
 * Causality: epoch e's traffic is observed at the *end* of epoch e,
 * so epoch e always accrues under the design that was active
 * entering it; a switch decided at e takes effect at e+1.
 *
 * Composition with the fault runtime: the two controllers book into
 * the same per-epoch reconfig cells (addReconfigEnergy is additive),
 * and the adaptive controller touches only drive tables, never the
 * fault controller's trims -- run adaptive first, degradation after,
 * against whichever design ended up active.
 *
 * Determinism: the epoch loop is sequential; candidate pricing fans
 * per-source partial sums across the pool into disjoint slots and
 * reduces them in source order, so the whole run -- decisions,
 * ledger, log -- is bit-identical at any MNOC_THREADS.
 */

#ifndef MNOC_RUNTIME_ADAPTIVE_CONTROLLER_HH
#define MNOC_RUNTIME_ADAPTIVE_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "core/designer.hh"
#include "core/energy_ledger.hh"

namespace mnoc {
class ThreadPool;
namespace sim {
class TraceReader;
} // namespace sim
} // namespace mnoc

namespace mnoc::runtime {

/** Rule-table knobs of the adaptive controller. */
struct AdaptivePolicy
{
    /** L1 epoch-signature distance declaring a phase change, in
     *  (0, 2] (sim/phase_detector.hh). */
    double phaseChangeThreshold = 0.25;
    /** Trailing epochs used as the phase reference, the retarget
     *  design flow, and the candidate pricing window (the
     *  MNOC_ADAPT_WINDOW knob). */
    std::size_t trafficWindow = 32;
    /** Relative out-of-sample energy gain a challenger must show
     *  over the active design before the switch streak advances. */
    double switchGainThreshold = 0.02;
    /** Consecutive epochs the same challenger must keep winning
     *  before the controller switches (hysteresis). */
    int epochsToSwitch = 2;
    /** Candidate-pool bound, deployed static design included; when
     *  full, the oldest inactive retarget is replaced. */
    int maxCandidates = 8;
    /** Reconfiguration energy per source charged on a switch (tap
     *  re-bias + drive-table and filter rewrite), in joules. */
    double switchEnergyPerSource = 2.0e-10;
    /** How retarget candidates are built: mode count and assignment
     *  of the runtime re-partition.  Weighting must be DesignFlow
     *  (candidates are solved for the observed window traffic), and
     *  the mode count must match the deployed design's. */
    core::DesignSpec candidateSpec;
    /** Design margin of retarget candidates; pass the deployed
     *  design's margin so the comparison prices like against like. */
    DecibelLoss candidateMargin{0.0};

    /** Fatal on out-of-range knobs. */
    void validate() const;
};

/** What the controller did at one epoch boundary. */
enum class AdaptiveActionKind
{
    /** The phase detector declared a new traffic phase. */
    PhaseChange,
    /** A candidate design was built from the trailing window. */
    Retarget,
    /** The active design changed (takes effect next epoch). */
    Switch,
};

/** Stable lower-case name used in CSVs and logs. */
const char *adaptiveActionKindName(AdaptiveActionKind kind);

/** One recorded controller action. */
struct AdaptiveAction
{
    AdaptiveActionKind kind = AdaptiveActionKind::PhaseChange;
    std::size_t epoch = 0;
    /** Candidate index involved: the new candidate's slot for
     *  Retarget, the switch target for Switch, -1 for PhaseChange. */
    int design = -1;
    /** Signature distance (PhaseChange) or relative energy gain of
     *  the target over the incumbent (Switch); 0 for Retarget. */
    double gain = 0.0;
    /** Reconfiguration energy booked for the action, in joules. */
    double energyCost = 0.0;
};

/** Per-epoch controller record. */
struct AdaptiveEpoch
{
    std::size_t epoch = 0;
    /** Candidate accruing this epoch (active *entering* it). */
    int activeDesign = 0;
    bool phaseChange = false;
    int actions = 0;
    /** Epoch traffic priced under the static design, in joules. */
    double staticEnergy = 0.0;
    /** Epoch traffic priced under the active design, in joules. */
    double adaptiveEnergy = 0.0;
    /** Reconfiguration energy booked at this boundary, in joules. */
    double reconfigEnergy = 0.0;
};

/** Complete adaptive run record. */
struct AdaptiveLog
{
    std::vector<AdaptiveEpoch> epochs;
    std::vector<AdaptiveAction> actions;
    /** Candidates built over the run, static design included. */
    int numCandidates = 1;
    /** Candidate active when the run ended. */
    int finalDesign = 0;
    double totalReconfigEnergy = 0.0;

    int countActions(AdaptiveActionKind kind) const;
};

/**
 * Static-vs-adaptive ledger reconciliation (see
 * reconcileAdaptive()).  Energies in joules.
 */
struct AdaptiveComparison
{
    /** Static ledger total, reconfiguration included. */
    double staticEnergy = 0.0;
    /** Adaptive ledger total, reconfiguration included. */
    double adaptiveEnergy = 0.0;
    /** Sum over epochs of (static - adaptive) attributed cell
     *  energy; positive when adaptation saved energy before
     *  reconfiguration charges. */
    double savings = 0.0;
    /** Adaptive reconfiguration charges. */
    double reconfigEnergy = 0.0;
    /** staticEnergy - adaptiveEnergy: positive when the adaptive
     *  run beat the static design net of reconfiguration. */
    double netSavings = 0.0;
};

/**
 * Run the adaptive controller over an epoch-bucketed trace.
 *
 * @param designer Designer owning the crossbar and power model the
 *        deployed design was built with; retargets and pricing use
 *        its model.
 * @param static_design The deployed design (candidate 0; also the
 *        pricing baseline for the per-epoch staticEnergy column).
 * @param policy Rule-table knobs (validated).
 * @param reader Epoch source; fatal if the trace has no epoch
 *        buckets.  The reader is consumed (epochs are pulled once,
 *        in order).
 * @param thread_to_core Optional thread-to-core permutation applied
 *        to every epoch cell before observation and accrual.
 * @param adaptive_ledger Optional ledger receiving the adaptive
 *        attribution: each epoch accrues under the design active
 *        entering it, switches charge reconfig cells, and the final
 *        active design's loss breakdowns are attached.  Must match
 *        the trace's dimensions and the candidate mode count.
 * @param pool Worker pool for candidate pricing and loss
 *        attachment (the global pool when null).
 */
AdaptiveLog runAdaptiveController(
    const core::Designer &designer,
    const core::MnocDesign &static_design,
    const AdaptivePolicy &policy, sim::TraceReader &reader,
    const std::vector<int> *thread_to_core = nullptr,
    core::EnergyLedger *adaptive_ledger = nullptr,
    ThreadPool *pool = nullptr);

/**
 * Reconcile a static and an adaptive ledger built over the same
 * trace: savings is the per-epoch attributed-energy difference, and
 * the identity
 *
 *   adaptiveEnergy = staticEnergy - savings + reconfigEnergy
 *                    - staticReconfigEnergy
 *
 * must hold to 1e-9 relative tolerance (panic otherwise) -- the
 * adaptive run may move joules between modes and epochs, but it can
 * never lose any.
 */
AdaptiveComparison reconcileAdaptive(
    const core::EnergyLedger &static_ledger,
    const core::EnergyLedger &adaptive_ledger,
    const AdaptiveLog &log);

} // namespace mnoc::runtime

#endif // MNOC_RUNTIME_ADAPTIVE_CONTROLLER_HH
