/**
 * @file
 * Tests of the runtime fault-injection engine: deterministic
 * timeline generation and composition, the epoch-boundary
 * degradation controller's rule table (trim, failover/restore,
 * collapse, fatal), hysteresis, and the reconfiguration-cost
 * accounting through the energy ledger.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "core/designer.hh"
#include "core/energy_ledger.hh"
#include "faults/variation.hh"
#include "runtime/degradation_controller.hh"
#include "runtime/fault_timeline.hh"

namespace {

using namespace mnoc;
using namespace mnoc::runtime;

/** 16-node fixture mirroring tests/test_faults.cc. */
struct RuntimeFixture
{
    static constexpr int kNodes = 16;
    optics::SerpentineLayout layout{kNodes, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    core::Designer designer{xbar};

    core::MnocDesign
    twoModeDesign(DecibelLoss margin) const
    {
        core::DesignSpec spec;
        spec.numModes = 2;
        spec.assignment = core::Assignment::DistanceBased;
        spec.weights = core::WeightSource::DesignFlow;
        FlowMatrix flow(kNodes, kNodes, 0.1);
        for (int i = 0; i < kNodes; ++i) {
            flow(i, i) = 0.0;
            flow(i, (i + 1) % kNodes) = 50.0;
        }
        auto topology = designer.buildTopology(spec, flow);
        return designer.buildDesign(spec, topology, flow, margin);
    }

    faults::DeviceVariation
    identityVariation() const
    {
        Prng prng(1);
        return faults::drawVariation(
            faults::VariationSpec{}.scaled(0.0), params, kNodes,
            prng);
    }
};

/** Spec with every rate zeroed; tests switch on one kind at a time
 *  so the controller's response is attributable. */
FaultTimelineSpec
quietSpec()
{
    FaultTimelineSpec spec;
    spec.thermalDriftRate = 0.0;
    spec.laserDroopRate = 0.0;
    spec.splitterAgingRate = 0.0;
    spec.receiverDriftRate = 0.0;
    spec.deadModeRate = 0.0;
    return spec;
}

TEST(FaultTimeline, GenerationIsSeededAndCanonical)
{
    FaultTimelineSpec spec;
    FaultTimeline a(spec, 16, 4, 40, 7);
    FaultTimeline b(spec, 16, 4, 40, 7);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].startEpoch, b.events()[i].startEpoch);
        EXPECT_EQ(a.events()[i].endEpoch, b.events()[i].endEpoch);
        EXPECT_EQ(a.events()[i].node, b.events()[i].node);
        EXPECT_EQ(a.events()[i].mode, b.events()[i].mode);
        EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    }

    // Expected count: round(rate * epochs) summed over the kinds.
    std::size_t expected = 0;
    for (double rate :
         {spec.thermalDriftRate, spec.laserDroopRate,
          spec.splitterAgingRate, spec.receiverDriftRate,
          spec.deadModeRate})
        expected += static_cast<std::size_t>(
            std::llround(rate * 40.0));
    EXPECT_EQ(a.events().size(), expected);
    EXPECT_GT(expected, 0u);

    // Canonical order and well-formed windows/targets.
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const FaultEvent &event = a.events()[i];
        if (i > 0) {
            EXPECT_LE(a.events()[i - 1].startEpoch,
                      event.startEpoch);
        }
        EXPECT_LT(event.startEpoch, 40u);
        EXPECT_GT(event.endEpoch, event.startEpoch);
        EXPECT_LE(event.endEpoch, 40u);
        if (event.kind == FaultKind::DeadMode) {
            EXPECT_GE(event.mode, 0);
            EXPECT_LT(event.mode, 3); // broadcast mode never dies
        }
        if (event.kind == FaultKind::ReceiverDrift) {
            EXPECT_EQ(event.node, -1);
        }
    }

    // A different seed draws a different schedule.
    FaultTimeline c(spec, 16, 4, 40, 8);
    bool same = a.events().size() == c.events().size();
    if (same)
        for (std::size_t i = 0; i < a.events().size(); ++i)
            same = same && a.events()[i].startEpoch ==
                               c.events()[i].startEpoch &&
                   a.events()[i].magnitude == c.events()[i].magnitude;
    EXPECT_FALSE(same);

    // Broadcast-only designs get no dead-mode events.
    FaultTimeline solo(spec, 16, 1, 40, 7);
    for (const FaultEvent &event : solo.events())
        EXPECT_NE(event.kind, FaultKind::DeadMode);
}

TEST(FaultTimeline, StateComposesActiveEventsOnly)
{
    auto spec = quietSpec();
    spec.thermalDriftRate = 0.2;
    spec.thermalDriftEpochs = 5;
    FaultTimeline timeline(spec, 16, 2, 30, 11);
    ASSERT_FALSE(timeline.events().empty());

    // activeEvents integrated over epochs equals the sum of window
    // lengths, and the triangular ramp peaks inside each window.
    std::size_t active_epochs = 0;
    for (std::size_t e = 0; e < 30; ++e)
        active_epochs += static_cast<std::size_t>(
            timeline.stateAt(e).activeEvents);
    std::size_t window_sum = 0;
    for (const FaultEvent &event : timeline.events())
        window_sum += event.endEpoch - event.startEpoch;
    EXPECT_EQ(active_epochs, window_sum);

    const FaultEvent &event = timeline.events().front();
    std::size_t mid =
        event.startEpoch + (event.endEpoch - event.startEpoch) / 2;
    auto node = static_cast<std::size_t>(event.node);
    auto at = [&](std::size_t e) {
        return timeline.stateAt(e).thermalSkew[node].dB();
    };
    EXPECT_GT(at(mid), 0.0);
    EXPECT_GE(at(mid), at(event.startEpoch));
    // Outside every window the state is the identity.
    FaultTimeline none(quietSpec(), 16, 2, 4, 3);
    auto idle = none.stateAt(0);
    EXPECT_EQ(idle.activeEvents, 0);
    EXPECT_EQ(idle.receiverSkew.dB(), 0.0);
    for (int s = 0; s < 16; ++s) {
        auto slot = static_cast<std::size_t>(s);
        EXPECT_EQ(idle.thermalSkew[slot].dB(), 0.0);
        EXPECT_EQ(idle.ledScale[slot], 1.0);
        EXPECT_EQ(idle.splitterAgeScale[slot], 1.0);
        EXPECT_EQ(idle.deadModes[slot], 0u);
    }
}

TEST(FaultTimeline, ValidationRejectsNonsense)
{
    FaultTimelineSpec spec;
    EXPECT_THROW(spec.scaled(-1.0), FatalError);
    spec.laserDroopStep = 1.5;
    EXPECT_THROW(spec.validate(), FatalError);
    spec = FaultTimelineSpec{};
    EXPECT_THROW(FaultTimeline(spec, 0, 2, 8, 1), FatalError);
    EXPECT_THROW(FaultTimeline(spec, 16, 0, 8, 1), FatalError);
    EXPECT_THROW(FaultTimeline(spec, 16, 33, 8, 1), FatalError);
    EXPECT_THROW(FaultTimeline(spec, 16, 2, 0, 1), FatalError);
}

TEST(Controller, QuietTimelineFiresNoRules)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(0.5));
    auto variation = fx.identityVariation();
    FaultTimeline timeline(quietSpec(), RuntimeFixture::kNodes, 2, 6,
                           1);
    DegradationPolicy policy;
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, nullptr,
                                        &pool);
    ASSERT_EQ(log.epochs.size(), 6u);
    EXPECT_TRUE(log.actions.empty());
    EXPECT_EQ(log.finalNumModes, 2);
    EXPECT_EQ(log.totalReconfigEnergy, 0.0);
    for (const auto &epoch : log.epochs) {
        EXPECT_EQ(epoch.actions, 0);
        EXPECT_EQ(epoch.activeFaults, 0);
        // The designed-in margin survives the identity replay.
        EXPECT_NEAR(epoch.marginBefore.dB(), 0.5, 1e-6);
        EXPECT_EQ(epoch.marginBefore.dB(), epoch.marginAfter.dB());
    }
}

TEST(Controller, TrimsDefendMarginUnderLaserDroop)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(0.5));
    auto variation = fx.identityVariation();
    auto spec = quietSpec();
    spec.laserDroopRate = 0.5;  // ~6 droop events over 12 epochs
    spec.laserDroopStep = 0.2;  // ~1 dB of output lost per event
    FaultTimeline timeline(spec, RuntimeFixture::kNodes, 2, 12, 9);
    ASSERT_FALSE(timeline.events().empty());

    DegradationPolicy policy;
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, nullptr,
                                        &pool);
    EXPECT_GT(log.countActions(ActionKind::Trim), 0);
    // Every epoch closes at or above the required margin: the
    // controller's core invariant.
    for (const auto &epoch : log.epochs)
        EXPECT_GE(epoch.marginAfter.dB(),
                  policy.requiredMargin.dB() - 1e-9);
    // Trim actions carry the trim level and the energy model's cost.
    for (const auto &action : log.actions) {
        if (action.kind != ActionKind::Trim)
            continue;
        EXPECT_GT(action.trimAfter.dB(), 0.0);
        EXPECT_LE(action.trimAfter.dB(),
                  policy.maxTrim.dB() + 1e-9);
        EXPECT_NEAR(action.energyCost,
                    policy.trimEnergyPerDb * policy.trimStep.dB(),
                    policy.trimEnergyPerDb * policy.trimStep.dB());
    }
}

TEST(Controller, DeadModeFailoverMatchesTimelineAndRestores)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(0.5));
    auto variation = fx.identityVariation();
    auto spec = quietSpec();
    spec.deadModeRate = 0.5;
    spec.deadModeEpochs = 2;
    constexpr std::size_t kEpochs = 10;
    FaultTimeline timeline(spec, RuntimeFixture::kNodes, 2, kEpochs,
                           3);
    ASSERT_FALSE(timeline.events().empty());

    DegradationPolicy policy;
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, nullptr,
                                        &pool);

    // Expected failovers/restores follow from the composed dead-mode
    // masks alone; the controller must book exactly those.
    int expected_failovers = 0;
    int expected_restores = 0;
    std::vector<std::uint32_t> prev(RuntimeFixture::kNodes, 0u);
    for (std::size_t e = 0; e < kEpochs; ++e) {
        auto state = timeline.stateAt(e);
        for (int s = 0; s < RuntimeFixture::kNodes; ++s) {
            auto slot = static_cast<std::size_t>(s);
            std::uint32_t newly = state.deadModes[slot] & ~prev[slot];
            std::uint32_t gone = prev[slot] & ~state.deadModes[slot];
            while (newly != 0u) {
                expected_failovers += static_cast<int>(newly & 1u);
                newly >>= 1u;
            }
            while (gone != 0u) {
                expected_restores += static_cast<int>(gone & 1u);
                gone >>= 1u;
            }
            prev[slot] = state.deadModes[slot];
        }
    }
    EXPECT_GE(expected_failovers, 1);
    EXPECT_EQ(log.countActions(ActionKind::Failover),
              expected_failovers);
    EXPECT_EQ(log.countActions(ActionKind::Restore),
              expected_restores);
    // Failing over to the broadcast mode only ever raises received
    // power, so the margin requirement holds without trims.
    EXPECT_EQ(log.countActions(ActionKind::Trim), 0);
    for (const auto &epoch : log.epochs)
        EXPECT_GE(epoch.marginAfter.dB(), -1e-9);
}

TEST(Controller, CollapsesWorstModeWhenTrimsExhaust)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(0.5));
    // Give the broadcast mode 3 dB of extra headroom: once die-wide
    // receiver drift eats the short-reach mode's margin and the trim
    // ceiling, collapsing into broadcast is the rule that saves the
    // epoch.
    for (auto &source : design.sources)
        source.modePower[1] =
            source.modePower[1] * DecibelLoss(3.0).toAttenuation();

    auto variation = fx.identityVariation();
    auto spec = quietSpec();
    spec.receiverDriftRate = 0.25; // 2 permanent events / 8 epochs
    spec.receiverDriftStep = DecibelLoss(0.8);
    FaultTimeline timeline(spec, RuntimeFixture::kNodes, 2, 8, 5);
    ASSERT_EQ(timeline.events().size(), 2u);

    DegradationPolicy policy;
    policy.maxTrim = policy.trimStep; // one trim step, then collapse
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, nullptr,
                                        &pool);
    EXPECT_EQ(log.countActions(ActionKind::Collapse), 1);
    EXPECT_EQ(log.finalNumModes, 1);
    for (const auto &epoch : log.epochs)
        EXPECT_GE(epoch.marginAfter.dB(),
                  policy.requiredMargin.dB() - 1e-9);
    // The mode count the epochs report drops at the collapse epoch.
    int collapse_epoch = -1;
    for (const auto &action : log.actions)
        if (action.kind == ActionKind::Collapse)
            collapse_epoch = static_cast<int>(action.epoch);
    ASSERT_GE(collapse_epoch, 0);
    for (const auto &epoch : log.epochs)
        EXPECT_EQ(epoch.numModes,
                  static_cast<int>(epoch.epoch) < collapse_epoch ? 2
                                                                 : 1);
}

TEST(Controller, FatalsOnlyWhenNoRuleRestoresMargin)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(0.5));
    auto variation = fx.identityVariation();
    auto spec = quietSpec();
    // Die-wide sensitivity loss far beyond trim + collapse headroom.
    spec.receiverDriftRate = 1.0;
    spec.receiverDriftStep = DecibelLoss(3.0);
    FaultTimeline timeline(spec, RuntimeFixture::kNodes, 2, 8, 5);

    DegradationPolicy policy;
    policy.maxTrim = DecibelLoss(1.0);
    ThreadPool pool(1);
    EXPECT_THROW(runDegradationController(fx.layout, design,
                                          variation, timeline, policy,
                                          nullptr, &pool),
                 FatalError);
}

TEST(Controller, HysteresisRelaxesTrimsAfterHealthyStreak)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(2.0));
    auto variation = fx.identityVariation();
    auto spec = quietSpec();
    // One early transient thermal excursion, then a long recovery:
    // trims must step in during the ramp and relax afterwards.
    spec.thermalDriftRate = 2.0 / 24.0; // 2 events over 24 epochs
    spec.thermalDriftPeak = DecibelLoss(3.0);
    spec.thermalDriftEpochs = 4;
    FaultTimeline timeline(spec, RuntimeFixture::kNodes, 2, 24, 2);

    DegradationPolicy policy;
    policy.requiredMargin = DecibelLoss(1.0);
    // Healthy threshold strictly below the 2 dB design margin:
    // untouched sources evaluate a hair under it (fp noise), and the
    // streak must still build once the excursion passes.
    policy.restoreHysteresis = DecibelLoss(0.9);
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, nullptr,
                                        &pool);
    EXPECT_GT(log.countActions(ActionKind::Trim), 0);
    EXPECT_GT(log.countActions(ActionKind::Relax), 0);
    // Relaxes only fire after the configured healthy streak.
    for (const auto &action : log.actions) {
        if (action.kind == ActionKind::Relax) {
            EXPECT_GE(action.epoch,
                      static_cast<std::size_t>(
                          policy.healthyEpochsToRelax));
        }
    }
}

TEST(FaultTimeline, ExplicitEventListIsValidatedAndCanonical)
{
    std::vector<FaultEvent> events;
    FaultEvent droop;
    droop.kind = FaultKind::LaserDroop;
    droop.startEpoch = 4;
    droop.endEpoch = 8;
    droop.node = 3;
    droop.magnitude = 0.1;
    FaultEvent dead;
    dead.kind = FaultKind::DeadMode;
    dead.startEpoch = 1;
    dead.endEpoch = 3;
    dead.node = 0;
    dead.mode = 0;
    events.push_back(droop);
    events.push_back(dead);

    FaultTimeline timeline(events, 16, 2, 10);
    ASSERT_EQ(timeline.events().size(), 2u);
    // Re-sorted into canonical (startEpoch, ...) order.
    EXPECT_EQ(timeline.events()[0].kind, FaultKind::DeadMode);
    EXPECT_EQ(timeline.events()[1].kind, FaultKind::LaserDroop);
    EXPECT_EQ(timeline.seed(), 0u);

    // Window outside the run, out-of-range node, and a dead
    // broadcast mode are all rejected.
    auto bad = events;
    bad[0].endEpoch = 11;
    EXPECT_THROW(FaultTimeline(bad, 16, 2, 10), FatalError);
    bad = events;
    bad[0].startEpoch = bad[0].endEpoch;
    EXPECT_THROW(FaultTimeline(bad, 16, 2, 10), FatalError);
    bad = events;
    bad[0].node = 16;
    EXPECT_THROW(FaultTimeline(bad, 16, 2, 10), FatalError);
    bad = events;
    bad[1].mode = 1; // the broadcast mode of a 2-mode design
    EXPECT_THROW(FaultTimeline(bad, 16, 2, 10), FatalError);
}

TEST(Controller, RestoredSourceMustReearnItsRelaxStreak)
{
    // Regression: the relax rule used to build one die-wide healthy
    // streak, so a source whose mode had just failed over and
    // restored could have its trim relaxed immediately afterwards --
    // the broadcast reroute keeps the die-wide margin comfortable,
    // so the global streak never noticed the disruption.  The streak
    // is per-source now, and a liveness change resets it.
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(2.0));
    auto variation = fx.identityVariation();

    // A thermal excursion on source 0 forces trims that outlast it,
    // then a dead-mode outage on the same source fails over at epoch
    // 6 and restores at epoch 8, in the middle of what would
    // otherwise be its healthy streak.
    std::vector<FaultEvent> events;
    FaultEvent ramp;
    ramp.kind = FaultKind::ThermalDrift;
    ramp.startEpoch = 1;
    ramp.endEpoch = 5;
    ramp.node = 0;
    ramp.magnitude = 3.0;
    FaultEvent outage;
    outage.kind = FaultKind::DeadMode;
    outage.startEpoch = 6;
    outage.endEpoch = 8;
    outage.node = 0;
    outage.mode = 0;
    events.push_back(ramp);
    events.push_back(outage);
    constexpr std::size_t kEpochs = 16;
    FaultTimeline timeline(events, RuntimeFixture::kNodes, 2,
                           kEpochs);

    DegradationPolicy policy;
    policy.requiredMargin = DecibelLoss(1.0);
    policy.restoreHysteresis = DecibelLoss(0.9);
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, nullptr,
                                        &pool);

    EXPECT_GT(log.countActions(ActionKind::Trim), 0);
    EXPECT_EQ(log.countActions(ActionKind::Failover), 1);
    EXPECT_EQ(log.countActions(ActionKind::Restore), 1);
    ASSERT_GT(log.countActions(ActionKind::Relax), 0);
    // Source 0's relax may fire no earlier than a full healthy
    // streak after its restore at epoch 8; the buggy die-wide streak
    // relaxed at epoch 8 (counting from the excursion's end).
    for (const auto &action : log.actions) {
        if (action.kind != ActionKind::Relax)
            continue;
        ASSERT_EQ(action.source, 0);
        EXPECT_GE(action.epoch,
                  8 + static_cast<std::size_t>(
                          policy.healthyEpochsToRelax) -
                      1);
    }
}

TEST(Controller, ChargesReconfigurationEnergyIntoLedger)
{
    RuntimeFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(0.5));
    auto variation = fx.identityVariation();
    auto spec = quietSpec();
    spec.laserDroopRate = 0.5;
    spec.laserDroopStep = 0.2;
    constexpr std::size_t kEpochs = 12;
    FaultTimeline timeline(spec, RuntimeFixture::kNodes, 2, kEpochs,
                           9);

    core::EnergyLedger ledger(RuntimeFixture::kNodes, 2, kEpochs,
                              1.0e-3);
    // Seed a few attribution cells so the conservation check spans
    // both kinds of energy.
    ledger.cell(0, 0, 0).sourceEnergy = 3.0e-9;
    ledger.cell(1, 1, 2).oeEnergy = 2.0e-9;
    ledger.cell(2, 0, 5).electricalEnergy = 1.0e-9;

    DegradationPolicy policy;
    ThreadPool pool(1);
    auto log = runDegradationController(fx.layout, design, variation,
                                        timeline, policy, &ledger,
                                        &pool);
    ASSERT_GT(log.totalReconfigEnergy, 0.0);

    // Per-epoch cells mirror the controller's log exactly, and the
    // ledger total sums cell energy plus reconfiguration energy to
    // within the ledger's 1e-9 conservation tolerance.
    double reconfig = 0.0;
    for (const auto &epoch : log.epochs) {
        EXPECT_EQ(ledger.reconfigEnergy(epoch.epoch),
                  epoch.reconfigEnergy);
        reconfig += epoch.reconfigEnergy;
    }
    EXPECT_EQ(ledger.totalReconfigEnergy(), reconfig);
    EXPECT_EQ(log.totalReconfigEnergy, reconfig);
    double cells = 3.0e-9 + 2.0e-9 + 1.0e-9;
    EXPECT_TRUE(nearlyEqual(ledger.totalEnergy(), cells + reconfig,
                            1e-9));
    EXPECT_TRUE(nearlyEqual(ledger.averagePower().reconfig,
                            reconfig / 1.0e-3, 1e-9));

    // Epoch-count mismatches are rejected up front.
    core::EnergyLedger off_by_one(RuntimeFixture::kNodes, 2,
                                  kEpochs + 1, 1.0e-3);
    EXPECT_THROW(runDegradationController(fx.layout, design,
                                          variation, timeline, policy,
                                          &off_by_one, &pool),
                 FatalError);
}

TEST(Controller, PolicyValidationRejectsNonsense)
{
    DegradationPolicy policy;
    policy.trimStep = DecibelLoss(0.0);
    EXPECT_THROW(policy.validate(), FatalError);
    policy = DegradationPolicy{};
    policy.maxTrim = DecibelLoss(0.1);
    EXPECT_THROW(policy.validate(), FatalError);
    policy = DegradationPolicy{};
    policy.healthyEpochsToRelax = 0;
    EXPECT_THROW(policy.validate(), FatalError);
    policy = DegradationPolicy{};
    policy.collapseEnergy = -1.0;
    EXPECT_THROW(policy.validate(), FatalError);
}

} // namespace
