/**
 * @file
 * Bit-exactness tests of the deterministic parallel execution layer
 * (DESIGN.md §9): the Monte Carlo yield analysis and the QAP
 * multi-start solvers must return exactly the same results on pools
 * of 1, 2, and 8 threads, and multi-start with a single restart must
 * reproduce the plain single-start solvers.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/metrics.hh"
#include "common/prng.hh"
#include "common/thread_pool.hh"
#include "core/designer.hh"
#include "core/energy_ledger.hh"
#include "faults/yield.hh"
#include "qap/multi_start.hh"
#include "runtime/degradation_controller.hh"
#include "runtime/fault_timeline.hh"

namespace {

using namespace mnoc;

/** 16-node two-mode design, mirroring tests/test_faults.cc. */
struct YieldFixture
{
    static constexpr int kNodes = 16;
    optics::SerpentineLayout layout{kNodes, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    core::Designer designer{xbar};

    core::MnocDesign
    design() const
    {
        core::DesignSpec spec;
        spec.numModes = 2;
        spec.assignment = core::Assignment::DistanceBased;
        spec.weights = core::WeightSource::DesignFlow;
        FlowMatrix flow(kNodes, kNodes, 0.1);
        for (int i = 0; i < kNodes; ++i) {
            flow(i, i) = 0.0;
            flow(i, (i + 1) % kNodes) = 50.0;
        }
        auto topology = designer.buildTopology(spec, flow);
        return designer.buildDesign(spec, topology, flow,
                                    DecibelLoss(2.0));
    }
};

/** Every field of the report, including every draw, must match. */
void
expectSameReport(const faults::YieldReport &a,
                 const faults::YieldReport &b)
{
    EXPECT_EQ(a.yield, b.yield);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.marginMean.dB(), b.marginMean.dB());
    EXPECT_EQ(a.marginMin.dB(), b.marginMin.dB());
    EXPECT_EQ(a.marginP5.dB(), b.marginP5.dB());
    EXPECT_EQ(a.berWorstMean, b.berWorstMean);
    EXPECT_EQ(a.berWorstMax, b.berWorstMax);
    EXPECT_EQ(a.marginFailuresByMode, b.marginFailuresByMode);
    EXPECT_EQ(a.leakFailuresByMode, b.leakFailuresByMode);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t i = 0; i < a.draws.size(); ++i) {
        EXPECT_EQ(a.draws[i].pass, b.draws[i].pass);
        EXPECT_EQ(a.draws[i].worstMargin.dB(),
                  b.draws[i].worstMargin.dB());
        EXPECT_EQ(a.draws[i].worstLeak.dB(),
                  b.draws[i].worstLeak.dB());
        EXPECT_EQ(a.draws[i].worstBitErrorRate,
                  b.draws[i].worstBitErrorRate);
        EXPECT_EQ(a.draws[i].marginFailures,
                  b.draws[i].marginFailures);
        EXPECT_EQ(a.draws[i].leakFailures, b.draws[i].leakFailures);
    }
}

TEST(Determinism, YieldIsBitIdenticalAcrossPoolSizes)
{
    YieldFixture fx;
    auto design = fx.design();
    faults::VariationSpec spec;
    constexpr int kTrials = 120;

    ThreadPool one(1);
    ThreadPool two(2);
    ThreadPool eight(8);
    auto serial =
        faults::analyzeYield(fx.layout, fx.params, design.sources,
                             spec, kTrials, 99, {}, &one);
    auto dual =
        faults::analyzeYield(fx.layout, fx.params, design.sources,
                             spec, kTrials, 99, {}, &two);
    auto wide =
        faults::analyzeYield(fx.layout, fx.params, design.sources,
                             spec, kTrials, 99, {}, &eight);
    expectSameReport(serial, dual);
    expectSameReport(serial, wide);
}

TEST(Determinism, YieldDefaultPoolMatchesExplicitSerial)
{
    YieldFixture fx;
    auto design = fx.design();
    faults::VariationSpec spec;

    ThreadPool one(1);
    auto serial =
        faults::analyzeYield(fx.layout, fx.params, design.sources,
                             spec, 60, 7, {}, &one);
    auto global = faults::analyzeYield(fx.layout, fx.params,
                                       design.sources, spec, 60, 7);
    expectSameReport(serial, global);
}

/** Random symmetric QAP instance with zero diagonals. */
qap::QapInstance
randomInstance(int n, std::uint64_t seed)
{
    Prng rng(seed);
    FlowMatrix flow(n, n, 0.0);
    FlowMatrix dist(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            flow(i, j) = flow(j, i) = rng.uniform() * 10.0;
            dist(i, j) = dist(j, i) = rng.uniform() * 5.0;
        }
    }
    return qap::QapInstance(std::move(flow), std::move(dist));
}

TEST(Determinism, MultiStartTabooIsBitIdenticalAcrossPoolSizes)
{
    auto instance = randomInstance(24, 17);
    qap::TabooParams params;
    params.iterations = 4000;
    auto start = instance.identity();

    ThreadPool one(1);
    ThreadPool two(2);
    ThreadPool eight(8);
    auto serial =
        qap::multiStartTaboo(instance, start, params, 6, &one);
    auto dual = qap::multiStartTaboo(instance, start, params, 6, &two);
    auto wide =
        qap::multiStartTaboo(instance, start, params, 6, &eight);

    EXPECT_EQ(serial.perm, dual.perm);
    EXPECT_EQ(serial.cost, dual.cost);
    EXPECT_EQ(serial.iterations, dual.iterations);
    EXPECT_EQ(serial.perm, wide.perm);
    EXPECT_EQ(serial.cost, wide.cost);
    EXPECT_EQ(serial.iterations, wide.iterations);
}

TEST(Determinism, MultiStartAnnealingIsBitIdenticalAcrossPoolSizes)
{
    auto instance = randomInstance(20, 29);
    qap::AnnealingParams params;
    params.iterations = 20000;
    auto start = instance.identity();

    ThreadPool one(1);
    ThreadPool eight(8);
    auto serial =
        qap::multiStartAnnealing(instance, start, params, 5, &one);
    auto wide =
        qap::multiStartAnnealing(instance, start, params, 5, &eight);

    EXPECT_EQ(serial.perm, wide.perm);
    EXPECT_EQ(serial.cost, wide.cost);
    EXPECT_EQ(serial.iterations, wide.iterations);
}

TEST(Determinism, SingleRestartReproducesSingleStartSolvers)
{
    auto instance = randomInstance(24, 43);
    auto start = instance.identity();

    qap::TabooParams tp;
    tp.iterations = 4000;
    auto plain_taboo = qap::tabooSearch(instance, start, tp);
    auto multi_taboo =
        qap::multiStartTaboo(instance, start, tp, 1);
    EXPECT_EQ(plain_taboo.perm, multi_taboo.perm);
    EXPECT_EQ(plain_taboo.cost, multi_taboo.cost);
    EXPECT_EQ(plain_taboo.iterations, multi_taboo.iterations);

    qap::AnnealingParams ap;
    ap.iterations = 20000;
    auto plain_sa = qap::simulatedAnnealing(instance, start, ap);
    auto multi_sa = qap::multiStartAnnealing(instance, start, ap, 1);
    EXPECT_EQ(plain_sa.perm, multi_sa.perm);
    EXPECT_EQ(plain_sa.cost, multi_sa.cost);
    EXPECT_EQ(plain_sa.iterations, multi_sa.iterations);
}

TEST(Determinism, MultiStartNeverLosesToSingleStart)
{
    auto instance = randomInstance(24, 61);
    auto start = instance.identity();
    qap::TabooParams params;
    params.iterations = 4000;

    auto single = qap::tabooSearch(instance, start, params);
    auto multi = qap::multiStartTaboo(instance, start, params, 6);
    // Restart 0 IS the single-start run, so the ordered reduction can
    // only improve on it.
    EXPECT_LE(multi.cost, single.cost);
    EXPECT_EQ(multi.iterations, single.iterations * 6);
}

TEST(Determinism, MetricsJsonIsBitIdenticalAcrossPoolSizes)
{
    // The DESIGN.md §10 contract: the metrics the yield analyzer
    // records from inside parallelFor (sharded counters, histogram
    // tallies) export byte-identically at any pool size.
    YieldFixture fx;
    auto design = fx.design();
    faults::VariationSpec spec;
    constexpr int kTrials = 120;

    MetricsRegistry::setEnabled(true);
    auto &registry = MetricsRegistry::global();
    std::vector<std::string> exports;
    std::vector<faults::YieldReport> reports;
    for (int threads : {1, 2, 8}) {
        registry.reset();
        ThreadPool pool(threads);
        reports.push_back(
            faults::analyzeYield(fx.layout, fx.params, design.sources,
                                 spec, kTrials, 99, {}, &pool));
        exports.push_back(registry.toJson());
    }
    registry.reset();
    MetricsRegistry::setEnabled(false);

    expectSameReport(reports[0], reports[1]);
    expectSameReport(reports[0], reports[2]);
    EXPECT_EQ(exports[0], exports[1]);
    EXPECT_EQ(exports[0], exports[2]);
    EXPECT_NE(exports[0].find("yield.draws"), std::string::npos);
    EXPECT_NE(exports[0].find("yield.worst_margin_db"),
              std::string::npos);
}

TEST(Determinism, LedgerAndSeriesAreBitIdenticalAcrossPoolSizes)
{
    // The ledger is a pure function of (design, trace), and the
    // series it feeds uses sharded commutative folds, so both its
    // canonical rendering and the metrics JSON must export
    // byte-identically whether ledgers are built from a 1-, 2-, or
    // 8-thread pool.
    YieldFixture fx;
    auto design = fx.design();

    sim::Trace trace;
    trace.workloadName = "synthetic";
    trace.networkName = "mNoC";
    trace.totalTicks = 100000;
    trace.packets = CountMatrix(16, 16, 0);
    trace.flits = CountMatrix(16, 16, 0);
    trace.epochs.messagesPerEpoch = 64;
    std::vector<noc::EpochCell> first, second;
    for (int s = 0; s < 16; ++s) {
        int d = (s + 1) % 16;
        trace.packets(s, d) = 40;
        trace.flits(s, d) = 120;
        first.push_back({s, d, 25, 75});
        second.push_back({s, d, 15, 45});
    }
    trace.epochs.epochs = {first, second};

    auto render = [](const core::EnergyLedger &ledger) {
        std::string out;
        for (int s = 0; s < ledger.numSources(); ++s)
            for (int m = 0; m < ledger.numModes(); ++m)
                for (std::size_t e = 0; e < ledger.numEpochs(); ++e) {
                    const auto &cell = ledger.cell(s, m, e);
                    out += std::to_string(cell.flits) + " " +
                           jsonNumber(cell.txSeconds) + " " +
                           jsonNumber(cell.totalEnergy()) + "\n";
                }
        return out;
    };

    MetricsRegistry::setEnabled(true);
    auto &registry = MetricsRegistry::global();
    std::vector<std::string> metric_exports;
    std::vector<std::string> ledger_dumps;
    for (int threads : {1, 2, 8}) {
        registry.reset();
        ThreadPool pool(threads);
        std::mutex dump_mutex;
        std::string dump;
        pool.parallelFor(8, [&](long long i) {
            auto ledger =
                fx.designer.model().buildLedger(design, trace);
            if (i == 0) {
                std::lock_guard<std::mutex> lock(dump_mutex);
                dump = render(ledger);
            }
        });
        ledger_dumps.push_back(std::move(dump));
        metric_exports.push_back(registry.toJson());
    }
    registry.reset();
    MetricsRegistry::setEnabled(false);

    EXPECT_EQ(ledger_dumps[0], ledger_dumps[1]);
    EXPECT_EQ(ledger_dumps[0], ledger_dumps[2]);
    EXPECT_EQ(metric_exports[0], metric_exports[1]);
    EXPECT_EQ(metric_exports[0], metric_exports[2]);
    EXPECT_NE(metric_exports[0].find("ledger.epoch_flits"),
              std::string::npos);
    EXPECT_NE(metric_exports[0].find("ledger.builds"),
              std::string::npos);
}

TEST(Determinism, FaultedRunIsBitIdenticalAcrossPoolSizes)
{
    // A faulted run -- timeline generation plus the degradation
    // controller's per-source margin fan-out -- must replay
    // bit-identically at any MNOC_THREADS (ISSUE 6 acceptance).
    YieldFixture fx;
    auto design = fx.design();
    Prng prng(1);
    auto variation = faults::drawVariation(
        faults::VariationSpec{}.scaled(0.0), fx.params,
        YieldFixture::kNodes, prng);
    runtime::FaultTimelineSpec spec;
    runtime::FaultTimeline timeline(spec.scaled(2.0),
                                    YieldFixture::kNodes, 2, 20, 7);
    runtime::DegradationPolicy policy;
    policy.requiredMargin = DecibelLoss(0.5);

    std::vector<runtime::DegradationLog> logs;
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        logs.push_back(runtime::runDegradationController(
            fx.layout, design, variation, timeline, policy, nullptr,
            &pool));
    }
    for (std::size_t i = 1; i < logs.size(); ++i) {
        const auto &a = logs[0];
        const auto &b = logs[i];
        EXPECT_EQ(a.finalNumModes, b.finalNumModes);
        EXPECT_EQ(a.totalReconfigEnergy, b.totalReconfigEnergy);
        ASSERT_EQ(a.epochs.size(), b.epochs.size());
        for (std::size_t e = 0; e < a.epochs.size(); ++e) {
            EXPECT_EQ(a.epochs[e].marginBefore.dB(),
                      b.epochs[e].marginBefore.dB());
            EXPECT_EQ(a.epochs[e].marginAfter.dB(),
                      b.epochs[e].marginAfter.dB());
            EXPECT_EQ(a.epochs[e].actions, b.epochs[e].actions);
            EXPECT_EQ(a.epochs[e].reconfigEnergy,
                      b.epochs[e].reconfigEnergy);
        }
        ASSERT_EQ(a.actions.size(), b.actions.size());
        for (std::size_t k = 0; k < a.actions.size(); ++k) {
            EXPECT_EQ(a.actions[k].kind, b.actions[k].kind);
            EXPECT_EQ(a.actions[k].epoch, b.actions[k].epoch);
            EXPECT_EQ(a.actions[k].source, b.actions[k].source);
            EXPECT_EQ(a.actions[k].mode, b.actions[k].mode);
            EXPECT_EQ(a.actions[k].trimAfter.dB(),
                      b.actions[k].trimAfter.dB());
            EXPECT_EQ(a.actions[k].energyCost,
                      b.actions[k].energyCost);
        }
    }
    // The shared schedule must actually exercise the controller.
    EXPECT_FALSE(timeline.events().empty());
    EXPECT_FALSE(logs[0].actions.empty());
}

TEST(Determinism, DeriveSeedStreamsAreStableAndDistinct)
{
    // deriveSeed is the documented per-task seeding policy; pin a few
    // values so reseeding schemes cannot drift silently.
    EXPECT_EQ(deriveSeed(0, 0), deriveSeed(0, 0));
    EXPECT_NE(deriveSeed(0, 0), deriveSeed(0, 1));
    EXPECT_NE(deriveSeed(0, 0), deriveSeed(1, 0));
    std::uint64_t a = deriveSeed(42, 0);
    std::uint64_t b = deriveSeed(42, 1);
    std::uint64_t c = deriveSeed(42, 2);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
}

} // namespace
