#!/bin/sh
# Golden-file test for `mnocpt report`: rendering the pinned 256-node
# trace fixture must reproduce the committed artifacts byte-for-byte.
# The report stamps its outputs with the *trace's* embedded manifest
# (gitSha pinned to "0000000" in the fixture), so the bytes are
# stable across commits; any drift is a deliberate format change and
# needs regenerated goldens (re-run this pipeline and copy the
# artifacts into tests/data/golden_report/).
#
# Usage: test_report.sh <mnocpt-binary> <tests/data-dir>
set -eu

MNOCPT=${1:?usage: test_report.sh <mnocpt> <data-dir>}
DATA=${2:?usage: test_report.sh <mnocpt> <data-dir>}
DIR="${TMPDIR:-/tmp}/mnocpt_report_$$"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

"$MNOCPT" design --trace "$DATA/golden_trace_256.trace" \
    --modes 2 --assign distance --out "$DIR/g.design" > /dev/null
"$MNOCPT" report --design "$DIR/g.design" \
    --trace "$DATA/golden_trace_256.trace" \
    --dir "$DIR/out" > /dev/null

status=0
for name in mnoc_report.md mnoc_power.csv mnoc_epochs.csv \
            mnoc_source_power.pgm; do
    if ! cmp -s "$DIR/out/$name" "$DATA/golden_report/$name"; then
        echo "test_report: FAIL: $name differs from golden" >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    exit 1
fi
echo "test_report: PASS (report artifacts byte-identical)"
