/**
 * @file
 * Tests of the QAP thread mapper (paper Section 4.4).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/thread_mapper.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct MapFixture
{
    optics::SerpentineLayout layout{16, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
};

TEST(ThreadMapper, DistanceMatrixSymmetricZeroDiagonal)
{
    MapFixture f;
    for (auto objective : {MappingObjective::SingleModeProfile,
                           MappingObjective::PairwiseAttenuation,
                           MappingObjective::Blended}) {
        auto dist = powerDistanceMatrix(f.xbar, objective);
        for (int a = 0; a < 16; ++a) {
            EXPECT_DOUBLE_EQ(dist(a, a), 0.0);
            for (int b = 0; b < 16; ++b) {
                if (a != b) {
                    EXPECT_NEAR(dist(a, b), dist(b, a),
                                1e-9 * dist(a, b));
                    EXPECT_GT(dist(a, b), 0.0);
                }
            }
        }
    }
}

TEST(ThreadMapper, LegacyDistanceMatrixSymmetric)
{
    MapFixture f;
    auto dist = powerDistanceMatrix(f.xbar);
    for (int a = 0; a < 16; ++a) {
        EXPECT_DOUBLE_EQ(dist(a, a), 0.0);
        for (int b = 0; b < 16; ++b) {
            EXPECT_NEAR(dist(a, b), dist(b, a), 1e-9 * dist(a, b));
            if (a != b) {
                EXPECT_GT(dist(a, b), 0.0);
            }
        }
    }
}

TEST(ThreadMapper, PairwiseDistanceGrowsWithSeparation)
{
    MapFixture f;
    auto dist = powerDistanceMatrix(
        f.xbar, MappingObjective::PairwiseAttenuation);
    for (int gap = 2; gap < 16; ++gap)
        EXPECT_GT(dist(0, gap), dist(0, gap - 1));
}

TEST(ThreadMapper, ProfileDistanceCheapestBetweenMiddleCores)
{
    MapFixture f;
    auto dist = powerDistanceMatrix(
        f.xbar, MappingObjective::SingleModeProfile);
    // A middle pair is cheaper than an end pair at the same gap.
    EXPECT_LT(dist(7, 8), dist(0, 1));
    EXPECT_LT(dist(7, 8), dist(14, 15));
}

TEST(ThreadMapper, IdentityMethodReturnsIdentity)
{
    MapFixture f;
    FlowMatrix flow(16, 16, 1.0);
    auto result = mapThreads(f.xbar, flow, MappingMethod::Identity);
    for (int t = 0; t < 16; ++t)
        EXPECT_EQ(result.threadToCore[t], t);
    EXPECT_DOUBLE_EQ(result.qapCost, result.identityCost);
}

TEST(ThreadMapper, TabooMovesHotPairTowardTheMiddle)
{
    MapFixture f;
    // Threads 0 and 1 dominate the traffic: the mapper should place
    // them on adjacent cores near the middle of the waveguide, where
    // the power-distance entries are smallest.
    FlowMatrix flow(16, 16, 0.01);
    for (int i = 0; i < 16; ++i)
        flow(i, i) = 0.0;
    flow(0, 1) = flow(1, 0) = 1000.0;

    MappingParams params;
    params.tabooIterations = 4000;
    auto result = mapThreads(f.xbar, flow, MappingMethod::Taboo,
                             params);
    EXPECT_LT(result.qapCost, result.identityCost);

    int c0 = result.threadToCore[0];
    int c1 = result.threadToCore[1];
    EXPECT_EQ(std::abs(c0 - c1), 1);
    // Near the middle of the 16-node serpentine.
    EXPECT_GE(std::min(c0, c1), 4);
    EXPECT_LE(std::max(c0, c1), 11);
}

TEST(ThreadMapper, MappingIsAPermutation)
{
    MapFixture f;
    FlowMatrix flow(16, 16, 1.0);
    for (int i = 0; i < 16; ++i)
        flow(i, i) = 0.0;
    for (auto method :
         {MappingMethod::Taboo, MappingMethod::Annealing}) {
        MappingParams params;
        params.tabooIterations = 500;
        params.annealingIterations = 5000;
        auto result = mapThreads(f.xbar, flow, method, params);
        std::vector<bool> used(16, false);
        for (int c : result.threadToCore) {
            ASSERT_GE(c, 0);
            ASSERT_LT(c, 16);
            EXPECT_FALSE(used[c]);
            used[c] = true;
        }
    }
}

TEST(ThreadMapper, AnnealingAlsoImproves)
{
    MapFixture f;
    FlowMatrix flow(16, 16, 0.01);
    for (int i = 0; i < 16; ++i)
        flow(i, i) = 0.0;
    flow(2, 14) = flow(14, 2) = 800.0;
    MappingParams params;
    params.annealingIterations = 30000;
    auto result = mapThreads(f.xbar, flow, MappingMethod::Annealing,
                             params);
    EXPECT_LT(result.qapCost, result.identityCost);
}

TEST(ThreadMapper, AsymmetricFlowIsHandledBySymmetrization)
{
    MapFixture f;
    FlowMatrix flow(16, 16, 0.0);
    flow(3, 9) = 100.0; // one-directional traffic
    MappingParams params;
    params.tabooIterations = 1000;
    auto result = mapThreads(f.xbar, flow, MappingMethod::Taboo,
                             params);
    // Pair (3, 9) ends up adjacent.
    EXPECT_EQ(std::abs(result.threadToCore[3] - result.threadToCore[9]),
              1);
}

TEST(ThreadMapper, SizeMismatchIsFatal)
{
    MapFixture f;
    FlowMatrix wrong(8, 8, 1.0);
    EXPECT_THROW(mapThreads(f.xbar, wrong), FatalError);
}

} // namespace
