/**
 * @file
 * Unit tests for the serpentine waveguide layout.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "optics/serpentine_layout.hh"

namespace {

using namespace mnoc;
using optics::SerpentineLayout;

TEST(Serpentine, EndpointsSpanTheWaveguide)
{
    SerpentineLayout layout{256, Meters(0.18)};
    EXPECT_DOUBLE_EQ(layout.arcPosition(0).meters(), 0.0);
    EXPECT_DOUBLE_EQ(layout.arcPosition(255).meters(), 0.18);
    EXPECT_NEAR(layout.arcPosition(128).meters(), 0.18 * 128 / 255,
                1e-12);
}

TEST(Serpentine, DistanceIsSymmetricAndProportional)
{
    SerpentineLayout layout{256, Meters(0.18)};
    EXPECT_DOUBLE_EQ(layout.distanceBetween(10, 30).meters(),
                     layout.distanceBetween(30, 10).meters());
    EXPECT_NEAR(layout.distanceBetween(0, 255).meters(), 0.18, 1e-12);
    EXPECT_NEAR(layout.distanceBetween(100, 101).meters(), 0.18 / 255,
                1e-12);
    EXPECT_DOUBLE_EQ(layout.distanceBetween(42, 42).meters(), 0.0);
}

TEST(Serpentine, IntermediateNodeCount)
{
    SerpentineLayout layout{16, Meters(0.1)};
    EXPECT_EQ(layout.intermediateNodes(0, 1), 0);
    EXPECT_EQ(layout.intermediateNodes(0, 2), 1);
    EXPECT_EQ(layout.intermediateNodes(5, 15), 9);
    EXPECT_EQ(layout.intermediateNodes(15, 5), 9);
    EXPECT_EQ(layout.intermediateNodes(7, 7), 0);
}

TEST(Serpentine, MaxReachSmallestAtMiddle)
{
    SerpentineLayout layout{256, Meters(0.18)};
    Meters end = layout.maxReachDistance(0);
    Meters mid = layout.maxReachDistance(127);
    EXPECT_DOUBLE_EQ(end.meters(), 0.18);
    EXPECT_NEAR(mid.meters(), 0.18 * 128 / 255, 1e-12);
    EXPECT_LT(mid, end);
    // The profile is monotone from the end to the middle.
    for (int s = 1; s <= 127; ++s)
        EXPECT_LE(layout.maxReachDistance(s),
                  layout.maxReachDistance(s - 1));
}

TEST(Serpentine, GridCoversAllNodesUniquely)
{
    SerpentineLayout layout{256, Meters(0.18)};
    auto [cols, rows] = layout.gridShape();
    EXPECT_EQ(cols, 16);
    EXPECT_EQ(rows, 16);
    std::set<std::pair<int, int>> seen;
    for (int node = 0; node < 256; ++node) {
        auto xy = layout.gridCoordinate(node);
        EXPECT_GE(xy.first, 0);
        EXPECT_LT(xy.first, cols);
        EXPECT_TRUE(seen.insert(xy).second);
    }
}

TEST(Serpentine, GridRowsAlternateDirection)
{
    SerpentineLayout layout{16, Meters(0.1)}; // 4x4 grid
    EXPECT_EQ(layout.gridCoordinate(0), std::make_pair(0, 0));
    EXPECT_EQ(layout.gridCoordinate(3), std::make_pair(3, 0));
    // Second row runs right-to-left.
    EXPECT_EQ(layout.gridCoordinate(4), std::make_pair(3, 1));
    EXPECT_EQ(layout.gridCoordinate(7), std::make_pair(0, 1));
}

TEST(Serpentine, AdjacentGridNodesAreWaveguideNeighbours)
{
    SerpentineLayout layout{16, Meters(0.1)};
    // Along a row, consecutive indices are physical neighbours, so the
    // serpentine never jumps across the die within a row.
    for (int node = 0; node + 1 < 16; ++node) {
        auto a = layout.gridCoordinate(node);
        auto b = layout.gridCoordinate(node + 1);
        int manhattan = std::abs(a.first - b.first) +
                        std::abs(a.second - b.second);
        EXPECT_EQ(manhattan, 1) << "between " << node << " and "
                                << node + 1;
    }
}

TEST(Serpentine, RejectsDegenerateConfigs)
{
    EXPECT_THROW(SerpentineLayout(1, Meters(0.1)), FatalError);
    EXPECT_THROW(SerpentineLayout(4, Meters(0.0)), FatalError);
    EXPECT_THROW(SerpentineLayout(4, Meters(-1.0)), FatalError);
    SerpentineLayout ok{4, Meters(0.1)};
    EXPECT_THROW(ok.arcPosition(-1), PanicError);
    EXPECT_THROW(ok.arcPosition(4), PanicError);
}

} // namespace
