/**
 * @file
 * Tests of the device-variation fault-injection subsystem: seeded
 * draws, yield analysis, the designer's hardening loop, and graceful
 * degradation down to broadcast.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "core/design_io.hh"
#include "core/designer.hh"
#include "faults/yield.hh"
#include "optics/link_budget.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct FaultsFixture
{
    static constexpr int kNodes = 16;
    optics::SerpentineLayout layout{kNodes, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    Designer designer{xbar};

    FlowMatrix
    neighbourFlow() const
    {
        FlowMatrix flow(kNodes, kNodes, 0.1);
        for (int i = 0; i < kNodes; ++i) {
            flow(i, i) = 0.0;
            flow(i, (i + 1) % kNodes) = 50.0;
        }
        return flow;
    }

    /** A two-mode design at the given built-in margin. */
    MnocDesign
    twoModeDesign(DecibelLoss margin) const
    {
        DesignSpec spec;
        spec.numModes = 2;
        spec.assignment = Assignment::DistanceBased;
        spec.weights = WeightSource::DesignFlow;
        FlowMatrix flow = neighbourFlow();
        auto topology = designer.buildTopology(spec, flow);
        return designer.buildDesign(spec, topology, flow, margin);
    }
};

TEST(Variation, GaussianIsDeterministicAndCentered)
{
    Prng a(42);
    Prng b(42);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        double x = faults::gaussian(a);
        EXPECT_EQ(x, faults::gaussian(b));
        sum += x;
    }
    EXPECT_NEAR(sum / 2000.0, 0.0, 0.1);
}

TEST(Variation, DrawRespectsSpecAndScaling)
{
    optics::DeviceParams nominal;
    faults::VariationSpec spec;
    Prng prng(7);
    auto draw = faults::drawVariation(spec, nominal, 8, prng);
    ASSERT_EQ(draw.splitterScale.size(), 8u);
    ASSERT_EQ(draw.ledOutputScale.size(), 8u);
    for (double led : draw.ledOutputScale) {
        EXPECT_LE(led, 1.0);
        EXPECT_GE(led, 0.1);
    }
    // Losses never go negative, whatever the draw.
    EXPECT_GE(draw.params.couplerLoss.dB(), 0.0);
    EXPECT_GE(draw.params.waveguideLossPerCm.dB(), 0.0);
    EXPECT_GE(draw.params.splitterInsertion.dB(), 0.0);

    // A zero-scaled spec is the identity draw.
    Prng zero_prng(7);
    auto none =
        faults::drawVariation(spec.scaled(0.0), nominal, 8, zero_prng);
    EXPECT_DOUBLE_EQ(none.params.couplerLoss.dB(),
                     nominal.couplerLoss.dB());
    EXPECT_DOUBLE_EQ(none.params.photodetectorMiop.watts(),
                     nominal.photodetectorMiop.watts());
    for (const auto &row : none.splitterScale)
        for (double s : row)
            EXPECT_DOUBLE_EQ(s, 1.0);
    for (double led : none.ledOutputScale)
        EXPECT_DOUBLE_EQ(led, 1.0);
}

TEST(Yield, SeededDrawsAreReproducible)
{
    FaultsFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(2.0));
    faults::VariationSpec spec;
    auto a = faults::analyzeYield(fx.layout, fx.params, design.sources,
                                  spec, 60, 99);
    auto b = faults::analyzeYield(fx.layout, fx.params, design.sources,
                                  spec, 60, 99);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    EXPECT_EQ(a.yield, b.yield);
    for (std::size_t i = 0; i < a.draws.size(); ++i) {
        EXPECT_EQ(a.draws[i].pass, b.draws[i].pass);
        EXPECT_EQ(a.draws[i].worstMargin.dB(),
                  b.draws[i].worstMargin.dB());
        EXPECT_EQ(a.draws[i].worstBitErrorRate,
                  b.draws[i].worstBitErrorRate);
    }

    auto c = faults::analyzeYield(fx.layout, fx.params, design.sources,
                                  spec, 60, 100);
    EXPECT_NE(a.draws[0].worstMargin.dB(), c.draws[0].worstMargin.dB());
}

TEST(Yield, ZeroVariationPassesAndTighterToleranceIsNoWorse)
{
    FaultsFixture fx;
    auto design = fx.twoModeDesign(DecibelLoss(1.5));
    faults::VariationSpec spec;

    auto none = faults::analyzeYield(
        fx.layout, fx.params, design.sources, spec.scaled(0.0), 10, 5);
    EXPECT_DOUBLE_EQ(none.yield, 1.0);
    // The designed-in margin survives the identity draw exactly.
    EXPECT_NEAR(none.marginMin.dB(), 1.5, 1e-6);

    auto tight = faults::analyzeYield(
        fx.layout, fx.params, design.sources, spec.scaled(0.25), 150, 5);
    auto loose = faults::analyzeYield(fx.layout, fx.params,
                                      design.sources, spec, 150, 5);
    EXPECT_GE(tight.yield, loose.yield);
}

TEST(Yield, UnhardenedDesignHasPoorYield)
{
    FaultsFixture fx;
    // No margin: every mode-unique link sits exactly at pmin, so any
    // symmetric perturbation fails about half the links.
    auto design = fx.twoModeDesign(DecibelLoss(0.0));
    faults::VariationSpec spec;
    auto report = faults::analyzeYield(fx.layout, fx.params,
                                       design.sources, spec, 50, 11);
    EXPECT_LT(report.yield, 0.2);
    EXPECT_GT(report.marginFailuresByMode[0] +
                  report.marginFailuresByMode[1],
              0);
}

TEST(PowerTopology, CollapseModeMergesUpward)
{
    auto topo = distanceBasedTopology(16, 4);
    auto collapsed = collapseMode(topo, 1);
    EXPECT_EQ(collapsed.numModes, 3);
    collapsed.validate();
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (d == s)
                continue;
            int before = topo.local(s).modeOfDest[d];
            int after = collapsed.local(s).modeOfDest[d];
            // Old modes 1 and 2 merge into new mode 1.
            EXPECT_EQ(after, before <= 1 ? before : before - 1);
        }
    }
    EXPECT_THROW(collapseMode(collapsed, 2), FatalError);
}

TEST(Hardening, LoopConvergesToYieldTarget)
{
    FaultsFixture fx;
    DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = Assignment::DistanceBased;
    spec.weights = WeightSource::DesignFlow;
    FlowMatrix flow = fx.neighbourFlow();
    auto topology = fx.designer.buildTopology(spec, flow);

    ResilienceParams resilience;
    resilience.yieldTarget = 0.9;
    resilience.trials = 80;
    resilience.seed = 21;
    auto hardened = fx.designer.buildResilientDesign(
        spec, topology, flow, resilience);

    EXPECT_TRUE(hardened.summary.metTarget);
    EXPECT_GE(hardened.summary.finalYield, 0.9);
    EXPECT_GT(hardened.summary.finalMargin.dB(), 0.0);
    EXPECT_FALSE(hardened.summary.path.empty());
    EXPECT_EQ(hardened.yield.yield, hardened.summary.finalYield);

    // The emitted design holds its nominal link budgets.
    WattPower pmin = fx.params.pminAtTap();
    for (int s = 0; s < FaultsFixture::kNodes; ++s) {
        auto budget = optics::validateDesign(
            fx.xbar.chain(s), hardened.design.sources[s], pmin);
        EXPECT_TRUE(budget.ok);
    }
}

TEST(Hardening, GracefulDegradationEndsAtBroadcast)
{
    FaultsFixture fx;
    DesignSpec spec;
    spec.numModes = 4;
    spec.assignment = Assignment::DistanceBased;
    spec.weights = WeightSource::DesignFlow;
    FlowMatrix flow = fx.neighbourFlow();
    auto topology = fx.designer.buildTopology(spec, flow);

    // An unreachable yield target with almost no margin headroom: the
    // loop must walk the mode count all the way down to broadcast and
    // still emit a nominally valid design.
    ResilienceParams resilience;
    resilience.yieldTarget = 1.0;
    resilience.trials = 40;
    resilience.seed = 5;
    resilience.variation = faults::VariationSpec{}.scaled(8.0);
    resilience.maxMargin = DecibelLoss(1.0);
    resilience.marginStep = DecibelLoss(0.5);
    auto degraded = fx.designer.buildResilientDesign(
        spec, topology, flow, resilience);

    EXPECT_FALSE(degraded.summary.metTarget);
    EXPECT_EQ(degraded.design.topology.numModes, 1);
    EXPECT_EQ(degraded.summary.finalNumModes, 1);

    // The path records three collapses, with mode counts descending.
    int collapses = 0;
    int last_modes = 4;
    for (const auto &step : degraded.summary.path) {
        EXPECT_LE(step.numModes, last_modes);
        last_modes = step.numModes;
        if (step.kind == DegradationStep::Kind::Collapse)
            ++collapses;
    }
    EXPECT_EQ(collapses, 3);

    WattPower pmin = fx.params.pminAtTap();
    for (int s = 0; s < FaultsFixture::kNodes; ++s) {
        auto budget = optics::validateDesign(
            fx.xbar.chain(s), degraded.design.sources[s], pmin);
        EXPECT_TRUE(budget.ok);
    }
}

TEST(Hardening, UnreachableTargetReportsBestAchievableShortfall)
{
    FaultsFixture fx;
    DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = Assignment::DistanceBased;
    spec.weights = WeightSource::DesignFlow;
    FlowMatrix flow = fx.neighbourFlow();
    auto topology = fx.designer.buildTopology(spec, flow);

    // Heavy variation and a perfect-yield target the margin budget
    // cannot buy: the loop must degrade gracefully and report the
    // shortfall instead of pretending it converged.
    ResilienceParams resilience;
    resilience.yieldTarget = 1.0;
    resilience.trials = 60;
    resilience.seed = 11;
    resilience.variation = faults::VariationSpec{}.scaled(6.0);
    resilience.maxMargin = DecibelLoss(1.5);
    resilience.marginStep = DecibelLoss(0.5);
    auto degraded = fx.designer.buildResilientDesign(
        spec, topology, flow, resilience);

    // Shortfall reporting: the target is marked unmet and the final
    // yield is the best the path actually measured, not the target.
    EXPECT_FALSE(degraded.summary.metTarget);
    EXPECT_LT(degraded.summary.finalYield, resilience.yieldTarget);
    double best_seen = -1.0;
    for (const auto &step : degraded.summary.path) {
        if (step.kind == DegradationStep::Kind::Margin)
            best_seen = std::max(best_seen, step.yield);
    }
    EXPECT_EQ(degraded.summary.finalYield, best_seen);
    EXPECT_EQ(degraded.yield.yield, best_seen);

    // Best-achievable, not garbage: the emitted design still passes
    // every nominal link budget.
    WattPower pmin = fx.params.pminAtTap();
    for (int s = 0; s < FaultsFixture::kNodes; ++s) {
        auto budget = optics::validateDesign(
            fx.xbar.chain(s), degraded.design.sources[s], pmin);
        EXPECT_TRUE(budget.ok);
    }
}

TEST(DesignIo, ResilienceSummaryRoundTrips)
{
    FaultsFixture fx;
    DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = Assignment::DistanceBased;
    spec.weights = WeightSource::DesignFlow;
    FlowMatrix flow = fx.neighbourFlow();
    auto topology = fx.designer.buildTopology(spec, flow);

    ResilienceParams resilience;
    resilience.yieldTarget = 0.8;
    resilience.trials = 40;
    resilience.seed = 13;
    auto hardened = fx.designer.buildResilientDesign(
        spec, topology, flow, resilience);

    std::string path =
        testing::TempDir() + "/resilient_design_roundtrip.txt";
    saveDesign(path, hardened.design, &hardened.summary);
    auto loaded = loadDesignReport(path);

    ASSERT_TRUE(loaded.resilience.has_value());
    const auto &summary = *loaded.resilience;
    EXPECT_DOUBLE_EQ(summary.yieldTarget, 0.8);
    EXPECT_EQ(summary.trials, 40);
    EXPECT_EQ(summary.seed, 13u);
    EXPECT_DOUBLE_EQ(summary.finalYield,
                     hardened.summary.finalYield);
    EXPECT_DOUBLE_EQ(summary.finalMargin.dB(),
                     hardened.summary.finalMargin.dB());
    EXPECT_EQ(summary.metTarget, hardened.summary.metTarget);
    ASSERT_EQ(summary.path.size(), hardened.summary.path.size());
    for (std::size_t i = 0; i < summary.path.size(); ++i) {
        EXPECT_EQ(summary.path[i].kind,
                  hardened.summary.path[i].kind);
        EXPECT_EQ(summary.path[i].numModes,
                  hardened.summary.path[i].numModes);
        EXPECT_DOUBLE_EQ(summary.path[i].yield,
                         hardened.summary.path[i].yield);
    }

    // A design saved without a summary still loads without one.
    std::string bare = testing::TempDir() + "/bare_design.txt";
    saveDesign(bare, hardened.design);
    EXPECT_FALSE(loadDesignReport(bare).resilience.has_value());
}

} // namespace
