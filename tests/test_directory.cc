/**
 * @file
 * Tests of the sharer set and MOSI directory invariants.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/directory.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

TEST(SharerSet, AddRemoveContains)
{
    SharerSet set(256);
    EXPECT_TRUE(set.empty());
    set.add(0);
    set.add(63);
    set.add(64);
    set.add(255);
    EXPECT_EQ(set.count(), 4);
    EXPECT_TRUE(set.contains(63));
    EXPECT_TRUE(set.contains(64));
    EXPECT_FALSE(set.contains(1));
    set.remove(64);
    EXPECT_FALSE(set.contains(64));
    EXPECT_EQ(set.count(), 3);
}

TEST(SharerSet, MembersAscending)
{
    SharerSet set(200);
    set.add(150);
    set.add(3);
    set.add(64);
    auto members = set.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0], 3);
    EXPECT_EQ(members[1], 64);
    EXPECT_EQ(members[2], 150);
}

TEST(SharerSet, ClearAndIdempotentOps)
{
    SharerSet set(10);
    set.add(5);
    set.add(5); // idempotent
    EXPECT_EQ(set.count(), 1);
    set.remove(7); // not present: no-op
    EXPECT_EQ(set.count(), 1);
    set.clear();
    EXPECT_TRUE(set.empty());
}

TEST(SharerSet, RangeChecked)
{
    SharerSet set(8);
    EXPECT_THROW(set.add(8), PanicError);
    EXPECT_THROW(set.contains(-1), PanicError);
}

TEST(Directory, EntriesCreatedOnDemand)
{
    Directory dir(16);
    EXPECT_EQ(dir.numEntries(), 0u);
    EXPECT_EQ(dir.find(42), nullptr);
    DirEntry &e = dir.entry(42);
    EXPECT_EQ(e.state, DirState::Invalid);
    EXPECT_EQ(dir.numEntries(), 1u);
    EXPECT_EQ(dir.find(42), &dir.entry(42));
}

TEST(Directory, InvariantChecksCatchCorruption)
{
    Directory dir(16);
    {
        DirEntry &e = dir.entry(1);
        e.state = DirState::Shared; // no sharers: invalid
        EXPECT_THROW(dir.checkInvariants(1), PanicError);
        e.sharers.add(3);
        e.owner = -1;
        EXPECT_NO_THROW(dir.checkInvariants(1));
    }
    {
        DirEntry &e = dir.entry(2);
        e.state = DirState::Modified;
        e.owner = 5;
        e.sharers.add(5);
        EXPECT_NO_THROW(dir.checkInvariants(2));
        e.sharers.add(6); // extra sharer on a Modified line
        EXPECT_THROW(dir.checkInvariants(2), PanicError);
    }
    {
        DirEntry &e = dir.entry(3);
        e.state = DirState::Owned;
        e.owner = 1;
        e.sharers.add(1);
        EXPECT_THROW(dir.checkInvariants(3), PanicError); // no sharer
        e.sharers.add(2);
        EXPECT_NO_THROW(dir.checkInvariants(3));
    }
    {
        DirEntry &e = dir.entry(4);
        e.state = DirState::Invalid;
        e.sharers.add(0);
        EXPECT_THROW(dir.checkInvariants(4), PanicError);
    }
}

} // namespace
