/**
 * @file
 * Tests of the mNoC power model: design construction, evaluation
 * against traces, and the paper's qualitative power relationships.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/builders.hh"
#include "core/power_model.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct PmFixture
{
    optics::SerpentineLayout layout{16, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    PowerParams power;
    MnocPowerModel model{xbar, power};

    sim::Trace
    uniformTrace(std::uint64_t flits_per_pair = 100,
                 noc::Tick ticks = 100000) const
    {
        sim::Trace t;
        t.workloadName = "synthetic";
        t.networkName = "mNoC";
        t.totalTicks = ticks;
        t.packets = CountMatrix(16, 16, 0);
        t.flits = CountMatrix(16, 16, 0);
        for (int s = 0; s < 16; ++s)
            for (int d = 0; d < 16; ++d)
                if (s != d) {
                    t.packets(s, d) = flits_per_pair / 3;
                    t.flits(s, d) = flits_per_pair;
                }
        return t;
    }
};

TEST(PowerModel, SingleModeDesignUsesBroadcastPower)
{
    PmFixture f;
    auto topo = GlobalPowerTopology::singleMode(16);
    auto design = f.model.designUniform(topo);
    for (int s = 0; s < 16; ++s) {
        ASSERT_EQ(design.sources[s].modePower.size(), 1u);
        EXPECT_NEAR(design.sources[s].modePower[0].watts(),
                    f.xbar.broadcastPower(s).watts(), 1e-12);
        EXPECT_NEAR(design.powerFor(s, (s + 1) % 16).watts(),
                    f.xbar.broadcastPower(s).watts(), 1e-12);
    }
}

TEST(PowerModel, MultiModeDesignHasOrderedModePowers)
{
    PmFixture f;
    auto topo = distanceBasedTopology(16, 4);
    auto design = f.model.designUniform(topo);
    for (int s = 0; s < 16; ++s) {
        const auto &mp = design.sources[s].modePower;
        ASSERT_EQ(mp.size(), 4u);
        for (int m = 1; m < 4; ++m)
            EXPECT_GE(mp[m], mp[m - 1]);
        // The highest mode still covers broadcast, so it costs at
        // least the single-mode broadcast power.
        EXPECT_GE(mp[3], f.xbar.broadcastPower(s) * (1 - 1e-9));
    }
}

TEST(PowerModel, EvaluationBreakdownIsPositiveAndAdditive)
{
    PmFixture f;
    auto topo = GlobalPowerTopology::singleMode(16);
    auto design = f.model.designUniform(topo);
    auto breakdown = f.model.evaluate(design, f.uniformTrace());
    EXPECT_GT(breakdown.source, 0.0);
    EXPECT_GT(breakdown.oe, 0.0);
    EXPECT_GT(breakdown.electrical, 0.0);
    EXPECT_DOUBLE_EQ(breakdown.ringHeating, 0.0);
    EXPECT_DOUBLE_EQ(breakdown.laser, 0.0);
    EXPECT_NEAR(breakdown.total(),
                breakdown.source + breakdown.oe + breakdown.electrical,
                1e-12);
}

TEST(PowerModel, PowerScalesWithUtilization)
{
    PmFixture f;
    auto topo = GlobalPowerTopology::singleMode(16);
    auto design = f.model.designUniform(topo);
    auto low = f.model.evaluate(design, f.uniformTrace(100, 100000));
    auto high = f.model.evaluate(design, f.uniformTrace(200, 100000));
    EXPECT_NEAR(high.total(), 2.0 * low.total(), 1e-9 * high.total());

    // Same traffic over twice the time: half the power.
    auto slow = f.model.evaluate(design, f.uniformTrace(100, 200000));
    EXPECT_NEAR(slow.total(), 0.5 * low.total(), 1e-9 * low.total());
}

TEST(PowerModel, PowerTopologyReducesPowerUnderUniformTraffic)
{
    // Paper Section 5.2: distance-based designs beat single mode even
    // with naive mapping and uniform weights.
    PmFixture f;
    auto trace = f.uniformTrace();

    auto single = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto two = f.model.designUniform(distanceBasedTopology(16, 2));
    auto four = f.model.designUniform(distanceBasedTopology(16, 4));

    double p1 = f.model.evaluate(single, trace).source;
    double p2 = f.model.evaluate(two, trace).source;
    double p4 = f.model.evaluate(four, trace).source;
    EXPECT_LT(p2, p1);
    EXPECT_LT(p4, p2);
}

TEST(PowerModel, SkewedTrafficAmplifiesTheSavings)
{
    PmFixture f;
    // All traffic between physical neighbours.
    sim::Trace trace;
    trace.totalTicks = 100000;
    trace.packets = CountMatrix(16, 16, 0);
    trace.flits = CountMatrix(16, 16, 0);
    for (int s = 0; s < 16; ++s) {
        int d = s + 1 < 16 ? s + 1 : s - 1;
        trace.flits(s, d) = 3000;
        trace.packets(s, d) = 1000;
    }

    auto single = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto topo = distanceBasedTopology(16, 2);
    auto matched = f.model.designFor(topo, toFlowMatrix(trace.flits));

    double p1 = f.model.evaluate(single, trace).source;
    double p2 = f.model.evaluate(matched, trace).source;
    // Neighbour-only traffic in the low mode: large reduction.
    EXPECT_LT(p2, 0.5 * p1);
}

TEST(PowerModel, OePowerFollowsReachableReceivers)
{
    PmFixture f;
    sim::Trace trace;
    trace.totalTicks = 10000;
    trace.packets = CountMatrix(16, 16, 0);
    trace.flits = CountMatrix(16, 16, 0);
    trace.flits(8, 9) = 300; // nearest neighbour only
    trace.packets(8, 9) = 100;

    auto single = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto two = f.model.designUniform(distanceBasedTopology(16, 2));

    auto b1 = f.model.evaluate(single, trace);
    auto b2 = f.model.evaluate(two, trace);
    // Single mode lights all 15 receivers; the low mode of the 2-mode
    // design lights only 8.
    EXPECT_NEAR(b2.oe / b1.oe, 8.0 / 15.0, 1e-6);
}

TEST(PowerModel, OeModelIsLinearInMiop)
{
    PowerParams p;
    double at1 = p.oePowerPerReceiver(WattPower(1e-6)).watts();
    double at5 = p.oePowerPerReceiver(WattPower(5e-6)).watts();
    double at10 = p.oePowerPerReceiver(WattPower(10e-6)).watts();
    EXPECT_GT(at1, at5);
    EXPECT_GT(at5, at10);
    // Equal slope on both halves of the range.
    EXPECT_NEAR((at1 - at5) / 4e-6, (at5 - at10) / 5e-6, 1e-9);
    EXPECT_GE(p.oePowerPerReceiver(WattPower(1.0)), p.oeMin); // floor
}

TEST(PowerModel, DesignWithFractionsRespectsModeCount)
{
    PmFixture f;
    auto topo = distanceBasedTopology(16, 2);
    auto design = f.model.designWithFractions(topo, {0.66, 0.34});
    EXPECT_EQ(design.sources[0].modePower.size(), 2u);
    EXPECT_THROW(f.model.designWithFractions(topo, {1.0}), FatalError);
}

TEST(PowerModel, EvaluateRejectsMalformedTraces)
{
    PmFixture f;
    auto design = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    sim::Trace empty;
    empty.totalTicks = 0;
    empty.packets = CountMatrix(16, 16, 0);
    empty.flits = CountMatrix(16, 16, 0);
    EXPECT_THROW(f.model.evaluate(design, empty), FatalError);

    sim::Trace wrong;
    wrong.totalTicks = 10;
    wrong.packets = CountMatrix(8, 8, 0);
    wrong.flits = CountMatrix(8, 8, 0);
    EXPECT_THROW(f.model.evaluate(design, wrong), FatalError);
}

} // namespace
