#!/bin/sh
# Negative-compile test for the strong unit types, run as a ctest.
#
# The point of DecibelLoss/WattPower is that a dB-for-watts argument
# swap is a type error, not a silently wrong power budget.  This test
# proves it: a translation unit that passes a DecibelLoss where
# linkBitErrorRate() expects its WattPower pmin must FAIL to compile,
# while the correctly-typed twin must compile.
#
# Usage: test_unit_safety.sh <repo-root> [c++-compiler]
set -eu

root=${1:?usage: test_unit_safety.sh <repo-root> [compiler]}
cxx=${2:-c++}

fail() {
    echo "test_unit_safety: FAIL: $*" >&2
    exit 1
}

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

cat > "$scratch/good.cc" <<'EOF'
#include "optics/device_params.hh"
#include "optics/link_budget.hh"

double
berAtThreshold(const mnoc::optics::DeviceParams &params)
{
    // Correct: both arguments are WattPower.
    return mnoc::optics::linkBitErrorRate(params.pminAtTap(),
                                          params.pminAtTap());
}
EOF

# Identical except the second argument is the coupler loss -- a
# DecibelLoss.  Before the strong types this was a plausible bug: both
# were plain doubles and 0.5 (dB) would quietly masquerade as 0.5 W.
cat > "$scratch/bad.cc" <<'EOF'
#include "optics/device_params.hh"
#include "optics/link_budget.hh"

double
berAtThreshold(const mnoc::optics::DeviceParams &params)
{
    return mnoc::optics::linkBitErrorRate(params.pminAtTap(),
                                          params.couplerLoss);
}
EOF

flags="-std=c++20 -fsyntax-only -I $root/src"

if ! $cxx $flags "$scratch/good.cc" 2> "$scratch/good.log"; then
    cat "$scratch/good.log" >&2
    fail "correctly-typed call failed to compile"
fi

if $cxx $flags "$scratch/bad.cc" 2> "$scratch/bad.log"; then
    fail "dB-for-watts argument swap compiled; unit safety is broken"
fi

grep -q "DecibelLoss" "$scratch/bad.log" || {
    cat "$scratch/bad.log" >&2
    fail "rejection does not mention DecibelLoss; wrong failure mode"
}

echo "test_unit_safety: PASS (swap rejected at compile time)"
