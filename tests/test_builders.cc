/**
 * @file
 * Tests of the conventional and distance-based topology builders
 * (paper Figure 5).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/builders.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

TEST(Builders, ClusteredMatchesFigureFiveA)
{
    // Figure 5a: 8 nodes, clusters of 4, two modes.
    auto g = clusteredTopology(8, 4);
    g.validate();
    EXPECT_EQ(g.numModes, 2);
    for (int s = 0; s < 8; ++s) {
        const auto &local = g.local(s);
        for (int d = 0; d < 8; ++d) {
            if (d == s)
                continue;
            bool same_cluster = (s / 4) == (d / 4);
            EXPECT_EQ(local.modeOfDest[d], same_cluster ? 0 : 1)
                << s << "->" << d;
        }
        EXPECT_EQ(local.reachableCount(0), 3);
        EXPECT_EQ(local.reachableCount(1), 7);
    }
}

TEST(Builders, ClusteredAt256MatchesPaperCounts)
{
    // Section 4.1: for 256 nodes there are 252 nodes in the high mode.
    auto g = clusteredTopology(256, 4);
    EXPECT_EQ(g.local(0).destsUniqueToMode(1).size(), 252u);
    EXPECT_EQ(g.local(0).destsUniqueToMode(0).size(), 3u);
}

TEST(Builders, HypercubeModesAreHopCounts)
{
    auto g = hypercubeTopology(16);
    g.validate();
    EXPECT_EQ(g.numModes, 4);
    EXPECT_EQ(g.local(0).modeOfDest[1], 0);  // 1 hop
    EXPECT_EQ(g.local(0).modeOfDest[3], 1);  // 2 hops
    EXPECT_EQ(g.local(0).modeOfDest[7], 2);  // 3 hops
    EXPECT_EQ(g.local(0).modeOfDest[15], 3); // 4 hops
    EXPECT_EQ(g.local(5).modeOfDest[5], -1);
    EXPECT_THROW(hypercubeTopology(12), FatalError);
}

TEST(Builders, DistanceBasedMatchesFigureFiveB)
{
    // Figure 5b: 8 nodes, 4 modes from groups of the 2 nearest.
    auto g = distanceBasedTopology(8, {2, 2, 2, 1});
    g.validate();
    const auto &row3 = g.local(3); // middle-ish source
    // Nearest two (2 and 4) in mode 0.
    EXPECT_EQ(row3.modeOfDest[2], 0);
    EXPECT_EQ(row3.modeOfDest[4], 0);
    // Next two (1 and 5) in mode 1.
    EXPECT_EQ(row3.modeOfDest[1], 1);
    EXPECT_EQ(row3.modeOfDest[5], 1);
    // Farthest single node in the top mode.
    EXPECT_EQ(row3.modeOfDest[7], 3);
}

TEST(Builders, DistanceBasedEndSourceUsesOneArm)
{
    auto g = distanceBasedTopology(8, {2, 2, 2, 1});
    const auto &row0 = g.local(0);
    EXPECT_EQ(row0.modeOfDest[1], 0);
    EXPECT_EQ(row0.modeOfDest[2], 0);
    EXPECT_EQ(row0.modeOfDest[3], 1);
    EXPECT_EQ(row0.modeOfDest[7], 3);
}

TEST(Builders, DistanceModesGrowWithDistancePerSource)
{
    auto g = distanceBasedTopology(32, 4);
    for (int s = 0; s < 32; ++s) {
        const auto &local = g.local(s);
        // Walking outward on either arm, the mode never decreases.
        for (int d = s + 2; d < 32; ++d)
            EXPECT_GE(local.modeOfDest[d], local.modeOfDest[d - 1]);
        for (int d = s - 2; d >= 0; --d)
            EXPECT_GE(local.modeOfDest[d], local.modeOfDest[d + 1]);
    }
}

TEST(Builders, EqualSplitCoversAllDestinations)
{
    // The paper's 256-node groupings: 2 modes -> {128, 127} and
    // 4 modes -> {64, 64, 64, 63}.
    auto two = distanceBasedTopology(256, 2);
    EXPECT_EQ(two.local(10).destsUniqueToMode(0).size(), 128u);
    EXPECT_EQ(two.local(10).destsUniqueToMode(1).size(), 127u);

    auto four = distanceBasedTopology(256, 4);
    EXPECT_EQ(four.local(99).destsUniqueToMode(0).size(), 64u);
    EXPECT_EQ(four.local(99).destsUniqueToMode(3).size(), 63u);
}

TEST(Builders, BinaryTreeModesAreTreeHops)
{
    auto g = binaryTreeTopology(16, 4);
    g.validate();
    EXPECT_EQ(g.numModes, 4);
    // Heap indices (1-based): 1 is the root, 2/3 its children.
    // Node 0 (root) -> node 1 (child): one hop -> mode 0.
    EXPECT_EQ(g.local(0).modeOfDest[1], 0);
    EXPECT_EQ(g.local(0).modeOfDest[2], 0);
    // Siblings 1 and 2: two hops through the root -> mode 1.
    EXPECT_EQ(g.local(1).modeOfDest[2], 1);
    // Node 7 (heap 8, a leaf) to node 0 (root): 3 hops -> mode 2.
    EXPECT_EQ(g.local(7).modeOfDest[0], 2);
    // Deep cross-subtree paths saturate into the top mode.
    EXPECT_EQ(g.local(7).modeOfDest[14], 3);
}

TEST(Builders, BinaryTreeRejectsDegenerateConfigs)
{
    EXPECT_THROW(binaryTreeTopology(2, 2), FatalError);
    EXPECT_THROW(binaryTreeTopology(16, 1), FatalError);
}

TEST(Builders, RejectsInconsistentGroupSizes)
{
    EXPECT_THROW(distanceBasedTopology(8, {2, 2}), FatalError);
    EXPECT_THROW(distanceBasedTopology(8, {7, 0}), FatalError);
    EXPECT_THROW(distanceBasedTopology(8, std::vector<int>{}),
                 FatalError);
    EXPECT_THROW(clusteredTopology(8, 3), FatalError);
    EXPECT_THROW(clusteredTopology(4, 4), FatalError);
}

} // namespace
