/**
 * @file
 * Tests of the communication-aware mode assignment (paper Section 4.3).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/builders.hh"
#include "core/comm_aware.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct CaFixture
{
    optics::SerpentineLayout layout{16, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};

    FlowMatrix
    hotPairFlow() const
    {
        // Every source talks overwhelmingly to one distant partner.
        FlowMatrix flow(16, 16, 1.0);
        for (int s = 0; s < 16; ++s) {
            flow(s, s) = 0.0;
            flow(s, (s + 8) % 16) = 1000.0;
        }
        return flow;
    }
};

TEST(CommAware, HottestDestinationLandsInLowestMode)
{
    CaFixture f;
    CommAwareConfig config;
    config.numModes = 2;
    auto g = commAwareTopology(f.xbar, f.hotPairFlow(), config);
    g.validate();
    for (int s = 0; s < 16; ++s)
        EXPECT_EQ(g.local(s).modeOfDest[(s + 8) % 16], 0)
            << "source " << s;
}

TEST(CommAware, NonContiguousLowModesAreAllowed)
{
    // A source with two hot partners on opposite arms: both must land
    // in the low mode even though physically far apart (the paper's
    // key non-contiguity property, Section 3.2.1).
    CaFixture f;
    FlowMatrix flow(16, 16, 1.0);
    flow(8, 0) = 500.0;
    flow(8, 15) = 500.0;
    for (int i = 0; i < 16; ++i)
        flow(i, i) = 0.0;

    CommAwareConfig config;
    config.numModes = 2;
    auto g = commAwareTopology(f.xbar, flow, config);
    EXPECT_EQ(g.local(8).modeOfDest[0], 0);
    EXPECT_EQ(g.local(8).modeOfDest[15], 0);
}

TEST(CommAware, BeatsDistanceBasedOnSkewedTraffic)
{
    CaFixture f;
    FlowMatrix flow = f.hotPairFlow();
    CommAwareConfig config;
    config.numModes = 2;
    auto aware = commAwareTopology(f.xbar, flow, config);
    auto naive = distanceBasedTopology(16, 2);

    double aware_power = 0.0;
    double naive_power = 0.0;
    for (int s = 0; s < 16; ++s) {
        aware_power += expectedSourcePower(
            f.xbar, s, aware.local(s).modeOfDest, 2, flow).watts();
        naive_power += expectedSourcePower(
            f.xbar, s, naive.local(s).modeOfDest, 2, flow).watts();
    }
    EXPECT_LT(aware_power, naive_power);
}

TEST(CommAware, UniformFlowApproachesDistanceBased)
{
    // With no skew, frequency sorting falls back to the attenuation
    // tie-break, so the assignment groups near destinations first.
    CaFixture f;
    FlowMatrix flow(16, 16, 1.0);
    for (int i = 0; i < 16; ++i)
        flow(i, i) = 0.0;
    CommAwareConfig config;
    config.numModes = 2;
    auto g = commAwareTopology(f.xbar, flow, config);
    // Low-mode destinations of a middle source are closer on average
    // than high-mode destinations.
    const auto &local = g.local(8);
    double low_sum = 0.0;
    double high_sum = 0.0;
    int low_n = 0;
    int high_n = 0;
    for (int d = 0; d < 16; ++d) {
        if (d == 8)
            continue;
        double dist = std::abs(d - 8);
        if (local.modeOfDest[d] == 0) {
            low_sum += dist;
            ++low_n;
        } else {
            high_sum += dist;
            ++high_n;
        }
    }
    ASSERT_GT(low_n, 0);
    ASSERT_GT(high_n, 0);
    EXPECT_LT(low_sum / low_n, high_sum / high_n);
}

TEST(CommAware, FourModeDesignIsValidAndOrdered)
{
    CaFixture f;
    CommAwareConfig config;
    config.numModes = 4;
    auto g = commAwareTopology(f.xbar, f.hotPairFlow(), config);
    g.validate();
    EXPECT_EQ(g.numModes, 4);
    for (int s = 0; s < 16; ++s) {
        // Hotter destinations never sit in a strictly higher mode than
        // colder ones (by construction of the sorted partition).
        const auto &local = g.local(s);
        EXPECT_EQ(local.modeOfDest[(s + 8) % 16], 0);
        int populated = 0;
        for (int m = 0; m < 4; ++m)
            if (!local.destsUniqueToMode(m).empty())
                ++populated;
        EXPECT_EQ(populated, 4);
    }
}

TEST(CommAware, FourModeNoWorseThanTwoMode)
{
    CaFixture f;
    FlowMatrix flow = f.hotPairFlow();
    CommAwareConfig two;
    two.numModes = 2;
    CommAwareConfig four;
    four.numModes = 4;
    auto g2 = commAwareTopology(f.xbar, flow, two);
    auto g4 = commAwareTopology(f.xbar, flow, four);

    double p2 = 0.0;
    double p4 = 0.0;
    for (int s = 0; s < 16; ++s) {
        p2 += expectedSourcePower(f.xbar, s, g2.local(s).modeOfDest, 2,
                                  flow).watts();
        p4 += expectedSourcePower(f.xbar, s, g4.local(s).modeOfDest, 4,
                                  flow).watts();
    }
    // Four modes strictly generalize two (they could merge to two),
    // so with the refinement step they should not lose.
    EXPECT_LE(p4, p2 * 1.02);
}

TEST(CommAware, GreedyRefinementNeverHurts)
{
    CaFixture f;
    FlowMatrix flow = f.hotPairFlow();
    CommAwareConfig no_refine;
    no_refine.numModes = 4;
    no_refine.greedyRefine = false;
    CommAwareConfig refine;
    refine.numModes = 4;

    auto g_plain = commAwareTopology(f.xbar, flow, no_refine);
    auto g_refined = commAwareTopology(f.xbar, flow, refine);
    double plain = 0.0;
    double refined = 0.0;
    for (int s = 0; s < 16; ++s) {
        plain += expectedSourcePower(f.xbar, s,
                                     g_plain.local(s).modeOfDest, 4,
                                     flow).watts();
        refined += expectedSourcePower(f.xbar, s,
                                       g_refined.local(s).modeOfDest, 4,
                                       flow).watts();
    }
    EXPECT_LE(refined, plain * (1 + 1e-9));
}

TEST(CommAware, ZeroFlowSourceFallsBackToUniform)
{
    CaFixture f;
    FlowMatrix flow(16, 16, 0.0); // nobody talks
    CommAwareConfig config;
    config.numModes = 2;
    auto g = commAwareTopology(f.xbar, flow, config);
    g.validate(); // must still produce a valid design
}

TEST(CommAware, RejectsBadConfig)
{
    CaFixture f;
    FlowMatrix flow(16, 16, 1.0);
    CommAwareConfig config;
    config.numModes = 1;
    EXPECT_THROW(commAwareTopology(f.xbar, flow, config), FatalError);
    config.numModes = 2;
    FlowMatrix wrong(8, 8, 1.0);
    EXPECT_THROW(commAwareTopology(f.xbar, wrong, config), FatalError);
}

} // namespace
