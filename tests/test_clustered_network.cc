/**
 * @file
 * Tests of the clustered (rNoC / c_mNoC) network model.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "noc/clustered_network.hh"

namespace {

using namespace mnoc;
using namespace mnoc::noc;

struct ClusterFixture
{
    optics::SerpentineLayout ports{64, Meters(0.10)};
    NetworkConfig config;
    ClusteredNetwork net{256, ports, config, "rNoC"};
};

TEST(ClusteredNetwork, IntraClusterLatency)
{
    ClusterFixture f;
    // One router crossing: 4 cycles + 2 electrical links.
    EXPECT_EQ(f.net.zeroLoadLatency(0, 1), 4 + 2);
    EXPECT_EQ(f.net.zeroLoadLatency(5, 7), 4 + 2);
}

TEST(ClusteredNetwork, InterClusterLatencyIncludesOptical)
{
    ClusterFixture f;
    // Two router crossings + optical 1..5 cycles.
    int lat_near = f.net.zeroLoadLatency(0, 4);    // adjacent ports
    int lat_far = f.net.zeroLoadLatency(0, 255);   // across the die
    EXPECT_EQ(lat_near, 2 * (4 + 1) + 1);
    EXPECT_EQ(lat_far, 2 * (4 + 1) + 5);
    EXPECT_GT(lat_far, lat_near);
}

TEST(ClusteredNetwork, OpticalRangeMatchesPaper)
{
    // Table 2: rNoC optical link latency 1-5 cycles.
    ClusterFixture f;
    for (int dst = 4; dst < 256; dst += 4) {
        int optical = f.net.zeroLoadLatency(0, dst) - 2 * (4 + 1);
        EXPECT_GE(optical, 1);
        EXPECT_LE(optical, 5);
    }
}

TEST(ClusteredNetwork, MnocLatencyAdvantageOverClustered)
{
    // The radix-256 mNoC crossbar avoids the two router crossings, so
    // its worst-case latency (9) beats the clustered worst case (15).
    ClusterFixture f;
    int worst = 0;
    for (int d = 1; d < 256; ++d)
        worst = std::max(worst, f.net.zeroLoadLatency(0, d));
    EXPECT_GT(worst, 9);
}

TEST(ClusteredNetwork, ClusterOf)
{
    ClusterFixture f;
    EXPECT_EQ(f.net.clusterOf(0), 0);
    EXPECT_EQ(f.net.clusterOf(3), 0);
    EXPECT_EQ(f.net.clusterOf(4), 1);
    EXPECT_EQ(f.net.clusterOf(255), 63);
}

TEST(ClusteredNetwork, SharedPortSerializesClusterTraffic)
{
    ClusterFixture f;
    // All four nodes of cluster 0 inject heavily.
    for (int i = 0; i < 1000; ++i) {
        Packet pkt = makePacket(i % 4, 100, PacketClass::Data);
        f.net.deliver(pkt, static_cast<Tick>(i));
    }
    Packet probe = makePacket(0, 100, PacketClass::Data);
    Tick congested = f.net.deliver(probe, 1100);
    f.net.reset();
    Tick fresh = f.net.deliver(probe, 1100);
    EXPECT_GT(congested, fresh);
}

TEST(ClusteredNetwork, IntraClusterAvoidsTheOpticalPort)
{
    ClusterFixture f;
    // Saturate cluster 5's optical port from node 20.
    for (int i = 0; i < 1000; ++i) {
        Packet pkt = makePacket(20, 200, PacketClass::Data);
        f.net.deliver(pkt, static_cast<Tick>(i));
    }
    // Intra-cluster traffic in a DIFFERENT cluster is unaffected.
    Packet local = makePacket(0, 1, PacketClass::Control);
    Tick t = f.net.deliver(local, 1100);
    EXPECT_EQ(t, 1100u + 1 + 4 + 1 + 1); // router book + pipeline + links
}

TEST(ClusteredNetwork, SelfDeliveryIsFree)
{
    ClusterFixture f;
    Packet pkt = makePacket(9, 9, PacketClass::Data);
    EXPECT_EQ(f.net.deliver(pkt, 7), 7u);
}

TEST(ClusteredNetwork, ValidatesConfiguration)
{
    optics::SerpentineLayout ports{64, Meters(0.10)};
    NetworkConfig config;
    // 255 nodes is not a multiple of the cluster size 4.
    EXPECT_THROW(ClusteredNetwork(255, ports, config, "x"), FatalError);
    // Port count mismatch.
    optics::SerpentineLayout wrong{32, Meters(0.10)};
    EXPECT_THROW(ClusteredNetwork(256, wrong, config, "x"), FatalError);
}

} // namespace
