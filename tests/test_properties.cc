/**
 * @file
 * Cross-module property tests over the real benchmark traffic at
 * small scale: refinement monotonicity of power topologies, design
 * feasibility (link budgets) for every benchmark, and conservation
 * properties of the power accounting.
 */

#include <gtest/gtest.h>

#include "core/designer.hh"
#include "noc/mnoc_network.hh"
#include "optics/link_budget.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct PropRig
{
    static constexpr int n = 32;
    optics::SerpentineLayout layout{n, Meters(0.06)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    MnocPowerModel model{xbar};

    sim::Trace
    trace(const std::string &name)
    {
        noc::NetworkConfig net_config;
        noc::MnocNetwork net(layout, net_config);
        sim::SimConfig config;
        config.numCores = n;
        workloads::WorkloadScale scale;
        scale.opsPerThread = 400;
        auto workload = workloads::makeWorkload(name, scale);
        return sim::toTrace(
            sim::runSimulation(config, net, *workload, 1));
    }
};

class BenchmarkProperties
    : public testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkProperties, RefiningThePartitionNeverHurts)
{
    // The 4-mode distance groups refine the 2-mode groups (64+64 =
    // 128), so with matched design weights and optimal alphas the
    // refined design can always emulate the coarse one.
    PropRig rig;
    auto trace = rig.trace(GetParam());
    FlowMatrix flow = toFlowMatrix(trace.flits);

    auto p1 = rig.model
                  .evaluate(rig.model.designFor(
                                GlobalPowerTopology::singleMode(
                                    PropRig::n),
                                flow),
                            trace)
                  .source;
    auto p2 = rig.model
                  .evaluate(rig.model.designFor(
                                distanceBasedTopology(PropRig::n, 2),
                                flow),
                            trace)
                  .source;
    auto p4 = rig.model
                  .evaluate(rig.model.designFor(
                                distanceBasedTopology(PropRig::n, 4),
                                flow),
                            trace)
                  .source;
    EXPECT_LE(p2, p1 * (1 + 1e-9)) << GetParam();
    EXPECT_LE(p4, p2 * (1 + 1e-9)) << GetParam();
}

TEST_P(BenchmarkProperties, CommAwareDesignsAlwaysValidate)
{
    // Whatever partition the comm-aware builder picks, the resulting
    // splitter design must close the link budget in every mode.
    PropRig rig;
    auto trace = rig.trace(GetParam());
    FlowMatrix flow = toFlowMatrix(trace.flits);

    CommAwareConfig config;
    config.numModes = 4;
    auto topo = commAwareTopology(rig.xbar, flow, config);
    auto design = rig.model.designFor(topo, flow);

    WattPower pmin = rig.params.pminAtTap();
    for (int s = 0; s < PropRig::n; s += 5) {
        auto report = optics::validateDesign(rig.xbar.chain(s),
                                             design.sources[s], pmin);
        EXPECT_TRUE(report.ok) << GetParam() << " source " << s
                               << " margin "
                               << report.worstReachableMargin
                               << " leak "
                               << report.worstUnreachableLeak;
    }
}

TEST_P(BenchmarkProperties, PowerIsTrafficLinear)
{
    // Doubling every flit count doubles every power component.
    PropRig rig;
    auto trace = rig.trace(GetParam());
    auto design = rig.model.designFor(
        distanceBasedTopology(PropRig::n, 2),
        toFlowMatrix(trace.flits));

    sim::Trace doubled = trace;
    for (int s = 0; s < PropRig::n; ++s)
        for (int d = 0; d < PropRig::n; ++d)
            doubled.flits(s, d) = 2 * trace.flits(s, d);

    auto base = rig.model.evaluate(design, trace);
    auto twice = rig.model.evaluate(design, doubled);
    EXPECT_NEAR(twice.source, 2.0 * base.source,
                1e-9 * twice.source);
    EXPECT_NEAR(twice.oe, 2.0 * base.oe, 1e-9 * (twice.oe + 1e-30));
    EXPECT_NEAR(twice.electrical, 2.0 * base.electrical,
                1e-9 * (twice.electrical + 1e-30));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkProperties,
    testing::ValuesIn(workloads::splashBenchmarks()),
    [](const auto &suite_info) { return suite_info.param; });

} // namespace
