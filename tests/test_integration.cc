/**
 * @file
 * End-to-end integration tests: simulate a SPLASH kernel, run the full
 * design pipeline, and check the paper's headline claims at small
 * scale (who wins, and in the right direction).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/designer.hh"
#include "noc/clustered_network.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct EndToEnd
{
    static constexpr int n = 64;
    optics::SerpentineLayout layout{n, Meters(0.09)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    noc::NetworkConfig netConfig;
    noc::MnocNetwork mnocNet{layout, netConfig};
    Designer designer{xbar};

    sim::Trace
    simulate(const std::string &benchmark,
             const std::vector<int> &mapping = {})
    {
        sim::SimConfig config;
        config.numCores = n;
        config.threadToCore = mapping;
        workloads::WorkloadScale scale;
        scale.opsPerThread = 800;
        auto workload = workloads::makeWorkload(benchmark, scale);
        return sim::toTrace(
            sim::runSimulation(config, mnocNet, *workload, 1));
    }
};

TEST(Integration, PowerTopologyPlusMappingBeatsBaseline)
{
    EndToEnd e;
    sim::Trace trace = e.simulate("water_s");
    FlowMatrix flow = toFlowMatrix(trace.flits);

    std::vector<int> identity(EndToEnd::n);
    for (int i = 0; i < EndToEnd::n; ++i)
        identity[i] = i;

    // Baseline 1M with naive mapping.
    DesignSpec base;
    auto base_design = e.designer.buildDesign(
        base, e.designer.buildTopology(base, flow), flow);
    double base_power =
        e.designer.evaluate(base_design, trace, identity).total();

    // Distance-based 2M, naive mapping (Figure 8's 2M_N_U).
    DesignSpec naive2;
    naive2.numModes = 2;
    auto naive2_design = e.designer.buildDesign(
        naive2, e.designer.buildTopology(naive2, flow), flow);
    double naive2_power =
        e.designer.evaluate(naive2_design, trace, identity).total();

    // Comm-aware 2M with taboo mapping (2M_T_G_S).
    MappingParams mp;
    mp.tabooIterations = 6000;
    auto mapping = e.designer.map(flow, MappingMethod::Taboo, mp);
    FlowMatrix core_flow = permuteFlow(flow, mapping.threadToCore);
    DesignSpec aware;
    aware.numModes = 2;
    aware.assignment = Assignment::CommAware;
    aware.weights = WeightSource::DesignFlow;
    auto aware_design = e.designer.buildDesign(
        aware, e.designer.buildTopology(aware, core_flow), core_flow);
    double aware_power =
        e.designer.evaluate(aware_design, trace, mapping.threadToCore)
            .total();

    // The paper's ordering: 1M > 2M_N_U > 2M_T_G_S.
    EXPECT_LT(naive2_power, base_power);
    EXPECT_LT(aware_power, naive2_power);
    // The combination delivers a substantial cut (>= 25% at this
    // scale; the paper reports ~50% at radix 256).
    EXPECT_LT(aware_power, 0.75 * base_power);
}

TEST(Integration, QapMappingShortensCommunicationDistance)
{
    // Figure 7: after taboo mapping, hot traffic clusters around the
    // middle of the waveguide, shrinking the flow-weighted distance.
    EndToEnd e;
    sim::Trace trace = e.simulate("water_s");
    FlowMatrix flow = toFlowMatrix(trace.flits);

    MappingParams mp;
    mp.tabooIterations = 6000;
    auto mapping = e.designer.map(flow, MappingMethod::Taboo, mp);
    EXPECT_LT(mapping.qapCost, mapping.identityCost);

    // The blended objective trades pure pairwise distance against
    // middle placement; the oracle that matters is the evaluated
    // network power of the mapped run.
    DesignSpec base;
    auto design = e.designer.buildDesign(
        base, e.designer.buildTopology(base, flow), flow);
    std::vector<int> identity(EndToEnd::n);
    for (int i = 0; i < EndToEnd::n; ++i)
        identity[i] = i;
    double p_naive =
        e.designer.evaluate(design, trace, identity).total();
    double p_mapped =
        e.designer.evaluate(design, trace, mapping.threadToCore)
            .total();
    EXPECT_LE(p_mapped, p_naive * 1.001);
}

TEST(Integration, MnocOutperformsClusteredNetworks)
{
    // Table 1: the radix-256 crossbar's single-hop latency beats the
    // clustered topologies' two router crossings (here at radix 64
    // with 16 optical ports).
    EndToEnd e;
    optics::SerpentineLayout ports{16, Meters(0.06)};
    noc::NetworkConfig config;
    noc::ClusteredNetwork clustered(EndToEnd::n, ports, config,
                                    "rNoC");

    sim::SimConfig sim_config;
    sim_config.numCores = EndToEnd::n;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 600;

    auto wl1 = workloads::makeWorkload("fft", scale);
    auto mnoc_run = sim::runSimulation(sim_config, e.mnocNet, *wl1, 1);
    auto wl2 = workloads::makeWorkload("fft", scale);
    auto rnoc_run = sim::runSimulation(sim_config, clustered, *wl2, 1);

    EXPECT_LT(mnoc_run.totalTicks, rnoc_run.totalTicks);
    EXPECT_LT(mnoc_run.avgPacketLatency, rnoc_run.avgPacketLatency);
}

TEST(Integration, TracesAreMappingInvariantInVolume)
{
    // Mapping permutes who-talks-to-whom but conserves traffic volume.
    EndToEnd e;
    auto identity_trace = e.simulate("barnes");

    std::vector<int> reversed(EndToEnd::n);
    for (int i = 0; i < EndToEnd::n; ++i)
        reversed[i] = EndToEnd::n - 1 - i;
    auto mapped_trace = e.simulate("barnes", reversed);

    // Event interleaving shifts a handful of coherence packets, but
    // the volume must agree to well under a percent.
    auto close = [](std::uint64_t a, std::uint64_t b) {
        double rel = std::fabs(double(a) - double(b)) /
                     std::max<double>(1.0, double(a));
        return rel < 0.005;
    };
    EXPECT_TRUE(close(identity_trace.flits.total(),
                      mapped_trace.flits.total()));
    EXPECT_TRUE(close(identity_trace.packets.total(),
                      mapped_trace.packets.total()));
}

TEST(Integration, FourModeCommAwareIsTheBestDesign)
{
    // Section 5.4: the best overall design is 4M with comm-aware
    // assignment and sampled weights.
    EndToEnd e;
    sim::Trace trace = e.simulate("fft");
    FlowMatrix flow = toFlowMatrix(trace.flits);

    MappingParams mp;
    mp.tabooIterations = 4000;
    auto mapping = e.designer.map(flow, MappingMethod::Taboo, mp);
    FlowMatrix core_flow = permuteFlow(flow, mapping.threadToCore);

    auto power_of = [&](DesignSpec spec) {
        auto topo = e.designer.buildTopology(spec, core_flow);
        auto design = e.designer.buildDesign(spec, topo, core_flow);
        return e.designer
            .evaluate(design, trace, mapping.threadToCore)
            .total();
    };

    DesignSpec two_naive;
    two_naive.numModes = 2;
    two_naive.weights = WeightSource::DesignFlow;

    DesignSpec four_aware;
    four_aware.numModes = 4;
    four_aware.assignment = Assignment::CommAware;
    four_aware.weights = WeightSource::DesignFlow;

    EXPECT_LE(power_of(four_aware), power_of(two_naive) * 1.02);
}

} // namespace
