/**
 * @file
 * Tests of the 12 synthetic SPLASH kernels: registry integrity,
 * determinism, and the characteristic communication structure each
 * kernel must reproduce.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/log.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"
#include "workloads/grid.hh"
#include "workloads/registry.hh"

namespace {

using namespace mnoc;
using namespace mnoc::workloads;

TEST(Registry, ListsAllTwelveBenchmarks)
{
    const auto &names = splashBenchmarks();
    EXPECT_EQ(names.size(), 12u);
    for (const auto &name : names) {
        auto workload = makeWorkload(name);
        ASSERT_NE(workload, nullptr);
        EXPECT_EQ(workload->name(), name);
    }
}

TEST(Registry, SampledSetMatchesPaperSectionFiveFour)
{
    const auto &s4 = sampledBenchmarks();
    ASSERT_EQ(s4.size(), 4u);
    EXPECT_EQ(s4[0], "lu_cb");
    EXPECT_EQ(s4[1], "radix");
    EXPECT_EQ(s4[2], "raytrace");
    EXPECT_EQ(s4[3], "water_s");
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("quicksort"), FatalError);
}

TEST(Workloads, StreamsAreDeterministicPerSeed)
{
    auto a = makeWorkload("barnes");
    auto b = makeWorkload("barnes");
    a->reset(8, 42);
    b->reset(8, 42);
    sim::MemOp opa, opb;
    for (int i = 0; i < 500; ++i) {
        bool more_a = a->next(3, opa);
        bool more_b = b->next(3, opb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        EXPECT_EQ(opa.addr, opb.addr);
        EXPECT_EQ(opa.write, opb.write);
    }
}

TEST(Workloads, GridHelperWrapsToroidally)
{
    ThreadGrid grid(16);
    EXPECT_EQ(grid.cols(), 4);
    EXPECT_EQ(grid.rows(), 4);
    EXPECT_EQ(grid.neighbor(0, -1, 0), 3);
    EXPECT_EQ(grid.neighbor(0, 0, -1), 12);
    EXPECT_EQ(grid.neighbor(15, 1, 1), grid.at(0, 0));
    EXPECT_EQ(grid.at(grid.xOf(9), grid.yOf(9)), 9);
}

TEST(Workloads, GridHandlesNonSquareCounts)
{
    ThreadGrid grid(12);
    EXPECT_EQ(grid.cols() * grid.rows(), 12);
    for (int t = 0; t < 12; ++t)
        EXPECT_EQ(grid.at(grid.xOf(t), grid.yOf(t)), t);
}

/** Run one benchmark on a small system and return its trace. */
sim::SimulationResult
runBenchmark(const std::string &name, int n = 16, int ops = 600)
{
    optics::SerpentineLayout layout{n, Meters(0.05)};
    noc::NetworkConfig config;
    noc::MnocNetwork net(layout, config);
    sim::SimConfig sim_config;
    sim_config.numCores = n;
    WorkloadScale scale;
    scale.opsPerThread = ops;
    auto workload = makeWorkload(name, scale);
    return sim::runSimulation(sim_config, net, *workload, 1);
}

/** Fraction of packets between grid neighbours (gap <= 1 ring). */
double
neighbourFraction(const CountMatrix &packets, int max_gap)
{
    int n = static_cast<int>(packets.rows());
    std::uint64_t near = 0;
    std::uint64_t total = 0;
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            total += packets(s, d);
            int gap = std::min((s - d + n) % n, (d - s + n) % n);
            if (gap <= max_gap)
                near += packets(s, d);
        }
    }
    return total ? static_cast<double>(near) /
                       static_cast<double>(total)
                 : 0.0;
}

TEST(Workloads, EveryBenchmarkProducesTraffic)
{
    for (const auto &name : splashBenchmarks()) {
        auto result = runBenchmark(name, 16, 300);
        EXPECT_GT(result.packets.total(), 100u) << name;
        EXPECT_GT(result.totalTicks, 0u) << name;
    }
}

TEST(Workloads, RadixIsTheHeaviestCommunicator)
{
    std::uint64_t radix_flits = runBenchmark("radix").flits.total();
    for (const char *light : {"volrend", "raytrace", "cholesky"}) {
        EXPECT_GT(radix_flits, 3 * runBenchmark(light).flits.total())
            << light;
    }
}

TEST(Workloads, RadixTrafficIsAllToAll)
{
    auto result = runBenchmark("radix");
    // Nearly every (src, dst) pair sees packets.
    int populated = 0;
    for (int s = 0; s < 16; ++s)
        for (int d = 0; d < 16; ++d)
            if (s != d && result.packets(s, d) > 0)
                ++populated;
    EXPECT_GT(populated, 200); // of 240 pairs
}

TEST(Workloads, OceanTrafficIsNeighbourDominated)
{
    auto result = runBenchmark("ocean_c");
    // 4x4 grid: cardinal neighbours are at ring distance 1 and 4;
    // ring-gap <= 4 must dominate.
    EXPECT_GT(neighbourFraction(result.packets, 4), 0.8);
}

TEST(Workloads, OceanNcHeavierThanOceanC)
{
    EXPECT_GT(runBenchmark("ocean_nc").flits.total(),
              runBenchmark("ocean_c").flits.total());
}

TEST(Workloads, LuNcbHeavierThanLuCb)
{
    EXPECT_GT(runBenchmark("lu_ncb").flits.total(),
              2 * runBenchmark("lu_cb").flits.total());
}

TEST(Workloads, WaterSpatialIsLocalWaterNSquaredIsBroad)
{
    auto spatial = runBenchmark("water_s");
    auto nsq = runBenchmark("water_ns");
    // Spatial: 8-neighbour stencil on the 4x4 grid -> gap <= 5 covers
    // all neighbours; n-squared spreads over half the ring, so a
    // sizable fraction sits beyond gap 5.
    EXPECT_GT(neighbourFraction(spatial.packets, 5), 0.85);
    EXPECT_LT(neighbourFraction(nsq.packets, 5),
              neighbourFraction(spatial.packets, 5));
}

TEST(Workloads, FftTouchesAllPartners)
{
    auto result = runBenchmark("fft");
    for (int s = 0; s < 16; ++s) {
        int partners = 0;
        for (int d = 0; d < 16; ++d)
            if (d != s && result.packets(s, d) + result.packets(d, s) >
                              0)
                ++partners;
        EXPECT_GE(partners, 12) << "source " << s;
    }
}

TEST(Workloads, VolrendIsTheLightest)
{
    auto volrend = runBenchmark("volrend").flits.total();
    for (const char *heavy : {"radix", "ocean_nc", "fft", "lu_ncb"})
        EXPECT_LT(volrend, runBenchmark(heavy).flits.total()) << heavy;
}

TEST(Workloads, RadixBucketsAreSkewedTowardLowThreads)
{
    // Non-uniform key digits: low-numbered bucket owners receive more
    // scatter traffic (the per-thread volume skew the QAP mapper
    // feeds on).
    // Measure the home side: data responses and forwards flow OUT of
    // the bucket owner's core, so rowTotal isolates the skew from the
    // uniform writer-side response traffic.
    auto result = runBenchmark("radix");
    std::uint64_t low = 0;
    std::uint64_t high = 0;
    for (int d = 0; d < 16; ++d) {
        std::uint64_t outbound = result.flits.rowTotal(d);
        if (d < 8)
            low += outbound;
        else
            high += outbound;
    }
    EXPECT_GT(static_cast<double>(low),
              1.3 * static_cast<double>(high));
}

TEST(Workloads, OceanBoundaryThreadsTalkLess)
{
    // Non-toroidal domain: a corner thread of the 4x4 grid has two
    // stencil partners, an interior thread has four.
    auto result = runBenchmark("ocean_c");
    ThreadGrid grid(16);
    int corner = grid.at(0, 0);
    int interior = grid.at(1, 1);
    EXPECT_LT(result.flits.rowTotal(corner) +
                  result.flits.colTotal(corner),
              result.flits.rowTotal(interior) +
                  result.flits.colTotal(interior));
}

TEST(Workloads, CholeskyTreeTrafficIsIrregular)
{
    // The random elimination tree gives threads very different fan-in
    // (some supernodes have several children, leaves have none), so
    // per-thread traffic is visibly skewed -- unlike fft's uniform
    // all-to-all.
    auto per_thread = [](const sim::SimulationResult &r) {
        std::vector<double> v;
        for (int d = 0; d < 16; ++d)
            v.push_back(static_cast<double>(r.packets.colTotal(d) +
                                            r.packets.rowTotal(d)));
        std::sort(v.begin(), v.end());
        return v.back() / std::max(1.0, v[8]);
    };
    double cholesky_skew = per_thread(runBenchmark("cholesky"));
    double fft_skew = per_thread(runBenchmark("fft"));
    EXPECT_GT(cholesky_skew, 1.5);
    EXPECT_GT(cholesky_skew, fft_skew);
}

TEST(Workloads, BarnesIsDistanceWeighted)
{
    // Tree-walk partners at distance 2^k with geometrically fewer
    // reads per level: close partners dominate far ones.
    auto result = runBenchmark("barnes");
    EXPECT_GT(neighbourFraction(result.packets, 2), 0.35);
    EXPECT_GT(neighbourFraction(result.packets, 4),
              neighbourFraction(result.packets, 2));
}

TEST(Workloads, TotalOpsScalesWithKnob)
{
    WorkloadScale small;
    small.opsPerThread = 200;
    WorkloadScale big;
    big.opsPerThread = 800;
    auto a = makeWorkload("water_s", small);
    auto b = makeWorkload("water_s", big);
    a->reset(16, 1);
    b->reset(16, 1);
    EXPECT_GT(b->totalOps(), 2 * a->totalOps());
}

/** Every benchmark runs cleanly across system sizes. */
class WorkloadSizeSweep
    : public testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(WorkloadSizeSweep, RunsAtSize)
{
    auto [name, n] = GetParam();
    auto result = runBenchmark(name, n, 150);
    EXPECT_GT(result.packets.total(), 0u);
    EXPECT_EQ(result.workloadName, name);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSizeSweep,
    testing::Combine(testing::ValuesIn(splashBenchmarks()),
                     testing::Values(8, 16, 32)),
    [](const auto &suite_info) {
        return std::get<0>(suite_info.param) + "_n" +
               std::to_string(std::get<1>(suite_info.param));
    });

} // namespace
