/**
 * @file
 * Tests of the design facade and the paper's Table 5 notation.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/designer.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct DesignerFixture
{
    optics::SerpentineLayout layout{16, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    Designer designer{xbar};

    FlowMatrix
    neighbourFlow() const
    {
        FlowMatrix flow(16, 16, 0.1);
        for (int i = 0; i < 16; ++i) {
            flow(i, i) = 0.0;
            flow(i, (i + 1) % 16) = 50.0;
        }
        return flow;
    }

    sim::Trace
    traceFromFlow(const FlowMatrix &flow) const
    {
        sim::Trace t;
        t.totalTicks = 100000;
        t.packets = CountMatrix(16, 16, 0);
        t.flits = CountMatrix(16, 16, 0);
        for (int s = 0; s < 16; ++s)
            for (int d = 0; d < 16; ++d) {
                t.flits(s, d) =
                    static_cast<std::uint64_t>(flow(s, d) * 30);
                t.packets(s, d) =
                    static_cast<std::uint64_t>(flow(s, d) * 10);
            }
        return t;
    }
};

TEST(DesignSpec, LabelsMatchTableFive)
{
    DesignSpec spec;
    EXPECT_EQ(spec.label(), "1M");

    spec.mapping = MappingMethod::Taboo;
    EXPECT_EQ(spec.label(), "1M_T");

    spec.numModes = 2;
    spec.assignment = Assignment::DistanceBased;
    spec.weights = WeightSource::Uniform;
    EXPECT_EQ(spec.label(), "2M_T_N_U");

    spec.numModes = 4;
    spec.assignment = Assignment::CommAware;
    spec.weights = WeightSource::DesignFlow;
    spec.sampleTag = "12";
    EXPECT_EQ(spec.label(), "4M_T_G_S12");

    spec.mapping = MappingMethod::Identity;
    spec.assignment = Assignment::Clustered;
    spec.weights = WeightSource::Fractions;
    spec.numModes = 2;
    EXPECT_EQ(spec.label(), "2M_C_W");
}

TEST(Designer, BuildsEverySpecKind)
{
    DesignerFixture f;
    FlowMatrix flow = f.neighbourFlow();

    for (auto assignment : {Assignment::DistanceBased,
                            Assignment::CommAware,
                            Assignment::Clustered}) {
        DesignSpec spec;
        spec.numModes = 2;
        spec.assignment = assignment;
        auto topo = f.designer.buildTopology(spec, flow);
        topo.validate();
        auto design = f.designer.buildDesign(spec, topo, flow);
        EXPECT_EQ(static_cast<int>(design.sources.size()), 16);
    }
}

TEST(Designer, SingleModeIgnoresAssignment)
{
    DesignerFixture f;
    DesignSpec spec; // 1M
    auto topo = f.designer.buildTopology(spec, f.neighbourFlow());
    EXPECT_EQ(topo.numModes, 1);
}

TEST(Designer, EndToEndPipelineReducesPower)
{
    // The paper's headline pipeline: QAP mapping + comm-aware modes
    // beats the single-mode naive baseline on localized traffic.
    DesignerFixture f;
    FlowMatrix flow = f.neighbourFlow();
    sim::Trace trace = f.traceFromFlow(flow);

    // Baseline: 1M, naive mapping.
    DesignSpec base_spec;
    auto base_topo = f.designer.buildTopology(base_spec, flow);
    auto base = f.designer.buildDesign(base_spec, base_topo, flow);
    std::vector<int> identity(16);
    for (int i = 0; i < 16; ++i)
        identity[i] = i;
    double base_power =
        f.designer.evaluate(base, trace, identity).total();

    // 2M_T_G_S (comm-aware, mapped).
    MappingParams mp;
    mp.tabooIterations = 3000;
    auto mapping = f.designer.map(flow, MappingMethod::Taboo, mp);
    FlowMatrix core_flow = permuteFlow(flow, mapping.threadToCore);

    DesignSpec spec;
    spec.numModes = 2;
    spec.mapping = MappingMethod::Taboo;
    spec.assignment = Assignment::CommAware;
    spec.weights = WeightSource::DesignFlow;
    auto topo = f.designer.buildTopology(spec, core_flow);
    auto design = f.designer.buildDesign(spec, topo, core_flow);
    double pt_power =
        f.designer.evaluate(design, trace, mapping.threadToCore)
            .total();

    EXPECT_LT(pt_power, base_power);
}

TEST(Designer, EvaluateAppliesTheMapping)
{
    DesignerFixture f;
    FlowMatrix flow = f.neighbourFlow();
    // Break the ring's translation symmetry so that rotations change
    // the single-mode power.
    flow(0, 1) = 500.0;
    sim::Trace trace = f.traceFromFlow(flow);

    DesignSpec spec;
    auto topo = f.designer.buildTopology(spec, flow);
    auto design = f.designer.buildDesign(spec, topo, flow);

    std::vector<int> identity(16);
    std::vector<int> reversed(16);
    for (int i = 0; i < 16; ++i) {
        identity[i] = i;
        reversed[i] = 15 - i;
    }
    double id_power = f.designer.evaluate(design, trace, identity)
                          .total();
    double rev_power = f.designer.evaluate(design, trace, reversed)
                           .total();
    // Reversing the serpentine is power-symmetric for single mode.
    EXPECT_NEAR(id_power, rev_power, 1e-6 * id_power);

    // A mapping that drags everything to one end is not.
    std::vector<int> rotate(16);
    for (int i = 0; i < 16; ++i)
        rotate[i] = (i + 5) % 16;
    double rot_power = f.designer.evaluate(design, trace, rotate)
                           .total();
    EXPECT_NE(rot_power, id_power);
}

TEST(Designer, ClusteredRequiresTwoModes)
{
    DesignerFixture f;
    DesignSpec spec;
    spec.numModes = 4;
    spec.assignment = Assignment::Clustered;
    EXPECT_THROW(f.designer.buildTopology(spec, f.neighbourFlow()),
                 FatalError);
}

} // namespace
