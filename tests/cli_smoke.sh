#!/bin/sh
# End-to-end smoke test of the mnocpt CLI: simulate -> map -> design ->
# evaluate -> budget on a small system.  Any non-zero exit fails.
set -e
MNOCPT="$1"
DIR="${TMPDIR:-/tmp}/mnocpt_smoke_$$"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

"$MNOCPT" simulate --benchmark water_s --cores 16 --ops 400 \
    --out "$DIR/t.trace"
"$MNOCPT" map --trace "$DIR/t.trace" --iterations 1500 \
    --out "$DIR/t.map"
"$MNOCPT" design --trace "$DIR/t.trace" --map "$DIR/t.map" \
    --modes 2 --assign comm --out "$DIR/t.design"
"$MNOCPT" evaluate --design "$DIR/t.design" --trace "$DIR/t.trace" \
    --map "$DIR/t.map" | grep -q "total"
"$MNOCPT" budget --design "$DIR/t.design" | grep -q "link budget: OK"

# Unknown subcommands and missing options must fail cleanly.
if "$MNOCPT" frobnicate 2>/dev/null; then exit 1; fi
if "$MNOCPT" design --modes 2 2>/dev/null; then exit 1; fi
echo "cli smoke OK"
