#!/bin/sh
# End-to-end smoke test of the mnocpt CLI: simulate -> map -> design ->
# evaluate -> budget -> report -> profile on a small system.  Any
# non-zero exit fails.
set -e
MNOCPT="$1"
DIR="${TMPDIR:-/tmp}/mnocpt_smoke_$$"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

"$MNOCPT" simulate --benchmark water_s --cores 16 --ops 400 \
    --out "$DIR/t.trace"
"$MNOCPT" map --trace "$DIR/t.trace" --iterations 1500 \
    --out "$DIR/t.map"
"$MNOCPT" design --trace "$DIR/t.trace" --map "$DIR/t.map" \
    --modes 2 --assign comm --out "$DIR/t.design"
"$MNOCPT" evaluate --design "$DIR/t.design" --trace "$DIR/t.trace" \
    --map "$DIR/t.map" | grep -q "total"
"$MNOCPT" budget --design "$DIR/t.design" | grep -q "link budget: OK"
"$MNOCPT" yield --design "$DIR/t.design" --trials 25 --seed 3 \
    --csv "$DIR/t_yield.csv" | grep -q "yield"
grep -q "worst_margin_db" "$DIR/t_yield.csv"

# Seed-reproducibility: identical seeds give identical yield reports.
"$MNOCPT" yield --design "$DIR/t.design" --trials 25 --seed 3 \
    > "$DIR/y1.txt"
"$MNOCPT" yield --design "$DIR/t.design" --trials 25 --seed 3 \
    > "$DIR/y2.txt"
cmp -s "$DIR/y1.txt" "$DIR/y2.txt"

# A hardened design records its yield and degradation path.
"$MNOCPT" design --trace "$DIR/t.trace" --map "$DIR/t.map" \
    --modes 2 --assign comm --yield-target 0.8 --trials 40 \
    --out "$DIR/th.design" | grep -q "hardened to yield"
grep -q "resilience" "$DIR/th.design"
"$MNOCPT" budget --design "$DIR/th.design" | grep -q "link budget: OK"

# Report pipeline: an epoch-carrying trace renders a full report.
MNOC_LEDGER=1 MNOC_EPOCH_MSGS=200 "$MNOCPT" simulate \
    --benchmark water_s --cores 16 --ops 400 --out "$DIR/e.trace"
grep -q "^epochs " "$DIR/e.trace"
"$MNOCPT" report --design "$DIR/t.design" --trace "$DIR/e.trace" \
    --map "$DIR/t.map" --dir "$DIR/report" \
    | grep -q "report written"
grep -q "Average power" "$DIR/report/mnoc_report.md"
grep -q "messages each" "$DIR/report/mnoc_report.md"
grep -q "source_energy_j" "$DIR/report/mnoc_power.csv"
grep -q "total_energy_j" "$DIR/report/mnoc_epochs.csv"
[ -s "$DIR/report/mnoc_source_power.pgm" ]

# Re-rendering the same trace is byte-identical (ledger determinism).
"$MNOCPT" report --design "$DIR/t.design" --trace "$DIR/e.trace" \
    --map "$DIR/t.map" --dir "$DIR/report2" > /dev/null
cmp -s "$DIR/report/mnoc_report.md" "$DIR/report2/mnoc_report.md"
cmp -s "$DIR/report/mnoc_power.csv" "$DIR/report2/mnoc_power.csv"
cmp -s "$DIR/report/mnoc_source_power.pgm" \
    "$DIR/report2/mnoc_source_power.pgm"

# Streamed capture: the same run written as a sharded trace renders
# a byte-identical report (the manifest carries no timestamps, and
# the simulator is deterministic, so the two captures agree exactly).
MNOC_LEDGER=1 MNOC_EPOCH_MSGS=200 "$MNOCPT" simulate \
    --benchmark water_s --cores 16 --ops 400 \
    --out "$DIR/e.mshards" --epochs-per-shard 2
grep -q "mnoc-trace-shards" "$DIR/e.mshards/index.mtrace"
"$MNOCPT" report --design "$DIR/t.design" --trace "$DIR/e.mshards" \
    --map "$DIR/t.map" --dir "$DIR/report_s" > /dev/null
cmp -s "$DIR/report/mnoc_report.md" "$DIR/report_s/mnoc_report.md"
cmp -s "$DIR/report/mnoc_power.csv" "$DIR/report_s/mnoc_power.csv"
cmp -s "$DIR/report/mnoc_epochs.csv" "$DIR/report_s/mnoc_epochs.csv"
"$MNOCPT" stats --trace "$DIR/e.mshards" | grep -q "messages each"

# Profile: aggregate a span trace into a hotspot table.
MNOC_TRACE_SPANS="$DIR/spans.json" "$MNOCPT" evaluate \
    --design "$DIR/t.design" --trace "$DIR/t.trace" > /dev/null
"$MNOCPT" profile --spans "$DIR/spans.json" \
    --csv "$DIR/profile.csv" | grep -q "inclusive"
grep -q "buildLedgerStreamed" "$DIR/profile.csv"

# Suppressed warnings surface in stats even when silenced.
"$MNOCPT" stats --trace "$DIR/t.trace" \
    | grep -q "log.suppressed_warnings"

# Runtime fault injection: the faults verb replays the trace under a
# seeded fault schedule and emits an event log plus a reliability
# time series; MNOC_FAULTS=1 folds the same engine into report.
"$MNOCPT" faults --design "$DIR/t.design" --trace "$DIR/e.trace" \
    --map "$DIR/t.map" --seed 7 --fault-scale 2.0 \
    --link-margin 0.5 --dir "$DIR/faults" \
    | grep -q "fault log written"
grep -q "start_epoch" "$DIR/faults/mnoc_fault_events.csv"
grep -q "margin_after_db" "$DIR/faults/mnoc_reliability.csv"
MNOC_FAULTS=1 "$MNOCPT" report --design "$DIR/t.design" \
    --trace "$DIR/e.trace" --map "$DIR/t.map" \
    --dir "$DIR/report_f" > /dev/null
grep -q "Reliability" "$DIR/report_f/mnoc_report.md"
grep -q "reconfig_energy_j" "$DIR/report_f/mnoc_reliability.csv"

# The same seed produces the same fault log and reliability series.
"$MNOCPT" faults --design "$DIR/t.design" --trace "$DIR/e.trace" \
    --map "$DIR/t.map" --seed 7 --fault-scale 2.0 \
    --link-margin 0.5 --dir "$DIR/faults2" > /dev/null
cmp -s "$DIR/faults/mnoc_fault_events.csv" \
    "$DIR/faults2/mnoc_fault_events.csv"
cmp -s "$DIR/faults/mnoc_reliability.csv" \
    "$DIR/faults2/mnoc_reliability.csv"

# Garbage fault knobs must stop the run, naming the knob.
if MNOC_FAULTS=2 "$MNOCPT" report --design "$DIR/t.design" \
    --trace "$DIR/e.trace" --dir "$DIR/report_bad" \
    2>"$DIR/err_knob.txt"; then exit 1; fi
grep -q "MNOC_FAULTS" "$DIR/err_knob.txt"

# Flight recorder: an adaptive replay under MNOC_JOURNAL records an
# epoch-anchored decision journal whose bytes are stamped with the
# trace's manifest and therefore do not depend on the pool size;
# `mnocpt explain` renders it into a per-epoch decision timeline.
MNOC_JOURNAL="$DIR/j1.mjrn" MNOC_THREADS=1 "$MNOCPT" adapt \
    --design "$DIR/t.design" --trace "$DIR/e.trace" \
    --map "$DIR/t.map" | grep -q "net savings"
MNOC_JOURNAL="$DIR/j4.mjrn" MNOC_THREADS=4 "$MNOCPT" adapt \
    --design "$DIR/t.design" --trace "$DIR/e.trace" \
    --map "$DIR/t.map" > /dev/null
cmp -s "$DIR/j1.mjrn" "$DIR/j4.mjrn"
"$MNOCPT" explain --journal "$DIR/j1.mjrn" --dir "$DIR/explain" \
    --jsonl "$DIR/explain/journal.jsonl" \
    | grep -q "decision timeline written"
grep -q "phase_signature" "$DIR/explain/mnoc_explain.md"
grep -q "epoch,kind,detail" "$DIR/explain/mnoc_timeline.csv"
grep -q "reconcile" "$DIR/explain/journal.jsonl"
# The Chrome-trace overlay composes with the span profiler (counter
# and instant events carry no duration, so profile skips them).
"$MNOCPT" profile --spans "$DIR/explain/mnoc_explain_trace.json" \
    > /dev/null

# A truncated journal must fail loudly, naming the byte offset.
head -c 40 "$DIR/j1.mjrn" > "$DIR/jbad.mjrn"
if "$MNOCPT" explain --journal "$DIR/jbad.mjrn" \
    --dir "$DIR/explain_bad" 2>"$DIR/err_journal.txt"
then exit 1; fi
grep -q "truncated journal" "$DIR/err_journal.txt"

# Unknown subcommands and missing/malformed options must fail cleanly,
# with a diagnostic that names the offender.
if "$MNOCPT" frobnicate 2>"$DIR/err_verb.txt"; then exit 1; fi
grep -q "frobnicate" "$DIR/err_verb.txt"
if "$MNOCPT" design --modes 2 2>/dev/null; then exit 1; fi
if "$MNOCPT" yield --design "$DIR/t.design" --trials xyz 2>/dev/null
then exit 1; fi

# A missing trace fails with the path in the diagnostic.
if "$MNOCPT" evaluate --design "$DIR/t.design" \
    --trace "$DIR/no_such.trace" 2>"$DIR/err_trace.txt"
then exit 1; fi
grep -q "no_such.trace" "$DIR/err_trace.txt"

# An unreadable design (a directory, here) fails with the path.
mkdir -p "$DIR/not_a_file.design"
if "$MNOCPT" budget --design "$DIR/not_a_file.design" \
    2>"$DIR/err_design.txt"
then exit 1; fi
grep -q "not_a_file.design" "$DIR/err_design.txt"

# Corrupt design files must be rejected, not misparsed.
head -c 200 "$DIR/t.design" > "$DIR/bad.design"
if "$MNOCPT" budget --design "$DIR/bad.design" 2>/dev/null
then exit 1; fi
echo "garbage" >> "$DIR/t.design"
if "$MNOCPT" budget --design "$DIR/t.design" 2>/dev/null
then exit 1; fi
echo "cli smoke OK"
