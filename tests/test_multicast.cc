/**
 * @file
 * Tests of the multicast-invalidation extension (paper Section 7):
 * identical protocol outcomes with fewer home-side packets.
 */

#include <gtest/gtest.h>

#include "noc/mnoc_network.hh"
#include "sim/coherence.hh"
#include "sim/simulator.hh"
#include "workloads/synthetic.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

struct McFixture
{
    optics::SerpentineLayout layout{8, Meters(0.02)};
    noc::NetworkConfig netConfig;
    noc::MnocNetwork net{layout, netConfig};
    noc::TrafficRecorder recorder{8};
    MemoryParams params;

    McFixture(bool multicast)
    {
        params.multicastInvalidations = multicast;
    }

    static MemOp
    op(int owner, std::uint64_t line, bool write)
    {
        MemOp m;
        m.addr = placedAddr(owner, line << lineShift);
        m.write = write;
        return m;
    }
};

/** Share one line among many readers, then write it. */
CoherenceStats
shareThenWrite(bool multicast)
{
    McFixture f(multicast);
    CoherenceController coh(8, f.params, f.net, f.recorder);
    for (int reader = 1; reader < 7; ++reader)
        coh.access(reader, McFixture::op(0, 5, false),
                   reader * 1000);
    coh.access(7, McFixture::op(0, 5, true), 100000);
    return coh.stats();
}

TEST(Multicast, SameInvalidationCountFewerPackets)
{
    auto unicast = shareThenWrite(false);
    auto multicast = shareThenWrite(true);

    // Every cached copy is invalidated either way.
    EXPECT_EQ(unicast.invalidations, multicast.invalidations);
    EXPECT_EQ(multicast.multicastInvs, 1u);
    EXPECT_EQ(unicast.multicastInvs, 0u);
    // Multicast collapses the per-sharer invalidation unicasts (6
    // sharers -> 1 packet saves 5).
    EXPECT_EQ(unicast.packetsSent - multicast.packetsSent, 5u);
}

TEST(Multicast, StateOutcomesMatchUnicast)
{
    for (bool multicast : {false, true}) {
        McFixture f(multicast);
        CoherenceController coh(8, f.params, f.net, f.recorder);
        std::uint64_t line =
            lineOf(placedAddr(2, 9ull << lineShift));

        coh.access(1, McFixture::op(2, 9, false), 0);
        coh.access(3, McFixture::op(2, 9, false), 100);
        coh.access(5, McFixture::op(2, 9, false), 200);
        coh.access(3, McFixture::op(2, 9, true), 300);

        const DirEntry *e = coh.directory().find(line);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->state, DirState::Modified);
        EXPECT_EQ(e->owner, 3);
        EXPECT_FALSE(coh.cacheState(1, line).has_value());
        EXPECT_FALSE(coh.cacheState(5, line).has_value());
        EXPECT_EQ(*coh.cacheState(3, line), LineState::Modified);
    }
}

TEST(Multicast, SingleSharerFallsBackToUnicast)
{
    McFixture f(true);
    CoherenceController coh(8, f.params, f.net, f.recorder);
    coh.access(1, McFixture::op(0, 3, false), 0);
    coh.access(4, McFixture::op(0, 3, true), 1000);
    EXPECT_EQ(coh.stats().multicastInvs, 0u); // one target: unicast
    EXPECT_EQ(coh.stats().invalidations, 1u);
}

TEST(Multicast, UpgradePathAlsoMulticasts)
{
    McFixture f(true);
    CoherenceController coh(8, f.params, f.net, f.recorder);
    for (int reader = 0; reader < 6; ++reader)
        coh.access(reader, McFixture::op(7, 2, false), reader * 500);
    // Reader 0 upgrades: the other five sharers get one multicast.
    coh.access(0, McFixture::op(7, 2, true), 10000);
    EXPECT_EQ(coh.stats().multicastInvs, 1u);
    EXPECT_EQ(coh.stats().upgrades, 1u);
}

TEST(Multicast, EndToEndRunIsFasterOrEqualOnSharingWorkload)
{
    // Hotspot reads + owner writes cause invalidation storms; the
    // multicast run must not be slower and must send fewer packets.
    auto run = [](bool multicast) {
        optics::SerpentineLayout layout{16, Meters(0.05)};
        noc::NetworkConfig net_config;
        noc::MnocNetwork net(layout, net_config);
        sim::SimConfig config;
        config.numCores = 16;
        config.memory.multicastInvalidations = multicast;
        workloads::WorkloadScale scale;
        scale.opsPerThread = 400;
        workloads::HotspotWorkload workload(scale, 2);
        return runSimulation(config, net, workload, 3);
    };
    auto unicast = run(false);
    auto multicast = run(true);
    EXPECT_LE(multicast.coherence.packetsSent,
              unicast.coherence.packetsSent);
    EXPECT_EQ(multicast.coherence.accesses,
              unicast.coherence.accesses);
}

} // namespace
