/**
 * @file
 * Tests of the event-driven simulator: determinism, thread mapping,
 * store-buffer overlap, and traffic capture.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/metrics.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"
#include "workloads/synthetic.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

struct SimFixture
{
    int n = 16;
    optics::SerpentineLayout layout{16, Meters(0.05)};
    noc::NetworkConfig netConfig;
    noc::MnocNetwork net{layout, netConfig};

    SimConfig
    config() const
    {
        SimConfig c;
        c.numCores = n;
        return c;
    }
};

TEST(Simulator, DeterministicAcrossRuns)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 200;
    workloads::UniformWorkload w1(scale);
    workloads::UniformWorkload w2(scale);

    auto a = runSimulation(f.config(), f.net, w1, 7);
    auto b = runSimulation(f.config(), f.net, w2, 7);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_TRUE(a.packets == b.packets);
    EXPECT_TRUE(a.flits == b.flits);
    EXPECT_EQ(a.coherence.packetsSent, b.coherence.packetsSent);
}

TEST(Simulator, SeedChangesTraffic)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 200;
    workloads::UniformWorkload w(scale);
    auto a = runSimulation(f.config(), f.net, w, 1);
    auto b = runSimulation(f.config(), f.net, w, 2);
    EXPECT_FALSE(a.packets == b.packets);
}

TEST(Simulator, CapturesEpochsWhenLedgerEnabled)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 200;
    workloads::UniformWorkload w1(scale);
    workloads::UniformWorkload w2(scale);

    bool before = ledgerEnabled();
    setLedgerEnabled(true);
    auto a = runSimulation(f.config(), f.net, w1, 7);
    auto b = runSimulation(f.config(), f.net, w2, 7);
    setLedgerEnabled(before);

    ASSERT_FALSE(a.epochs.empty());
    EXPECT_EQ(a.epochs.messagesPerEpoch, ledgerEpochMessages());

    // Epoch cells canonically sorted, and their flits total exactly
    // the traffic matrix: the buckets are a partition, not a sample.
    std::uint64_t epoch_flits = 0;
    for (const auto &cells : a.epochs.epochs) {
        for (std::size_t i = 1; i < cells.size(); ++i) {
            bool ordered =
                cells[i - 1].src < cells[i].src ||
                (cells[i - 1].src == cells[i].src &&
                 cells[i - 1].dst < cells[i].dst);
            EXPECT_TRUE(ordered) << "epoch cells out of order";
        }
        for (const auto &cell : cells)
            epoch_flits += cell.flits;
    }
    std::uint64_t matrix_flits = 0;
    for (int s = 0; s < 16; ++s)
        for (int d = 0; d < 16; ++d)
            matrix_flits += a.flits(s, d);
    EXPECT_EQ(epoch_flits, matrix_flits);

    // Same seed, same epochs: capture is deterministic.
    ASSERT_EQ(a.epochs.epochs.size(), b.epochs.epochs.size());
    for (std::size_t e = 0; e < a.epochs.epochs.size(); ++e) {
        const auto &ca = a.epochs.epochs[e];
        const auto &cb = b.epochs.epochs[e];
        ASSERT_EQ(ca.size(), cb.size()) << "epoch " << e;
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i].src, cb[i].src);
            EXPECT_EQ(ca[i].dst, cb[i].dst);
            EXPECT_EQ(ca[i].packets, cb[i].packets);
            EXPECT_EQ(ca[i].flits, cb[i].flits);
        }
    }
}

TEST(Simulator, LedgerDisabledCapturesNoEpochs)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 50;
    workloads::UniformWorkload w(scale);
    bool before = ledgerEnabled();
    setLedgerEnabled(false);
    auto result = runSimulation(f.config(), f.net, w, 7);
    setLedgerEnabled(before);
    EXPECT_TRUE(result.epochs.empty());
    EXPECT_EQ(result.epochs.messagesPerEpoch, 0u);
}

TEST(Simulator, RunsAllOps)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 123;
    workloads::RingWorkload w(scale);
    auto result = runSimulation(f.config(), f.net, w, 1);
    EXPECT_EQ(result.coherence.accesses,
              static_cast<std::uint64_t>(16 * 123));
    EXPECT_GT(result.totalTicks, 0u);
}

TEST(Simulator, RingTrafficIsNeighbourOnly)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 400;
    workloads::RingWorkload w(scale);
    auto result = runSimulation(f.config(), f.net, w, 3);

    // Traffic concentrates on (t, t+1) pairs: data flows between the
    // reader and the line owner's home (plus coherence control).
    std::uint64_t neighbour = 0;
    std::uint64_t total = 0;
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            total += result.packets(s, d);
            int gap = std::min((s - d + 16) % 16, (d - s + 16) % 16);
            if (gap <= 1)
                neighbour += result.packets(s, d);
        }
    }
    EXPECT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(neighbour) /
                  static_cast<double>(total),
              0.95);
}

TEST(Simulator, ThreadMappingPermutesTraffic)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 300;
    workloads::RingWorkload w(scale);

    auto identity = runSimulation(f.config(), f.net, w, 5);

    // Reverse mapping: thread t runs on core 15 - t; first-touch homes
    // move with the threads, so the traffic matrix is the permuted
    // image of the identity run.
    SimConfig mapped_config = f.config();
    mapped_config.threadToCore.resize(16);
    for (int t = 0; t < 16; ++t)
        mapped_config.threadToCore[t] = 15 - t;
    auto mapped = runSimulation(mapped_config, f.net, w, 5);

    for (int s = 0; s < 16; ++s)
        for (int d = 0; d < 16; ++d)
            EXPECT_EQ(mapped.packets(15 - s, 15 - d),
                      identity.packets(s, d))
                << s << "->" << d;
}

TEST(Simulator, StoreBufferOverlapsStores)
{
    SimFixture f;
    // A write-heavy workload finishes much faster with a store buffer.
    class WriteHeavy : public workloads::GeneratedWorkload
    {
      public:
        WriteHeavy() : GeneratedWorkload({}) {}
        std::string name() const override { return "writes"; }

      protected:
        void
        generate(int n, Prng &rng) override
        {
            for (int t = 0; t < n; ++t) {
                Prng trng(rng() ^ static_cast<std::uint64_t>(t));
                for (int i = 0; i < 300; ++i)
                    write(t, static_cast<int>(trng.below(n)),
                          1000 + trng.below(1u << 16), 0);
            }
        }
    };

    WriteHeavy w1, w2;
    SimConfig blocking = f.config();
    blocking.storeBufferDepth = 0;
    SimConfig overlapped = f.config();
    overlapped.storeBufferDepth = 16;

    auto slow = runSimulation(blocking, f.net, w1, 9);
    auto fast = runSimulation(overlapped, f.net, w2, 9);
    EXPECT_LT(fast.totalTicks, slow.totalTicks / 2);
    // Same traffic either way.
    EXPECT_EQ(slow.coherence.accesses, fast.coherence.accesses);
}

TEST(Simulator, RejectsBadMappings)
{
    SimFixture f;
    workloads::UniformWorkload w;
    SimConfig config = f.config();
    config.threadToCore = {0, 1, 2}; // wrong size
    EXPECT_THROW(runSimulation(config, f.net, w, 1), FatalError);
    config.threadToCore.assign(16, 0); // not a permutation
    EXPECT_THROW(runSimulation(config, f.net, w, 1), FatalError);
}

TEST(Simulator, AveragePacketLatencyIsPlausible)
{
    SimFixture f;
    workloads::WorkloadScale scale;
    scale.opsPerThread = 200;
    workloads::UniformWorkload w(scale);
    auto result = runSimulation(f.config(), f.net, w, 11);
    EXPECT_GT(result.avgPacketLatency, 1.0);
    EXPECT_LT(result.avgPacketLatency, 500.0);
    EXPECT_EQ(result.networkName, "mNoC");
    EXPECT_EQ(result.workloadName, "uniform");
}

} // namespace
