/**
 * @file
 * Tests of the Appendix A alpha optimization: mode powers, reachability
 * in every mode, and optimality of the closed-form solution.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/log.hh"
#include "optics/alpha_optimizer.hh"

namespace {

using namespace mnoc;
using namespace mnoc::optics;

struct Fixture
{
    SerpentineLayout layout{16, Meters(0.05)};
    DeviceParams params;
    SplitterChain chain{layout, params, 7};

    std::vector<int>
    twoModeAssignment() const
    {
        // Nearest 6 destinations in mode 0, the rest in mode 1.
        std::vector<int> modes(16, 1);
        for (int d = 4; d <= 10; ++d)
            modes[d] = 0;
        return modes;
    }
};

TEST(AlphaOptimizer, SingleModeIsBroadcast)
{
    Fixture f;
    std::vector<int> modes(16, 0);
    AlphaOptimizer opt(f.chain, modes, {1.0}, f.params.pminAtTap());
    auto design = opt.optimize();
    ASSERT_EQ(design.modePower.size(), 1u);
    EXPECT_DOUBLE_EQ(design.alpha[0], 1.0);
    // Must equal the plain broadcast design power.
    std::vector<double> targets(16, f.params.pminAtTap().watts());
    targets[7] = 0.0;
    EXPECT_NEAR(design.modePower[0].watts(),
                f.chain.design(targets).injectedPower.watts(), 1e-15);
}

TEST(AlphaOptimizer, ModePowersAreOrdered)
{
    Fixture f;
    AlphaOptimizer opt(f.chain, f.twoModeAssignment(), {0.8, 0.2},
                       f.params.pminAtTap());
    auto design = opt.optimize();
    ASSERT_EQ(design.modePower.size(), 2u);
    EXPECT_LT(design.modePower[0], design.modePower[1]);
    EXPECT_LE(design.alpha[1], design.alpha[0]);
    EXPECT_GT(design.alpha[1], 0.0);
}

TEST(AlphaOptimizer, EveryModeReachesItsDestinations)
{
    Fixture f;
    auto modes = f.twoModeAssignment();
    double pmin = f.params.pminAtTap().watts();
    AlphaOptimizer opt(f.chain, modes, {0.7, 0.3}, WattPower(pmin));
    auto design = opt.optimize();

    for (int m = 0; m < 2; ++m) {
        auto received = f.chain.evaluate(design.chain,
                                         design.modePower[m]);
        for (int d = 0; d < 16; ++d) {
            if (d == 7)
                continue;
            if (modes[d] <= m) {
                EXPECT_GE(received[d], pmin * (1.0 - 1e-9))
                    << "mode " << m << " dest " << d;
            } else {
                // Below threshold: treated as noise by the receiver.
                EXPECT_LT(received[d], pmin) << "mode " << m
                                             << " dest " << d;
            }
        }
    }
}

TEST(AlphaOptimizer, ClosedFormMatchesTwoModeAnalyticOptimum)
{
    Fixture f;
    auto modes = f.twoModeAssignment();
    std::vector<double> weights = {0.6, 0.4};
    AlphaOptimizer opt(f.chain, modes, weights,
                       f.params.pminAtTap());
    auto design = opt.optimize();

    double c0 = opt.modeCost(0);
    double c1 = opt.modeCost(1);
    double expected_alpha =
        std::min(1.0, std::sqrt(c0 * weights[1] / (c1 * weights[0])));
    EXPECT_NEAR(design.alpha[1], expected_alpha, 1e-6);
}

TEST(AlphaOptimizer, OptimizeNeverWorseThanGrid)
{
    Fixture f;
    AlphaOptimizer opt(f.chain, f.twoModeAssignment(), {0.9, 0.1},
                       f.params.pminAtTap());
    auto grid = opt.optimizeGrid(0.1);
    auto refined = opt.optimize();
    EXPECT_LE(refined.expectedPower, grid.expectedPower * (1 + 1e-9));
}

TEST(AlphaOptimizer, ExpectedPowerForAgreesWithBuild)
{
    Fixture f;
    AlphaOptimizer opt(f.chain, f.twoModeAssignment(), {0.5, 0.5},
                       f.params.pminAtTap());
    std::vector<double> alpha = {1.0, 0.4};
    EXPECT_NEAR(opt.expectedPowerFor(alpha).watts(),
                opt.build(alpha).expectedPower.watts(), 1e-12);
}

TEST(AlphaOptimizer, SkewedWeightsDeepenTheLowMode)
{
    // The more traffic stays in mode 0, the cheaper mode 0 should get
    // (smaller alpha_1 would RAISE mode-1 power, so alpha_1 shrinks as
    // w_1 shrinks).
    Fixture f;
    auto modes = f.twoModeAssignment();
    double pmin = f.params.pminAtTap().watts();
    auto alpha_for = [&](double w0) {
        AlphaOptimizer opt(f.chain, modes, {w0, 1.0 - w0},
                           WattPower(pmin));
        return opt.optimize().alpha[1];
    };
    EXPECT_LT(alpha_for(0.95), alpha_for(0.5));
    EXPECT_LT(alpha_for(0.5), alpha_for(0.1));
}

TEST(AlphaOptimizer, RejectsMalformedInput)
{
    Fixture f;
    auto modes = f.twoModeAssignment();
    double pmin = f.params.pminAtTap().watts();
    WattPower wpmin(pmin);
    EXPECT_THROW(AlphaOptimizer(f.chain, modes, {}, wpmin), FatalError);
    EXPECT_THROW(AlphaOptimizer(f.chain, modes, {0.0, 0.0}, wpmin),
                 FatalError);
    EXPECT_THROW(AlphaOptimizer(f.chain, modes, {-1.0, 2.0}, wpmin),
                 FatalError);
    std::vector<int> bad_modes(16, 5);
    EXPECT_THROW(AlphaOptimizer(f.chain, bad_modes, {0.5, 0.5}, wpmin),
                 FatalError);

    AlphaOptimizer opt(f.chain, modes, {0.5, 0.5}, wpmin);
    EXPECT_THROW(opt.build({0.5, 0.4}), FatalError);  // alpha0 != 1
    EXPECT_THROW(opt.build({1.0, 1.1}), FatalError);  // increasing
}

TEST(OptimizeAlphaVector, FourModeMonotoneAndOptimalAtBoundary)
{
    std::vector<double> cost = {10.0, 20.0, 40.0, 80.0};
    std::vector<double> weights = {0.70, 0.20, 0.07, 0.03};
    auto sol = optimizeAlphaVector(cost, weights);
    ASSERT_EQ(sol.alpha.size(), 4u);
    EXPECT_DOUBLE_EQ(sol.alpha[0], 1.0);
    for (int m = 1; m < 4; ++m) {
        EXPECT_LE(sol.alpha[m], sol.alpha[m - 1] + 1e-12);
        EXPECT_GT(sol.alpha[m], 0.0);
    }
    // Local optimality: nudging any coordinate must not improve.
    auto objective = [&](const std::vector<double> &a) {
        double c = 0.0, inv = 0.0;
        for (int i = 0; i < 4; ++i) {
            c += cost[i] * a[i];
            inv += weights[i] / a[i];
        }
        return c * inv;
    };
    double base = objective(sol.alpha);
    for (int m = 1; m < 4; ++m) {
        for (double eps : {-1e-4, 1e-4}) {
            auto nudged = sol.alpha;
            nudged[m] += eps;
            // Respect the feasible region, including the default 0.1
            // drive-range floor.
            if (nudged[m] < 0.1 || nudged[m] > nudged[m - 1] ||
                (m + 1 < 4 && nudged[m] < nudged[m + 1]))
                continue;
            EXPECT_GE(objective(nudged), base - 1e-9);
        }
    }
}

TEST(OptimizeAlphaVector, FloorBoundsTheDriveRange)
{
    // Extremely skewed weights want a tiny alpha; the default floor
    // caps the mode-power ratio at 10x (the paper's 0.1 grid minimum).
    std::vector<double> cost = {1.0, 1000.0};
    std::vector<double> weights = {0.999999, 0.000001};
    auto capped = optimizeAlphaVector(cost, weights);
    EXPECT_GE(capped.alpha[1], 0.1 - 1e-12);

    // An explicit wider range goes deeper and can only be cheaper.
    auto wide = optimizeAlphaVector(cost, weights, 1e-6);
    EXPECT_LT(wide.alpha[1], capped.alpha[1]);
    EXPECT_LE(wide.objective, capped.objective + 1e-9);
}

TEST(OptimizeAlphaVector, LargeMAnalyticSeedIsNearOptimal)
{
    // Per-destination-mode shape: costs grow along the order, weights
    // fall off.  The sqrt(w/c) seed must land within a hair of the
    // Cauchy-Schwarz optimum (sum sqrt(w c))^2 (no floor binding).
    int m = 64;
    std::vector<double> cost(m), weights(m);
    double bound = 0.0;
    double wsum = 0.0;
    for (int i = 0; i < m; ++i) {
        cost[i] = 10.0 * std::pow(1.08, i);
        weights[i] = std::pow(0.85, i);
        bound += std::sqrt(weights[i] * cost[i]);
        wsum += weights[i];
    }
    auto sol = optimizeAlphaVector(cost, weights, 1e-6);
    EXPECT_LE(sol.objective, bound * bound / wsum * 1.001);
    for (int i = 1; i < m; ++i)
        EXPECT_LE(sol.alpha[i], sol.alpha[i - 1] + 1e-12);
}

TEST(OptimizeAlphaVector, LargeMZeroWeightTailStaysCheap)
{
    // Trailing zero-weight modes (unused destinations) must sit at the
    // floor instead of inheriting a hot alpha: otherwise their
    // provisioning cost c_i * alpha_i poisons the whole design.
    int m = 40;
    std::vector<double> cost(m, 50.0);
    std::vector<double> weights(m, 0.0);
    weights[0] = 1.0;
    weights[1] = 0.5;
    auto sol = optimizeAlphaVector(cost, weights, 1e-6);
    EXPECT_LT(sol.alpha[m - 1], 1e-3);
    // Objective approaches the two-hot-mode value.
    std::vector<double> two_cost = {50.0, 50.0};
    std::vector<double> two_w = {1.0, 0.5};
    auto two = optimizeAlphaVector(two_cost, two_w, 1e-6);
    EXPECT_LE(sol.objective, two.objective * 1.05);
}

TEST(OptimizeAlphaVector, UniformEverythingStaysBroadcast)
{
    // One mode holding all destinations and all weight: alpha = 1.
    auto sol = optimizeAlphaVector({100.0}, {1.0});
    EXPECT_DOUBLE_EQ(sol.alpha[0], 1.0);
    EXPECT_NEAR(sol.objective, 100.0, 1e-12);
}

/** Weight sweeps: the optimizer's output is always feasible. */
class AlphaWeightSweep
    : public testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(AlphaWeightSweep, FeasibleAndNoWorseThanBroadcastDesign)
{
    auto [w0, w1] = GetParam();
    Fixture f;
    auto modes = f.twoModeAssignment();
    double pmin = f.params.pminAtTap().watts();
    AlphaOptimizer opt(f.chain, modes, {w0, w1}, WattPower(pmin));
    auto design = opt.optimize();

    // alpha = {1, 1} corresponds to always driving broadcast power;
    // the optimum can only be cheaper in expectation.
    EXPECT_LE(design.expectedPower,
              opt.expectedPowerFor({1.0, 1.0}) * (1 + 1e-12));
    EXPECT_LE(design.alpha[1], 1.0);
    EXPECT_GT(design.alpha[1], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Weights, AlphaWeightSweep,
    testing::Values(std::make_tuple(0.99, 0.01),
                    std::make_tuple(0.9, 0.1),
                    std::make_tuple(0.66, 0.33),
                    std::make_tuple(0.5, 0.5),
                    std::make_tuple(0.33, 0.66),
                    std::make_tuple(0.1, 0.9)));

} // namespace
