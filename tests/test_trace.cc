/**
 * @file
 * Tests of trace capture, serialization, and mapping: round trips,
 * the strict parser's rejection of corrupt files, write-failure
 * detection, permutation validation, and a golden 256-node fixture
 * pinning the on-disk format (including the manifest block).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "sim/trace.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

Trace
sampleTrace()
{
    Trace t;
    t.workloadName = "sample";
    t.networkName = "mNoC";
    t.totalTicks = 12345;
    t.packets = CountMatrix(4, 4, 0);
    t.flits = CountMatrix(4, 4, 0);
    t.packets(0, 1) = 10;
    t.flits(0, 1) = 30;
    t.packets(2, 3) = 5;
    t.flits(2, 3) = 5;
    return t;
}

/** Write @p body to a temp file named @p stem and return its path. */
std::string
writeFixture(const std::string &stem, const std::string &body)
{
    std::string path = testing::TempDir() + stem;
    std::ofstream out(path);
    out << body;
    return path;
}

/** Expect loadTrace(@p path) to fail with @p needle in the message
 *  and the 1-based @p line in the path:line prefix. */
void
expectLoadFailure(const std::string &path, int line,
                  const std::string &needle)
{
    try {
        loadTrace(path);
        FAIL() << "loadTrace accepted a corrupt file: " << needle;
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find(path + ":" + std::to_string(line)),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(Trace, SaveLoadRoundTrip)
{
    std::string path = testing::TempDir() + "mnoc_trace_test.txt";
    Trace original = sampleTrace();
    saveTrace(path, original);
    Trace loaded = loadTrace(path);

    EXPECT_EQ(loaded.workloadName, original.workloadName);
    EXPECT_EQ(loaded.networkName, original.networkName);
    EXPECT_EQ(loaded.totalTicks, original.totalTicks);
    EXPECT_TRUE(loaded.packets == original.packets);
    EXPECT_TRUE(loaded.flits == original.flits);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    std::string path = testing::TempDir() + "mnoc_trace_bad.txt";
    {
        std::ofstream out(path);
        out << "not-a-trace 9\n";
    }
    EXPECT_THROW(loadTrace(path), FatalError);
    EXPECT_THROW(loadTrace("/nonexistent/path/x.txt"), FatalError);
    std::remove(path.c_str());
}

TEST(Trace, MapTracePermutesEndpoints)
{
    Trace t = sampleTrace();
    std::vector<int> map = {3, 2, 1, 0};
    Trace mapped = mapTrace(t, map);
    EXPECT_EQ(mapped.packets(3, 2), 10u);
    EXPECT_EQ(mapped.flits(3, 2), 30u);
    EXPECT_EQ(mapped.packets(1, 0), 5u);
    EXPECT_EQ(mapped.packets(0, 1), 0u);
    EXPECT_EQ(mapped.totalTicks, t.totalTicks);
    EXPECT_EQ(mapped.packets.total(), t.packets.total());
}

TEST(Trace, MapTraceIdentityIsNoop)
{
    Trace t = sampleTrace();
    Trace mapped = mapTrace(t, {0, 1, 2, 3});
    EXPECT_TRUE(mapped.packets == t.packets);
    EXPECT_TRUE(mapped.flits == t.flits);
}

TEST(Trace, MapTraceChecksSize)
{
    Trace t = sampleTrace();
    EXPECT_THROW(mapTrace(t, {0, 1}), FatalError);
    EXPECT_THROW(mapTrace(t, {0, 1, 2, 9}), FatalError);
}

TEST(Trace, MapTraceRejectsDuplicateCores)
{
    // Regression: a duplicated target used to silently merge two
    // threads' rows; it must be rejected as a non-permutation.
    Trace t = sampleTrace();
    try {
        mapTrace(t, {0, 1, 2, 2});
        FAIL() << "mapTrace accepted a non-permutation";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("not a permutation: core 2"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Trace, ManifestRoundTripsThroughSaveLoad)
{
    Trace t = sampleTrace();
    t.manifest.seed = 99;
    t.manifest.gitSha = "cafe123";
    t.manifest.threads = 3;
    t.manifest.configDigest = "0123456789abcdef";
    t.manifest.env.emplace_back("MNOC_THREADS", "3");
    t.manifest.env.emplace_back("MNOC_BENCH_DIR", "out dir");

    std::string path = testing::TempDir() + "mnoc_trace_manifest.txt";
    saveTrace(path, t);
    Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.manifest.seed, 99u);
    EXPECT_EQ(loaded.manifest.gitSha, "cafe123");
    EXPECT_EQ(loaded.manifest.threads, 3);
    EXPECT_EQ(loaded.manifest.configDigest, "0123456789abcdef");
    EXPECT_EQ(loaded.manifest.env, t.manifest.env);

    // mapTrace must carry the provenance along.
    Trace mapped = mapTrace(loaded, {3, 2, 1, 0});
    EXPECT_EQ(mapped.manifest.seed, 99u);
    EXPECT_EQ(mapped.manifest.gitSha, "cafe123");
    std::remove(path.c_str());
}

TEST(Trace, LoadStillReadsVersionOneFiles)
{
    std::string path = writeFixture(
        "mnoc_trace_v1.txt",
        "mnoc-trace 1\nlegacy\nmNoC\n2 100\n0 1 4 8\n");
    Trace t = loadTrace(path);
    EXPECT_EQ(t.workloadName, "legacy");
    EXPECT_EQ(t.packets(0, 1), 4u);
    EXPECT_EQ(t.flits(0, 1), 8u);
    // v1 predates manifests: the loaded one is the default.
    EXPECT_EQ(t.manifest.gitSha, "");
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsTruncatedTriplet)
{
    // Regression: a short read (e.g. a truncated copy) used to parse
    // as clean EOF; it must fail and name the offending line.
    expectLoadFailure(
        writeFixture("mnoc_trace_short.txt",
                     "mnoc-trace 2\nw\nn\n2 10\nmanifest 0\n"
                     "0 1 4 8\n1 0 2\n"),
        7, "malformed trace triplet");
}

TEST(Trace, LoadRejectsNonNumericTriplet)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_alpha.txt",
                     "mnoc-trace 2\nw\nn\n2 10\nmanifest 0\n"
                     "0 one 4 8\n"),
        6, "malformed trace triplet");
}

TEST(Trace, LoadRejectsTrailingGarbageOnTriplet)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_extra.txt",
                     "mnoc-trace 2\nw\nn\n2 10\nmanifest 0\n"
                     "0 1 4 8 junk\n"),
        6, "trailing garbage");
}

TEST(Trace, LoadRejectsOutOfRangeEndpoint)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_range.txt",
                     "mnoc-trace 2\nw\nn\n2 10\nmanifest 0\n"
                     "0 5 4 8\n"),
        6, "out of range");
}

TEST(Trace, LoadRejectsTruncatedManifest)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_mtrunc.txt",
                     "mnoc-trace 2\nw\nn\n2 10\nmanifest 3\n"
                     "seed 1\n"),
        7, "truncated manifest");
}

Trace
sampleTraceWithEpochs()
{
    Trace t = sampleTrace();
    t.epochs.messagesPerEpoch = 8;
    t.epochs.epochs.push_back(
        {{0, 1, 6, 18}, {2, 3, 2, 2}});
    t.epochs.epochs.push_back(
        {{0, 1, 4, 12}, {2, 3, 3, 3}});
    return t;
}

TEST(Trace, EpochsRoundTripThroughVersionThree)
{
    std::string path = testing::TempDir() + "mnoc_trace_v3.txt";
    Trace original = sampleTraceWithEpochs();
    saveTrace(path, original);

    // Epoch-carrying traces are written as version 3.
    {
        std::ifstream in(path);
        std::string header;
        std::getline(in, header);
        EXPECT_EQ(header, "mnoc-trace 3");
    }

    Trace loaded = loadTrace(path);
    EXPECT_TRUE(loaded.packets == original.packets);
    EXPECT_TRUE(loaded.flits == original.flits);
    EXPECT_EQ(loaded.epochs.messagesPerEpoch, 8u);
    ASSERT_EQ(loaded.epochs.epochs.size(), 2u);
    ASSERT_EQ(loaded.epochs.epochs[0].size(), 2u);
    EXPECT_EQ(loaded.epochs.epochs[0][0].src, 0);
    EXPECT_EQ(loaded.epochs.epochs[0][0].dst, 1);
    EXPECT_EQ(loaded.epochs.epochs[0][0].packets, 6u);
    EXPECT_EQ(loaded.epochs.epochs[0][0].flits, 18u);
    EXPECT_EQ(loaded.epochs.epochs[1][1].src, 2);
    EXPECT_EQ(loaded.epochs.epochs[1][1].flits, 3u);
    std::remove(path.c_str());
}

TEST(Trace, EpochFreeTraceStaysOnVersionTwo)
{
    // The v2 byte format is pinned by the golden fixture; a trace
    // captured without MNOC_LEDGER must keep producing it.
    std::string path = testing::TempDir() + "mnoc_trace_v2.txt";
    saveTrace(path, sampleTrace());
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "mnoc-trace 2");
    in.close();
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsMissingEpochsBlock)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_noep.txt",
                     "mnoc-trace 3\nw\nn\n2 10\nmanifest 0\n"
                     "0 1 4 8\n"),
        6, "expected 'epochs <n> <msgs>'");
}

TEST(Trace, LoadRejectsMalformedEpochCell)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_badcell.txt",
                     "mnoc-trace 3\nw\nn\n2 10\nmanifest 0\n"
                     "epochs 1 8\nepoch 1\n0 one 4 8\n"),
        8, "malformed epoch cell");
}

TEST(Trace, LoadRejectsEpochEndpointOutOfRange)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_eprange.txt",
                     "mnoc-trace 3\nw\nn\n2 10\nmanifest 0\n"
                     "epochs 1 8\nepoch 1\n0 5 4 8\n"),
        8, "epoch cell endpoint out of range");
}

TEST(Trace, LoadRejectsTruncatedEpochBlock)
{
    expectLoadFailure(
        writeFixture("mnoc_trace_eptrunc.txt",
                     "mnoc-trace 3\nw\nn\n2 10\nmanifest 0\n"
                     "epochs 2 8\nepoch 1\n0 1 4 8\n"),
        9, "truncated epochs block");
}

TEST(Trace, TruncatedEpochRecordNamesByteOffsetAndKind)
{
    // Regression: a v3 trace cut mid-epoch-record must fail naming
    // the record kind and the byte offset of the damage -- never
    // return a partial trace.  This fixture declares 2 cells but
    // ends after the first, so the file's EOF is the damage point.
    std::string body = "mnoc-trace 3\nw\nn\n2 10\nmanifest 0\n"
                       "epochs 1 8\nepoch 2\n0 1 4 8\n";
    std::string path = writeFixture("mnoc_trace_cut.txt", body);
    try {
        loadTrace(path);
        FAIL() << "loadTrace returned a partial trace";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("truncated epoch cell list"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("epoch-cell record at byte " +
                            std::to_string(body.size())),
                  std::string::npos)
            << what;
    }
    std::remove(path.c_str());

    // Cut mid-line instead: the partial record itself is named, at
    // the offset where it starts.
    path = writeFixture("mnoc_trace_cut2.txt", body + "1 0");
    try {
        loadTrace(path);
        FAIL() << "loadTrace returned a partial trace";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("malformed epoch cell"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("epoch-cell record at byte " +
                            std::to_string(body.size())),
                  std::string::npos)
            << what;
    }
    std::remove(path.c_str());
}

TEST(Trace, MapTracePermutesAndResortsEpochCells)
{
    Trace t = sampleTraceWithEpochs();
    Trace mapped = mapTrace(t, {3, 2, 1, 0});
    EXPECT_EQ(mapped.epochs.messagesPerEpoch, 8u);
    ASSERT_EQ(mapped.epochs.epochs.size(), 2u);
    // (0,1)->(3,2) and (2,3)->(1,0); cells come back sorted by
    // (src, dst), so the permuted (2,3) cell now leads.
    const auto &cells = mapped.epochs.epochs[0];
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].src, 1);
    EXPECT_EQ(cells[0].dst, 0);
    EXPECT_EQ(cells[0].flits, 2u);
    EXPECT_EQ(cells[1].src, 3);
    EXPECT_EQ(cells[1].dst, 2);
    EXPECT_EQ(cells[1].flits, 18u);
}

TEST(Trace, SaveTraceDetectsFullDisk)
{
    // Regression: saveTrace used to return successfully after writing
    // to a full device, leaving a truncated artifact behind.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    try {
        saveTrace("/dev/full", sampleTrace());
        FAIL() << "saveTrace missed the write failure";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("disk full"),
                  std::string::npos)
            << error.what();
    }
}

/** Deterministic 256-node trace with a pinned manifest: the fixture
 *  behind the golden-file test (regenerate by saving this trace). */
Trace
golden256Trace()
{
    constexpr int kNodes = 256;
    Trace t;
    t.workloadName = "golden_all_to_some";
    t.networkName = "mNoC";
    t.totalTicks = 987654;
    t.packets = CountMatrix(kNodes, kNodes, 0);
    t.flits = CountMatrix(kNodes, kNodes, 0);
    for (int s = 0; s < kNodes; ++s) {
        for (int d = 0; d < kNodes; ++d) {
            if (s == d || (s * 7 + d * 13) % 11 != 0)
                continue;
            auto packets = static_cast<std::uint64_t>(
                1 + (s * 31 + d) % 17);
            t.packets(s, d) = packets;
            t.flits(s, d) = packets * 4;
        }
    }
    t.manifest.seed = 42;
    t.manifest.gitSha = "0000000";
    t.manifest.threads = 4;
    t.manifest.configDigest = "feedfacefeedface";
    t.manifest.env.emplace_back("MNOC_THREADS", "4");
    return t;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(Trace, GoldenFileStaysByteIdentical)
{
    // The golden fixture pins the v2 on-disk format, manifest block
    // included: any serialization change must be deliberate and come
    // with a regenerated fixture.
    std::string golden =
        std::string(MNOC_TEST_DATA_DIR) + "/golden_trace_256.trace";
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden;
    std::string path = testing::TempDir() + "mnoc_trace_golden.trace";
    saveTrace(path, golden256Trace());
    EXPECT_EQ(fileBytes(path), fileBytes(golden));
    std::remove(path.c_str());
}

TEST(Trace, GoldenFileRoundTripsAndMaps)
{
    std::string golden =
        std::string(MNOC_TEST_DATA_DIR) + "/golden_trace_256.trace";
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden;
    Trace expected = golden256Trace();
    Trace loaded = loadTrace(golden);
    EXPECT_EQ(loaded.workloadName, expected.workloadName);
    EXPECT_EQ(loaded.totalTicks, expected.totalTicks);
    EXPECT_TRUE(loaded.packets == expected.packets);
    EXPECT_TRUE(loaded.flits == expected.flits);
    EXPECT_EQ(loaded.manifest.seed, 42u);
    EXPECT_EQ(loaded.manifest.gitSha, "0000000");
    EXPECT_EQ(loaded.manifest.threads, 4);
    EXPECT_EQ(loaded.manifest.configDigest, "feedfacefeedface");
    ASSERT_EQ(loaded.manifest.env.size(), 1u);
    EXPECT_EQ(loaded.manifest.env[0].first, "MNOC_THREADS");

    // Reversal is an involution: mapping twice restores the trace.
    int n = static_cast<int>(loaded.packets.rows());
    std::vector<int> reverse(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        reverse[static_cast<std::size_t>(i)] = n - 1 - i;
    Trace mapped = mapTrace(loaded, reverse);
    EXPECT_EQ(mapped.packets.total(), loaded.packets.total());
    EXPECT_FALSE(mapped.packets == loaded.packets);
    Trace restored = mapTrace(mapped, reverse);
    EXPECT_TRUE(restored.packets == loaded.packets);
    EXPECT_TRUE(restored.flits == loaded.flits);
    EXPECT_EQ(restored.manifest.seed, 42u);
}

} // namespace
