/**
 * @file
 * Tests of trace capture, serialization, and mapping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/log.hh"
#include "sim/trace.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

Trace
sampleTrace()
{
    Trace t;
    t.workloadName = "sample";
    t.networkName = "mNoC";
    t.totalTicks = 12345;
    t.packets = CountMatrix(4, 4, 0);
    t.flits = CountMatrix(4, 4, 0);
    t.packets(0, 1) = 10;
    t.flits(0, 1) = 30;
    t.packets(2, 3) = 5;
    t.flits(2, 3) = 5;
    return t;
}

TEST(Trace, SaveLoadRoundTrip)
{
    std::string path = testing::TempDir() + "mnoc_trace_test.txt";
    Trace original = sampleTrace();
    saveTrace(path, original);
    Trace loaded = loadTrace(path);

    EXPECT_EQ(loaded.workloadName, original.workloadName);
    EXPECT_EQ(loaded.networkName, original.networkName);
    EXPECT_EQ(loaded.totalTicks, original.totalTicks);
    EXPECT_TRUE(loaded.packets == original.packets);
    EXPECT_TRUE(loaded.flits == original.flits);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    std::string path = testing::TempDir() + "mnoc_trace_bad.txt";
    {
        std::ofstream out(path);
        out << "not-a-trace 9\n";
    }
    EXPECT_THROW(loadTrace(path), FatalError);
    EXPECT_THROW(loadTrace("/nonexistent/path/x.txt"), FatalError);
    std::remove(path.c_str());
}

TEST(Trace, MapTracePermutesEndpoints)
{
    Trace t = sampleTrace();
    std::vector<int> map = {3, 2, 1, 0};
    Trace mapped = mapTrace(t, map);
    EXPECT_EQ(mapped.packets(3, 2), 10u);
    EXPECT_EQ(mapped.flits(3, 2), 30u);
    EXPECT_EQ(mapped.packets(1, 0), 5u);
    EXPECT_EQ(mapped.packets(0, 1), 0u);
    EXPECT_EQ(mapped.totalTicks, t.totalTicks);
    EXPECT_EQ(mapped.packets.total(), t.packets.total());
}

TEST(Trace, MapTraceIdentityIsNoop)
{
    Trace t = sampleTrace();
    Trace mapped = mapTrace(t, {0, 1, 2, 3});
    EXPECT_TRUE(mapped.packets == t.packets);
    EXPECT_TRUE(mapped.flits == t.flits);
}

TEST(Trace, MapTraceChecksSize)
{
    Trace t = sampleTrace();
    EXPECT_THROW(mapTrace(t, {0, 1}), FatalError);
    EXPECT_THROW(mapTrace(t, {0, 1, 2, 9}), FatalError);
}

} // namespace
