#!/bin/sh
# Self-test for tools/mnoc_lint.py, run as a ctest.
#
# Two halves:
#   1. the real tree must lint clean (exit 0);
#   2. the seeded fixtures in tests/lint_fixtures/ must trip every
#      rule the linter implements (exit 1, with one finding per rule).
#
# Usage: test_lint.sh <repo-root>
set -eu

root=${1:?usage: test_lint.sh <repo-root>}
lint="$root/tools/mnoc_lint.py"

fail() {
    echo "test_lint: FAIL: $*" >&2
    exit 1
}

[ -f "$lint" ] || fail "linter not found at $lint"

# --- 1. The tree itself is clean. ---------------------------------
if ! python3 "$lint" --root "$root"; then
    fail "mnoc-lint reported findings on the real tree"
fi

# --- 2. The fixtures trip every rule. -----------------------------
# The path-scoped rules (float, unit-param) only apply under src/, so
# stage the fixtures into a scratch tree that mimics the real layout.
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

mkdir -p "$scratch/src/core" "$scratch/src/optics"
cp "$root/tests/lint_fixtures/bad_misc.cc" "$scratch/src/core/"
cp "$root/tests/lint_fixtures/bad_header.hh" "$scratch/src/optics/"

out="$scratch/findings.txt"
if python3 "$lint" --root "$scratch" \
        "$scratch/src/core/bad_misc.cc" \
        "$scratch/src/optics/bad_header.hh" > "$out" 2>&1; then
    cat "$out" >&2
    fail "mnoc-lint accepted fixtures with seeded violations"
fi

# rng / raw-thread / raw-ofstream moved to mnoc-analyze (see
# tests/test_analyze.sh); the linter keeps the format-level rules.
for rule in raw-pow float unit-param \
            header-guard include-order format; do
    grep -q "\[$rule\]" "$out" || {
        cat "$out" >&2
        fail "seeded '$rule' violation was not flagged"
    }
done

# Format violations are seeded three ways; check each message.
for message in "tab character" "trailing whitespace" "columns"; do
    grep -q "$message" "$out" || {
        cat "$out" >&2
        fail "seeded format violation '$message' was not flagged"
    }
done

echo "test_lint: PASS (tree clean, all seeded violations flagged)"
