/**
 * @file
 * Tests of the address-placement helpers that implement first-touch
 * data homing.
 */

#include <gtest/gtest.h>

#include "sim/memop.hh"

namespace {

using namespace mnoc::sim;

TEST(MemOp, PlacedAddrEncodesOwner)
{
    for (int owner : {0, 1, 17, 255}) {
        std::uint64_t addr = placedAddr(owner, 0x1234);
        EXPECT_EQ(homeOf(addr, 256), owner);
        EXPECT_EQ(addr & ((1ULL << ownerShift) - 1), 0x1234u);
    }
}

TEST(MemOp, HomeWrapsForSmallSystems)
{
    std::uint64_t addr = placedAddr(10, 0);
    EXPECT_EQ(homeOf(addr, 8), 2); // 10 % 8
    EXPECT_EQ(homeOf(addr, 16), 10);
}

TEST(MemOp, LineOfStripsOffset)
{
    std::uint64_t addr = placedAddr(3, 130); // 130 = 2*64 + 2
    EXPECT_EQ(lineOf(addr), lineOf(placedAddr(3, 128)));
    EXPECT_NE(lineOf(addr), lineOf(placedAddr(3, 192)));
}

TEST(MemOp, DistinctOwnersNeverCollide)
{
    // Same offset under different owners must be different lines.
    for (int a = 0; a < 8; ++a)
        for (int b = a + 1; b < 8; ++b)
            EXPECT_NE(lineOf(placedAddr(a, 4096)),
                      lineOf(placedAddr(b, 4096)));
}

TEST(MemOp, OffsetMaskPreventsOwnerCorruption)
{
    // Offsets larger than the owner shift are masked, not allowed to
    // spill into the owner bits.
    std::uint64_t addr = placedAddr(5, 1ULL << 50);
    EXPECT_EQ(homeOf(addr, 256), 5);
}

TEST(MemOp, DefaultsAreBlockingRead)
{
    MemOp op;
    EXPECT_FALSE(op.write);
    EXPECT_FALSE(op.nonBlocking);
    EXPECT_EQ(op.computeCycles, 0u);
}

} // namespace
