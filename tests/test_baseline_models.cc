/**
 * @file
 * Tests of the rNoC and c_mNoC baseline power models.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/baseline_models.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

sim::Trace
clusteredTrace(int n = 256, std::uint64_t inter = 50,
               std::uint64_t intra = 50, noc::Tick ticks = 100000)
{
    sim::Trace t;
    t.totalTicks = ticks;
    t.packets = CountMatrix(n, n, 0);
    t.flits = CountMatrix(n, n, 0);
    for (int s = 0; s < n; ++s) {
        int same_cluster = (s % 4 == 0) ? s + 1 : s - 1;
        int other_cluster = (s + 8) % n;
        t.flits(s, same_cluster) = intra;
        t.flits(s, other_cluster) = inter;
        t.packets(s, same_cluster) = intra / 3;
        t.packets(s, other_cluster) = inter / 3;
    }
    return t;
}

TEST(RnocModel, StaticPowerMatchesPaperBudget)
{
    // Section 5.1: 23 W ring trimming + 5 W laser for the clustered
    // radix-64 rNoC.
    RnocPowerModel model{RnocParams{}};
    auto b = model.evaluate(clusteredTrace());
    EXPECT_NEAR(b.ringHeating, 23.0, 0.1);
    EXPECT_DOUBLE_EQ(b.laser, 5.0);
    EXPECT_GT(b.total(), 28.0);
}

TEST(RnocModel, StaticPowerIsActivityIndependent)
{
    RnocPowerModel model{RnocParams{}};
    auto busy = model.evaluate(clusteredTrace(256, 500, 500));
    auto idle = model.evaluate(clusteredTrace(256, 1, 1));
    EXPECT_DOUBLE_EQ(busy.ringHeating, idle.ringHeating);
    EXPECT_DOUBLE_EQ(busy.laser, idle.laser);
    EXPECT_GT(busy.oe, idle.oe);
    EXPECT_GT(busy.electrical, idle.electrical);
}

TEST(RnocModel, IntraClusterTrafficSkipsTheOptics)
{
    RnocPowerModel model{RnocParams{}};
    auto intra_only = model.evaluate(clusteredTrace(256, 0, 100));
    EXPECT_DOUBLE_EQ(intra_only.oe, 0.0);
    EXPECT_GT(intra_only.electrical, 0.0);
}

TEST(CmnocModel, EnergyProportionalAndCheap)
{
    CmnocPowerModel model;
    auto busy = model.evaluate(clusteredTrace(256, 200, 200));
    auto idle = model.evaluate(clusteredTrace(256, 1, 1));
    // No rings, no laser: everything scales with activity.
    EXPECT_DOUBLE_EQ(busy.ringHeating, 0.0);
    EXPECT_DOUBLE_EQ(busy.laser, 0.0);
    EXPECT_GT(busy.total(), 10.0 * idle.total());
}

TEST(CmnocModel, PortCrossbarUsesShorterWaveguide)
{
    CmnocPowerModel model;
    // The radix-64 port crossbar's broadcast power is far below a
    // radix-256 full-die source (shorter reach, fewer receivers).
    optics::SerpentineLayout full{256, optics::defaultWaveguideLength};
    optics::OpticalCrossbar full_xbar(full, optics::DeviceParams{});
    EXPECT_LT(model.portCrossbar().broadcastPower(0),
              0.3 * full_xbar.broadcastPower(0));
}

TEST(CmnocModel, FarBelowRnocAtMatchedTraffic)
{
    // Table 1 / Figure 10: c_mNoC is the cheapest design by a wide
    // margin because it has neither ring trimming nor a laser.
    RnocPowerModel rnoc{RnocParams{}};
    CmnocPowerModel cmnoc;
    auto trace = clusteredTrace(256, 100, 100);
    EXPECT_LT(cmnoc.evaluate(trace).total(),
              0.5 * rnoc.evaluate(trace).total());
}

TEST(BaselineModels, RejectMalformedTraces)
{
    RnocPowerModel rnoc{RnocParams{}};
    CmnocPowerModel cmnoc;
    sim::Trace wrong;
    wrong.totalTicks = 100;
    wrong.packets = CountMatrix(100, 100, 0); // not 256 = 64*4
    wrong.flits = CountMatrix(100, 100, 0);
    EXPECT_THROW(rnoc.evaluate(wrong), FatalError);
    EXPECT_THROW(cmnoc.evaluate(wrong), FatalError);

    sim::Trace zero = clusteredTrace();
    zero.totalTicks = 0;
    EXPECT_THROW(rnoc.evaluate(zero), FatalError);
}

} // namespace
