/**
 * @file
 * Tests of the deterministic metrics registry, the span recorder, and
 * the run-manifest encoding (common/metrics.hh, common/trace_span.hh,
 * common/manifest.hh).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "common/manifest.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"

namespace {

using namespace mnoc;

/** Enable metrics for one test and restore the off state after. */
class MetricsTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        MetricsRegistry::setEnabled(true);
        MetricsRegistry::global().reset();
    }

    void
    TearDown() override
    {
        MetricsRegistry::global().reset();
        MetricsRegistry::setEnabled(false);
    }
};

TEST_F(MetricsTest, CounterCountsAndResets)
{
    auto &registry = MetricsRegistry::global();
    Counter &counter = registry.counter("test.counter");
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    registry.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST_F(MetricsTest, DisabledCounterRecordsNothing)
{
    auto &registry = MetricsRegistry::global();
    Counter &counter = registry.counter("test.disabled");
    MetricsRegistry::setEnabled(false);
    counter.add(7);
    EXPECT_EQ(counter.value(), 0u);
    MetricsRegistry::setEnabled(true);
    counter.add(7);
    EXPECT_EQ(counter.value(), 7u);
}

TEST_F(MetricsTest, GaugeHoldsLastValue)
{
    Gauge &gauge = MetricsRegistry::global().gauge("test.gauge");
    gauge.set(-3);
    EXPECT_EQ(gauge.value(), -3);
    gauge.set(12);
    EXPECT_EQ(gauge.value(), 12);
}

TEST_F(MetricsTest, HistogramBucketsByUpperBound)
{
    Histogram &hist = MetricsRegistry::global().histogram(
        "test.hist", {1.0, 10.0, 100.0});
    hist.observe(0.5);  // <= 1
    hist.observe(1.0);  // <= 1 (inclusive upper bound)
    hist.observe(5.0);  // <= 10
    hist.observe(50.0); // <= 100
    hist.observe(5000.0); // overflow
    auto counts = hist.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(hist.totalCount(), 5u);
    EXPECT_DOUBLE_EQ(hist.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(hist.maxValue(), 5000.0);
}

TEST_F(MetricsTest, HistogramRejectsUnsortedEdges)
{
    EXPECT_THROW(MetricsRegistry::global().histogram(
                     "test.bad_edges", {5.0, 1.0}),
                 FatalError);
    EXPECT_THROW(MetricsRegistry::global().histogram(
                     "test.dup_edges", {1.0, 1.0}),
                 FatalError);
}

TEST_F(MetricsTest, ParallelCounterSumIsExact)
{
    auto &registry = MetricsRegistry::global();
    Counter &counter = registry.counter("test.parallel");
    constexpr long long kItems = 10000;
    ThreadPool pool(8);
    pool.parallelFor(kItems, [&](long long i) {
        counter.add(static_cast<std::uint64_t>(i % 3 + 1));
    });
    // Sum of (i % 3 + 1) over 0..9999: 3334*1 + 3333*2 + 3333*3.
    EXPECT_EQ(counter.value(), 3334u + 2u * 3333u + 3u * 3333u);
}

TEST_F(MetricsTest, JsonIsBitIdenticalAcrossThreadCounts)
{
    auto &registry = MetricsRegistry::global();
    std::vector<std::string> exports;
    for (int threads : {1, 2, 8}) {
        registry.reset();
        ThreadPool pool(threads);
        Counter &counter = registry.counter("test.identity.count");
        Histogram &hist = registry.histogram(
            "test.identity.hist", {10.0, 100.0, 1000.0});
        pool.parallelFor(5000, [&](long long i) {
            counter.add();
            hist.observe(static_cast<double>(i));
        });
        registry.gauge("test.identity.gauge").set(7);
        exports.push_back(registry.toJson());
    }
    EXPECT_EQ(exports[0], exports[1]);
    EXPECT_EQ(exports[0], exports[2]);
    EXPECT_NE(exports[0].find("\"schema\": \"mnoc-metrics-v2\""),
              std::string::npos);
}

TEST_F(MetricsTest, SeriesAccumulatesPerSlot)
{
    Series &series = MetricsRegistry::global().series("test.series");
    series.add(0, 5);
    series.add(2, 7);
    series.add(0, 1);
    auto values = series.values();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[0], 6u);
    EXPECT_EQ(values[1], 0u);
    EXPECT_EQ(values[2], 7u);
    MetricsRegistry::global().reset();
    EXPECT_TRUE(series.values().empty());
}

TEST_F(MetricsTest, DisabledSeriesRecordsNothing)
{
    Series &series = MetricsRegistry::global().series("test.s_off");
    MetricsRegistry::setEnabled(false);
    series.add(0, 3);
    EXPECT_TRUE(series.values().empty());
}

TEST_F(MetricsTest, SeriesParallelSumIsExact)
{
    Series &series = MetricsRegistry::global().series("test.s_par");
    constexpr long long kItems = 10000;
    ThreadPool pool(8);
    pool.parallelFor(kItems, [&](long long i) {
        series.add(static_cast<std::size_t>(i % 7), 1);
    });
    auto values = series.values();
    ASSERT_EQ(values.size(), 7u);
    std::uint64_t total = 0;
    for (std::uint64_t v : values)
        total += v;
    EXPECT_EQ(total, static_cast<std::uint64_t>(kItems));
}

TEST_F(MetricsTest, SeriesRejectsAbsurdSlotIndex)
{
    Series &series = MetricsRegistry::global().series("test.s_cap");
    EXPECT_THROW(series.add(std::size_t{1} << 30, 1), FatalError);
}

TEST_F(MetricsTest, SeriesAppearsInJsonExport)
{
    auto &registry = MetricsRegistry::global();
    registry.series("test.s_json").add(1, 4);
    std::string json = registry.toJson();
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("\"test.s_json\": [0, 4]"),
              std::string::npos);
}

TEST_F(MetricsTest, WriteJsonFailsOnBadPath)
{
    MetricsRegistry::global().counter("test.write").add();
    EXPECT_THROW(MetricsRegistry::global().writeJson(
                     "/nonexistent/dir/metrics.json"),
                 FatalError);
}

TEST(TraceSpanTest, RecordsScopedSpans)
{
    SpanRecorder::setEnabled(true);
    SpanRecorder::global().reset();
    {
        TraceSpan outer("outer", "test");
        TraceSpan inner("inner", "test");
    }
    auto events = SpanRecorder::global().events();
    ASSERT_EQ(events.size(), 2u);
    const SpanEvent *outer = nullptr;
    const SpanEvent *inner = nullptr;
    for (const auto &event : events) {
        if (event.name == "outer")
            outer = &event;
        if (event.name == "inner")
            inner = &event;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // The outer span encloses the inner one.
    EXPECT_LE(outer->startUs, inner->startUs);
    EXPECT_GE(outer->durationUs, inner->durationUs);
    EXPECT_EQ(outer->category, "test");
    std::string json = SpanRecorder::global().toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
    SpanRecorder::global().reset();
    SpanRecorder::setEnabled(false);
}

TEST(TraceSpanTest, DisabledSpansRecordNothing)
{
    SpanRecorder::setEnabled(false);
    SpanRecorder::global().reset();
    {
        TraceSpan span("ignored", "test");
    }
    EXPECT_TRUE(SpanRecorder::global().events().empty());
    // An empty recorder still exports a loadable document.
    std::string json = SpanRecorder::global().toJson();
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
}

TEST(JsonTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(escapeJson("plain"), "plain");
    EXPECT_EQ(escapeJson("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeJson("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(escapeJson("\r\b\f"), "\\r\\b\\f");
    EXPECT_EQ(escapeJson(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(escapeJson("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonTest, NumbersRenderDeterministically)
{
    EXPECT_EQ(jsonNumber(0.0), jsonNumber(0.0));
    EXPECT_EQ(jsonNumber(0.1), jsonNumber(0.1));
    EXPECT_NE(jsonNumber(0.1), jsonNumber(0.2));
    // 17 significant digits round-trip any double exactly.
    EXPECT_EQ(std::stod(jsonNumber(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(ManifestTest, ValueEncodingRoundTrips)
{
    for (const std::string &value :
         {std::string(""), std::string("plain"),
          std::string("has space"), std::string("a%b"),
          std::string("tab\there"), std::string("new\nline")}) {
        std::string encoded = encodeManifestValue(value);
        EXPECT_EQ(encoded.find(' '), std::string::npos) << value;
        EXPECT_EQ(encoded.find('\n'), std::string::npos) << value;
        EXPECT_FALSE(encoded.empty());
        EXPECT_EQ(decodeManifestValue(encoded), value);
    }
}

TEST(ManifestTest, LinesRoundTripThroughParse)
{
    RunManifest original;
    original.seed = 12345;
    original.gitSha = "abc1234";
    original.threads = 8;
    original.configDigest = "deadbeefdeadbeef";
    original.env.emplace_back("MNOC_THREADS", "8");
    original.env.emplace_back("MNOC_BENCH_DIR", "out dir");

    RunManifest parsed;
    for (const auto &line : manifestLines(original))
        EXPECT_TRUE(parseManifestEntry(line, parsed)) << line;
    EXPECT_EQ(parsed.seed, original.seed);
    EXPECT_EQ(parsed.gitSha, original.gitSha);
    EXPECT_EQ(parsed.threads, original.threads);
    EXPECT_EQ(parsed.configDigest, original.configDigest);
    EXPECT_EQ(parsed.env, original.env);
}

TEST(ManifestTest, ParseRejectsMalformedEntries)
{
    RunManifest manifest;
    EXPECT_FALSE(parseManifestEntry("", manifest));
    EXPECT_FALSE(parseManifestEntry("seed", manifest));
    EXPECT_FALSE(parseManifestEntry("env MNOC_THREADS", manifest));
    EXPECT_FALSE(parseManifestEntry("seed 1 2", manifest));
    // Unknown keys parse (forward compatibility) but change nothing.
    EXPECT_TRUE(parseManifestEntry("future value", manifest));
    EXPECT_EQ(manifest.seed, 0u);
}

TEST(ManifestTest, DigestIsStable)
{
    // FNV-1a 64 of the empty string is the offset basis.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("mnoc"), fnv1a64("mnoc"));
    EXPECT_NE(fnv1a64("mnoc"), fnv1a64("mnocpt"));
    EXPECT_EQ(hexDigest(0xdeadbeefULL), "00000000deadbeef");
}

TEST(ManifestTest, CurrentManifestRecordsProcessState)
{
    RunManifest manifest = currentManifest(7, "digest");
    EXPECT_EQ(manifest.seed, 7u);
    EXPECT_EQ(manifest.configDigest, "digest");
    EXPECT_FALSE(manifest.gitSha.empty());
    EXPECT_GE(manifest.threads, 1);
}

TEST(ManifestTest, JsonFormIsEscapedAndComplete)
{
    RunManifest manifest;
    manifest.seed = 3;
    manifest.gitSha = "g\"it";
    manifest.threads = 2;
    manifest.env.emplace_back("MNOC_BENCH_DIR", "a\\b");
    std::string json = manifestJson(manifest);
    EXPECT_NE(json.find("\"seed\": 3"), std::string::npos);
    EXPECT_NE(json.find("g\\\"it"), std::string::npos);
    EXPECT_NE(json.find("a\\\\b"), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
}

} // namespace
