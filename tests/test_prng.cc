/**
 * @file
 * Unit tests for the xoshiro256** PRNG wrapper.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/prng.hh"

namespace {

using mnoc::Prng;

TEST(Prng, DeterministicForSameSeed)
{
    Prng a(42);
    Prng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1);
    Prng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Prng, UniformInUnitInterval)
{
    Prng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Prng, BelowStaysInRange)
{
    Prng rng(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Prng, BelowCoversAllValues)
{
    Prng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, BetweenIsInclusive)
{
    Prng rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, ChanceMatchesProbability)
{
    Prng rng(17);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (rng.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Prng, ForkedStreamsAreIndependent)
{
    Prng parent(21);
    Prng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent() == child())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Prng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Prng::min() == 0);
    static_assert(Prng::max() == ~0ULL);
    Prng rng(1);
    std::vector<int> values = {1, 2, 3, 4, 5};
    // Compiles and runs with standard shuffling machinery.
    std::shuffle(values.begin(), values.end(), rng);
    SUCCEED();
}

} // namespace
