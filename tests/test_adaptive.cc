/**
 * @file
 * Tests of the adaptive runtime (runtime/adaptive_controller.hh) and
 * its phase-detection substrate: the detector must fire once per
 * signature shift and reject bad knobs, the controller must retarget
 * and switch on a synthetic two-phase trace, the whole run --
 * decisions, log, ledger -- must be bit-identical at any pool size,
 * the static-vs-adaptive reconciliation identity must hold, an
 * epoch-free trace must be fatal, and the phase-splice workload
 * feeding the acceptance fixtures must be deterministic per seed.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "core/designer.hh"
#include "core/energy_ledger.hh"
#include "runtime/adaptive_controller.hh"
#include "sim/phase_detector.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "sim/trace_stream.hh"
#include "workloads/registry.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

constexpr int kNodes = 16;

/** One epoch of nearest-neighbor ring traffic. */
std::vector<noc::EpochCell>
neighborEpoch()
{
    std::vector<noc::EpochCell> cells;
    for (int s = 0; s < kNodes; ++s)
        cells.push_back({s, (s + 1) % kNodes, 2, 6});
    return cells;
}

/** One epoch of diameter-haul traffic (distance n/2). */
std::vector<noc::EpochCell>
longHaulEpoch()
{
    std::vector<noc::EpochCell> cells;
    for (int s = 0; s < kNodes; ++s)
        cells.push_back({s, (s + kNodes / 2) % kNodes, 2, 6});
    return cells;
}

/** Two-phase trace: @p neighbor epochs of ring traffic followed by
 *  @p long_haul epochs of diameter traffic, constant within each
 *  phase so controller decisions are exactly reproducible. */
sim::Trace
twoPhaseTrace(std::size_t neighbor, std::size_t long_haul)
{
    sim::Trace t;
    t.workloadName = "two_phase_fixture";
    t.networkName = "mNoC";
    t.totalTicks = 40000;
    t.packets = CountMatrix(kNodes, kNodes, 0);
    t.flits = CountMatrix(kNodes, kNodes, 0);
    t.manifest.seed = 7;
    t.manifest.gitSha = "0000000";
    t.manifest.threads = 1;
    t.epochs.messagesPerEpoch = kNodes * 2;
    for (std::size_t e = 0; e < neighbor + long_haul; ++e) {
        auto cells = e < neighbor ? neighborEpoch() : longHaulEpoch();
        for (const noc::EpochCell &cell : cells) {
            t.packets(cell.src, cell.dst) += cell.packets;
            t.flits(cell.src, cell.dst) += cell.flits;
        }
        t.epochs.epochs.push_back(std::move(cells));
    }
    return t;
}

std::vector<int>
identityMapping(int n)
{
    std::vector<int> map(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        map[static_cast<std::size_t>(i)] = i;
    return map;
}

/** 16-node two-mode fixture whose static design is solved for the
 *  neighbor phase, so the long-haul phase has adaptation headroom. */
struct AdaptiveFixture
{
    optics::SerpentineLayout layout{kNodes, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    Designer designer{xbar};

    MnocDesign
    design() const
    {
        DesignSpec spec;
        spec.numModes = 2;
        spec.assignment = Assignment::DistanceBased;
        spec.weights = WeightSource::DesignFlow;
        FlowMatrix flow(kNodes, kNodes, 0.1);
        for (int i = 0; i < kNodes; ++i) {
            flow(i, i) = 0.0;
            flow(i, (i + 1) % kNodes) = 50.0;
        }
        auto topology = designer.buildTopology(spec, flow);
        return designer.buildDesign(spec, topology, flow,
                                    DecibelLoss(2.0));
    }

    runtime::AdaptivePolicy
    policy() const
    {
        runtime::AdaptivePolicy out;
        out.trafficWindow = 8;
        out.phaseChangeThreshold = 0.5;
        out.epochsToSwitch = 2;
        out.maxCandidates = 4;
        out.candidateSpec.numModes = 2;
        out.candidateSpec.assignment = Assignment::CommAware;
        out.candidateSpec.weights = WeightSource::DesignFlow;
        out.candidateMargin = DecibelLoss(2.0);
        return out;
    }
};

std::string
scratchPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

/** Bit-exact cell-by-cell ledger comparison. */
void
expectSameLedger(const EnergyLedger &a, const EnergyLedger &b)
{
    ASSERT_EQ(a.numSources(), b.numSources());
    ASSERT_EQ(a.numModes(), b.numModes());
    ASSERT_EQ(a.numEpochs(), b.numEpochs());
    for (int s = 0; s < a.numSources(); ++s)
        for (int m = 0; m < a.numModes(); ++m)
            for (std::size_t e = 0; e < a.numEpochs(); ++e) {
                const auto &x = a.cell(s, m, e);
                const auto &y = b.cell(s, m, e);
                ASSERT_EQ(x.flits, y.flits);
                ASSERT_EQ(x.txSeconds, y.txSeconds);
                ASSERT_EQ(x.sourceEnergy, y.sourceEnergy);
                ASSERT_EQ(x.oeEnergy, y.oeEnergy);
                ASSERT_EQ(x.electricalEnergy, y.electricalEnergy);
            }
    ASSERT_EQ(a.totalReconfigEnergy(), b.totalReconfigEnergy());
}

TEST(PhaseDetector, CtorRejectsBadKnobs)
{
    EXPECT_THROW(sim::PhaseDetector(1, 4, 0.5), FatalError);
    EXPECT_THROW(sim::PhaseDetector(16, 0, 0.5), FatalError);
    EXPECT_THROW(sim::PhaseDetector(16, 4, 0.0), FatalError);
    EXPECT_THROW(sim::PhaseDetector(16, 4, -0.1), FatalError);
    EXPECT_THROW(sim::PhaseDetector(16, 4, 2.5), FatalError);
}

TEST(PhaseDetector, FiresOncePerSignatureShift)
{
    sim::PhaseDetector detector(kNodes, 4, 0.5);
    auto near = neighborEpoch();
    auto far = longHaulEpoch();

    // Warm-up and steady state: no detections on constant traffic.
    for (int e = 0; e < 10; ++e)
        EXPECT_FALSE(detector.observe(near));

    // The shift fires exactly once; the restarted window then treats
    // the new phase as the reference.
    EXPECT_TRUE(detector.observe(far));
    EXPECT_GT(detector.lastDistance(), 0.5);
    for (int e = 0; e < 10; ++e)
        EXPECT_FALSE(detector.observe(far));

    // Shifting back is a new phase again.
    EXPECT_TRUE(detector.observe(near));
    EXPECT_EQ(detector.epochsObserved(), 22u);
}

TEST(AdaptivePolicy, ValidateRejectsBadKnobs)
{
    AdaptiveFixture fx;
    auto good = fx.policy();
    good.validate();

    auto bad = good;
    bad.phaseChangeThreshold = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.phaseChangeThreshold = 2.5;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.trafficWindow = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.switchGainThreshold = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.epochsToSwitch = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.maxCandidates = 1;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.switchEnergyPerSource = -1.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.candidateSpec.weights = WeightSource::Uniform;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.candidateMargin = DecibelLoss(-0.5);
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Adaptive, ControllerAdaptsToThePhaseChange)
{
    AdaptiveFixture fx;
    auto design = fx.design();
    auto trace = twoPhaseTrace(32, 32);
    std::string file = scratchPath("adaptive_two_phase.trace");
    sim::saveTrace(file, trace);
    auto mapping = identityMapping(kNodes);

    sim::TraceReader static_reader(file);
    ThreadPool pool(2);
    auto static_ledger = fx.designer.model().buildLedger(
        design, static_reader, &mapping, &pool);

    EnergyLedger adaptive_ledger(kNodes, 2,
                                 static_ledger.numEpochs(),
                                 static_ledger.durationSeconds());
    sim::TraceReader reader(file);
    auto log = runtime::runAdaptiveController(
        fx.designer, design, fx.policy(), reader, &mapping,
        &adaptive_ledger, &pool);

    ASSERT_EQ(log.epochs.size(), trace.epochs.epochs.size());
    using runtime::AdaptiveActionKind;
    // Exactly one phase change, at the splice epoch.
    EXPECT_EQ(log.countActions(AdaptiveActionKind::PhaseChange), 1);
    for (const auto &action : log.actions)
        if (action.kind == AdaptiveActionKind::PhaseChange) {
            EXPECT_EQ(action.epoch, 32u);
        }
    // A warm-up retarget and a post-change retarget at least.
    EXPECT_GE(log.countActions(AdaptiveActionKind::Retarget), 2);
    // The long-haul phase must win a switch (an earlier comm-aware
    // retarget may also beat the distance-based static design on the
    // neighbor phase itself), and every switch must clear the gain
    // threshold and book its reconfiguration energy.
    ASSERT_GE(log.countActions(AdaptiveActionKind::Switch), 1);
    EXPECT_NE(log.finalDesign, 0);
    double booked = 0.0;
    bool post_splice_switch = false;
    for (const auto &action : log.actions)
        if (action.kind == AdaptiveActionKind::Switch) {
            post_splice_switch |= action.epoch > 32u;
            EXPECT_GT(action.gain,
                      fx.policy().switchGainThreshold);
            EXPECT_EQ(action.energyCost,
                      kNodes * fx.policy().switchEnergyPerSource);
            booked += action.energyCost;
        }
    EXPECT_TRUE(post_splice_switch);
    EXPECT_EQ(log.totalReconfigEnergy, booked);
    EXPECT_EQ(adaptive_ledger.totalReconfigEnergy(), booked);

    // Causality: the epoch of a switch still accrues under the
    // incumbent; the target takes over one epoch later.
    for (const auto &action : log.actions)
        if (action.kind == AdaptiveActionKind::Switch) {
            EXPECT_NE(log.epochs[action.epoch].activeDesign,
                      action.design);
            EXPECT_EQ(log.epochs[action.epoch + 1].activeDesign,
                      action.design);
        }

    // The reconciliation identity must hold (panic inside otherwise)
    // and the adaptive run must beat the static design on this
    // fixture even after reconfiguration charges.
    auto cmp = runtime::reconcileAdaptive(static_ledger,
                                          adaptive_ledger, log);
    EXPECT_EQ(cmp.staticEnergy, static_ledger.totalEnergy());
    EXPECT_EQ(cmp.adaptiveEnergy, adaptive_ledger.totalEnergy());
    EXPECT_EQ(cmp.reconfigEnergy, booked);
    EXPECT_GT(cmp.savings, 0.0);
    EXPECT_GT(cmp.netSavings, 0.0);
    EXPECT_NEAR(cmp.netSavings, cmp.savings - cmp.reconfigEnergy,
                1e-12 * cmp.staticEnergy);
}

TEST(Adaptive, RunIsBitIdenticalAcrossPoolSizes)
{
    AdaptiveFixture fx;
    auto design = fx.design();
    auto trace = twoPhaseTrace(24, 24);
    std::string file = scratchPath("adaptive_pools.trace");
    sim::saveTrace(file, trace);
    auto mapping = identityMapping(kNodes);

    std::vector<runtime::AdaptiveLog> logs;
    std::vector<EnergyLedger> ledgers;
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        sim::TraceReader reader(file);
        EnergyLedger ledger(kNodes, 2, trace.epochs.epochs.size(),
                            1.0e-3);
        logs.push_back(runtime::runAdaptiveController(
            fx.designer, design, fx.policy(), reader, &mapping,
            &ledger, &pool));
        ledgers.push_back(std::move(ledger));
    }

    for (std::size_t i = 1; i < logs.size(); ++i) {
        const auto &a = logs[0];
        const auto &b = logs[i];
        EXPECT_EQ(a.numCandidates, b.numCandidates);
        EXPECT_EQ(a.finalDesign, b.finalDesign);
        EXPECT_EQ(a.totalReconfigEnergy, b.totalReconfigEnergy);
        ASSERT_EQ(a.epochs.size(), b.epochs.size());
        for (std::size_t e = 0; e < a.epochs.size(); ++e) {
            EXPECT_EQ(a.epochs[e].activeDesign,
                      b.epochs[e].activeDesign);
            EXPECT_EQ(a.epochs[e].phaseChange,
                      b.epochs[e].phaseChange);
            EXPECT_EQ(a.epochs[e].actions, b.epochs[e].actions);
            EXPECT_EQ(a.epochs[e].staticEnergy,
                      b.epochs[e].staticEnergy);
            EXPECT_EQ(a.epochs[e].adaptiveEnergy,
                      b.epochs[e].adaptiveEnergy);
            EXPECT_EQ(a.epochs[e].reconfigEnergy,
                      b.epochs[e].reconfigEnergy);
        }
        ASSERT_EQ(a.actions.size(), b.actions.size());
        for (std::size_t k = 0; k < a.actions.size(); ++k) {
            EXPECT_EQ(a.actions[k].kind, b.actions[k].kind);
            EXPECT_EQ(a.actions[k].epoch, b.actions[k].epoch);
            EXPECT_EQ(a.actions[k].design, b.actions[k].design);
            EXPECT_EQ(a.actions[k].gain, b.actions[k].gain);
            EXPECT_EQ(a.actions[k].energyCost,
                      b.actions[k].energyCost);
        }
        expectSameLedger(ledgers[0], ledgers[i]);
    }
    // The shared fixture must actually exercise the controller.
    EXPECT_FALSE(logs[0].actions.empty());
}

TEST(Adaptive, EpochFreeTraceIsFatal)
{
    AdaptiveFixture fx;
    auto design = fx.design();
    auto trace = twoPhaseTrace(4, 4);
    trace.epochs.epochs.clear();
    trace.epochs.messagesPerEpoch = 0;
    std::string file = scratchPath("adaptive_no_epochs.trace");
    sim::saveTrace(file, trace);

    sim::TraceReader reader(file);
    try {
        runtime::runAdaptiveController(fx.designer, design,
                                       fx.policy(), reader);
        FAIL() << "epoch-free trace accepted";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("epoch-bucketed trace"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Adaptive, LedgerShapeMismatchIsFatal)
{
    AdaptiveFixture fx;
    auto design = fx.design();
    auto trace = twoPhaseTrace(4, 4);
    std::string file = scratchPath("adaptive_shape.trace");
    sim::saveTrace(file, trace);

    // Wrong epoch count.
    {
        sim::TraceReader reader(file);
        EnergyLedger ledger(kNodes, 2, 3, 1.0e-3);
        EXPECT_THROW(runtime::runAdaptiveController(
                         fx.designer, design, fx.policy(), reader,
                         nullptr, &ledger),
                     FatalError);
    }
    // Wrong mode count.
    {
        sim::TraceReader reader(file);
        EnergyLedger ledger(kNodes, 3, 8, 1.0e-3);
        EXPECT_THROW(runtime::runAdaptiveController(
                         fx.designer, design, fx.policy(), reader,
                         nullptr, &ledger),
                     FatalError);
    }
    // Candidate mode count must match the deployed design.
    {
        sim::TraceReader reader(file);
        auto policy = fx.policy();
        policy.candidateSpec.numModes = 3;
        EXPECT_THROW(runtime::runAdaptiveController(
                         fx.designer, design, policy, reader),
                     FatalError);
    }
}

TEST(Adaptive, PhaseSpliceStreamIsDeterministicPerSeed)
{
    auto a = workloads::makeWorkload("splice:barnes+radix");
    auto b = workloads::makeWorkload("splice:barnes+radix");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name(), "splice:barnes+radix");
    a->reset(8, 42);
    b->reset(8, 42);
    sim::MemOp opa, opb;
    for (int i = 0; i < 2000; ++i) {
        bool more_a = a->next(i % 8, opa);
        bool more_b = b->next(i % 8, opb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        EXPECT_EQ(opa.addr, opb.addr);
        EXPECT_EQ(opa.write, opb.write);
    }
}

TEST(Adaptive, MalformedSpliceNamesAreFatal)
{
    EXPECT_THROW(workloads::makeWorkload("splice:barnes"),
                 FatalError);
    EXPECT_THROW(workloads::makeWorkload("splice:barnes+"),
                 FatalError);
    EXPECT_THROW(workloads::makeWorkload("splice:barnes+quicksort"),
                 FatalError);
}

} // namespace
