/**
 * @file
 * Tests of the shared worker pool: correctness of parallelFor,
 * futures-based submission, deterministic exception propagation, the
 * pool-of-one inline path, nested-submit deadlock avoidance, and the
 * MNOC_THREADS parsing rules.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/thread_pool.hh"

namespace {

using namespace mnoc;

TEST(ThreadPool, RejectsNonPositiveSize)
{
    EXPECT_ANY_THROW(ThreadPool(0));
    EXPECT_ANY_THROW(ThreadPool(-3));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr long long kN = 1000;
    std::vector<int> hits(kN, 0);
    pool.parallelFor(kN, [&](long long i) {
        hits[static_cast<std::size_t>(i)] += 1;
    });
    for (long long i = 0; i < kN; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ThreadPool, ParallelForZeroAndNegativeAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&](long long) { ++calls; });
    pool.parallelFor(-5, [&](long long) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, PoolOfOneRunsInlineOnTheCaller)
{
    ThreadPool pool(1);
    auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(3);
    pool.parallelFor(3, [&](long long i) {
        seen[static_cast<std::size_t>(i)] =
            std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);

    auto future = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitDeliversResultsAndExceptions)
{
    ThreadPool pool(2);
    auto value = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(value.get(), "ok");

    auto failure = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(failure.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsTheLowestChunkException)
{
    ThreadPool pool(4);
    // Every iteration throws its own index; the reported exception
    // must be from the first chunk (which starts at index 0),
    // regardless of which chunk finishes first.
    constexpr long long kN = 64;
    try {
        pool.parallelFor(kN, [](long long i) {
            throw std::runtime_error("index " + std::to_string(i));
        });
        FAIL() << "parallelFor swallowed the exceptions";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "index 0");
    }
}

TEST(ThreadPool, ExceptionStillDrainsEveryChunk)
{
    ThreadPool pool(4);
    constexpr long long kN = 100;
    std::atomic<long long> visited{0};
    EXPECT_THROW(
        pool.parallelFor(kN,
                         [&](long long i) {
                             if (i == 3)
                                 throw std::runtime_error("bad");
                             visited.fetch_add(1);
                         }),
        std::runtime_error);
    // The throwing chunk stops early; all other chunks run to the
    // end (parallelFor waits for every future before rethrowing).
    EXPECT_GE(visited.load(), kN - kN / 4);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Nested submission runs inline on the owning worker, so even a
    // pool of one worker thread cannot deadlock on nested fan-out.
    ThreadPool pool(2);
    std::vector<long long> sums(8, 0);
    pool.parallelFor(8, [&](long long outer) {
        std::vector<long long> inner(16, 0);
        pool.parallelFor(16, [&](long long i) {
            inner[static_cast<std::size_t>(i)] = i;
        });
        sums[static_cast<std::size_t>(outer)] = std::accumulate(
            inner.begin(), inner.end(), 0LL);
    });
    for (long long s : sums)
        EXPECT_EQ(s, 120);
}

TEST(ThreadPool, NestedSubmitRunsInlineOnWorkers)
{
    ThreadPool pool(2);
    auto outer = pool.submit([&] {
        auto worker = std::this_thread::get_id();
        auto inner = pool.submit(
            [] { return std::this_thread::get_id(); });
        return inner.get() == worker;
    });
    EXPECT_TRUE(outer.get());
}

TEST(ThreadPool, WorkersActuallyRunConcurrently)
{
    // Four 100 ms sleeps on four workers overlap even on one CPU;
    // a serial pool would need 400 ms.
    ThreadPool pool(4);
    auto begin = std::chrono::steady_clock::now();
    pool.parallelFor(4, [](long long) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
    EXPECT_LT(elapsed, 0.35);
}

TEST(ThreadPool, ParseThreadsAcceptsCountsRejectsGarbage)
{
    EXPECT_EQ(ThreadPool::parseThreads("8", 2), 8);
    EXPECT_EQ(ThreadPool::parseThreads("1", 2), 1);
    // Unset and empty fall back; anything else must be valid -- a
    // mistyped override is a fatal configuration error, never a
    // silent fallback to a different thread count.
    EXPECT_EQ(ThreadPool::parseThreads(nullptr, 3), 3);
    EXPECT_EQ(ThreadPool::parseThreads("", 3), 3);
    EXPECT_THROW(ThreadPool::parseThreads("0", 3), FatalError);
    EXPECT_THROW(ThreadPool::parseThreads("-4", 3), FatalError);
    EXPECT_THROW(ThreadPool::parseThreads("abc", 3), FatalError);
    EXPECT_THROW(ThreadPool::parseThreads("4x", 3), FatalError);
    EXPECT_THROW(ThreadPool::parseThreads("999999", 3), FatalError);
    try {
        ThreadPool::parseThreads("banana", 3);
        FAIL() << "garbage thread count must throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("banana"),
                  std::string::npos);
    }
}

TEST(ThreadPool, GlobalPoolIsConfiguredAndStable)
{
    ThreadPool &a = ThreadPool::global();
    ThreadPool &b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.numThreads(), 1);
}

} // namespace
