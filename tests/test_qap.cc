/**
 * @file
 * Tests of the QAP substrate: cost evaluation, delta correctness on
 * random instances, and the heuristics against exhaustive optima.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.hh"
#include "common/prng.hh"
#include "qap/annealing.hh"
#include "qap/exhaustive.hh"
#include "qap/qap.hh"
#include "qap/taboo.hh"

namespace {

using namespace mnoc;
using namespace mnoc::qap;

FlowMatrix
randomSymmetric(int n, Prng &rng, double scale = 10.0)
{
    FlowMatrix m(n, n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            m(i, j) = m(j, i) = rng.uniform() * scale;
    return m;
}

FlowMatrix
randomAsymmetric(int n, Prng &rng)
{
    FlowMatrix m(n, n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i != j)
                m(i, j) = rng.uniform() * 5.0;
    return m;
}

TEST(Qap, CostOfKnownInstance)
{
    FlowMatrix flow(3, 3, 0.0);
    flow(0, 1) = 2.0;
    flow(1, 0) = 2.0;
    FlowMatrix dist(3, 3, 0.0);
    dist(0, 1) = dist(1, 0) = 1.0;
    dist(0, 2) = dist(2, 0) = 5.0;
    dist(1, 2) = dist(2, 1) = 3.0;
    QapInstance inst(flow, dist);

    // Facilities 0 and 1 exchange flow 2 each way; cost = 4 * dist.
    EXPECT_DOUBLE_EQ(inst.cost({0, 1, 2}), 4.0 * 1.0);
    EXPECT_DOUBLE_EQ(inst.cost({0, 2, 1}), 4.0 * 5.0);
    EXPECT_DOUBLE_EQ(inst.cost({1, 2, 0}), 4.0 * 3.0);
}

TEST(Qap, SymmetryDetection)
{
    Prng rng(3);
    QapInstance sym(randomSymmetric(6, rng), randomSymmetric(6, rng));
    EXPECT_TRUE(sym.isSymmetric());
    QapInstance asym(randomAsymmetric(6, rng), randomSymmetric(6, rng));
    EXPECT_FALSE(asym.isSymmetric());
}

TEST(Qap, SwapDeltaMatchesRecomputationSymmetric)
{
    Prng rng(11);
    QapInstance inst(randomSymmetric(8, rng), randomSymmetric(8, rng));
    Permutation perm = inst.identity();
    std::shuffle(perm.begin(), perm.end(), rng);

    for (int u = 0; u < 8; ++u) {
        for (int v = u + 1; v < 8; ++v) {
            double base = inst.cost(perm);
            Permutation swapped = perm;
            std::swap(swapped[u], swapped[v]);
            EXPECT_NEAR(inst.swapDelta(perm, u, v),
                        inst.cost(swapped) - base, 1e-9)
                << "pair " << u << "," << v;
        }
    }
}

TEST(Qap, SwapDeltaMatchesRecomputationAsymmetric)
{
    Prng rng(13);
    QapInstance inst(randomAsymmetric(7, rng), randomAsymmetric(7, rng));
    Permutation perm = inst.identity();
    std::shuffle(perm.begin(), perm.end(), rng);

    for (int u = 0; u < 7; ++u)
        for (int v = 0; v < 7; ++v) {
            if (u == v)
                continue;
            Permutation swapped = perm;
            std::swap(swapped[u], swapped[v]);
            EXPECT_NEAR(inst.swapDelta(perm, u, v),
                        inst.cost(swapped) - inst.cost(perm), 1e-9);
        }
}

TEST(Qap, ChecksPermutations)
{
    Prng rng(5);
    QapInstance inst(randomSymmetric(4, rng), randomSymmetric(4, rng));
    EXPECT_THROW(inst.cost({0, 1, 2}), FatalError);       // short
    EXPECT_THROW(inst.cost({0, 1, 2, 2}), FatalError);    // duplicate
    EXPECT_THROW(inst.cost({0, 1, 2, 4}), FatalError);    // range
    EXPECT_NO_THROW(inst.cost({3, 2, 1, 0}));
}

TEST(Exhaustive, FindsBruteForceOptimum)
{
    Prng rng(17);
    QapInstance inst(randomSymmetric(6, rng), randomSymmetric(6, rng));
    auto result = exhaustiveSearch(inst);
    // Verify against direct enumeration of cost at a few random perms.
    Permutation perm = inst.identity();
    for (int trial = 0; trial < 50; ++trial) {
        std::shuffle(perm.begin(), perm.end(), rng);
        EXPECT_LE(result.cost, inst.cost(perm) + 1e-9);
    }
    EXPECT_THROW(
        exhaustiveSearch(QapInstance(randomSymmetric(11, rng),
                                     randomSymmetric(11, rng))),
        FatalError);
}

TEST(Taboo, MatchesExhaustiveOnSmallInstances)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Prng rng(seed);
        QapInstance inst(randomSymmetric(7, rng),
                         randomSymmetric(7, rng));
        auto best = exhaustiveSearch(inst);
        TabooParams params;
        params.iterations = 12000;
        params.seed = seed;
        auto found = tabooSearch(inst, inst.identity(), params);
        // Robust taboo is a heuristic: demand near-optimality.
        EXPECT_LE(found.cost, best.cost * 1.02 + 1e-9)
            << "seed " << seed;
    }
}

TEST(Taboo, ImprovesOnIdentityForStructuredInstance)
{
    // Ring flow on a line metric: identity is already good; a reversed
    // start must be repaired by the search.
    int n = 12;
    FlowMatrix flow(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
        flow(i, (i + 1) % n) += 1.0;
        flow((i + 1) % n, i) += 1.0;
    }
    FlowMatrix dist(n, n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            dist(i, j) = std::abs(i - j);
    QapInstance inst(flow, dist);

    Permutation scrambled = inst.identity();
    Prng rng(5);
    std::shuffle(scrambled.begin(), scrambled.end(), rng);

    TabooParams params;
    params.iterations = 5000;
    auto result = tabooSearch(inst, scrambled, params);
    EXPECT_LT(result.cost, inst.cost(scrambled));
    // The ring embeds on the line with cost 2*(2*(n-1)).
    EXPECT_LE(result.cost, 2.0 * 2.0 * (n - 1) + 1e-9);
}

TEST(Taboo, RequiresSymmetricInstance)
{
    Prng rng(23);
    QapInstance inst(randomAsymmetric(5, rng), randomSymmetric(5, rng));
    EXPECT_THROW(tabooSearch(inst, inst.identity()), FatalError);
}

TEST(Taboo, ReportedCostMatchesPermutation)
{
    Prng rng(29);
    QapInstance inst(randomSymmetric(10, rng),
                     randomSymmetric(10, rng));
    TabooParams params;
    params.iterations = 2000;
    auto result = tabooSearch(inst, inst.identity(), params);
    EXPECT_NEAR(result.cost, inst.cost(result.perm), 1e-6);
}

TEST(Annealing, MatchesExhaustiveOnSmallInstances)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        Prng rng(seed * 7);
        QapInstance inst(randomSymmetric(6, rng),
                         randomSymmetric(6, rng));
        auto best = exhaustiveSearch(inst);
        AnnealingParams params;
        params.iterations = 40000;
        params.seed = seed;
        auto found = simulatedAnnealing(inst, inst.identity(), params);
        EXPECT_NEAR(found.cost, best.cost, 0.05 * (1.0 + best.cost))
            << "seed " << seed;
    }
}

TEST(Annealing, WorksOnAsymmetricInstances)
{
    Prng rng(31);
    QapInstance inst(randomAsymmetric(8, rng), randomAsymmetric(8, rng));
    AnnealingParams params;
    params.iterations = 20000;
    auto result = simulatedAnnealing(inst, inst.identity(), params);
    EXPECT_LE(result.cost, inst.cost(inst.identity()) + 1e-9);
    EXPECT_NEAR(result.cost, inst.cost(result.perm), 1e-6);
}

/** Taboo vs annealing on matched instances: both near-optimal. */
class SolverComparison : public testing::TestWithParam<int>
{
};

TEST_P(SolverComparison, BothSolversNearExhaustive)
{
    Prng rng(static_cast<std::uint64_t>(GetParam()) * 101);
    QapInstance inst(randomSymmetric(7, rng), randomSymmetric(7, rng));
    auto best = exhaustiveSearch(inst);

    TabooParams tp;
    tp.iterations = 12000;
    auto taboo = tabooSearch(inst, inst.identity(), tp);
    AnnealingParams ap;
    ap.iterations = 60000;
    auto sa = simulatedAnnealing(inst, inst.identity(), ap);

    EXPECT_LE(taboo.cost, best.cost * 1.03 + 1e-9);
    EXPECT_LE(sa.cost, best.cost * 1.10 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverComparison, testing::Range(1, 7));

} // namespace
