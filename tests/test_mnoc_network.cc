/**
 * @file
 * Tests of the SWMR mNoC crossbar latency model and the shared channel
 * contention model.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "noc/channel.hh"
#include "noc/mnoc_network.hh"

namespace {

using namespace mnoc;
using namespace mnoc::noc;

TEST(Channel, NoDelayWhenIdle)
{
    Channel ch;
    EXPECT_EQ(ch.book(100, 3), 103u);
    EXPECT_LT(ch.utilization(), 0.01);
}

TEST(Channel, QueueingDelayGrowsWithUtilization)
{
    Channel busy;
    // Saturate the window: many flits in a short interval.
    for (int i = 0; i < 600; ++i)
        busy.book(static_cast<Tick>(i), 3);
    Channel idle;
    Tick loaded = busy.book(600, 3);
    Tick unloaded = idle.book(600, 3);
    EXPECT_GT(loaded, unloaded);
    EXPECT_GT(busy.utilization(), 0.2);
}

TEST(Channel, UtilizationIsCapped)
{
    Channel ch;
    for (int i = 0; i < 10000; ++i)
        ch.book(1, 3);
    EXPECT_LE(ch.utilization(), 0.98);
    // Delay stays finite even under overload.
    EXPECT_LT(ch.book(1, 3), 1000u);
}

TEST(Channel, OldLoadAgesOut)
{
    Channel ch;
    for (int i = 0; i < 2000; ++i)
        ch.book(static_cast<Tick>(i), 3);
    double before = ch.utilization();
    ch.book(100000, 1); // two windows later
    EXPECT_LT(ch.utilization(), before);
}

TEST(Channel, ResetClearsState)
{
    Channel ch;
    for (int i = 0; i < 5000; ++i)
        ch.book(static_cast<Tick>(i), 3);
    ch.reset();
    EXPECT_EQ(ch.book(10, 2), 12u);
}

struct NetFixture
{
    optics::SerpentineLayout layout{256,
                                    optics::defaultWaveguideLength};
    NetworkConfig config;
    MnocNetwork net{layout, config};
};

TEST(MnocNetwork, ZeroLoadLatencyInPaperRange)
{
    // Table 2: optical link latency 1-9 cycles at 5 GHz on an 18 cm
    // serpentine.
    NetFixture f;
    EXPECT_EQ(f.net.zeroLoadLatency(0, 1), 1);
    EXPECT_EQ(f.net.zeroLoadLatency(0, 255), 9);
    EXPECT_EQ(f.net.zeroLoadLatency(0, 0), 0);
    for (int d = 1; d < 256; ++d) {
        int lat = f.net.zeroLoadLatency(0, d);
        EXPECT_GE(lat, 1);
        EXPECT_LE(lat, 9);
    }
}

TEST(MnocNetwork, LatencyGrowsWithDistance)
{
    NetFixture f;
    EXPECT_LE(f.net.zeroLoadLatency(100, 110),
              f.net.zeroLoadLatency(100, 200));
    EXPECT_EQ(f.net.zeroLoadLatency(30, 90),
              f.net.zeroLoadLatency(90, 30));
}

TEST(MnocNetwork, DeliverAddsSerializationAndFlight)
{
    NetFixture f;
    Packet pkt = makePacket(0, 255, PacketClass::Data);
    // Idle network: 3 flits of serialization + 9 cycles of flight.
    EXPECT_EQ(f.net.deliver(pkt, 1000), 1000u + 3 + 9);
}

TEST(MnocNetwork, SelfDeliveryIsFree)
{
    NetFixture f;
    Packet pkt = makePacket(5, 5, PacketClass::Control);
    EXPECT_EQ(f.net.deliver(pkt, 42), 42u);
}

TEST(MnocNetwork, SourceChannelCongestionDelaysOwnPackets)
{
    NetFixture f;
    Packet pkt = makePacket(7, 200, PacketClass::Data);
    // Load source 7's waveguide heavily within one window.
    for (int i = 0; i < 800; ++i)
        f.net.deliver(pkt, static_cast<Tick>(i));
    Tick congested = f.net.deliver(pkt, 900);

    f.net.reset();
    Tick fresh = f.net.deliver(pkt, 900);
    EXPECT_GT(congested, fresh);
}

TEST(MnocNetwork, DistinctSourcesDoNotContend)
{
    NetFixture f;
    // Saturate source 3.
    Packet hog = makePacket(3, 100, PacketClass::Data);
    for (int i = 0; i < 800; ++i)
        f.net.deliver(hog, static_cast<Tick>(i));
    // Source 4's delivery is unaffected (dedicated waveguides, one
    // receiver per waveguide at each destination).
    Packet other = makePacket(4, 100, PacketClass::Data);
    Tick t = f.net.deliver(other, 900);
    EXPECT_EQ(t, 900u + 3 + f.net.zeroLoadLatency(4, 100));
}

TEST(MnocNetwork, RejectsOutOfRangeEndpoints)
{
    NetFixture f;
    Packet bad = makePacket(-1, 3, PacketClass::Control);
    EXPECT_THROW(f.net.deliver(bad, 0), PanicError);
    bad = makePacket(0, 256, PacketClass::Control);
    EXPECT_THROW(f.net.deliver(bad, 0), PanicError);
}

TEST(Packet, FlitCountsMatchLineGeometry)
{
    // 64-byte lines over 256-bit flits: 2 payload + 1 header.
    EXPECT_EQ(flitsFor(PacketClass::Data), 3);
    EXPECT_EQ(flitsFor(PacketClass::Control), 1);
}

TEST(NetworkConfig, OpticalCyclesMatchesTableTwo)
{
    NetworkConfig config;
    // 18 cm at 10 cm/ns = 1.8 ns = 9 cycles at 5 GHz.
    EXPECT_EQ(config.opticalCycles(Meters(0.18)), 9);
    // Anything short still costs one cycle (O/E + E/O).
    EXPECT_EQ(config.opticalCycles(Meters(0.0001)), 1);
    EXPECT_EQ(config.opticalCycles(Meters(0.10)), 5);
}

} // namespace
