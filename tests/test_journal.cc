/**
 * @file
 * Tests of the epoch-anchored decision journal (common/journal.hh):
 * the binary format must round-trip (streaming writer included), a
 * zero-event journal must load and render, loadJournal must name the
 * record kind and byte offset on truncation and corruption, the
 * journal bytes of an adaptive run must be bit-identical at any pool
 * size, and the 256-node phase-splice fixture must keep the journal
 * and every `mnocpt explain` render byte-identical to the committed
 * goldens (regenerate with MNOC_REGEN_GOLDEN=1, see below).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/journal.hh"
#include "common/log.hh"
#include "common/manifest.hh"
#include "common/thread_pool.hh"
#include "core/designer.hh"
#include "core/energy_ledger.hh"
#include "runtime/adaptive_controller.hh"
#include "sim/trace.hh"
#include "sim/trace_stream.hh"

namespace {

using namespace mnoc;

/** Scoped journal enablement: saves the knob, wipes the global
 *  journal, and restores both on exit so tests cannot leak records
 *  into one another. */
struct JournalScope
{
    bool prev;

    JournalScope() : prev(journalEnabled())
    {
        Journal::setEnabled(true);
        Journal::global().reset();
    }

    ~JournalScope()
    {
        Journal::setEnabled(prev);
        Journal::global().reset();
    }
};

std::string
scratchPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
expectFatalContains(const std::string &path,
                    const std::string &needle)
{
    try {
        auto file = loadJournal(path);
        FAIL() << "loadJournal accepted a malformed journal ("
               << needle << "); " << file.records.size()
               << " records";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << "missing \"" << needle << "\" in: " << error.what();
    }
}

/** A small journal covering every record kind once. */
std::vector<JournalRecord>
sampleRecords()
{
    std::vector<JournalRecord> records;
    for (std::uint32_t k = 1; k <= kJournalKindCount; ++k) {
        JournalRecord rec(static_cast<JournalKind>(k), 10 + k);
        rec.addInt(static_cast<std::int64_t>(k))
            .addInt(-3)
            .addReal(0.5 * k)
            .addReal(-1.25e-9);
        records.push_back(rec);
    }
    return records;
}

TEST(Journal, KindNamesAreStable)
{
    EXPECT_STREQ(journalKindName(JournalKind::PhaseSignature),
                 "phase_signature");
    EXPECT_STREQ(journalKindName(JournalKind::Price), "price");
    EXPECT_STREQ(journalKindName(JournalKind::Reconcile),
                 "reconcile");
    EXPECT_STREQ(journalKindName(JournalKind::Margin), "margin");
}

TEST(Journal, RecordRejectsFieldOverflow)
{
    JournalRecord rec(JournalKind::Price, 1);
    for (std::size_t i = 0; i < JournalRecord::kMaxInts; ++i)
        rec.addInt(static_cast<std::int64_t>(i));
    EXPECT_THROW(rec.addInt(99), PanicError);
    for (std::size_t i = 0; i < JournalRecord::kMaxReals; ++i)
        rec.addReal(static_cast<double>(i));
    EXPECT_THROW(rec.addReal(9.9), PanicError);
}

TEST(Journal, BinaryRoundTripsEveryKind)
{
    JournalScope scope;
    auto &journal = Journal::global();
    journal.setManifest("{\"seed\": 7}");
    for (const JournalRecord &rec : sampleRecords())
        journal.record(rec);

    std::string path = scratchPath("journal_roundtrip.mjrn");
    journal.writeFile(path);
    auto loaded = loadJournal(path);
    EXPECT_EQ(loaded.manifestJson, "{\"seed\": 7}");
    auto expected = sampleRecords();
    ASSERT_EQ(loaded.records.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto &a = expected[i];
        const auto &b = loaded.records[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.epoch, b.epoch);
        EXPECT_EQ(a.numInts, b.numInts);
        EXPECT_EQ(a.numReals, b.numReals);
        EXPECT_EQ(a.ints, b.ints);
        EXPECT_EQ(a.reals, b.reals);
    }
    std::remove(path.c_str());
}

TEST(Journal, StreamingWriterMatchesStagedJournal)
{
    JournalScope scope;
    auto &journal = Journal::global();
    journal.setManifest("{\"seed\": 11}");
    for (const JournalRecord &rec : sampleRecords())
        journal.record(rec);

    std::string staged = scratchPath("journal_staged.mjrn");
    journal.writeFile(staged);

    std::string streamed = scratchPath("journal_streamed.mjrn");
    JournalWriter writer(streamed, "{\"seed\": 11}");
    for (const JournalRecord &rec : sampleRecords())
        writer.append(rec);
    writer.close();

    EXPECT_EQ(fileBytes(staged), fileBytes(streamed));
    std::remove(staged.c_str());
    std::remove(streamed.c_str());
}

TEST(Journal, ZeroEventJournalLoadsAndRenders)
{
    JournalScope scope;
    Journal::global().setManifest("{\"seed\": 3}");
    std::string path = scratchPath("journal_empty.mjrn");
    Journal::global().writeFile(path);

    auto file = loadJournal(path);
    EXPECT_TRUE(file.records.empty());
    EXPECT_EQ(file.manifestJson, "{\"seed\": 3}");

    auto markdown = renderExplainMarkdown(file);
    EXPECT_NE(markdown.find("records: 0"), std::string::npos)
        << markdown;
    auto csv = renderExplainTimelineCsv(file);
    EXPECT_NE(csv.find("epoch,kind,detail"), std::string::npos);
    auto trace = renderExplainTrace(file);
    EXPECT_NE(trace.find("traceEvents"), std::string::npos);
    auto jsonl = journalToJsonl(file);
    EXPECT_NE(jsonl.find("\"records\": 0"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Journal, LoadNamesTruncationPointAndKind)
{
    JournalScope scope;
    // Empty manifest keeps the header at a known 16 bytes, so the
    // first record starts at byte 16.
    for (const JournalRecord &rec : sampleRecords())
        Journal::global().record(rec);
    std::string full = Journal::global().toBinary();
    std::string path = scratchPath("journal_truncated.mjrn");

    // Mid-magic.
    writeBytes(path, full.substr(0, 5));
    expectFatalContains(path,
                        "truncated journal: missing header magic");
    // Mid-version.
    writeBytes(path, full.substr(0, 10));
    expectFatalContains(path, "missing header version at byte 8");
    // Mid-record: enough survives to name the kind
    // (phase_signature is record 0 in sampleRecords()).
    writeBytes(path, full.substr(0, 16 + 40));
    expectFatalContains(path, "record 0 (phase_signature)");
    writeBytes(path, full.substr(0, 16 + 40));
    expectFatalContains(path, "at byte 16");
    // End marker cut off after the records.
    writeBytes(path,
               full.substr(0, full.size() - 12));
    expectFatalContains(path, "or end marker");
    std::remove(path.c_str());
}

TEST(Journal, LoadNamesCorruptionKindAndOffset)
{
    JournalScope scope;
    for (const JournalRecord &rec : sampleRecords())
        Journal::global().record(rec);
    std::string full = Journal::global().toBinary();
    std::string path = scratchPath("journal_corrupt.mjrn");

    // Bad magic.
    std::string bytes = full;
    bytes[0] = 'X';
    writeBytes(path, bytes);
    expectFatalContains(path, "not a journal file (bad magic");

    // Unsupported version.
    bytes = full;
    bytes[8] = 99;
    writeBytes(path, bytes);
    expectFatalContains(path,
                        "unsupported journal version 99 at byte 8");

    // Unknown record kind at the first record (byte 16).
    bytes = full;
    bytes[16] = 99;
    writeBytes(path, bytes);
    expectFatalContains(path,
                        "unknown journal record kind 99 at byte 16");

    // Field counts out of range: patch record 0's numInts (byte 28).
    bytes = full;
    bytes[16 + 12] = 77;
    writeBytes(path, bytes);
    expectFatalContains(
        path,
        "corrupt phase_signature record: field counts out of range "
        "at byte 16");

    // End marker count mismatch: zero the trailing count.
    bytes = full;
    for (std::size_t i = bytes.size() - 8; i < bytes.size(); ++i)
        bytes[i] = 0;
    writeBytes(path, bytes);
    expectFatalContains(path, "declares 0 records but file holds");

    // Trailing garbage after the end marker.
    bytes = full + "junk";
    writeBytes(path, bytes);
    expectFatalContains(path,
                        "trailing bytes after journal end marker");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Adaptive-run journals: determinism and the golden fixture.
// ---------------------------------------------------------------

constexpr int kFixtureNodes = 256;

/**
 * Deterministic 256-node phase-splice trace with a pinned manifest:
 * a nearest-neighbor phase spliced onto a diameter-haul phase at
 * epoch 24, constant within each phase, so the adaptive controller's
 * decision sequence -- and therefore the journal -- is exactly
 * reproducible (the fixture behind the golden explain renders).
 */
sim::Trace
spliceTrace256()
{
    constexpr std::size_t kNeighborEpochs = 24;
    constexpr std::size_t kLongHaulEpochs = 24;
    sim::Trace t;
    t.workloadName = "splice_fixture_256";
    t.networkName = "mNoC";
    t.totalTicks = 480000;
    t.packets = CountMatrix(kFixtureNodes, kFixtureNodes, 0);
    t.flits = CountMatrix(kFixtureNodes, kFixtureNodes, 0);
    t.manifest.seed = 9;
    t.manifest.gitSha = "0000000";
    t.manifest.threads = 4;
    t.manifest.configDigest = "feedfacefeedface";
    t.manifest.env.emplace_back("MNOC_THREADS", "4");
    t.epochs.messagesPerEpoch = 2 * kFixtureNodes;
    for (std::size_t e = 0; e < kNeighborEpochs + kLongHaulEpochs;
         ++e) {
        std::vector<noc::EpochCell> cells;
        for (int s = 0; s < kFixtureNodes; ++s) {
            int dst = e < kNeighborEpochs
                          ? (s + 1) % kFixtureNodes
                          : (s + kFixtureNodes / 2) % kFixtureNodes;
            auto flits = static_cast<std::uint64_t>(
                4 + (static_cast<std::size_t>(s) * 7 + e) % 5);
            cells.push_back({s, dst, 2, flits});
            t.packets(s, dst) += 2;
            t.flits(s, dst) += flits;
        }
        t.epochs.epochs.push_back(std::move(cells));
    }
    return t;
}

/** The fixture design/policy pair: a distance-based two-mode design
 *  solved for the neighbor phase, with comm-aware challengers. */
struct SpliceFixture
{
    optics::SerpentineLayout layout{kFixtureNodes, Meters(0.08)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    core::Designer designer{xbar};

    core::MnocDesign
    design() const
    {
        core::DesignSpec spec;
        spec.numModes = 2;
        spec.assignment = core::Assignment::DistanceBased;
        spec.weights = core::WeightSource::DesignFlow;
        FlowMatrix flow(kFixtureNodes, kFixtureNodes, 0.1);
        for (int i = 0; i < kFixtureNodes; ++i) {
            flow(i, i) = 0.0;
            flow(i, (i + 1) % kFixtureNodes) = 50.0;
        }
        auto topology = designer.buildTopology(spec, flow);
        return designer.buildDesign(spec, topology, flow,
                                    DecibelLoss(2.0));
    }

    runtime::AdaptivePolicy
    policy() const
    {
        runtime::AdaptivePolicy out;
        out.trafficWindow = 8;
        out.phaseChangeThreshold = 0.5;
        out.epochsToSwitch = 2;
        out.maxCandidates = 4;
        out.candidateSpec.numModes = 2;
        out.candidateSpec.assignment = core::Assignment::CommAware;
        out.candidateSpec.weights = core::WeightSource::DesignFlow;
        out.candidateMargin = DecibelLoss(2.0);
        return out;
    }
};

/** Run the full fixture pipeline -- static baseline, adaptive run,
 *  reconciliation -- with the journal on, and return the journal
 *  bytes (stamped with the trace's manifest, same rule as `mnocpt
 *  adapt`). */
std::string
spliceJournalBytes(int threads)
{
    SpliceFixture fx;
    auto design = fx.design();
    auto trace = spliceTrace256();
    std::string file = scratchPath("journal_splice_256.trace");
    sim::saveTrace(file, trace);

    ThreadPool pool(threads);
    sim::TraceReader static_reader(file);
    auto static_ledger = fx.designer.model().buildLedger(
        design, static_reader, nullptr, &pool);

    Journal::global().reset();
    Journal::global().setManifest(manifestJson(trace.manifest));

    core::EnergyLedger adaptive_ledger(
        kFixtureNodes, 2, static_ledger.numEpochs(),
        static_ledger.durationSeconds());
    sim::TraceReader reader(file);
    auto log = runtime::runAdaptiveController(
        fx.designer, design, fx.policy(), reader, nullptr,
        &adaptive_ledger, &pool);
    auto comparison = runtime::reconcileAdaptive(
        static_ledger, adaptive_ledger, log);
    EXPECT_GT(comparison.staticEnergy, 0.0);
    std::remove(file.c_str());
    return Journal::global().toBinary();
}

TEST(Journal, AdaptiveRunBytesAreBitIdenticalAcrossPoolSizes)
{
    JournalScope scope;
    std::string one = spliceJournalBytes(1);
    EXPECT_GT(one.size(), std::size_t(0));
    EXPECT_EQ(one, spliceJournalBytes(2));
    EXPECT_EQ(one, spliceJournalBytes(8));
}

std::string
goldenDir()
{
    return std::string(MNOC_TEST_DATA_DIR) + "/golden_explain";
}

/** Regenerate the golden fixtures (committed under
 *  tests/data/golden_explain/) by running this binary with
 *  MNOC_REGEN_GOLDEN=1; any diff against the previous goldens is a
 *  deliberate format change. */
TEST(Journal, RegenerateGoldenFixtures)
{
    const char *regen = std::getenv("MNOC_REGEN_GOLDEN");
    if (regen == nullptr || std::string(regen) != "1")
        GTEST_SKIP() << "set MNOC_REGEN_GOLDEN=1 to regenerate";
    JournalScope scope;
    std::filesystem::create_directories(goldenDir());
    std::string bytes = spliceJournalBytes(2);
    writeBytes(goldenDir() + "/splice_256.mjrn", bytes);
    std::string path = goldenDir() + "/splice_256.mjrn";
    auto file = loadJournal(path);
    writeBytes(goldenDir() + "/explain.md",
               renderExplainMarkdown(file));
    writeBytes(goldenDir() + "/timeline.csv",
               renderExplainTimelineCsv(file));
    writeBytes(goldenDir() + "/explain_trace.json",
               renderExplainTrace(file));
    writeBytes(goldenDir() + "/journal.jsonl",
               journalToJsonl(file));
}

TEST(Journal, GoldenJournalStaysByteIdentical)
{
    std::string golden = goldenDir() + "/splice_256.mjrn";
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden;
    JournalScope scope;
    EXPECT_EQ(spliceJournalBytes(2), fileBytes(golden));
}

TEST(Journal, GoldenExplainRendersStayByteIdentical)
{
    std::string golden = goldenDir() + "/splice_256.mjrn";
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden;
    auto file = loadJournal(golden);
    EXPECT_FALSE(file.records.empty());
    EXPECT_EQ(renderExplainMarkdown(file),
              fileBytes(goldenDir() + "/explain.md"));
    EXPECT_EQ(renderExplainTimelineCsv(file),
              fileBytes(goldenDir() + "/timeline.csv"));
    EXPECT_EQ(renderExplainTrace(file),
              fileBytes(goldenDir() + "/explain_trace.json"));
    EXPECT_EQ(journalToJsonl(file),
              fileBytes(goldenDir() + "/journal.jsonl"));
}

} // namespace
