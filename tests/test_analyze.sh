#!/bin/sh
# Self-test for tools/analyze (mnoc-analyze), run as a ctest.
#
# Four halves:
#   1. the real tree must analyze clean against the checked-in
#      baseline (exit 0) using the build's compile_commands.json;
#   2. the fixture tree in tests/analyze_fixtures/tree/ must trip
#      every rule exactly where seeded, and no ok_* file may appear;
#   3. the SARIF export must be structurally valid 2.1.0;
#   4. the findings must be byte-identical for MNOC_THREADS=1 and 8.
#
# Usage: test_analyze.sh <mnoc-analyze> <compile_commands.json> <repo-root>
set -eu

analyze=${1:?usage: test_analyze.sh <mnoc-analyze> <db> <repo-root>}
db=${2:?usage: test_analyze.sh <mnoc-analyze> <db> <repo-root>}
root=${3:?usage: test_analyze.sh <mnoc-analyze> <db> <repo-root>}

fail() {
    echo "test_analyze: FAIL: $*" >&2
    exit 1
}

[ -x "$analyze" ] || fail "analyzer not found at $analyze"
[ -f "$db" ] || fail "compilation database not found at $db"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# --- 1. The tree itself is clean against the baseline. ------------
if ! "$analyze" --root "$root" --compile-commands "$db" \
        --baseline "$root/tools/analyze/baseline.txt" \
        > "$scratch/tree.txt" 2> "$scratch/tree.err"; then
    cat "$scratch/tree.txt" "$scratch/tree.err" >&2
    fail "mnoc-analyze reported findings on the real tree"
fi

# --- 2. The fixtures trip every rule. -----------------------------
fixtures="$root/tests/analyze_fixtures/tree"
out="$scratch/findings.txt"
if "$analyze" --root "$fixtures" --sarif "$scratch/out.sarif" \
        $(find "$fixtures" -name '*.cc' | sort) \
        > "$out" 2> "$scratch/fixtures.err"; then
    cat "$out" >&2
    fail "mnoc-analyze accepted fixtures with seeded violations"
fi

# Each seeded violation must be flagged in its bad_* file...
while read -r needle; do
    grep -q "$needle" "$out" || {
        cat "$out" >&2
        fail "seeded violation '$needle' was not flagged"
    }
done <<EOF
bad_unordered_iteration.cc:12: \[unordered-iteration\]
bad_sink_annotation.cc:15: \[unordered-iteration\]
bad_wall_clock.cc:9: \[wall-clock\]
bad_unseeded_rng.cc:8: \[unseeded-rng\]
bad_raw_thread.cc:9: \[raw-thread\]
bad_shared_prng.cc:12: \[shared-prng\]
bad_discarded_result.cc:10: \[discarded-result\]
bad_discarded_journal.cc:10: \[discarded-result\]
bad_unclosed_writer.cc:10: \[unclosed-writer\]
bad_unclosed_journal.cc:10: \[unclosed-writer\]
bad_raw_ofstream.cc:9: \[raw-ofstream\]
bad_layering.cc:1: \[layering\]
ring.hh:4: \[include-cycle\]
EOF

# ...and no clean counterpart (or suppressed site) may appear.
if grep -E 'ok_[a-z_]+\.cc' "$out"; then
    cat "$out" >&2
    fail "a clean ok_* fixture was flagged"
fi

# --- 3. The SARIF export is structurally valid. -------------------
if command -v python3 > /dev/null 2>&1; then
    python3 - "$scratch/out.sarif" <<'EOF' || fail "invalid SARIF"
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    doc = json.load(handle)
assert doc["version"] == "2.1.0", "version must be 2.1.0"
assert "sarif-schema-2.1.0" in doc["$schema"], "schema URI"
run = doc["runs"][0]
rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
assert len(rules) == 10, "rule catalog incomplete"
results = run["results"]
assert results, "fixture run must produce results"
for result in results:
    assert result["ruleId"] in rules, "result references unknown rule"
    assert result["level"] in ("error", "warning"), "bad level"
    assert result["message"]["text"], "empty message"
    loc = result["locations"][0]["physicalLocation"]
    uri = loc["artifactLocation"]["uri"]
    assert not uri.startswith("/"), "URI must be root-relative"
    assert loc["region"]["startLine"] >= 1, "bad startLine"
print("sarif ok:", len(results), "results")
EOF
else
    echo "test_analyze: python3 missing, skipping SARIF check" >&2
fi

# --- 4. Findings are byte-identical across thread counts. ---------
MNOC_THREADS=1 "$analyze" --root "$fixtures" \
    $(find "$fixtures" -name '*.cc' | sort) \
    > "$scratch/t1.txt" 2> /dev/null || true
MNOC_THREADS=8 "$analyze" --root "$fixtures" \
    $(find "$fixtures" -name '*.cc' | sort) \
    > "$scratch/t8.txt" 2> /dev/null || true
cmp -s "$scratch/t1.txt" "$scratch/t8.txt" || {
    diff "$scratch/t1.txt" "$scratch/t8.txt" >&2 || true
    fail "findings differ between MNOC_THREADS=1 and 8"
}
[ -s "$scratch/t1.txt" ] || fail "thread-determinism run was empty"

echo "test_analyze: PASS (tree clean, fixtures flagged, SARIF" \
     "valid, thread-count deterministic)"
