/**
 * @file
 * Tests of the power-topology types and their invariants.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/power_topology.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

TEST(PowerTopology, SingleModeReachesEverything)
{
    auto g = GlobalPowerTopology::singleMode(8);
    g.validate();
    EXPECT_EQ(g.numModes, 1);
    for (int s = 0; s < 8; ++s) {
        EXPECT_EQ(g.local(s).reachableCount(0), 7);
        EXPECT_EQ(g.local(s).modeOfDest[s], -1);
    }
}

TEST(PowerTopology, FromModeMatrixRoundTrips)
{
    Matrix<int> modes(4, 4, 1);
    for (int s = 0; s < 4; ++s) {
        modes(s, s) = -1;
        modes(s, (s + 1) % 4) = 0;
    }
    auto g = GlobalPowerTopology::fromModeMatrix(modes, 2);
    auto back = g.modeMatrix();
    for (int s = 0; s < 4; ++s)
        for (int d = 0; d < 4; ++d)
            EXPECT_EQ(back(s, d), s == d ? -1 : modes(s, d));
}

TEST(PowerTopology, ReachabilityIsCumulative)
{
    Matrix<int> modes(6, 6, 2);
    for (int s = 0; s < 6; ++s) {
        modes(s, (s + 1) % 6) = 0;
        modes(s, (s + 2) % 6) = 1;
    }
    auto g = GlobalPowerTopology::fromModeMatrix(modes, 3);
    const auto &local = g.local(0);
    EXPECT_EQ(local.reachableCount(0), 1);
    EXPECT_EQ(local.reachableCount(1), 2);
    EXPECT_EQ(local.reachableCount(2), 5);
    EXPECT_EQ(local.destsUniqueToMode(0), std::vector<int>{1});
    EXPECT_EQ(local.destsUniqueToMode(1), std::vector<int>{2});
    EXPECT_EQ(local.destsUniqueToMode(2).size(), 3u);
}

TEST(PowerTopology, ValidateCatchesBadAssignments)
{
    auto g = GlobalPowerTopology::singleMode(4);
    g.locals[2].modeOfDest[0] = 5; // out of range
    EXPECT_THROW(g.validate(), FatalError);

    g = GlobalPowerTopology::singleMode(4);
    g.locals[1].modeOfDest[1] = 0; // self entry must be -1
    EXPECT_THROW(g.validate(), FatalError);

    g = GlobalPowerTopology::singleMode(4);
    g.locals[3].numModes = 2; // non-uniform mode count
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(PowerTopology, HighestModeMustBePopulated)
{
    // All destinations in mode 0 of a 2-mode design: broadcast (mode 1)
    // reaches nothing unique, which the validator rejects.
    Matrix<int> modes(4, 4, 0);
    EXPECT_THROW(GlobalPowerTopology::fromModeMatrix(modes, 2),
                 FatalError);
}

TEST(PowerTopology, TooSmallSystemsRejected)
{
    EXPECT_THROW(GlobalPowerTopology::singleMode(1), FatalError);
}

} // namespace
