#include "core/design.hh"

namespace mnoc {

long
tileCount(const Design &design)
{
    return design.tiles;
}

} // namespace mnoc
