#include "common/util.hh"

namespace mnoc {

long
boundedTileCount(long tiles)
{
    return clampCount(tiles, 4096);
}

} // namespace mnoc
