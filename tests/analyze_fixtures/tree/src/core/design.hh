#ifndef MNOC_CORE_DESIGN_HH
#define MNOC_CORE_DESIGN_HH

#include "common/util.hh"

namespace mnoc {

struct Design
{
    long tiles = 0;
};

} // namespace mnoc

#endif // MNOC_CORE_DESIGN_HH
