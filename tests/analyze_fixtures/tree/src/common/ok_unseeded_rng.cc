#include <cstdint>

#include "common/prng.hh"

namespace mnoc {

double
jitter(std::uint64_t seed, std::uint64_t index)
{
    Prng rng(deriveSeed(seed, index));
    return rng.uniform();
}

} // namespace mnoc
