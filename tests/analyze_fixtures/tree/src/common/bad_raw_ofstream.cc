#include <fstream>
#include <string>

namespace mnoc {

void
writeSummary(const std::string &path, double energy_pj)
{
    std::ofstream out(path);
    out << "energy_pj " << energy_pj << "\n";
}

} // namespace mnoc
