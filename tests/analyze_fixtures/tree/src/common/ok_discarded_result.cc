#include <string>

#include "sim/trace.hh"

namespace mnoc {

long
countEpochs(const std::string &path)
{
    Trace trace = loadTrace(path);
    return static_cast<long>(trace.epochs.size());
}

} // namespace mnoc
