#include <string>

#include "common/io.hh"

namespace mnoc {

void
writeSummary(const std::string &path, double energy_pj)
{
    FileWriter writer(path);
    writer.stream() << "energy_pj " << energy_pj << "\n";
}

} // namespace mnoc
