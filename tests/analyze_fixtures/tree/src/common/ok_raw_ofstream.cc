#include <string>

#include "common/io.hh"

namespace mnoc {

void
writeRow(const std::string &path, long row)
{
    FileWriter writer(path);
    writer.stream() << row << "\n";
    writer.close();
}

} // namespace mnoc
