#include <string>

#include "common/journal.hh"

namespace mnoc {

void
preloadJournal(const std::string &path)
{
    loadJournal(path);
}

} // namespace mnoc
