#include <random>

namespace mnoc {

unsigned
hardwareEntropy()
{
    // Seeding the session id from hardware entropy is deliberate
    // here; the draw never reaches a result artifact.
    // mnoc-analyze-ok(unseeded-rng)
    std::random_device device;
    return device(); // mnoc-analyze-ok(unseeded-rng)
}

} // namespace mnoc
