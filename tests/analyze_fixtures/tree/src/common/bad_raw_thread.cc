#include <thread>
#include <vector>

namespace mnoc {

void
fill(std::vector<double> &out)
{
    std::thread worker([&out] { out.assign(out.size(), 0.0); });
    worker.join();
}

} // namespace mnoc
