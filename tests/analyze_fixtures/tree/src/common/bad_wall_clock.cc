#include <chrono>
#include <cstdint>

namespace mnoc {

std::uint64_t
stampEpoch()
{
    auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        now.time_since_epoch().count());
}

} // namespace mnoc
