#include <string>

#include "sim/trace.hh"

namespace mnoc {

void
warmCache(const std::string &path)
{
    loadTrace(path);
}

} // namespace mnoc
