#include <string>

#include "common/journal.hh"

namespace mnoc {

void
appendMarker(const std::string &path)
{
    JournalWriter writer(path, "{}");
    writer.append(JournalRecord(JournalKind::EpochBoundary, 0));
}

} // namespace mnoc
