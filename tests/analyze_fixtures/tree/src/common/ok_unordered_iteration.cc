#include <map>
#include <string>
#include <unordered_map>

#include "common/io.hh"

namespace mnoc {

void
dumpCounts(const std::unordered_map<std::string, long> &counts,
           FileWriter &writer)
{
    std::map<std::string, long> sorted;
    for (const auto &[key, value] : counts)
        sorted.emplace(key, value);
    for (const auto &[key, value] : sorted)
        writer.stream() << key << " " << value << "\n";
}

} // namespace mnoc
