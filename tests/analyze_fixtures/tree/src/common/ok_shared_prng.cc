#include <cstdint>
#include <vector>

#include "common/prng.hh"
#include "common/thread_pool.hh"

namespace mnoc {

void
scatter(ThreadPool &pool, std::uint64_t seed,
        std::vector<double> &out)
{
    pool.parallelFor(static_cast<long long>(out.size()),
                     [&](long long i) {
                         Prng rng(deriveSeed(seed, i));
                         out[i] = rng.uniform();
                     });
}

} // namespace mnoc
