#include <random>

namespace mnoc {

double
jitter()
{
    std::mt19937 gen(std::random_device{}());
    return static_cast<double>(gen()) / 4294967296.0;
}

} // namespace mnoc
