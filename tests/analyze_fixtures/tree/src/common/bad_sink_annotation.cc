#include <string>
#include <unordered_map>

// appendReport serializes into the run report, so iteration order
// reaching it is observable:
// mnoc-analyze-sink(appendReport)

namespace mnoc {

void appendReport(const std::string &row);

void
reportCounts(const std::unordered_map<std::string, long> &counts)
{
    for (const auto &[key, value] : counts)
        appendReport(key + " " + std::to_string(value));
}

} // namespace mnoc
