#include <cstdint>

namespace mnoc {

std::uint64_t
stampEpoch(std::uint64_t logical_epoch)
{
    // Results carry logical time only; wall time stays in
    // trace_span/manifest.
    return logical_epoch;
}

} // namespace mnoc
