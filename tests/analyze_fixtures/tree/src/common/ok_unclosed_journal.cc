#include <string>

#include "common/journal.hh"

namespace mnoc {

void
appendMarkerAndClose(const std::string &path)
{
    JournalWriter writer(path, "{}");
    writer.append(JournalRecord(JournalKind::EpochBoundary, 0));
    writer.close();
}

} // namespace mnoc
