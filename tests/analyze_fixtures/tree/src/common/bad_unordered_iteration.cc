#include <string>
#include <unordered_map>

#include "common/io.hh"

namespace mnoc {

void
dumpCounts(const std::unordered_map<std::string, long> &counts,
           FileWriter &writer)
{
    for (const auto &[key, value] : counts)
        writer.stream() << key << " " << value << "\n";
}

} // namespace mnoc
