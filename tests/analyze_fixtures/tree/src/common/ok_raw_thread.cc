#include <vector>

#include "common/thread_pool.hh"

namespace mnoc {

void
fill(std::vector<double> &out)
{
    ThreadPool::global().parallelFor(
        static_cast<long long>(out.size()),
        [&out](long long i) { out[i] = 0.0; });
}

} // namespace mnoc
