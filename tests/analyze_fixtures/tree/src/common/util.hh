#ifndef MNOC_COMMON_UTIL_HH
#define MNOC_COMMON_UTIL_HH

namespace mnoc {

inline long
clampCount(long value, long limit)
{
    return value < limit ? value : limit;
}

} // namespace mnoc

#endif // MNOC_COMMON_UTIL_HH
