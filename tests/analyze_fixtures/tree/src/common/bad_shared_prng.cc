#include <vector>

#include "common/prng.hh"
#include "common/thread_pool.hh"

namespace mnoc {

void
scatter(ThreadPool &pool, Prng &rng, std::vector<double> &out)
{
    pool.parallelFor(static_cast<long long>(out.size()),
                     [&](long long i) { out[i] = rng.uniform(); });
}

} // namespace mnoc
