#ifndef MNOC_NOC_RING_HH
#define MNOC_NOC_RING_HH

#include "optics/laser.hh"

namespace mnoc {

struct Ring
{
    Laser source;
};

} // namespace mnoc

#endif // MNOC_NOC_RING_HH
