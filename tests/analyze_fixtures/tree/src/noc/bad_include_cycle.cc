#include "noc/ring.hh"

namespace mnoc {

double
ringPower(const Ring &ring)
{
    return ring.source.power_mw;
}

} // namespace mnoc
