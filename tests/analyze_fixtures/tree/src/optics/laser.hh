#ifndef MNOC_OPTICS_LASER_HH
#define MNOC_OPTICS_LASER_HH

#include "noc/ring.hh"

namespace mnoc {

struct Laser
{
    double power_mw = 0.0;
};

} // namespace mnoc

#endif // MNOC_OPTICS_LASER_HH
