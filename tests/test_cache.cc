/**
 * @file
 * Tests of the set-associative cache with LRU replacement.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/cache.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

CacheGeometry
tiny()
{
    // 4 sets x 2 ways of 64B lines = 512 B.
    return CacheGeometry{512, 2};
}

TEST(Cache, GeometryDerivesSets)
{
    EXPECT_EQ(tiny().numSets(), 4u);
    EXPECT_EQ((CacheGeometry{32 * 1024, 4}).numSets(), 128u);
    EXPECT_EQ((CacheGeometry{512 * 1024, 8}).numSets(), 1024u);
}

TEST(Cache, MissThenHit)
{
    Cache cache(tiny());
    EXPECT_FALSE(cache.lookup(100).has_value());
    EXPECT_FALSE(cache.insert(100, LineState::Shared).has_value());
    auto state = cache.lookup(100);
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, LineState::Shared);
}

TEST(Cache, EvictsLruWithinSet)
{
    Cache cache(tiny());
    // Lines 0, 4, 8 all map to set 0 (4 sets); associativity 2.
    cache.insert(0, LineState::Shared);
    cache.insert(4, LineState::Modified);
    cache.lookup(0); // make line 4 the LRU
    auto evicted = cache.insert(8, LineState::Shared);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->line, 4u);
    EXPECT_EQ(evicted->state, LineState::Modified);
    EXPECT_TRUE(cache.lookup(0).has_value());
    EXPECT_FALSE(cache.lookup(4).has_value());
}

TEST(Cache, InsertRefreshesExistingLine)
{
    Cache cache(tiny());
    cache.insert(0, LineState::Shared);
    auto evicted = cache.insert(0, LineState::Modified);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*cache.lookup(0), LineState::Modified);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(Cache, SetStateAndInvalidate)
{
    Cache cache(tiny());
    cache.insert(3, LineState::Shared);
    EXPECT_TRUE(cache.setState(3, LineState::Owned));
    EXPECT_EQ(*cache.peek(3), LineState::Owned);
    EXPECT_FALSE(cache.setState(99, LineState::Owned));

    auto state = cache.invalidate(3);
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, LineState::Owned);
    EXPECT_FALSE(cache.invalidate(3).has_value());
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache cache(tiny());
    cache.insert(0, LineState::Shared);
    cache.insert(4, LineState::Shared);
    // Peek at 0 (no LRU update): 0 remains the LRU victim.
    cache.peek(0);
    auto evicted = cache.insert(8, LineState::Shared);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->line, 0u);
}

TEST(Cache, DistinctSetsDoNotInterfere)
{
    Cache cache(tiny());
    for (std::uint64_t line = 0; line < 8; ++line)
        EXPECT_FALSE(cache.insert(line, LineState::Shared).has_value());
    EXPECT_EQ(cache.occupancy(), 8u);
}

TEST(Cache, DirtyStateHelper)
{
    EXPECT_FALSE(isDirty(LineState::Shared));
    EXPECT_TRUE(isDirty(LineState::Owned));
    EXPECT_TRUE(isDirty(LineState::Modified));
}

TEST(Cache, RejectsMalformedGeometry)
{
    EXPECT_THROW(Cache(CacheGeometry{512, 0}), FatalError);
    EXPECT_THROW(Cache(CacheGeometry{100, 2}), FatalError);
}

} // namespace
