/**
 * @file
 * Tests of the streaming trace layer (sim/trace_stream.hh): the
 * streamed ledger build must be bit-identical to the whole-file
 * build at every pool size, the sharded layout must round-trip
 * through loadTrace(), the incremental TraceShardWriter must emit
 * the same bytes as the batch writer, a truncated shard must fail
 * naming the record kind and byte offset, and the recorder's epoch
 * sink must see exactly the epochs the in-memory path accumulates.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/prng.hh"
#include "common/thread_pool.hh"
#include "core/builders.hh"
#include "core/energy_ledger.hh"
#include "noc/network.hh"
#include "noc/packet.hh"
#include "sim/trace.hh"
#include "sim/trace_stream.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

/** Bit-exact cell-by-cell ledger comparison (no tolerance: the
 *  streamed build promises identity, not closeness). */
void
expectSameLedger(const EnergyLedger &a, const EnergyLedger &b)
{
    ASSERT_EQ(a.numSources(), b.numSources());
    ASSERT_EQ(a.numModes(), b.numModes());
    ASSERT_EQ(a.numEpochs(), b.numEpochs());
    ASSERT_EQ(a.durationSeconds(), b.durationSeconds());
    ASSERT_EQ(a.messagesPerEpoch(), b.messagesPerEpoch());
    for (int s = 0; s < a.numSources(); ++s) {
        for (int m = 0; m < a.numModes(); ++m) {
            for (std::size_t e = 0; e < a.numEpochs(); ++e) {
                const auto &x = a.cell(s, m, e);
                const auto &y = b.cell(s, m, e);
                ASSERT_EQ(x.flits, y.flits);
                ASSERT_EQ(x.txSeconds, y.txSeconds);
                ASSERT_EQ(x.sourceEnergy, y.sourceEnergy);
                ASSERT_EQ(x.oeEnergy, y.oeEnergy);
                ASSERT_EQ(x.electricalEnergy, y.electricalEnergy);
            }
        }
    }
    auto pa = a.averagePower();
    auto pb = b.averagePower();
    ASSERT_EQ(pa.total(), pb.total());
}

std::vector<int>
identityMapping(int n)
{
    std::vector<int> map(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        map[static_cast<std::size_t>(i)] = i;
    return map;
}

/** Deterministic 16-node epoch-carrying trace: every epoch draws its
 *  cells from its own derived PRNG stream, pre-sorted by (src, dst)
 *  like the capture path seals them. */
sim::Trace
epochTrace(std::size_t num_epochs = 32,
           std::uint64_t msgs_per_epoch = 8)
{
    constexpr int kNodes = 16;
    sim::Trace t;
    t.workloadName = "stream_fixture";
    t.networkName = "mNoC";
    t.totalTicks = 50000;
    t.packets = CountMatrix(kNodes, kNodes, 0);
    t.flits = CountMatrix(kNodes, kNodes, 0);
    t.manifest.seed = 42;
    t.manifest.gitSha = "0000000";
    t.manifest.threads = 1;
    t.epochs.messagesPerEpoch = msgs_per_epoch;
    for (std::size_t e = 0; e < num_epochs; ++e) {
        Prng rng(deriveSeed(5, e));
        std::map<std::pair<int, int>,
                 std::pair<std::uint64_t, std::uint64_t>> bucket;
        for (std::uint64_t m = 0; m < msgs_per_epoch; ++m) {
            int src = static_cast<int>(rng.below(kNodes));
            int dst = static_cast<int>(rng.below(kNodes - 1));
            if (dst >= src)
                ++dst;
            std::uint64_t flits = 1 + rng.below(5);
            auto &cell = bucket[{src, dst}];
            cell.first += 1;
            cell.second += flits;
        }
        std::vector<noc::EpochCell> cells;
        for (const auto &[key, counts] : bucket) {
            cells.push_back({key.first, key.second, counts.first,
                             counts.second});
            t.packets(key.first, key.second) += counts.first;
            t.flits(key.first, key.second) += counts.second;
        }
        t.epochs.epochs.push_back(std::move(cells));
    }
    return t;
}

std::string
scratchPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

/** The whole file's bytes, for byte-identity comparisons. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(TraceStream, StreamedLedgerMatchesWholeFileOnGoldenFixture)
{
    const std::string path =
        std::string(MNOC_TEST_DATA_DIR) + "/golden_trace_256.trace";
    auto whole = sim::loadTrace(path);

    optics::SerpentineLayout layout(256, Meters(0.08));
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar(layout, params);
    MnocPowerModel model(xbar, PowerParams{});
    auto design =
        model.designUniform(distanceBasedTopology(256, 2));

    auto reference = model.buildLedger(design, whole);
    auto mapping = identityMapping(256);
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        sim::TraceReader reader(path);
        auto streamed =
            model.buildLedger(design, reader, &mapping, &pool);
        expectSameLedger(reference, streamed);
    }
}

TEST(TraceStream, StreamedEpochLedgerMatchesAtAnyPoolSize)
{
    auto trace = epochTrace();
    std::string file = scratchPath("stream_epochs.trace");
    std::string dir = scratchPath("stream_epochs.mshards");
    std::filesystem::remove_all(dir);
    sim::saveTrace(file, trace);
    sim::saveShardedTrace(dir, trace, 4);

    optics::SerpentineLayout layout(16, Meters(0.05));
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar(layout, params);
    MnocPowerModel model(xbar, PowerParams{});
    auto design = model.designUniform(distanceBasedTopology(16, 2));

    auto reference = model.buildLedger(design, trace);
    ASSERT_EQ(reference.numEpochs(), trace.epochs.epochs.size());
    auto mapping = identityMapping(16);
    for (const std::string &source : {file, dir}) {
        for (int threads : {1, 2, 8}) {
            ThreadPool pool(threads);
            sim::TraceReader reader(source);
            auto streamed =
                model.buildLedger(design, reader, &mapping, &pool);
            expectSameLedger(reference, streamed);
        }
    }
}

TEST(TraceStream, ShardedRoundTripPreservesTrace)
{
    auto trace = epochTrace(10, 6);
    std::string dir = scratchPath("roundtrip.mshards");
    std::filesystem::remove_all(dir);
    sim::saveShardedTrace(dir, trace, 3);

    auto loaded = sim::loadTrace(dir);
    EXPECT_EQ(loaded.workloadName, trace.workloadName);
    EXPECT_EQ(loaded.networkName, trace.networkName);
    EXPECT_EQ(loaded.totalTicks, trace.totalTicks);
    EXPECT_EQ(loaded.manifest.seed, trace.manifest.seed);
    EXPECT_TRUE(loaded.packets == trace.packets);
    EXPECT_TRUE(loaded.flits == trace.flits);
    ASSERT_EQ(loaded.epochs.messagesPerEpoch,
              trace.epochs.messagesPerEpoch);
    ASSERT_EQ(loaded.epochs.epochs.size(),
              trace.epochs.epochs.size());
    for (std::size_t e = 0; e < trace.epochs.epochs.size(); ++e) {
        const auto &a = trace.epochs.epochs[e];
        const auto &b = loaded.epochs.epochs[e];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].src, b[i].src);
            EXPECT_EQ(a[i].dst, b[i].dst);
            EXPECT_EQ(a[i].packets, b[i].packets);
            EXPECT_EQ(a[i].flits, b[i].flits);
        }
    }
}

TEST(TraceStream, IncrementalWriterMatchesBatchWriter)
{
    auto trace = epochTrace(9, 5);
    std::string batch_dir = scratchPath("writer_batch.mshards");
    std::string inc_dir = scratchPath("writer_inc.mshards");
    std::filesystem::remove_all(batch_dir);
    std::filesystem::remove_all(inc_dir);

    sim::saveShardedTrace(batch_dir, trace, 4);
    {
        sim::TraceShardWriter writer(
            inc_dir, trace.workloadName, trace.networkName, 16,
            trace.epochs.messagesPerEpoch, 4);
        for (const auto &cells : trace.epochs.epochs)
            writer.appendEpoch(cells);
        writer.finish(trace.totalTicks, trace.packets, trace.flits,
                      trace.manifest);
    }

    std::vector<std::string> names;
    for (const auto &entry :
         std::filesystem::directory_iterator(batch_dir))
        names.push_back(entry.path().filename().string());
    ASSERT_FALSE(names.empty());
    for (const auto &name : names) {
        SCOPED_TRACE(name);
        EXPECT_EQ(slurp(batch_dir + "/" + name),
                  slurp(inc_dir + "/" + name));
    }
}

TEST(TraceStream, TruncatedShardNamesRecordKindAndByteOffset)
{
    auto trace = epochTrace(4, 6);
    std::string dir = scratchPath("truncated.mshards");
    std::filesystem::remove_all(dir);
    sim::saveShardedTrace(dir, trace, 4);

    // Cut the shard off right after its first epoch header, on a
    // line boundary, so the parser hits end-of-file mid-epoch: the
    // diagnostic must name the epoch-cell record and the exact byte
    // where the missing record would have started (the new file
    // size).
    std::string shard = dir + "/epochs-000000.mshard";
    std::string body = slurp(shard);
    std::size_t header_end = body.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    std::size_t epoch_end = body.find('\n', header_end + 1);
    ASSERT_NE(epoch_end, std::string::npos);
    std::string kept = body.substr(0, epoch_end + 1);
    {
        std::ofstream out(shard,
                          std::ios::binary | std::ios::trunc);
        out << kept;
    }

    try {
        sim::loadTrace(dir); // mnoc-analyze-ok(discarded-result)
        FAIL() << "loadTrace accepted a truncated shard";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("epoch-cell record at byte " +
                            std::to_string(kept.size())),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("epochs-000000.mshard"),
                  std::string::npos)
            << what;
    }
}

TEST(TraceStream, ZeroEpochV3TraceKeepsItsTripletSection)
{
    // Regression: nextMessages() used to gate its v3 lookahead on
    // numEpochs > 0, silently dropping the whole triplet section of
    // a zero-epoch v3 capture.  saveTrace() writes epoch-free traces
    // as v2, so the fixture is crafted by hand.
    std::string path = scratchPath("zero_epoch_v3.trace");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "mnoc-trace 3\n"
            << "zero_epoch_fixture\n"
            << "mNoC\n"
            << "4 1000\n"
            << "manifest 0\n"
            << "epochs 0 64\n"
            << "0 1 3 9\n"
            << "2 3 2 4\n";
    }

    auto loaded = sim::loadTrace(path);
    EXPECT_TRUE(loaded.epochs.empty());
    EXPECT_EQ(loaded.epochs.messagesPerEpoch, 64u);
    EXPECT_EQ(loaded.packets(0, 1), 3u);
    EXPECT_EQ(loaded.flits(0, 1), 9u);
    EXPECT_EQ(loaded.packets(2, 3), 2u);
    EXPECT_EQ(loaded.flits(2, 3), 4u);

    sim::TraceReader reader(path);
    EXPECT_EQ(reader.header().numEpochs, 0u);
    std::vector<noc::EpochCell> cells;
    EXPECT_FALSE(reader.nextEpoch(cells));
    std::vector<sim::TraceMessage> batch;
    std::size_t messages = 0;
    while (reader.nextMessages(batch, 64))
        messages += batch.size();
    EXPECT_EQ(messages, 2u);
}

TEST(TraceStream, NonTraceDirectoryNamesTheMissingIndex)
{
    // Regression: pointing the reader at a directory that is not a
    // sharded capture used to surface as an unreadable-file error on
    // the directory itself; it must name the missing index file.
    std::string dir = scratchPath("not_a_trace_dir");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    try {
        sim::TraceReader reader(dir);
        FAIL() << "non-trace directory accepted";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("index.mtrace"), std::string::npos)
            << what;
        EXPECT_NE(what.find(dir), std::string::npos) << what;
    }
}

TEST(TraceStream, TruncatedLastShardNamesItsOwnFile)
{
    // Like TruncatedShardNamesRecordKindAndByteOffset, but cutting a
    // later shard: the diagnostic must name the shard that actually
    // broke, not shard 0.
    auto trace = epochTrace(10, 6);
    std::string dir = scratchPath("truncated_last.mshards");
    std::filesystem::remove_all(dir);
    sim::saveShardedTrace(dir, trace, 4);

    std::string shard = dir + "/epochs-000002.mshard";
    ASSERT_TRUE(std::filesystem::exists(shard));
    std::string body = slurp(shard);
    std::size_t header_end = body.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    std::size_t epoch_end = body.find('\n', header_end + 1);
    ASSERT_NE(epoch_end, std::string::npos);
    {
        std::ofstream out(shard,
                          std::ios::binary | std::ios::trunc);
        out << body.substr(0, epoch_end + 1);
    }

    try {
        sim::loadTrace(dir); // mnoc-analyze-ok(discarded-result)
        FAIL() << "loadTrace accepted a truncated last shard";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("epochs-000002.mshard"),
                  std::string::npos)
            << what;
    }
}

TEST(TraceStream, EpochSinkSeesExactlyTheSealedEpochs)
{
    constexpr int kNodes = 8;
    constexpr std::uint64_t kMsgsPerEpoch = 4;
    noc::TrafficRecorder plain(kNodes);
    noc::TrafficRecorder sunk(kNodes);
    plain.enableEpochs(kMsgsPerEpoch);
    sunk.enableEpochs(kMsgsPerEpoch);

    std::vector<std::vector<noc::EpochCell>> captured;
    sunk.setEpochSink([&](std::vector<noc::EpochCell> &&cells) {
        captured.push_back(std::move(cells));
    });

    Prng rng(17);
    for (int i = 0; i < 41; ++i) {
        noc::Packet packet;
        packet.src = static_cast<int>(rng.below(kNodes));
        packet.dst = static_cast<int>(rng.below(kNodes - 1));
        if (packet.dst >= packet.src)
            ++packet.dst;
        packet.flits = 1 + static_cast<int>(rng.below(4));
        plain.record(packet);
        sunk.record(packet);
    }

    auto accumulated = plain.takeEpochs();
    auto drained = sunk.takeEpochs();
    // The sink consumed every sealed epoch, so nothing accumulated.
    EXPECT_TRUE(drained.epochs.empty());
    EXPECT_EQ(drained.messagesPerEpoch, kMsgsPerEpoch);
    ASSERT_EQ(captured.size(), accumulated.epochs.size());
    for (std::size_t e = 0; e < captured.size(); ++e) {
        const auto &a = accumulated.epochs[e];
        const auto &b = captured[e];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].src, b[i].src);
            EXPECT_EQ(a[i].dst, b[i].dst);
            EXPECT_EQ(a[i].packets, b[i].packets);
            EXPECT_EQ(a[i].flits, b[i].flits);
        }
    }
}

} // namespace
