/**
 * @file
 * Tests of the energy-attribution ledger (core/energy_ledger.hh):
 * loss-breakdown power conservation, agreement with the power model,
 * epoch bucketing, the synthetic epoch for epoch-free traces, and
 * the metrics trail the build leaves behind.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/metrics.hh"
#include "core/builders.hh"
#include "core/energy_ledger.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct LedgerFixture
{
    optics::SerpentineLayout layout{16, Meters(0.05)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    PowerParams power;
    MnocPowerModel model{xbar, power};

    sim::Trace
    uniformTrace(std::uint64_t flits_per_pair = 100,
                 noc::Tick ticks = 100000) const
    {
        sim::Trace t;
        t.workloadName = "synthetic";
        t.networkName = "mNoC";
        t.totalTicks = ticks;
        t.packets = CountMatrix(16, 16, 0);
        t.flits = CountMatrix(16, 16, 0);
        for (int s = 0; s < 16; ++s)
            for (int d = 0; d < 16; ++d)
                if (s != d) {
                    t.packets(s, d) = flits_per_pair / 3;
                    t.flits(s, d) = flits_per_pair;
                }
        return t;
    }
};

TEST(EnergyLedger, LossBreakdownConservesInjectedPower)
{
    LedgerFixture f;
    auto design = f.model.designUniform(
        distanceBasedTopology(16, 4));
    for (int s : {0, 7, 15}) {
        const auto &source = design.sources[s];
        for (std::size_t m = 0; m < source.modePower.size(); ++m) {
            auto loss = f.xbar.chain(s).lossBreakdown(
                source.chain, source.modePower[m]);
            EXPECT_GT(loss.injected, 0.0);
            EXPECT_GT(loss.delivered, 0.0);
            EXPECT_GE(loss.sourceCoupling, 0.0);
            EXPECT_GE(loss.sourceSplit, 0.0);
            EXPECT_GE(loss.waveguide, 0.0);
            EXPECT_GE(loss.tapInsertion, 0.0);
            EXPECT_GE(loss.receiverCoupling, 0.0);
            EXPECT_GE(loss.residual, 0.0);
            EXPECT_NEAR(loss.accountedFor(), loss.injected,
                        1e-12 * loss.injected);
        }
    }
}

TEST(EnergyLedger, AveragePowerMatchesEvaluate)
{
    LedgerFixture f;
    auto design = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto trace = f.uniformTrace();
    auto direct = f.model.evaluate(design, trace);
    auto ledger = f.model.buildLedger(design, trace);
    auto averaged = ledger.averagePower();
    EXPECT_DOUBLE_EQ(averaged.source, direct.source);
    EXPECT_DOUBLE_EQ(averaged.oe, direct.oe);
    EXPECT_DOUBLE_EQ(averaged.electrical, direct.electrical);
    // Energy over duration is power: the two views agree.
    EXPECT_NEAR(ledger.totalEnergy(),
                averaged.total() * ledger.durationSeconds(),
                1e-9 * ledger.totalEnergy());
}

TEST(EnergyLedger, EpochFreeTraceGetsOneSyntheticEpoch)
{
    LedgerFixture f;
    auto design = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto ledger = f.model.buildLedger(design, f.uniformTrace());
    EXPECT_EQ(ledger.numEpochs(), 1u);
    EXPECT_EQ(ledger.messagesPerEpoch(), 0u);
    EXPECT_EQ(ledger.numSources(), 16);
    EXPECT_EQ(ledger.numModes(), 1);
    std::uint64_t flits = 0;
    for (int s = 0; s < 16; ++s)
        flits += ledger.cell(s, 0, 0).flits;
    // 16 sources x 15 destinations x 100 flits.
    EXPECT_EQ(flits, 16u * 15u * 100u);
}

TEST(EnergyLedger, EpochedAttributionMatchesAggregate)
{
    LedgerFixture f;
    auto design = f.model.designUniform(
        distanceBasedTopology(16, 2));
    auto plain = f.uniformTrace();

    // The same traffic split across two epoch windows: total energy
    // and average power must not change, only the bucketing.
    sim::Trace epoched = plain;
    epoched.epochs.messagesPerEpoch = 512;
    std::vector<noc::EpochCell> first, second;
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            first.push_back({s, d, 20, 60});
            second.push_back({s, d, 13, 40});
        }
    }
    epoched.epochs.epochs = {first, second};

    auto base = f.model.buildLedger(design, plain);
    auto split = f.model.buildLedger(design, epoched);
    ASSERT_EQ(split.numEpochs(), 2u);
    EXPECT_EQ(split.messagesPerEpoch(), 512u);
    EXPECT_NEAR(split.totalEnergy(), base.totalEnergy(),
                1e-12 * base.totalEnergy());
    auto base_power = base.averagePower();
    auto split_power = split.averagePower();
    EXPECT_NEAR(split_power.total(), base_power.total(),
                1e-12 * base_power.total());

    // Per-epoch flit shares land in their own cells.
    std::uint64_t first_flits = 0, second_flits = 0;
    for (int s = 0; s < 16; ++s) {
        for (int m = 0; m < split.numModes(); ++m) {
            first_flits += split.cell(s, m, 0).flits;
            second_flits += split.cell(s, m, 1).flits;
        }
    }
    EXPECT_EQ(first_flits, 16u * 15u * 60u);
    EXPECT_EQ(second_flits, 16u * 15u * 40u);
}

TEST(EnergyLedger, SourceEpochPowerCoversAttributedEnergy)
{
    LedgerFixture f;
    auto design = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto ledger = f.model.buildLedger(design, f.uniformTrace());
    FlowMatrix heat = ledger.sourceEpochPower();
    ASSERT_EQ(heat.rows(), ledger.numEpochs());
    ASSERT_EQ(heat.cols(), 16u);
    double window = ledger.durationSeconds() /
                    static_cast<double>(ledger.numEpochs());
    EXPECT_NEAR(heat.total() * window, ledger.totalEnergy(),
                1e-9 * ledger.totalEnergy());
}

TEST(EnergyLedger, IndexValidationPanics)
{
    LedgerFixture f;
    auto design = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    auto ledger = f.model.buildLedger(design, f.uniformTrace());
    EXPECT_THROW(ledger.cell(-1, 0, 0), PanicError);
    EXPECT_THROW(ledger.cell(16, 0, 0), PanicError);
    EXPECT_THROW(ledger.cell(0, 1, 0), PanicError);
    EXPECT_THROW(ledger.cell(0, 0, 1), PanicError);
    EXPECT_THROW(ledger.loss(0, 1), PanicError);
    EXPECT_THROW(EnergyLedger(0, 1, 1, 1.0), PanicError);
    EXPECT_THROW(EnergyLedger(1, 1, 1, 0.0), PanicError);
}

TEST(EnergyLedger, BuildLeavesMetricsTrail)
{
    MetricsRegistry::setEnabled(true);
    MetricsRegistry::global().reset();
    LedgerFixture f;
    auto design = f.model.designUniform(
        GlobalPowerTopology::singleMode(16));
    f.model.buildLedger(design, f.uniformTrace());
    auto &metrics = MetricsRegistry::global();
    EXPECT_EQ(metrics.counter("ledger.builds").value(), 1u);
    auto flits = metrics.series("ledger.epoch_flits").values();
    ASSERT_EQ(flits.size(), 1u);
    EXPECT_EQ(flits[0], 16u * 15u * 100u);
    MetricsRegistry::global().reset();
    MetricsRegistry::setEnabled(false);
}

} // namespace
