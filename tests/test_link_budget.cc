/**
 * @file
 * Tests of link-budget validation and BER estimation.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "optics/link_budget.hh"

namespace {

using namespace mnoc;
using namespace mnoc::optics;

struct LbFixture
{
    SerpentineLayout layout{16, Meters(0.05)};
    DeviceParams params;
    SplitterChain chain{layout, params, 6};

    MultiModeDesign
    twoModeDesign(std::vector<double> weights = {0.7, 0.3}) const
    {
        std::vector<int> modes(16, 1);
        for (int d = 3; d <= 9; ++d)
            modes[d] = 0;
        AlphaOptimizer opt(chain, modes, weights,
                           params.pminAtTap());
        return opt.optimize();
    }
};

TEST(LinkBudget, BerDecreasesWithReceivedPower)
{
    WattPower pmin(1e-5);
    double high = linkBitErrorRate(WattPower(2e-5), pmin);
    double nominal = linkBitErrorRate(WattPower(1e-5), pmin);
    double low = linkBitErrorRate(WattPower(0.5e-5), pmin);
    EXPECT_LT(high, nominal);
    EXPECT_LT(nominal, low);
    // Design point Q = 7: about 1e-12.
    EXPECT_LT(nominal, 1e-11);
    EXPECT_GT(nominal, 1e-14);
    // No light: coin flip.
    EXPECT_DOUBLE_EQ(linkBitErrorRate(WattPower(0.0), pmin), 0.5);
}

TEST(LinkBudget, BerRejectsBadArguments)
{
    EXPECT_THROW(linkBitErrorRate(WattPower(1e-5), WattPower(0.0)),
                 FatalError);
    EXPECT_THROW(linkBitErrorRate(WattPower(1e-5), WattPower(1e-5), -1.0),
                 FatalError);
}

TEST(LinkBudget, OptimizedDesignValidates)
{
    LbFixture f;
    auto design = f.twoModeDesign();
    auto report = validateDesign(f.chain, design,
                                 f.params.pminAtTap());
    EXPECT_TRUE(report.ok);
    // Reachable links sit at or above pmin.
    EXPECT_GE(report.worstReachableMargin.dB(), -1e-9);
    // Unreachable links sit strictly below pmin.
    EXPECT_LT(report.worstUnreachableLeak.dB(), 0.0);
}

TEST(LinkBudget, ReportsEveryModeDestinationPair)
{
    LbFixture f;
    auto design = f.twoModeDesign();
    auto report = validateDesign(f.chain, design,
                                 f.params.pminAtTap());
    // 15 destinations x 2 modes.
    EXPECT_EQ(report.links.size(), 30u);
    int reachable = 0;
    for (const auto &link : report.links)
        if (link.reachable)
            ++reachable;
    // Mode 0 reaches 6 (indices 3..9 minus the source itself),
    // mode 1 reaches all 15.
    EXPECT_EQ(reachable, 6 + 15);
}

TEST(LinkBudget, ReachableLinksHaveExcellentBer)
{
    LbFixture f;
    auto design = f.twoModeDesign();
    auto report = validateDesign(f.chain, design,
                                 f.params.pminAtTap());
    for (const auto &link : report.links) {
        if (link.reachable) {
            EXPECT_LT(link.bitErrorRate, 1e-10)
                << "mode " << link.mode << " dest " << link.dest;
        }
    }
}

TEST(LinkBudget, StrictGapRequirementCanFail)
{
    // Demanding a 10 dB decision gap between reachable and
    // unreachable levels is more than the optimized alphas provide
    // when the mode split is mild.
    LbFixture f;
    auto design = f.twoModeDesign({0.5, 0.5});
    auto report = validateDesign(f.chain, design,
                                 f.params.pminAtTap(), DecibelLoss(0.0),
                                 DecibelLoss(-10.0));
    // The leak level in mode 1 is alpha-relative; with moderate
    // weights alpha_1 is well above 0.1, so this must fail.
    EXPECT_FALSE(report.ok);
}

TEST(LinkBudget, MarginRequirementCanFail)
{
    LbFixture f;
    auto design = f.twoModeDesign();
    // The exact design hits pmin with zero margin, so demanding +3 dB
    // must fail.
    auto report = validateDesign(f.chain, design,
                                 f.params.pminAtTap(), DecibelLoss(3.0));
    EXPECT_FALSE(report.ok);
}

} // namespace
