/**
 * @file
 * Tests of the Equation 2 splitter-chain solver: the exact design must
 * deliver the requested tap powers, and the minimal injected power
 * must match the power-conservation closed form.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.hh"
#include "optics/splitter_chain.hh"

namespace {

using namespace mnoc;
using optics::ChainDesign;
using optics::DeviceParams;
using optics::SerpentineLayout;
using optics::SplitterChain;

DeviceParams
tableThreeParams()
{
    return DeviceParams{};
}

TEST(SplitterChain, DesignDeliversExactTargets)
{
    SerpentineLayout layout{16, Meters(0.05)};
    SplitterChain chain(layout, tableThreeParams(), 5);
    double pmin = tableThreeParams().pminAtTap().watts();

    std::vector<double> targets(16, pmin);
    targets[5] = 0.0;
    targets[2] = 3.0 * pmin; // non-uniform targets
    targets[12] = 0.25 * pmin;

    ChainDesign design = chain.design(targets);
    auto received = chain.evaluate(design, design.injectedPower);
    for (int d = 0; d < 16; ++d)
        EXPECT_NEAR(received[d], targets[d], 1e-9 * pmin)
            << "destination " << d;
}

TEST(SplitterChain, InjectedPowerMatchesConservationForm)
{
    SerpentineLayout layout{32, Meters(0.08)};
    SplitterChain chain(layout, tableThreeParams(), 10);
    double pmin = tableThreeParams().pminAtTap().watts();

    std::vector<double> targets(32, 0.0);
    for (int d = 0; d < 32; ++d)
        if (d != 10)
            targets[d] = pmin * (1.0 + 0.1 * (d % 5));

    ChainDesign design = chain.design(targets);
    double expected = 0.0;
    for (int d = 0; d < 32; ++d)
        if (d != 10)
            expected += targets[d] * chain.tapAttenuation(d).value();
    EXPECT_NEAR(design.injectedPower.watts(), expected,
                1e-12 * expected);
}

TEST(SplitterChain, SplitterFractionsValidAndTailTakesAll)
{
    SerpentineLayout layout{16, Meters(0.05)};
    SplitterChain chain(layout, tableThreeParams(), 3);
    double pmin = tableThreeParams().pminAtTap().watts();
    std::vector<double> targets(16, pmin);
    targets[3] = 0.0;

    ChainDesign design = chain.design(targets);
    for (int d = 0; d < 16; ++d) {
        if (d == 3)
            continue;
        EXPECT_GT(design.splitterFraction[d], 0.0);
        EXPECT_LE(design.splitterFraction[d], 1.0 + 1e-12);
    }
    // The last node on each arm diverts everything that is left.
    EXPECT_NEAR(design.splitterFraction[0], 1.0, 1e-12);
    EXPECT_NEAR(design.splitterFraction[15], 1.0, 1e-12);
}

TEST(SplitterChain, ReceivedPowerScalesLinearlyWithDrive)
{
    SerpentineLayout layout{16, Meters(0.05)};
    SplitterChain chain(layout, tableThreeParams(), 8);
    double pmin = tableThreeParams().pminAtTap().watts();
    std::vector<double> targets(16, pmin);
    targets[8] = 0.0;

    ChainDesign design = chain.design(targets);
    auto base = chain.evaluate(design, design.injectedPower);
    auto doubled = chain.evaluate(design, 2.0 * design.injectedPower);
    for (int d = 0; d < 16; ++d)
        EXPECT_NEAR(doubled[d], 2.0 * base[d], 1e-12);
}

TEST(SplitterChain, MoreTargetsNeedMorePower)
{
    SerpentineLayout layout{16, Meters(0.05)};
    SplitterChain chain(layout, tableThreeParams(), 0);
    double pmin = tableThreeParams().pminAtTap().watts();

    std::vector<double> few(16, 0.0);
    few[1] = pmin;
    std::vector<double> more = few;
    more[15] = pmin;

    WattPower p_few = chain.design(few).injectedPower;
    WattPower p_more = chain.design(more).injectedPower;
    EXPECT_GT(p_more, p_few);
}

TEST(SplitterChain, SingleDestinationMatchesAttenuation)
{
    SerpentineLayout layout{16, Meters(0.05)};
    SplitterChain chain(layout, tableThreeParams(), 4);
    std::vector<double> targets(16, 0.0);
    targets[11] = 2e-5;
    ChainDesign design = chain.design(targets);
    EXPECT_NEAR(design.injectedPower.watts(),
                2e-5 * chain.tapAttenuation(11).value(), 1e-18);
    // All power goes to the right arm.
    EXPECT_DOUBLE_EQ(design.splitterFraction[4], 0.0);
}

TEST(SplitterChain, ZeroTargetsNeedNoPower)
{
    SerpentineLayout layout{8, Meters(0.02)};
    SplitterChain chain(layout, tableThreeParams(), 2);
    std::vector<double> targets(8, 0.0);
    ChainDesign design = chain.design(targets);
    EXPECT_DOUBLE_EQ(design.injectedPower.watts(), 0.0);
}

TEST(SplitterChain, EndSourceHasOnlyOneArm)
{
    SerpentineLayout layout{8, Meters(0.02)};
    SplitterChain chain(layout, tableThreeParams(), 0);
    std::vector<double> targets(8, 1e-5);
    targets[0] = 0.0;
    ChainDesign design = chain.design(targets);
    // No left arm: the directional split sends nothing left.
    EXPECT_DOUBLE_EQ(design.splitterFraction[0], 0.0);
    auto received = chain.evaluate(design, design.injectedPower);
    for (int d = 1; d < 8; ++d)
        EXPECT_NEAR(received[d], 1e-5, 1e-14);
}

TEST(SplitterChain, AttenuationGrowsWithDistance)
{
    SerpentineLayout layout{64, Meters(0.18)};
    SplitterChain chain(layout, tableThreeParams(), 0);
    for (int d = 2; d < 64; ++d)
        EXPECT_GT(chain.tapAttenuation(d), chain.tapAttenuation(d - 1))
            << "destination " << d;
}

TEST(SplitterChain, AttenuationSymmetricBetweenNodePairs)
{
    SerpentineLayout layout{32, Meters(0.1)};
    DeviceParams params = tableThreeParams();
    SplitterChain a(layout, params, 7);
    SplitterChain b(layout, params, 23);
    EXPECT_NEAR(a.tapAttenuation(23).value(), b.tapAttenuation(7).value(),
                1e-6);
}

TEST(SplitterChain, RejectsMalformedTargets)
{
    SerpentineLayout layout{8, Meters(0.02)};
    SplitterChain chain(layout, tableThreeParams(), 2);
    std::vector<double> wrong_size(7, 0.0);
    EXPECT_THROW(chain.design(wrong_size), FatalError);
    std::vector<double> self_target(8, 0.0);
    self_target[2] = 1e-6;
    EXPECT_THROW(chain.design(self_target), FatalError);
    std::vector<double> negative(8, 0.0);
    negative[3] = -1e-6;
    EXPECT_THROW(chain.design(negative), FatalError);
}

/**
 * Property sweep: for every source position on a small crossbar, the
 * uniform-broadcast design delivers pmin everywhere and the injected
 * power equals the conservation form.
 */
class SplitterChainSweep : public testing::TestWithParam<int>
{
};

TEST_P(SplitterChainSweep, BroadcastDesignIsExactEverywhere)
{
    int source = GetParam();
    SerpentineLayout layout{24, Meters(0.07)};
    DeviceParams params = tableThreeParams();
    SplitterChain chain(layout, params, source);
    double pmin = params.pminAtTap().watts();

    std::vector<double> targets(24, pmin);
    targets[source] = 0.0;
    ChainDesign design = chain.design(targets);

    double expected = 0.0;
    for (int d = 0; d < 24; ++d)
        if (d != source)
            expected += pmin * chain.tapAttenuation(d).value();
    EXPECT_NEAR(design.injectedPower.watts(), expected,
                1e-12 * expected);

    auto received = chain.evaluate(design, design.injectedPower);
    for (int d = 0; d < 24; ++d) {
        if (d == source)
            continue;
        EXPECT_NEAR(received[d], pmin, 1e-9 * pmin);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSources, SplitterChainSweep,
                         testing::Range(0, 24));

} // namespace
