/**
 * @file
 * Randomized stress tests: long random request streams over tiny
 * caches exercise every protocol path (evictions, upgrades, owner
 * transfers, collapses) while the directory's internal invariant
 * panics act as the oracle.  A final consistency sweep checks that
 * every cache's view agrees with the directory.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "noc/mnoc_network.hh"
#include "sim/coherence.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

struct StressRig
{
    static constexpr int n = 8;
    optics::SerpentineLayout layout{n, Meters(0.02)};
    noc::NetworkConfig netConfig;
    noc::MnocNetwork net{layout, netConfig};
    noc::TrafficRecorder recorder{n};
    MemoryParams params;

    StressRig(bool multicast)
    {
        // Tiny caches force constant evictions.
        params.l1 = CacheGeometry{256, 2};
        params.l2 = CacheGeometry{1024, 2};
        params.multicastInvalidations = multicast;
    }
};

/** Drive random traffic; the protocol panics are the test oracle. */
void
stressRun(bool multicast, std::uint64_t seed, int ops)
{
    StressRig rig(multicast);
    CoherenceController coh(StressRig::n, rig.params, rig.net,
                            rig.recorder);
    Prng rng(seed);
    noc::Tick now = 0;
    for (int i = 0; i < ops; ++i) {
        MemOp op;
        int owner = static_cast<int>(rng.below(StressRig::n));
        // Small line space per owner maximizes sharing collisions.
        op.addr = placedAddr(owner, rng.below(24) << lineShift);
        op.write = rng.chance(0.4);
        int core = static_cast<int>(rng.below(StressRig::n));
        now += rng.below(50);
        ASSERT_NO_THROW(coh.access(core, op, now))
            << "op " << i << " seed " << seed;
    }

    // Consistency sweep: every cached line is a registered sharer
    // with a state compatible with the directory's.
    for (int owner = 0; owner < StressRig::n; ++owner) {
        for (std::uint64_t idx = 0; idx < 24; ++idx) {
            std::uint64_t line =
                lineOf(placedAddr(owner, idx << lineShift));
            const DirEntry *e = coh.directory().find(line);
            for (int core = 0; core < StressRig::n; ++core) {
                auto state = coh.cacheState(core, line);
                if (!state.has_value())
                    continue;
                ASSERT_NE(e, nullptr);
                EXPECT_TRUE(e->sharers.contains(core))
                    << "core " << core << " caches an unregistered "
                    << "line";
                if (isDirty(*state)) {
                    EXPECT_EQ(e->owner, core);
                    EXPECT_TRUE(e->state == DirState::Owned ||
                                e->state == DirState::Modified);
                }
            }
            if (e != nullptr && e->state != DirState::Invalid) {
                // Every registered sharer actually caches the line.
                for (int core : e->sharers.members())
                    EXPECT_TRUE(
                        coh.cacheState(core, line).has_value())
                        << "stale sharer " << core;
            }
        }
    }
}

class CoherenceStress
    : public testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(CoherenceStress, RandomTrafficKeepsInvariants)
{
    auto [multicast, seed] = GetParam();
    stressRun(multicast, static_cast<std::uint64_t>(seed) * 7919 + 1,
              20000);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CoherenceStress,
    testing::Combine(testing::Bool(), testing::Range(1, 6)),
    [](const auto &suite_info) {
        return std::string(std::get<0>(suite_info.param)
                               ? "multicast"
                               : "unicast") +
               "_seed" +
               std::to_string(std::get<1>(suite_info.param));
    });

TEST(CoherenceStress, WriteOnlyStorm)
{
    StressRig rig(false);
    CoherenceController coh(StressRig::n, rig.params, rig.net,
                            rig.recorder);
    Prng rng(99);
    noc::Tick now = 0;
    for (int i = 0; i < 20000; ++i) {
        MemOp op;
        op.addr = placedAddr(static_cast<int>(rng.below(StressRig::n)),
                             rng.below(8) << lineShift);
        op.write = true;
        now += 10;
        ASSERT_NO_THROW(coh.access(
            static_cast<int>(rng.below(StressRig::n)), op, now));
    }
    // Hot write sharing: ownership must have moved many times.
    EXPECT_GT(coh.stats().cacheToCache, 1000u);
}

TEST(CoherenceStress, ReadOnlyStormNeverInvalidates)
{
    StressRig rig(false);
    // Large caches so nothing ever leaves (no eviction-driven
    // directory changes).
    rig.params.l1 = CacheGeometry{32 * 1024, 4};
    rig.params.l2 = CacheGeometry{512 * 1024, 8};
    CoherenceController coh(StressRig::n, rig.params, rig.net,
                            rig.recorder);
    Prng rng(7);
    noc::Tick now = 0;
    for (int i = 0; i < 10000; ++i) {
        MemOp op;
        op.addr = placedAddr(static_cast<int>(rng.below(StressRig::n)),
                             rng.below(64) << lineShift);
        now += 5;
        coh.access(static_cast<int>(rng.below(StressRig::n)), op, now);
    }
    EXPECT_EQ(coh.stats().invalidations, 0u);
    EXPECT_EQ(coh.stats().writebacks, 0u);
}

} // namespace
