/**
 * @file
 * Tests of the OpticalCrossbar aggregate: the Figure 6 power profile
 * emerges from the cached broadcast designs.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "optics/crossbar.hh"

namespace {

using namespace mnoc;
using namespace mnoc::optics;

TEST(OpticalCrossbar, BroadcastMatchesManualDesign)
{
    SerpentineLayout layout{16, Meters(0.05)};
    DeviceParams params;
    OpticalCrossbar xbar(layout, params);

    std::vector<double> targets(16, params.pminAtTap().watts());
    targets[4] = 0.0;
    SplitterChain chain(layout, params, 4);
    EXPECT_NEAR(xbar.broadcastPower(4).watts(),
                chain.design(targets).injectedPower.watts(), 1e-15);
}

TEST(OpticalCrossbar, PowerProfileLowestInTheMiddle)
{
    // Figure 6: the per-source single-mode power is maximal at the
    // waveguide ends and minimal near the middle.
    SerpentineLayout layout{64, Meters(0.18)};
    OpticalCrossbar xbar(layout, DeviceParams{});

    WattPower end0 = xbar.broadcastPower(0);
    WattPower end1 = xbar.broadcastPower(63);
    WattPower mid = xbar.broadcastPower(32);
    EXPECT_GT(end0, mid);
    EXPECT_GT(end1, mid);
    // The ratio for an 18 cm waveguide is substantial (about 4-5x).
    EXPECT_GT(end0 / mid, 2.0);

    // Monotone decrease from the end toward the middle.
    for (int s = 1; s <= 32; ++s)
        EXPECT_LT(xbar.broadcastPower(s), xbar.broadcastPower(s - 1));
}

TEST(OpticalCrossbar, ProfileIsSymmetric)
{
    SerpentineLayout layout{32, Meters(0.1)};
    OpticalCrossbar xbar(layout, DeviceParams{});
    for (int s = 0; s < 16; ++s)
        EXPECT_NEAR(xbar.broadcastPower(s).watts(),
                    xbar.broadcastPower(31 - s).watts(),
                    1e-9 * xbar.broadcastPower(s).watts());
}

TEST(OpticalCrossbar, ChainAccessorsValidateRange)
{
    SerpentineLayout layout{8, Meters(0.02)};
    OpticalCrossbar xbar(layout, DeviceParams{});
    EXPECT_EQ(xbar.numNodes(), 8);
    EXPECT_EQ(xbar.chain(3).source(), 3);
    EXPECT_THROW(xbar.chain(8), PanicError);
    EXPECT_THROW(xbar.broadcastPower(-1), PanicError);
}

TEST(OpticalCrossbar, BroadcastElectricalPowerInPaperRange)
{
    // Sanity anchor for the absolute calibration: with Table 3
    // parameters on the 18 cm serpentine, a radix-256 source drives
    // roughly 0.1 W (optical) at the ends and a few tens of mW in the
    // middle -- about 1 W and 0.2 W electrical at 10% LED efficiency.
    SerpentineLayout layout{256, defaultWaveguideLength};
    DeviceParams params;
    OpticalCrossbar xbar(layout, params);
    double end_elec =
        (xbar.broadcastPower(0) / params.qdLedEfficiency).watts();
    double mid_elec =
        (xbar.broadcastPower(128) / params.qdLedEfficiency).watts();
    EXPECT_GT(end_elec, 0.3);
    EXPECT_LT(end_elec, 3.0);
    EXPECT_GT(mid_elec, 0.05);
    EXPECT_LT(mid_elec, 1.0);
}

} // namespace
