// Deliberately non-conforming source used by test_lint.sh.  The
// self-test copies this file to <scratch>/src/core/bad_misc.cc and
// expects mnoc-lint to flag every seeded violation below.

#include <vector>
#include <cmath>
#include <fstream>
#include <random>
#include <thread>
#include <future>

namespace mnoc {

double
attenuationFromDb(double loss_db)
{
    return std::pow(10, loss_db / 10.0); // raw-pow
}

double
noisyDraw()
{
    std::mt19937 gen(42); // rng
    return static_cast<double>(gen()) / 4294967295.0;
}

void
spawnUnpooled()
{
    std::thread worker(noisyDraw); // raw-thread
    worker.join();
    auto f = std::async(noisyDraw); // raw-thread
    f.wait();
}

void
silentWriter()
{
    std::ofstream out("result.txt"); // raw-ofstream
    out << noisyDraw();
}

float
badPrecision() // float
{
	return 0.5f; // tab indent -> format
}

double trailing = 1.0;  
// The line above has trailing whitespace; the line below exceeds the
// 79-column limit enforced across the tree by check_format in mnoc_lint.py.
double wayTooLongLine = attenuationFromDb(3.0) + attenuationFromDb(6.0) + 0.125;

} // namespace mnoc
