// Deliberately non-conforming header used by test_lint.sh.  Copied to
// <scratch>/src/optics/bad_header.hh, where the guard must be
// MNOC_OPTICS_BAD_HEADER_HH and unit-suffixed double parameters are
// forbidden.

#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

namespace mnoc::optics {

// unit-param: the dB value should be a DecibelLoss parameter.
double badBudget(double coupler_loss_db, int taps);

} // namespace mnoc::optics

#endif // WRONG_GUARD_HH
