/**
 * @file
 * Unit tests for the common substrate: units, matrices, stats, CSV,
 * PGM and table output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "common/csv.hh"
#include "common/io.hh"
#include "common/log.hh"
#include "common/matrix.hh"
#include "common/metrics.hh"
#include "common/pgm.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace {

using namespace mnoc;

TEST(Units, DbRoundTrips)
{
    EXPECT_DOUBLE_EQ(dbToAttenuation(10.0), 10.0);
    EXPECT_DOUBLE_EQ(dbToAttenuation(0.0), 1.0);
    EXPECT_DOUBLE_EQ(dbToTransmission(10.0), 0.1);
    EXPECT_NEAR(ratioToDb(dbToAttenuation(3.7)), 3.7, 1e-12);
}

TEST(Units, AttenuationTimesTransmissionIsUnity)
{
    for (double db : {0.1, 1.0, 2.5, 18.0, 50.0})
        EXPECT_NEAR(dbToAttenuation(db) * dbToTransmission(db), 1.0,
                    1e-12);
}

TEST(Units, RatioToDbRejectsNonPositive)
{
    EXPECT_THROW(ratioToDb(0.0), PanicError);
    EXPECT_THROW(ratioToDb(-1.0), PanicError);
}

TEST(Units, NearlyEqual)
{
    EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(nearlyEqual(1.0, 1.001));
    EXPECT_TRUE(nearlyEqual(0.0, 0.0));
    EXPECT_TRUE(nearlyEqual(WattPower(1.0), WattPower(1.0 + 1e-12)));
    EXPECT_FALSE(nearlyEqual(WattPower(1.0), WattPower(1.001)));
}

TEST(Units, StrongTypesAreNotImplicitlyConvertible)
{
    // The whole point of the wrappers: a bare double (or the wrong
    // wrapper) cannot sneak into a unit-typed parameter.
    static_assert(!std::is_convertible_v<double, DecibelLoss>);
    static_assert(!std::is_convertible_v<double, LinearFactor>);
    static_assert(!std::is_convertible_v<double, WattPower>);
    static_assert(!std::is_convertible_v<double, Meters>);
    static_assert(!std::is_convertible_v<DecibelLoss, WattPower>);
    static_assert(!std::is_convertible_v<DecibelLoss, LinearFactor>);
    static_assert(!std::is_convertible_v<WattPower, Meters>);
    // Zero overhead: same size and triviality as the raw double.
    static_assert(sizeof(DecibelLoss) == sizeof(double));
    static_assert(sizeof(WattPower) == sizeof(double));
    static_assert(std::is_trivially_copyable_v<WattPower>);
    static_assert(std::is_trivially_copyable_v<Meters>);
}

TEST(Units, DecibelConversionRoundTrips)
{
    for (double db : {-12.0, -0.5, 0.0, 0.1, 3.0, 17.5, 60.0}) {
        DecibelLoss loss(db);
        // toTransmission and toAttenuation are exact inverses.
        EXPECT_NEAR((loss.toTransmission() * loss.toAttenuation())
                        .value(),
                    1.0, 1e-12);
        EXPECT_NEAR(loss.toAttenuation().inverse().value(),
                    loss.toTransmission().value(), 1e-12);
        // Linear -> dB -> linear is the identity.
        EXPECT_NEAR(loss.toAttenuation().toDb().dB(), db, 1e-12);
        EXPECT_NEAR(loss.toTransmission().toDb().dB(), -db, 1e-12);
    }
}

TEST(Units, DbmRoundTrips)
{
    using namespace unit_literals;
    EXPECT_DOUBLE_EQ(WattPower::fromDbm(0.0).watts(), 1e-3);
    EXPECT_DOUBLE_EQ(WattPower::fromDbm(30.0).watts(), 1.0);
    EXPECT_NEAR(WattPower::fromDbm(-30.0).microwatts(), 1.0, 1e-12);
    for (double dbm : {-42.0, -3.0, 0.0, 10.0, 27.5})
        EXPECT_NEAR(WattPower::fromDbm(dbm).toDbm(), dbm, 1e-12);
    EXPECT_NEAR((1_mW).toDbm(), 0.0, 1e-12);
    EXPECT_THROW(WattPower(0.0).toDbm(), PanicError);
}

TEST(Units, ArithmeticPreservesDimensions)
{
    using namespace unit_literals;
    // Powers: add, scale, attenuate; ratios are dimensionless.
    WattPower p = 2_mW + 500_uW;
    EXPECT_DOUBLE_EQ(p.watts(), 2.5e-3);
    EXPECT_DOUBLE_EQ((p * 2.0).watts(), 5e-3);
    EXPECT_DOUBLE_EQ(p / 500_uW, 5.0);
    EXPECT_DOUBLE_EQ((p * DecibelLoss(3.0).toTransmission()).watts(),
                     p.watts() * dbToTransmission(3.0));
    EXPECT_DOUBLE_EQ((p / DecibelLoss(3.0).toAttenuation()).watts(),
                     p.watts() * dbToTransmission(3.0));
    // dB quantities are additive and ordered.
    EXPECT_DOUBLE_EQ((3.5_dB + 1.5_dB).dB(), 5.0);
    EXPECT_DOUBLE_EQ((3.5_dB - 1.5_dB).dB(), 2.0);
    EXPECT_DOUBLE_EQ((-(3_dB)).dB(), -3.0);
    EXPECT_LT(1_dB, 2_dB);
    // Lengths: literals agree, ratios are dimensionless.
    EXPECT_DOUBLE_EQ((18_cm).meters(), (0.18_m).meters());
    EXPECT_DOUBLE_EQ((0.18_m).centimeters(), 18.0);
    EXPECT_DOUBLE_EQ(0.1_m / 0.05_m, 2.0);
    EXPECT_DOUBLE_EQ(mnoc::abs(Meters(-0.3)).meters(), 0.3);
}

TEST(Units, StreamsPrintWithUnitSuffix)
{
    std::ostringstream os;
    os << DecibelLoss(3.0) << "; " << LinearFactor(2.0) << "; "
       << WattPower(0.5) << "; " << Meters(0.18);
    EXPECT_EQ(os.str(), "3 dB; 2x; 0.5 W; 0.18 m");
}

TEST(Log, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "bad"), FatalError);
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "bad"), PanicError);
}

TEST(Log, QuietLevelCountsSuppressedWarnings)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    std::uint64_t base = suppressedWarningCount();
    warn("swallowed");
    warn("also swallowed");
    EXPECT_EQ(suppressedWarningCount(), base + 2);
    // At Warn and above, warn() prints and the counter holds still.
    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    warn("printed");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: printed"), std::string::npos);
    EXPECT_EQ(suppressedWarningCount(), base + 2);
    setLogLevel(before);
}

TEST(Log, InformRespectsLevelWithoutCounting)
{
    LogLevel before = logLevel();
    std::uint64_t base = suppressedWarningCount();
    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    inform("dropped");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStderr();
    inform("printed");
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "info: printed"),
              std::string::npos);
    // Only warn() feeds the suppressed-warnings trail.
    EXPECT_EQ(suppressedWarningCount(), base);
    setLogLevel(before);
}

TEST(Io, FileWriterFatalsOnUnwritablePath)
{
    try {
        FileWriter writer("/nonexistent/dir/out.txt");
        FAIL() << "FileWriter opened an impossible path";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("/nonexistent/dir/out.txt"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Io, FileWriterCloseDetectsFullDisk)
{
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    try {
        FileWriter writer("/dev/full");
        writer.stream() << std::string(1 << 16, 'x');
        writer.close();
        FAIL() << "FileWriter missed the write failure";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("disk full"), std::string::npos) << what;
        EXPECT_NE(what.find("/dev/full"), std::string::npos) << what;
    }
}

TEST(Matrix, BasicAccessAndTotals)
{
    FlowMatrix m(3, 4, 0.0);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    m(1, 2) = 5.0;
    m(2, 3) = 2.0;
    EXPECT_DOUBLE_EQ(m.total(), 7.0);
    EXPECT_DOUBLE_EQ(m.rowTotal(1), 5.0);
    EXPECT_DOUBLE_EQ(m.colTotal(3), 2.0);
}

TEST(Matrix, OutOfRangePanics)
{
    FlowMatrix m(2, 2, 0.0);
    EXPECT_THROW(m(2, 0), PanicError);
    EXPECT_THROW(m(0, 2), PanicError);
    EXPECT_THROW(m.rowTotal(5), PanicError);
}

TEST(Matrix, PermuteFlowMovesMass)
{
    FlowMatrix flow(3, 3, 0.0);
    flow(0, 1) = 4.0;
    flow(1, 2) = 3.0;
    std::vector<int> map = {2, 0, 1}; // thread t -> core map[t]
    FlowMatrix out = permuteFlow(flow, map);
    EXPECT_DOUBLE_EQ(out(2, 0), 4.0);
    EXPECT_DOUBLE_EQ(out(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(out.total(), flow.total());
}

TEST(Matrix, ToFlowMatrixConverts)
{
    CountMatrix counts(2, 2, 0);
    counts(0, 1) = 7;
    FlowMatrix flow = toFlowMatrix(counts);
    EXPECT_DOUBLE_EQ(flow(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(flow(1, 0), 0.0);
}

TEST(Stats, MeansAgreeOnConstantSamples)
{
    std::vector<double> xs = {2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(harmonicMean(xs), 2.0);
    EXPECT_DOUBLE_EQ(geometricMean(xs), 2.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, HarmonicBelowGeometricBelowArithmetic)
{
    std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
    EXPECT_LT(harmonicMean(xs), geometricMean(xs));
    EXPECT_LT(geometricMean(xs), mean(xs));
    EXPECT_DOUBLE_EQ(minOf(xs), 1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 8.0);
}

TEST(Stats, EmptyAndInvalidSamplesFatal)
{
    std::vector<double> empty;
    EXPECT_THROW(mean(empty), FatalError);
    EXPECT_THROW(harmonicMean({1.0, 0.0}), FatalError);
    EXPECT_THROW(geometricMean({1.0, -2.0}), FatalError);
}

TEST(Csv, EscapesSpecialCharacters)
{
    std::string path = testing::TempDir() + "mnoc_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.cell(std::string("a,b")).cell(1.5).cell(7LL);
        csv.endRow();
        csv.writeRow({"quote\"inside", "plain"});
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "\"a,b\",1.5,7");
    EXPECT_EQ(line2, "\"quote\"\"inside\",plain");
    std::remove(path.c_str());
}

TEST(Csv, CloseDetectsFullDisk)
{
    // Regression: CsvWriter used to report success after writing a
    // report to a full device, leaving a truncated table behind.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    try {
        CsvWriter csv("/dev/full");
        for (int i = 0; i < 10000; ++i)
            csv.writeRow({"some", "row", "payload"});
        csv.close();
        FAIL() << "CsvWriter missed the write failure";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("disk full"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Pgm, WritesHeaderAndPixels)
{
    std::string path = testing::TempDir() + "mnoc_pgm_test.pgm";
    FlowMatrix m(2, 3, 0.0);
    m(0, 0) = 10.0;
    writePgmHeatmap(path, m, false);
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    int w, h, maxval;
    in >> magic >> w >> h >> maxval;
    EXPECT_EQ(magic, "P5");
    EXPECT_EQ(w, 3);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxval, 255);
    in.ignore();
    std::string pixels(6, '\0');
    in.read(pixels.data(), 6);
    // Max value renders dark (0), zeros render white (255).
    EXPECT_EQ(static_cast<unsigned char>(pixels[0]), 0);
    EXPECT_EQ(static_cast<unsigned char>(pixels[1]), 255);
    std::remove(path.c_str());
}

TEST(Pgm, StampsCommentIntoHeader)
{
    std::string path = testing::TempDir() + "mnoc_pgm_comment.pgm";
    FlowMatrix m(1, 2, 0.0);
    m(0, 0) = 1.0;
    writePgmHeatmap(path, m, true, "run stamp\nwith newline");
    std::ifstream in(path, std::ios::binary);
    std::string magic, comment;
    std::getline(in, magic);
    std::getline(in, comment);
    EXPECT_EQ(magic, "P5");
    // Newlines are flattened so the comment stays one header line.
    EXPECT_EQ(comment, "# run stamp with newline");
    int w = 0, h = 0, maxval = 0;
    in >> w >> h >> maxval;
    EXPECT_EQ(w, 2);
    EXPECT_EQ(h, 1);
    EXPECT_EQ(maxval, 255);
    std::remove(path.c_str());
}

TEST(Pgm, WriteDetectsFullDisk)
{
    // Regression: writePgmHeatmap used to drop ostream errors,
    // yielding truncated heatmaps on full disks.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    FlowMatrix m(256, 256, 1.0);
    try {
        writePgmHeatmap("/dev/full", m);
        FAIL() << "writePgmHeatmap missed the write failure";
    } catch (const FatalError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("disk full"), std::string::npos) << what;
        EXPECT_NE(what.find("/dev/full"), std::string::npos) << what;
    }
}

TEST(Table, AlignsAndUnderlinesHeader)
{
    TextTable t;
    t.addRow({"name", "value"});
    t.addRow({"x", "1.25"});
    std::ostringstream os;
    t.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    EXPECT_NE(text.find("1.25"), std::string::npos);
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
}

TEST(Knobs, ParsePositiveCountFallsBackOnlyWhenUnset)
{
    EXPECT_EQ(parsePositiveCount(nullptr, "MNOC_EPOCH_MSGS", 1024),
              1024u);
    EXPECT_EQ(parsePositiveCount("", "MNOC_EPOCH_MSGS", 1024),
              1024u);
    EXPECT_EQ(parsePositiveCount("1", "MNOC_EPOCH_MSGS", 1024), 1u);
    EXPECT_EQ(parsePositiveCount("65536", "MNOC_FAULT_SEED", 1),
              65536u);
}

TEST(Knobs, ParsePositiveCountFatalsOnGarbageNamingTheKnob)
{
    // A mistyped knob must stop the run, not quietly fall back.
    for (const char *bad : {"banana", "0", "-3", "12abc", "1.5", " 7x"}) {
        try {
            parsePositiveCount(bad, "MNOC_EPOCH_MSGS", 1024);
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find(
                          "MNOC_EPOCH_MSGS"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find(bad),
                      std::string::npos);
        }
    }
    try {
        parsePositiveCount("0", "MNOC_FAULT_SEED", 1);
        FAIL() << "accepted zero seed";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("MNOC_FAULT_SEED"),
                  std::string::npos);
    }
}

TEST(Knobs, ParseBoolKnobAcceptsOnlyZeroAndOne)
{
    EXPECT_FALSE(parseBoolKnob(nullptr, "MNOC_LEDGER"));
    EXPECT_FALSE(parseBoolKnob("", "MNOC_LEDGER"));
    EXPECT_FALSE(parseBoolKnob("0", "MNOC_LEDGER"));
    EXPECT_TRUE(parseBoolKnob("1", "MNOC_LEDGER"));

    // Garbage must stop the run, naming the knob and the value --
    // the parity contract with MNOC_THREADS/MNOC_FAULTS.
    for (const char *bad : {"2", "yes", "true", "on", "banana"}) {
        try {
            parseBoolKnob(bad, "MNOC_LEDGER");
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find("MNOC_LEDGER"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find(bad),
                      std::string::npos);
        }
    }
}

TEST(Knobs, ParsePathKnobSplitsFlagFromExportPath)
{
    EXPECT_FALSE(parsePathKnob(nullptr, "MNOC_METRICS").enabled);
    EXPECT_FALSE(parsePathKnob("", "MNOC_METRICS").enabled);
    EXPECT_FALSE(parsePathKnob("0", "MNOC_METRICS").enabled);

    PathKnob on = parsePathKnob("1", "MNOC_METRICS");
    EXPECT_TRUE(on.enabled);
    EXPECT_TRUE(on.path.empty());

    PathKnob path = parsePathKnob("out/metrics.json",
                                  "MNOC_TRACE_SPANS");
    EXPECT_TRUE(path.enabled);
    EXPECT_EQ(path.path, "out/metrics.json");
}

TEST(Knobs, ParsePathKnobFatalsOnMistypedFlags)
{
    // Values that are clearly an attempt at a boolean (or a count)
    // must not be silently taken as file names.
    for (const char *bad :
         {"true", "FALSE", "yes", "No", "ON", "off", "2", "01"}) {
        try {
            parsePathKnob(bad, "MNOC_METRICS");
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find("MNOC_METRICS"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find(bad),
                      std::string::npos);
        }
    }
}

TEST(Knobs, FaultKnobsDefaultOffWithSeedOne)
{
    // The test runner leaves MNOC_FAULTS/MNOC_FAULT_SEED unset, so
    // the cached getters must land on their documented defaults.
    EXPECT_FALSE(faultsEnabled());
    EXPECT_EQ(faultSeed(), 1u);
}

TEST(Knobs, AdaptKnobsDefaultOffWithWindowThirtyTwo)
{
    // The test runner leaves MNOC_ADAPT/MNOC_ADAPT_WINDOW unset, so
    // the cached getters must land on their documented defaults.
    EXPECT_FALSE(adaptEnabled());
    EXPECT_EQ(adaptWindow(), 32u);
}

TEST(Knobs, AdaptKnobsAreStrictFromDayOne)
{
    // MNOC_ADAPT shares the 0/1 contract, MNOC_ADAPT_WINDOW the
    // positive-count contract; both must fatal on garbage naming the
    // knob and the value rather than fall back to a default.
    for (const char *bad : {"2", "yes", "on", "banana"}) {
        try {
            parseBoolKnob(bad, "MNOC_ADAPT");
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find("MNOC_ADAPT"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find(bad),
                      std::string::npos);
        }
    }
    for (const char *bad : {"0", "-4", "8.5", "wide", "16x"}) {
        try {
            parsePositiveCount(bad, "MNOC_ADAPT_WINDOW", 32);
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find(
                          "MNOC_ADAPT_WINDOW"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find(bad),
                      std::string::npos);
        }
    }
    EXPECT_EQ(parsePositiveCount("16", "MNOC_ADAPT_WINDOW", 32),
              16u);
}

TEST(Knobs, ParseLogLevelKnobIsStrict)
{
    EXPECT_EQ(parseLogLevelKnob(nullptr, "MNOC_LOG_LEVEL"),
              LogLevel::Info);
    EXPECT_EQ(parseLogLevelKnob("", "MNOC_LOG_LEVEL"),
              LogLevel::Info);
    EXPECT_EQ(parseLogLevelKnob("info", "MNOC_LOG_LEVEL"),
              LogLevel::Info);
    EXPECT_EQ(parseLogLevelKnob("warn", "MNOC_LOG_LEVEL"),
              LogLevel::Warn);
    EXPECT_EQ(parseLogLevelKnob("quiet", "MNOC_LOG_LEVEL"),
              LogLevel::Quiet);

    // A typo like "qiuet" must not silently re-enable warnings, and
    // the casing is part of the contract.
    for (const char *bad : {"qiuet", "INFO", "verbose", "2", "Warn"}) {
        try {
            parseLogLevelKnob(bad, "MNOC_LOG_LEVEL");
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find(
                          "MNOC_LOG_LEVEL"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find(bad),
                      std::string::npos);
        }
    }
}

} // namespace
