/**
 * @file
 * Tests of design serialization and drive tables.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/log.hh"
#include "core/builders.hh"
#include "core/design_io.hh"

namespace {

using namespace mnoc;
using namespace mnoc::core;

struct IoFixture
{
    optics::SerpentineLayout layout{12, Meters(0.04)};
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar{layout, params};
    MnocPowerModel model{xbar};

    MnocDesign
    sample() const
    {
        return model.designUniform(distanceBasedTopology(12, 3));
    }

    sim::Trace
    sampleTrace() const
    {
        sim::Trace t;
        t.totalTicks = 5000;
        t.packets = CountMatrix(12, 12, 0);
        t.flits = CountMatrix(12, 12, 0);
        for (int s = 0; s < 12; ++s)
            for (int d = 0; d < 12; ++d)
                if (s != d)
                    t.flits(s, d) = 10 + s + d;
        return t;
    }
};

TEST(DesignIo, RoundTripPreservesEvaluation)
{
    IoFixture f;
    std::string path = testing::TempDir() + "mnoc_design_test.txt";
    MnocDesign original = f.sample();
    saveDesign(path, original);
    MnocDesign loaded = loadDesign(path);

    EXPECT_EQ(loaded.topology.numNodes, 12);
    EXPECT_EQ(loaded.topology.numModes, 3);
    auto trace = f.sampleTrace();
    auto a = f.model.evaluate(original, trace);
    auto b = f.model.evaluate(loaded, trace);
    EXPECT_DOUBLE_EQ(a.total(), b.total());
    EXPECT_DOUBLE_EQ(a.source, b.source);
    std::remove(path.c_str());
}

TEST(DesignIo, RoundTripPreservesSplitters)
{
    IoFixture f;
    std::string path = testing::TempDir() + "mnoc_design_split.txt";
    MnocDesign original = f.sample();
    saveDesign(path, original);
    MnocDesign loaded = loadDesign(path);
    for (int s = 0; s < 12; ++s) {
        for (int d = 0; d < 12; ++d)
            EXPECT_DOUBLE_EQ(
                loaded.sources[s].chain.splitterFraction[d],
                original.sources[s].chain.splitterFraction[d]);
        // Loaded designs evaluate correctly through the chain model.
        auto received = f.xbar.chain(s).evaluate(
            loaded.sources[s].chain, loaded.sources[s].modePower[2]);
        for (int d = 0; d < 12; ++d) {
            if (d == s)
                continue;
            EXPECT_GE(received[d],
                      f.params.pminAtTap().watts() * (1.0 - 1e-9));
        }
    }
    std::remove(path.c_str());
}

TEST(DesignIo, LoadRejectsGarbage)
{
    std::string path = testing::TempDir() + "mnoc_design_bad.txt";
    {
        std::ofstream out(path);
        out << "not-a-design 1\n";
    }
    EXPECT_THROW(loadDesign(path), FatalError);
    EXPECT_THROW(loadDesign("/nonexistent/file.txt"), FatalError);
    std::remove(path.c_str());
}

TEST(DesignIo, LoadRejectsTruncation)
{
    IoFixture f;
    std::string full = testing::TempDir() + "mnoc_design_full.txt";
    saveDesign(full, f.sample());

    std::ifstream in(full);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::string cut = testing::TempDir() + "mnoc_design_cut.txt";
    {
        std::ofstream out(cut);
        out << content.substr(0, content.size() / 2);
    }
    EXPECT_THROW(loadDesign(cut), FatalError);
    std::remove(full.c_str());
    std::remove(cut.c_str());
}

TEST(DesignIo, ManifestTrailerRoundTrips)
{
    IoFixture f;
    std::string path = testing::TempDir() + "mnoc_design_manifest.txt";
    RunManifest manifest;
    manifest.seed = 77;
    manifest.gitSha = "beef001";
    manifest.threads = 5;
    manifest.configDigest = "0011223344556677";
    manifest.env.emplace_back("MNOC_THREADS", "5");
    saveDesign(path, f.sample(), nullptr, &manifest);

    DesignReport report = loadDesignReport(path);
    ASSERT_TRUE(report.manifest.has_value());
    EXPECT_EQ(report.manifest->seed, 77u);
    EXPECT_EQ(report.manifest->gitSha, "beef001");
    EXPECT_EQ(report.manifest->threads, 5);
    EXPECT_EQ(report.manifest->configDigest, "0011223344556677");
    EXPECT_EQ(report.manifest->env, manifest.env);
    EXPECT_FALSE(report.resilience.has_value());

    // A design without a trailer loads with no manifest.
    std::string bare = testing::TempDir() + "mnoc_design_bare.txt";
    saveDesign(bare, f.sample());
    EXPECT_FALSE(loadDesignReport(bare).manifest.has_value());
    std::remove(path.c_str());
    std::remove(bare.c_str());
}

TEST(DesignIo, DriveTableMatchesDesign)
{
    IoFixture f;
    MnocDesign design = f.sample();
    auto table = driveTable(design, 4);
    EXPECT_EQ(table.size(), 11u);
    for (const auto &entry : table) {
        EXPECT_NE(entry.dest, 4);
        EXPECT_EQ(entry.mode,
                  design.topology.local(4).modeOfDest[entry.dest]);
        EXPECT_DOUBLE_EQ(entry.drivePower.watts(),
                         design.sources[4].modePower[entry.mode]
                             .watts());
        EXPECT_GT(entry.drivePower.watts(), 0.0);
    }
    // Drive powers are non-decreasing in mode.
    for (std::size_t i = 0; i + 1 < table.size(); ++i) {
        if (table[i].mode < table[i + 1].mode) {
            EXPECT_LE(table[i].drivePower, table[i + 1].drivePower);
        }
    }
}

} // namespace
