/**
 * @file
 * Protocol-level tests of the MOSI coherence controller: state
 * transitions, traffic generation, and timing composition.
 */

#include <gtest/gtest.h>

#include "noc/mnoc_network.hh"
#include "sim/coherence.hh"

namespace {

using namespace mnoc;
using namespace mnoc::sim;

struct CohFixture
{
    optics::SerpentineLayout layout{4, Meters(0.01)};
    noc::NetworkConfig netConfig;
    noc::MnocNetwork net{layout, netConfig};
    noc::TrafficRecorder recorder{4};
    MemoryParams params;
    CoherenceController coh{4, params, net, recorder};

    static MemOp
    readOf(int owner, std::uint64_t line)
    {
        MemOp op;
        op.addr = placedAddr(owner, line << lineShift);
        return op;
    }

    static MemOp
    writeOf(int owner, std::uint64_t line)
    {
        MemOp op = readOf(owner, line);
        op.write = true;
        return op;
    }

    std::uint64_t
    lineId(int owner, std::uint64_t line) const
    {
        return lineOf(placedAddr(owner, line << lineShift));
    }
};

TEST(Coherence, ColdReadInstallsShared)
{
    CohFixture f;
    noc::Tick done = f.coh.access(0, CohFixture::readOf(1, 5), 0);
    EXPECT_GT(done, static_cast<noc::Tick>(f.params.memCycles));

    auto state = f.coh.cacheState(0, f.lineId(1, 5));
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, LineState::Shared);

    const DirEntry *e = f.coh.directory().find(f.lineId(1, 5));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_TRUE(e->sharers.contains(0));
    EXPECT_EQ(f.coh.stats().gets, 1u);
    EXPECT_EQ(f.coh.stats().memoryFetches, 1u);
    // Request to home 1 plus data back: two packets.
    EXPECT_EQ(f.coh.stats().packetsSent, 2u);
    EXPECT_EQ(f.recorder.packets()(0, 1), 1u);
    EXPECT_EQ(f.recorder.packets()(1, 0), 1u);
}

TEST(Coherence, LocalHomeNeedsNoNetwork)
{
    CohFixture f;
    f.coh.access(2, CohFixture::readOf(2, 9), 0);
    EXPECT_EQ(f.coh.stats().packetsSent, 0u);
    EXPECT_EQ(f.recorder.totalPackets(), 0u);
}

TEST(Coherence, SecondReadHitsInCache)
{
    CohFixture f;
    f.coh.access(0, CohFixture::readOf(1, 5), 0);
    auto packets_before = f.coh.stats().packetsSent;
    noc::Tick done = f.coh.access(0, CohFixture::readOf(1, 5), 1000);
    EXPECT_EQ(done, 1000u + f.params.l1Cycles);
    EXPECT_EQ(f.coh.stats().packetsSent, packets_before);
    EXPECT_EQ(f.coh.stats().l1Hits, 1u);
}

TEST(Coherence, WriteMissInstallsModified)
{
    CohFixture f;
    f.coh.access(0, CohFixture::writeOf(1, 5), 0);
    EXPECT_EQ(*f.coh.cacheState(0, f.lineId(1, 5)),
              LineState::Modified);
    const DirEntry *e = f.coh.directory().find(f.lineId(1, 5));
    EXPECT_EQ(e->state, DirState::Modified);
    EXPECT_EQ(e->owner, 0);
    EXPECT_EQ(f.coh.stats().getx, 1u);
}

TEST(Coherence, ReadFromModifiedForwardsAndDowngrades)
{
    CohFixture f;
    f.coh.access(0, CohFixture::writeOf(3, 7), 0);
    auto c2c_before = f.coh.stats().cacheToCache;
    f.coh.access(1, CohFixture::readOf(3, 7), 100);

    EXPECT_EQ(f.coh.stats().cacheToCache, c2c_before + 1);
    EXPECT_EQ(*f.coh.cacheState(0, f.lineId(3, 7)), LineState::Owned);
    EXPECT_EQ(*f.coh.cacheState(1, f.lineId(3, 7)), LineState::Shared);
    const DirEntry *e = f.coh.directory().find(f.lineId(3, 7));
    EXPECT_EQ(e->state, DirState::Owned);
    EXPECT_EQ(e->owner, 0);
    EXPECT_EQ(e->sharers.count(), 2);
    // The data came from the owner, not memory.
    EXPECT_EQ(f.coh.stats().memoryFetches, 1u); // only the initial GETX
}

TEST(Coherence, WriteInvalidatesAllSharers)
{
    CohFixture f;
    f.coh.access(0, CohFixture::readOf(2, 4), 0);
    f.coh.access(1, CohFixture::readOf(2, 4), 50);
    f.coh.access(3, CohFixture::readOf(2, 4), 100);

    auto inv_before = f.coh.stats().invalidations;
    f.coh.access(1, CohFixture::writeOf(2, 4), 200);

    EXPECT_EQ(f.coh.stats().invalidations, inv_before + 2);
    EXPECT_FALSE(f.coh.cacheState(0, f.lineId(2, 4)).has_value());
    EXPECT_FALSE(f.coh.cacheState(3, f.lineId(2, 4)).has_value());
    EXPECT_EQ(*f.coh.cacheState(1, f.lineId(2, 4)),
              LineState::Modified);
    const DirEntry *e = f.coh.directory().find(f.lineId(2, 4));
    EXPECT_EQ(e->state, DirState::Modified);
    EXPECT_EQ(e->owner, 1);
    EXPECT_EQ(e->sharers.count(), 1);
}

TEST(Coherence, UpgradeOnOwnSharedLineCountsUpgrade)
{
    CohFixture f;
    f.coh.access(0, CohFixture::readOf(1, 6), 0);
    f.coh.access(0, CohFixture::writeOf(1, 6), 100);
    EXPECT_EQ(f.coh.stats().upgrades, 1u);
    EXPECT_EQ(f.coh.stats().getx, 0u);
    EXPECT_EQ(*f.coh.cacheState(0, f.lineId(1, 6)),
              LineState::Modified);
}

TEST(Coherence, WriteToModifiedLineElsewhereTransfersOwnership)
{
    CohFixture f;
    f.coh.access(0, CohFixture::writeOf(2, 8), 0);
    f.coh.access(3, CohFixture::writeOf(2, 8), 100);

    EXPECT_FALSE(f.coh.cacheState(0, f.lineId(2, 8)).has_value());
    EXPECT_EQ(*f.coh.cacheState(3, f.lineId(2, 8)),
              LineState::Modified);
    const DirEntry *e = f.coh.directory().find(f.lineId(2, 8));
    EXPECT_EQ(e->owner, 3);
    EXPECT_EQ(f.coh.stats().cacheToCache, 1u);
}

TEST(Coherence, DirtyEvictionWritesBack)
{
    // Use a tiny L2 so fills force evictions quickly.
    CohFixture f;
    MemoryParams small = f.params;
    small.l1 = CacheGeometry{256, 2};  // 2 sets x 2 ways
    small.l2 = CacheGeometry{512, 2};  // 4 sets x 2 ways = 8 lines
    noc::TrafficRecorder recorder(4);
    CoherenceController coh(4, small, f.net, recorder);

    // Dirty 16 distinct remote lines: at most 8 fit, so at least 8
    // dirty evictions must have written back.
    for (std::uint64_t i = 0; i < 16; ++i)
        coh.access(0, CohFixture::writeOf(1, i), i * 1000);
    EXPECT_GE(coh.stats().writebacks, 8u);

    // Every written-back line left the directory consistent.
    for (std::uint64_t i = 0; i < 16; ++i) {
        std::uint64_t line =
            lineOf(placedAddr(1, i << lineShift));
        const DirEntry *e = coh.directory().find(line);
        ASSERT_NE(e, nullptr);
        if (!coh.cacheState(0, line).has_value())
            EXPECT_EQ(e->state, DirState::Invalid);
        else
            EXPECT_EQ(e->state, DirState::Modified);
    }
}

TEST(Coherence, TimingCompositionOrdersLatencies)
{
    CohFixture f;
    // L1 hit < L2 hit < remote miss.
    f.coh.access(0, CohFixture::readOf(1, 3), 0);
    noc::Tick l1 = f.coh.access(0, CohFixture::readOf(1, 3), 1000) -
                   1000;

    // Evict from L1 by touching conflicting lines (L1 128 sets; use
    // big strides) -- simpler: a fresh remote line is a full miss.
    noc::Tick miss = f.coh.access(0, CohFixture::readOf(2, 77), 2000) -
                     2000;
    EXPECT_LT(l1, miss);
    EXPECT_GE(miss, static_cast<noc::Tick>(f.params.memCycles));
}

TEST(Coherence, HomeMapMovesDirectoryTraffic)
{
    CohFixture f;
    // Map thread 1's data onto core 3.
    f.coh.setHomeMap({0, 3, 2, 1});
    f.coh.access(0, CohFixture::readOf(1, 5), 0);
    // The request went to core 3, not core 1.
    EXPECT_EQ(f.recorder.packets()(0, 3), 1u);
    EXPECT_EQ(f.recorder.packets()(0, 1), 0u);
}

TEST(Coherence, StatsAccumulateAcrossAccesses)
{
    CohFixture f;
    for (int i = 0; i < 10; ++i)
        f.coh.access(0, CohFixture::readOf(1, i), i * 500);
    EXPECT_EQ(f.coh.stats().accesses, 10u);
    EXPECT_EQ(f.coh.stats().gets, 10u);
    EXPECT_EQ(f.recorder.packets()(0, 1), 10u);
    // Data packets are 3 flits each.
    EXPECT_EQ(f.recorder.flits()(1, 0), 30u);
}

} // namespace
