/**
 * @file
 * google-benchmark microbenchmarks of the library's inner kernels:
 * splitter-chain design, alpha optimization, QAP delta evaluation,
 * channel booking, cache lookups, and the disabled-path cost of the
 * metrics/span instrumentation (must stay a branch, not a syscall).
 */

#include <benchmark/benchmark.h>

#include "common/metrics.hh"
#include "common/prng.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "core/designer.hh"
#include "faults/variation.hh"
#include "noc/channel.hh"
#include "optics/alpha_optimizer.hh"
#include "optics/crossbar.hh"
#include "qap/qap.hh"
#include "runtime/degradation_controller.hh"
#include "runtime/fault_timeline.hh"
#include "sim/cache.hh"

using namespace mnoc;

namespace {

void
BM_SplitterChainDesign(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    optics::SerpentineLayout layout{n, Meters(0.18)};
    optics::DeviceParams params;
    optics::SplitterChain chain(layout, params, n / 2);
    std::vector<double> targets(n, params.pminAtTap().watts());
    targets[n / 2] = 0.0;
    for (auto _ : state) {
        auto design = chain.design(targets);
        benchmark::DoNotOptimize(design.injectedPower);
    }
}
BENCHMARK(BM_SplitterChainDesign)->Arg(64)->Arg(256)->Arg(1024);

void
BM_AlphaOptimize(benchmark::State &state)
{
    int n = 256;
    optics::SerpentineLayout layout{n, Meters(0.18)};
    optics::DeviceParams params;
    optics::SplitterChain chain(layout, params, n / 2);
    std::vector<int> modes(n, 0);
    int m = static_cast<int>(state.range(0));
    for (int d = 0; d < n; ++d)
        modes[d] = (std::abs(d - n / 2) * m) / n;
    std::vector<double> weights(m, 1.0 / m);
    optics::AlphaOptimizer optimizer(chain, modes, weights,
                                     params.pminAtTap());
    for (auto _ : state) {
        auto design = optimizer.optimize();
        benchmark::DoNotOptimize(design.expectedPower);
    }
}
BENCHMARK(BM_AlphaOptimize)->Arg(2)->Arg(4);

void
BM_QapSwapDelta(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Prng rng(1);
    FlowMatrix flow(n, n, 0.0);
    FlowMatrix dist(n, n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            flow(i, j) = flow(j, i) = rng.uniform();
            dist(i, j) = dist(j, i) = rng.uniform();
        }
    qap::QapInstance inst(flow, dist);
    auto perm = inst.identity();
    int u = 0;
    for (auto _ : state) {
        int v = (u + 7) % n;
        if (v == u)
            v = (v + 1) % n;
        benchmark::DoNotOptimize(inst.swapDelta(perm, u, v));
        u = (u + 1) % n;
    }
}
BENCHMARK(BM_QapSwapDelta)->Arg(64)->Arg(256);

void
BM_ChannelBook(benchmark::State &state)
{
    noc::Channel channel;
    noc::Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(channel.book(t, 3));
        t += 2;
    }
}
BENCHMARK(BM_ChannelBook);

void
BM_CacheLookup(benchmark::State &state)
{
    sim::Cache cache(sim::CacheGeometry{32 * 1024, 4});
    Prng rng(2);
    for (int i = 0; i < 400; ++i)
        cache.insert(rng.below(1 << 16), sim::LineState::Shared);
    std::uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(line));
        line = (line + 97) % (1 << 16);
    }
}
BENCHMARK(BM_CacheLookup);

/** Counter::add with collection off: the before/after check of the
 *  "off = zero overhead" contract (one relaxed load + branch). */
void
BM_MetricsCounterOff(benchmark::State &state)
{
    MetricsRegistry::setEnabled(false);
    Counter &counter =
        MetricsRegistry::global().counter("bench.off_counter");
    for (auto _ : state)
        counter.add();
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricsCounterOff);

void
BM_MetricsCounterOn(benchmark::State &state)
{
    MetricsRegistry::setEnabled(true);
    Counter &counter =
        MetricsRegistry::global().counter("bench.on_counter");
    for (auto _ : state)
        counter.add();
    benchmark::DoNotOptimize(counter.value());
    MetricsRegistry::setEnabled(false);
}
BENCHMARK(BM_MetricsCounterOn);

void
BM_HistogramObserveOn(benchmark::State &state)
{
    MetricsRegistry::setEnabled(true);
    Histogram &hist = MetricsRegistry::global().histogram(
        "bench.on_histogram", {1.0, 10.0, 100.0});
    double value = 0.0;
    for (auto _ : state) {
        hist.observe(value);
        value = value < 200.0 ? value + 1.0 : 0.0;
    }
    benchmark::DoNotOptimize(hist.totalCount());
    MetricsRegistry::setEnabled(false);
}
BENCHMARK(BM_HistogramObserveOn);

/** TraceSpan construction/destruction with recording off. */
void
BM_TraceSpanOff(benchmark::State &state)
{
    SpanRecorder::setEnabled(false);
    for (auto _ : state) {
        TraceSpan span("bench.span", "bench");
        benchmark::DoNotOptimize(&span);
    }
}
BENCHMARK(BM_TraceSpanOff);

/** Composing one epoch's fault state from a dense event list: the
 *  per-epoch fixed cost the degradation controller pays before any
 *  link budgets are evaluated. */
void
BM_FaultTimelineStateAt(benchmark::State &state)
{
    constexpr std::size_t kEpochs = 64;
    runtime::FaultTimeline timeline(
        runtime::FaultTimelineSpec{}.scaled(4.0), 256, 4, kEpochs,
        7);
    std::size_t epoch = 0;
    for (auto _ : state) {
        auto fault_state = timeline.stateAt(epoch % kEpochs);
        benchmark::DoNotOptimize(fault_state.activeEvents);
        ++epoch;
    }
}
BENCHMARK(BM_FaultTimelineStateAt);

/** Full controller run over a faulted window: per-source link-budget
 *  re-evaluation plus the rule table, serial pool. */
void
BM_DegradationController(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    optics::SerpentineLayout layout{n, Meters(0.18)};
    optics::OpticalCrossbar crossbar(layout,
                                     optics::DeviceParams{});
    core::Designer designer(crossbar);
    core::DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = core::Assignment::Clustered;
    spec.weights = core::WeightSource::Uniform;
    FlowMatrix flow(n, n, 1.0);
    auto topology = designer.buildTopology(spec, flow);
    auto design = designer.buildDesign(spec, topology, flow);

    Prng prng(1);
    auto variation = faults::drawVariation(
        faults::VariationSpec{}.scaled(0.0), crossbar.params(), n,
        prng);
    runtime::FaultTimeline timeline(runtime::FaultTimelineSpec{}, n,
                                    spec.numModes, 8, 7);
    runtime::DegradationPolicy policy;
    ThreadPool pool(1);
    for (auto _ : state) {
        auto log = runtime::runDegradationController(
            layout, design, variation, timeline, policy, nullptr,
            &pool);
        benchmark::DoNotOptimize(log.finalNumModes);
    }
}
BENCHMARK(BM_DegradationController)->Arg(64);

} // namespace

BENCHMARK_MAIN();
