/**
 * @file
 * Section 5.5: application-specific power topologies -- a custom
 * communication-aware design built from each benchmark's own traffic,
 * compared against the naive distance-based design under the same QAP
 * mapping.  The paper finds a modest (~8%) improvement: "keep it
 * simple" unless the deployment has fixed communication patterns.
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Application-specific (custom) power topologies",
        "Section 5.5");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    FlowMatrix uniform(n, n, 1.0);
    auto identity = harness.identityMapping();

    core::DesignSpec base_spec; // 1M
    auto base_design = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, uniform), uniform);

    core::DesignSpec naive_spec;
    naive_spec.numModes = 2;
    naive_spec.assignment = core::Assignment::DistanceBased;
    auto naive_design = designer.buildDesign(
        naive_spec, designer.buildTopology(naive_spec, uniform),
        uniform);

    TextTable table;
    table.addRow({"benchmark", "2M_T_N_U", "2M_T_C (custom)",
                  "custom gain"});
    CsvWriter csv(harness.outPath("sec55_app_specific.csv"));
    csv.writeRow({"benchmark", "naive_norm", "custom_norm", "gain"});

    std::vector<double> gains;
    for (const auto &name : harness.benchmarks()) {
        const auto &trace = harness.trace(name);
        const auto &taboo = harness.mapping(name);
        double base =
            designer.evaluate(base_design, trace, identity).total();

        double naive =
            designer.evaluate(naive_design, trace, taboo).total() /
            base;

        // Custom: comm-aware assignment + splitters from this app's
        // own mapped traffic.
        FlowMatrix own = permuteFlow(harness.threadFlow(name), taboo);
        core::DesignSpec custom_spec;
        custom_spec.numModes = 2;
        custom_spec.assignment = core::Assignment::CommAware;
        custom_spec.weights = core::WeightSource::DesignFlow;
        auto custom_design = designer.buildDesign(
            custom_spec, designer.buildTopology(custom_spec, own),
            own);
        double custom =
            designer.evaluate(custom_design, trace, taboo).total() /
            base;

        double gain = 1.0 - custom / naive;
        gains.push_back(gain);
        table.addRow({name, TextTable::num(naive, 3),
                      TextTable::num(custom, 3),
                      TextTable::num(100.0 * gain, 1) + "%"});
        csv.cell(name).cell(naive).cell(custom).cell(gain);
        csv.endRow();
    }
    table.addRow({"mean", "-", "-",
                  TextTable::num(100.0 * mean(gains), 1) + "%"});
    table.print(std::cout);

    std::cout << "\nPaper anchor: custom designs gain only ~8% over "
                 "the naive distance-based\ntopology -- worthwhile for "
                 "embedded/ASIC deployments with known traffic,\n"
                 "otherwise \"keep it simple\".\n";
    return 0;
}
