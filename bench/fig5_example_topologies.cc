/**
 * @file
 * Figure 5: the paper's two 8-node example power topologies rendered
 * as adjacency matrices -- (a) the clustered mapping with four nodes
 * per cluster and two modes, and (b) the distance-based four-mode
 * design built from groups of the two nearest destinations.  Entries
 * are printed 1-based to match the paper's figure exactly.
 *
 * (Figures 1 and 4 of the paper are device/model schematics with no
 * computational content; every other figure has its own binary.)
 */

#include <iostream>

#include "common/table.hh"
#include "core/builders.hh"
#include "harness.hh"

using namespace mnoc;

namespace {

void
printTopology(const core::GlobalPowerTopology &topo,
              const std::string &title)
{
    std::cout << "\n--- " << title << " ---\n";
    TextTable table;
    {
        std::vector<std::string> header = {"src\\dst"};
        for (int d = 0; d < topo.numNodes; ++d)
            header.push_back(std::to_string(d));
        table.addRow(header);
    }
    // The paper prints rows top-down from the highest source index.
    for (int s = topo.numNodes - 1; s >= 0; --s) {
        std::vector<std::string> row = {std::to_string(s)};
        for (int d = 0; d < topo.numNodes; ++d) {
            int mode = topo.local(s).modeOfDest[d];
            row.push_back(mode < 0 ? "-" : std::to_string(mode + 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::printHeader("Example power topologies (8 nodes)",
                       "Figure 5");

    // Figure 5a: clustered, 4 nodes per cluster, two modes.
    printTopology(core::clusteredTopology(8, 4),
                  "Figure 5a: clustered power topology");

    // Figure 5b: distance-based on groups of the two nearest.
    printTopology(core::distanceBasedTopology(8, {2, 2, 2, 1}),
                  "Figure 5b: distance-based power topology");

    std::cout << "\nCheck against the paper: in 5a nodes 0-3 and 4-7 "
                 "form mode-1 clusters;\nin 5b row 3 reads "
                 "3,2,1,-,1,2,3,4 -- the two nearest neighbours in\n"
                 "mode 1, then rings of increasing mode outward.\n";
    return 0;
}
