/**
 * @file
 * Table 1: system-level comparison between the ring-resonator rNoC and
 * the mNoC -- scalability, normalized energy, and normalized
 * performance for the 256-node system.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("rNoC vs mNoC system comparison", "Table 1");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    auto identity = harness.identityMapping();
    FlowMatrix uniform(n, n, 1.0);

    core::DesignSpec spec; // base mNoC (1M)
    auto design = designer.buildDesign(
        spec, designer.buildTopology(spec, uniform), uniform);
    core::RnocPowerModel rnoc_model{core::RnocParams{}};

    double clock = harness.powerParams().net.clockHz;
    double mnoc_energy = 0.0;
    double rnoc_energy = 0.0;
    std::vector<double> speedups;
    std::vector<double> latency_ratio;

    for (const auto &name : harness.benchmarks()) {
        const auto &mnoc_trace = harness.trace(name, "mnoc");
        const auto &rnoc_trace = harness.trace(name, "rnoc");

        double t_mnoc = static_cast<double>(mnoc_trace.totalTicks);
        double t_rnoc = static_cast<double>(rnoc_trace.totalTicks);
        speedups.push_back(t_rnoc / t_mnoc);

        mnoc_energy +=
            designer.evaluate(design, mnoc_trace, identity).total() *
            t_mnoc / clock;
        rnoc_energy += rnoc_model.evaluate(rnoc_trace).total() *
                       t_rnoc / clock;
    }

    TextTable table;
    table.addRow({"metric", "rNoC", "mNoC", "paper (rNoC : mNoC)"});
    table.addRow({"wavelength (nm)", "1550", "390-750", "same"});
    table.addRow({"requires thermal tuning", "yes", "no", "same"});
    table.addRow({"activity-independent light source", "yes", "no",
                  "same"});
    table.addRow({"max crossbar radix", "64x64", ">256x256",
                  "64 : >256"});
    table.addRow({"normalized energy (256 nodes)", "1.000",
                  TextTable::num(mnoc_energy / rnoc_energy, 3),
                  "1 : <0.51"});
    table.addRow({"normalized performance (256 nodes)", "1.000",
                  TextTable::num(geometricMean(speedups), 3),
                  "1 : 1.1"});
    table.print(std::cout);

    std::cout << "\nScalability note: the mNoC serpentine reaches "
                 "radix-256 with total\nworst-case loss ~20 dB "
                 "(1 dB/cm x 18 cm + couplers/taps), while ring\n"
                 "nonlinearity and trimming power cap rNoC crossbars "
                 "near radix-64\n(Section 2.1).\n";
    return 0;
}
